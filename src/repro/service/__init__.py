"""Always-on sweep service: a crash-safe, multi-tenant experiment daemon.

One shared daemon (``repro-bimode serve``) accepts sweep requests from
many clients over a local unix socket (JSON lines; loopback TCP on
platforms without ``AF_UNIX``), schedules them on a single supervised
worker pool with fair round-robin queuing and per-job priorities, and
makes the whole lifecycle crash-safe: job manifests and per-job sweep
journals persist every completed cell, so a ``kill -9`` of the daemon
mid-sweep is recovered on restart bit-identically without recomputing
finished work.  Identical ``(spec, trace)`` cells wanted by concurrent
clients are single-flighted through the shared rate cache, so each cell
simulates exactly once regardless of who asked.

Layout:

* :mod:`repro.service.jobs` — persistent job model (manifests, journals,
  recovery);
* :mod:`repro.service.scheduler` — the multi-tenant supervised pool
  (fairness, priorities, admission control, timeouts, drain, dedupe);
* :mod:`repro.service.server` — the socket daemon (streaming, SIGTERM
  drain, fault sites ``service.accept`` / ``service.dispatch`` /
  ``service.persist``);
* :mod:`repro.service.client` — the thin client library
  (backpressure retries, restart-surviving ``wait``);
* :mod:`repro.service.protocol` — the JSON-line wire format.
"""

from repro.service.client import ServiceBusy, ServiceClient, ServiceError
from repro.service.jobs import BenchmarkRef, JobStore, ServiceJob
from repro.service.protocol import default_socket_path
from repro.service.scheduler import QueueFull, SchedulerStopped, SweepScheduler
from repro.service.server import SweepServer, serve

__all__ = [
    "BenchmarkRef",
    "JobStore",
    "ServiceJob",
    "SweepScheduler",
    "SweepServer",
    "ServiceClient",
    "ServiceBusy",
    "ServiceError",
    "QueueFull",
    "SchedulerStopped",
    "default_socket_path",
    "serve",
]
