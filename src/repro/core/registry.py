"""Predictor factory and spec strings.

Experiments, benchmarks and the CLI refer to predictor configurations by
compact *spec strings* of the form ``scheme:key=value,key=value``, e.g.::

    bimode:dir=10,hist=10,choice=10
    gshare:index=12,hist=8
    gas:hist=6,select=4

:func:`make_predictor` builds a predictor from a spec (or from a scheme
name plus keyword arguments).  The registry doubles as the cache key
namespace: a spec string uniquely determines a predictor configuration,
so ``(spec, trace-id)`` identifies a simulation result.

Size-class helpers :func:`gshare_at_kb` and :func:`bimode_at_kb`
translate the paper's cost axis (KB of 2-bit counters, Figures 2–4)
into concrete geometries.
"""

from __future__ import annotations

import difflib
from typing import Callable, Dict

from repro.core.bimode import BiModePredictor
from repro.core.hardware import HardwareBudget
from repro.core.interfaces import BranchPredictor
from repro.predictors.agree import AgreePredictor
from repro.predictors.bimodal import BimodalPredictor
from repro.predictors.filtered import BiasFilterPredictor
from repro.predictors.gshare import GSharePredictor
from repro.predictors.gskew import GSkewPredictor
from repro.predictors.static_ import (
    AlwaysNotTakenPredictor,
    AlwaysTakenPredictor,
    BTFNTPredictor,
)
from repro.predictors.tournament import TournamentPredictor
from repro.predictors.trimode import TriModePredictor
from repro.predictors.perceptron import PerceptronPredictor
from repro.predictors.twolevel import (
    GAgPredictor,
    GApPredictor,
    GAsPredictor,
    GSelectPredictor,
    PAgPredictor,
    PApPredictor,
    PAsPredictor,
)
from repro.predictors.yags import YagsPredictor

__all__ = [
    "available_schemes",
    "make_predictor",
    "parse_spec",
    "gshare_at_kb",
    "bimode_at_kb",
]


def _build_bimode(**kw) -> BiModePredictor:
    return BiModePredictor(
        direction_index_bits=int(kw.pop("dir")),
        history_bits=int(kw.pop("hist")) if "hist" in kw else None,
        choice_index_bits=int(kw.pop("choice")) if "choice" in kw else None,
        full_update=bool(int(kw.pop("full_update", 0))),
        choice_uses_history=bool(int(kw.pop("choice_hist", 0))),
        **kw,
    )


def _build_gshare(**kw) -> GSharePredictor:
    return GSharePredictor(
        index_bits=int(kw.pop("index")),
        history_bits=int(kw.pop("hist")) if "hist" in kw else None,
        **kw,
    )


def _build_bimodal(**kw) -> BimodalPredictor:
    return BimodalPredictor(
        index_bits=int(kw.pop("index")),
        counter_bits=int(kw.pop("bits", 2)),
        **kw,
    )


def _build_gag(**kw) -> GAgPredictor:
    return GAgPredictor(history_bits=int(kw.pop("hist")), **kw)


def _build_gas(**kw) -> GAsPredictor:
    return GAsPredictor(
        history_bits=int(kw.pop("hist")), pht_select_bits=int(kw.pop("select")), **kw
    )


def _build_gselect(**kw) -> GSelectPredictor:
    return GSelectPredictor(
        history_bits=int(kw.pop("hist")), pht_select_bits=int(kw.pop("addr")), **kw
    )


def _build_pag(**kw) -> PAgPredictor:
    return PAgPredictor(
        history_bits=int(kw.pop("hist")), bht_index_bits=int(kw.pop("bht")), **kw
    )


def _build_pas(**kw) -> PAsPredictor:
    return PAsPredictor(
        history_bits=int(kw.pop("hist")),
        pht_select_bits=int(kw.pop("select")),
        bht_index_bits=int(kw.pop("bht")),
        **kw,
    )


def _build_gap(**kw) -> GApPredictor:
    return GApPredictor(
        history_bits=int(kw.pop("hist")), address_bits=int(kw.pop("addr", 8)), **kw
    )


def _build_pap(**kw) -> PApPredictor:
    return PApPredictor(
        history_bits=int(kw.pop("hist")),
        address_bits=int(kw.pop("addr")),
        bht_index_bits=int(kw.pop("bht")),
        **kw,
    )


def _build_perceptron(**kw) -> PerceptronPredictor:
    return PerceptronPredictor(
        index_bits=int(kw.pop("index")),
        history_bits=int(kw.pop("hist", 12)),
        weight_bits=int(kw.pop("w", 8)),
        **kw,
    )


def _build_agree(**kw) -> AgreePredictor:
    return AgreePredictor(
        index_bits=int(kw.pop("index")),
        history_bits=int(kw.pop("hist")) if "hist" in kw else None,
        bias_index_bits=int(kw.pop("bias")) if "bias" in kw else None,
        **kw,
    )


def _build_gskew(**kw) -> GSkewPredictor:
    return GSkewPredictor(
        bank_index_bits=int(kw.pop("bank")),
        history_bits=int(kw.pop("hist")) if "hist" in kw else None,
        update_policy=kw.pop("update", "enhanced"),
        **kw,
    )


def _build_yags(**kw) -> YagsPredictor:
    return YagsPredictor(
        choice_index_bits=int(kw.pop("choice")),
        cache_index_bits=int(kw.pop("cache")),
        history_bits=int(kw.pop("hist")) if "hist" in kw else None,
        tag_bits=int(kw.pop("tag", 6)),
        **kw,
    )


def _build_biasfilter(**kw) -> BiasFilterPredictor:
    """Spec form wraps a sub-predictor selected by ``sub=`` (gshare by
    default): ``biasfilter:table=12,run=3,sub_index=12,sub_hist=12`` or
    ``biasfilter:table=12,run=3,sub=bimodal,sub_index=12``."""
    sub_scheme = kw.pop("sub", "gshare")
    if sub_scheme == "gshare":
        sub: BranchPredictor = GSharePredictor(
            index_bits=int(kw.pop("sub_index")),
            history_bits=int(kw.pop("sub_hist")) if "sub_hist" in kw else None,
        )
    elif sub_scheme == "bimodal":
        sub = BimodalPredictor(index_bits=int(kw.pop("sub_index")))
    elif sub_scheme == "bimode":
        sub = BiModePredictor(
            direction_index_bits=int(kw.pop("sub_index")),
            history_bits=int(kw.pop("sub_hist")) if "sub_hist" in kw else None,
        )
    else:
        raise ValueError(
            f"unknown biasfilter sub-predictor {sub_scheme!r} "
            "(supported: gshare, bimodal, bimode)"
        )
    return BiasFilterPredictor(
        sub_predictor=sub,
        filter_index_bits=int(kw.pop("table", 12)),
        run_bits=int(kw.pop("run", 3)),
        **kw,
    )


def _build_trimode(**kw) -> TriModePredictor:
    return TriModePredictor(
        direction_index_bits=int(kw.pop("dir")),
        history_bits=int(kw.pop("hist")) if "hist" in kw else None,
        choice_index_bits=int(kw.pop("choice")) if "choice" in kw else None,
        **kw,
    )


def _build_tournament(**kw) -> TournamentPredictor:
    """Spec form builds the McFarling bimodal + gshare pairing."""
    index = int(kw.pop("index"))
    meta = int(kw.pop("meta", index))
    return TournamentPredictor(
        component_a=BimodalPredictor(index_bits=index),
        component_b=GSharePredictor(index_bits=index),
        meta_index_bits=meta,
        **kw,
    )


_REGISTRY: Dict[str, Callable[..., BranchPredictor]] = {
    "bimode": _build_bimode,
    "gshare": _build_gshare,
    "bimodal": _build_bimodal,
    "gag": _build_gag,
    "gas": _build_gas,
    "gap": _build_gap,
    "gselect": _build_gselect,
    "pag": _build_pag,
    "pas": _build_pas,
    "pap": _build_pap,
    "perceptron": _build_perceptron,
    "agree": _build_agree,
    "gskew": _build_gskew,
    "yags": _build_yags,
    "tournament": _build_tournament,
    "trimode": _build_trimode,
    "biasfilter": _build_biasfilter,
    "always-taken": lambda **kw: AlwaysTakenPredictor(**kw),
    "always-not-taken": lambda **kw: AlwaysNotTakenPredictor(**kw),
    "btfnt": lambda **kw: BTFNTPredictor(**kw),
}


def available_schemes() -> list:
    """Sorted list of registered scheme names."""
    return sorted(_REGISTRY)


def parse_spec(spec: str):
    """Split ``"scheme:k=v,k=v"`` into ``(scheme, {k: v})`` (values as strings)."""
    scheme, _, argstr = spec.partition(":")
    scheme = scheme.strip()
    if not scheme:
        raise ValueError(f"empty scheme in spec {spec!r}")
    kwargs = {}
    if argstr.strip():
        for item in argstr.split(","):
            key, sep, value = item.partition("=")
            if not sep:
                raise ValueError(f"malformed option {item!r} in spec {spec!r}")
            kwargs[key.strip()] = value.strip()
    return scheme, kwargs


def make_predictor(spec_or_scheme: str, **kwargs) -> BranchPredictor:
    """Build a predictor from a spec string or scheme name + kwargs.

    Any problem with the spec — unknown scheme, missing or unknown
    option, out-of-range geometry — raises :class:`ValueError` naming
    the offending spec string, so a bad spec buried in a sweep's
    configuration list is identifiable from the message alone.

    >>> make_predictor("gshare:index=10,hist=8").name
    'gshare:index=10,hist=8'
    >>> make_predictor("bimode", dir=9).bank_size
    512
    """
    if ":" in spec_or_scheme and not kwargs:
        spec = spec_or_scheme
        scheme, kwargs = parse_spec(spec_or_scheme)
    elif kwargs:
        scheme = spec_or_scheme
        spec = f"{scheme}:" + ",".join(f"{k}={v}" for k, v in kwargs.items())
    else:
        scheme = spec = spec_or_scheme
    builder = _REGISTRY.get(scheme)
    if builder is None:
        close = difflib.get_close_matches(scheme, available_schemes(), n=1)
        hint = f" (did you mean {close[0]!r}?)" if close else ""
        raise ValueError(
            f"unknown predictor scheme {scheme!r} in spec {spec!r}{hint}; "
            f"available: {available_schemes()}"
        )
    try:
        return builder(**kwargs)
    except KeyError as exc:
        raise ValueError(
            f"invalid spec {spec!r}: missing required option {exc.args[0]!r}"
        ) from exc
    except TypeError as exc:
        raise ValueError(f"invalid spec {spec!r}: {exc}") from exc
    except ValueError as exc:
        raise ValueError(f"invalid spec {spec!r}: {exc}") from exc


# -- paper size-axis helpers -----------------------------------------------------


def gshare_at_kb(kbytes: float, history_bits: int | None = None) -> GSharePredictor:
    """gshare consuming ``kbytes`` KB of 2-bit counters.

    ``history_bits=None`` gives the single-PHT configuration
    (gshare.1PHT); smaller values give the multi-PHT family.
    """
    index_bits = HardwareBudget(kbytes).index_bits
    return GSharePredictor(index_bits=index_bits, history_bits=history_bits)


def bimode_at_kb(
    kbytes: float, history_bits: int | None = None
) -> BiModePredictor:
    """Bi-mode whose *direction banks* consume ``kbytes`` KB of counters.

    Each bank gets half the budget; the choice predictor adds another
    half-budget table on top, reproducing the paper's "naturally 1.5x
    the next smaller gshare" cost (Section 3.3).  The returned
    predictor's true cost is ``1.5 * kbytes`` KB — report
    ``predictor.size_bytes()`` when plotting.
    """
    index_bits = HardwareBudget(kbytes).index_bits
    if index_bits < 1:
        raise ValueError(f"{kbytes} KB is too small to split into two banks")
    return BiModePredictor(
        direction_index_bits=index_bits - 1,
        history_bits=min(history_bits, index_bits - 1) if history_bits is not None else None,
    )
