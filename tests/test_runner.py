"""Unit tests for the cached multi-run orchestration."""

import json

import pytest

from repro.core.registry import make_predictor
from repro.sim.engine import run
from repro.sim.runner import (
    ResultCache,
    evaluate,
    evaluate_matrix,
    evaluate_specs,
    trace_key,
)
from tests.conftest import make_toy_trace


@pytest.fixture
def trace():
    t = make_toy_trace(length=800)
    t.metadata["profile_seed"] = 0
    return t


class TestTraceKey:
    def test_includes_name_length_seed(self, trace):
        assert trace_key(trace) == "toy-n800-s0"

    def test_anonymous_trace(self):
        t = make_toy_trace(length=10)
        t.name = ""
        assert trace_key(t).startswith("anon-")

    def test_seedless_traces_keyed_by_content(self):
        """Two different traces of equal name and length must not share
        a cache cell when neither carries a profile seed."""
        a = make_toy_trace(length=300, seed=1)
        b = make_toy_trace(length=300, seed=2)
        assert trace_key(a) != trace_key(b)
        # but the key is a pure function of content
        assert trace_key(a) == trace_key(make_toy_trace(length=300, seed=1))

    def test_seeded_key_ignores_content_hash(self, trace):
        assert trace_key(trace).endswith("-s0")


class TestResultCacheBatching:
    def test_put_many_single_write(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put_many("tkey", {"a": 0.1, "b": 0.2})
        data = json.loads((tmp_path / "results" / "tkey.json").read_text())
        assert data == {"a": 0.1, "b": 0.2}

    def test_put_many_empty_is_noop(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put_many("tkey", {})
        assert not (tmp_path / "results").exists()

    def test_deferred_batches_writes(self, tmp_path):
        cache = ResultCache(tmp_path)
        with cache.deferred():
            cache.put("a", "tkey", 0.1)
            cache.put("b", "tkey", 0.2)
            assert not (tmp_path / "results" / "tkey.json").exists()
        data = json.loads((tmp_path / "results" / "tkey.json").read_text())
        assert data == {"a": 0.1, "b": 0.2}

    def test_deferred_is_reentrant(self, tmp_path):
        cache = ResultCache(tmp_path)
        with cache.deferred():
            with cache.deferred():
                cache.put("a", "tkey", 0.1)
            # inner exit must not flush — only the outermost block does
            assert not (tmp_path / "results" / "tkey.json").exists()
        assert (tmp_path / "results" / "tkey.json").exists()

    def test_flush_leaves_no_temp_files(self, tmp_path):
        cache = ResultCache(tmp_path)
        with cache.deferred():
            cache.put_many("t1", {"a": 0.1})
            cache.put_many("t2", {"b": 0.2})
        names = sorted(p.name for p in (tmp_path / "results").iterdir())
        assert names == ["t1.json", "t2.json"]

    def test_flush_preserves_existing_cells(self, tmp_path):
        ResultCache(tmp_path).put_many("tkey", {"old": 0.9})
        cache = ResultCache(tmp_path)
        cache.put_many("tkey", {"new": 0.1})
        data = json.loads((tmp_path / "results" / "tkey.json").read_text())
        assert data == {"new": 0.1, "old": 0.9}


class TestEvaluateSpecs:
    def test_batched_gshare_matches_scalar_engine(self, trace):
        specs = [
            "gshare:index=7,hist=7",
            "gshare:index=7,hist=0",
            "gshare:index=5,hist=3",
            "bimode:dir=6,hist=6,choice=6",
            "bimodal:index=6",
        ]
        rates = evaluate_specs(specs, trace)
        for spec in specs:
            assert rates[spec] == run(make_predictor(spec), trace).misprediction_rate

    def test_preserves_input_order_and_duplicates(self, trace):
        specs = ["gshare:index=5,hist=5", "bimodal:index=5", "gshare:index=5,hist=5"]
        rates = evaluate_specs(specs, trace)
        assert list(rates) == list(dict.fromkeys(specs))

    def test_one_cache_write_for_many_specs(self, trace, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path)
        writes = []
        original = cache.flush

        def counting_flush():
            writes.append(1)
            original()

        monkeypatch.setattr(cache, "flush", counting_flush)
        evaluate_specs(
            ["gshare:index=6,hist=6", "gshare:index=6,hist=2", "bimodal:index=6"],
            trace,
            cache=cache,
        )
        assert len(writes) == 1

    def test_mixed_cached_and_fresh(self, trace, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("gshare:index=6,hist=6", trace_key(trace), 0.777)
        rates = evaluate_specs(
            ["gshare:index=6,hist=6", "gshare:index=6,hist=1"], trace, cache=cache
        )
        assert rates["gshare:index=6,hist=6"] == 0.777
        fresh = run(
            make_predictor("gshare:index=6,hist=1"), trace
        ).misprediction_rate
        assert rates["gshare:index=6,hist=1"] == fresh


class TestResultCache:
    def test_put_get(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("gshare:index=8,hist=8", "toy-n800-s0", 0.125)
        assert cache.get("gshare:index=8,hist=8", "toy-n800-s0") == 0.125

    def test_miss_returns_none(self, tmp_path):
        assert ResultCache(tmp_path).get("x", "y") is None

    def test_persists_across_instances(self, tmp_path):
        ResultCache(tmp_path).put("spec", "tkey", 0.5)
        assert ResultCache(tmp_path).get("spec", "tkey") == 0.5

    def test_corrupt_file_treated_as_empty(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("spec", "tkey", 0.5)
        (tmp_path / "results" / "tkey.json").write_text("{not json")
        assert ResultCache(tmp_path).get("spec", "tkey") is None

    def test_corrupt_file_quarantined_not_deleted(self, tmp_path):
        import os

        cache = ResultCache(tmp_path)
        cache.put("spec", "tkey", 0.5)
        path = tmp_path / "results" / "tkey.json"
        path.write_text("{not json")
        assert ResultCache(tmp_path).get("spec", "tkey") is None
        assert not path.exists()
        quarantined = path.with_name(f"tkey.json.corrupt-{os.getpid()}")
        assert quarantined.read_text() == "{not json"
        # the cache is usable again immediately
        fresh = ResultCache(tmp_path)
        fresh.put("spec", "tkey", 0.25)
        assert ResultCache(tmp_path).get("spec", "tkey") == 0.25

    def test_non_object_json_quarantined(self, tmp_path):
        (tmp_path / "results").mkdir(parents=True)
        (tmp_path / "results" / "tkey.json").write_text("[0.5, 0.6]")
        assert ResultCache(tmp_path).get("spec", "tkey") is None
        assert list((tmp_path / "results").glob("tkey.json.corrupt-*"))

    @pytest.mark.parametrize(
        "bad", [-0.1, 1.5, "fast", True, None, [0.5], float("nan")]
    )
    def test_invalid_cells_dropped(self, tmp_path, bad):
        (tmp_path / "results").mkdir(parents=True)
        payload = {"good": 0.25, "bad": bad}
        (tmp_path / "results" / "tkey.json").write_text(
            json.dumps(payload, allow_nan=True)
        )
        cache = ResultCache(tmp_path)
        assert cache.get("good", "tkey") == 0.25
        assert cache.get("bad", "tkey") is None

    def test_flush_failure_keeps_other_tables(self, tmp_path):
        cache = ResultCache(tmp_path)
        with cache.deferred():
            cache.put("spec", "ok", 0.1)
            cache.put("spec", "blocked", 0.2)
            # a directory squatting on the table path makes os.replace fail
            (tmp_path / "results").mkdir(parents=True, exist_ok=True)
            (tmp_path / "results" / "blocked.json").mkdir()
        # the deferred exit flushed: the healthy table landed …
        assert ResultCache(tmp_path).get("spec", "ok") == 0.1
        # … the blocked one failed but stayed dirty for a later retry
        assert cache._dirty == {"blocked"}
        assert cache.get("spec", "blocked") == 0.2  # still served from memory
        (tmp_path / "results" / "blocked.json").rmdir()
        assert cache.flush() == []
        assert ResultCache(tmp_path).get("spec", "blocked") == 0.2

    def test_flush_failure_reports_and_returns_keys(self, tmp_path):
        cache = ResultCache(tmp_path)
        (tmp_path / "results").mkdir(parents=True)
        (tmp_path / "results" / "t1.json").mkdir()
        with cache.deferred():
            cache.put("spec", "t1", 0.5)
        failed = cache.flush()  # retry outside the deferred block
        assert failed == ["t1"]
        from repro import health

        assert any(
            e.severity == "error" for e in health.events(component="result-cache")
        )
        health.clear()

    def test_flush_failure_leaves_no_temp_files(self, tmp_path):
        cache = ResultCache(tmp_path)
        (tmp_path / "results").mkdir(parents=True)
        (tmp_path / "results" / "t1.json").mkdir()
        with cache.deferred():
            cache.put("spec", "t1", 0.5)
        leftovers = [
            p for p in (tmp_path / "results").iterdir() if ".tmp" in p.name
        ]
        assert leftovers == []

    def test_one_file_per_trace(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("a", "t1", 0.1)
        cache.put("b", "t1", 0.2)
        cache.put("a", "t2", 0.3)
        files = sorted(p.name for p in (tmp_path / "results").iterdir())
        assert files == ["t1.json", "t2.json"]
        data = json.loads((tmp_path / "results" / "t1.json").read_text())
        assert data == {"a": 0.1, "b": 0.2}


class TestEvaluate:
    def test_computes_rate(self, trace):
        rate = evaluate("gshare:index=8,hist=8", trace)
        assert 0.0 <= rate <= 1.0

    def test_uses_cache(self, trace, tmp_path):
        cache = ResultCache(tmp_path)
        first = evaluate("gshare:index=8,hist=8", trace, cache=cache)
        # poison the cache to prove the second call reads it
        cache.put("gshare:index=8,hist=8", trace_key(trace), 0.999)
        second = evaluate("gshare:index=8,hist=8", trace, cache=cache)
        assert second == 0.999
        assert first != second

    def test_matrix(self, trace, tmp_path):
        other = make_toy_trace(length=400, seed=9)
        other.name = "other"
        matrix = evaluate_matrix(
            ["bimodal:index=6", "gshare:index=6,hist=6"],
            {"toy": trace, "other": other},
            cache=ResultCache(tmp_path),
        )
        assert set(matrix) == {"bimodal:index=6", "gshare:index=6,hist=6"}
        assert set(matrix["bimodal:index=6"]) == {"toy", "other"}

    def test_matrix_progress_callback(self, trace):
        calls = []
        evaluate_matrix(
            ["bimodal:index=4"],
            {"toy": trace},
            progress=lambda spec, bench, rate: calls.append((spec, bench)),
        )
        assert calls == [("bimodal:index=4", "toy")]
