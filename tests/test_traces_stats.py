"""Unit tests for trace statistics (Table 2 machinery)."""

import numpy as np
import pytest

from repro.traces.record import BranchTrace
from repro.traces.stats import (
    bias_distribution,
    compute_stats,
    per_branch_bias,
)


def build(pcs, outcomes, name="t"):
    return BranchTrace(pcs=np.array(pcs), outcomes=np.array(outcomes), name=name)


class TestPerBranchBias:
    def test_counts(self):
        t = build([1, 1, 1, 2], [True, True, False, False])
        bias = per_branch_bias(t)
        assert bias[1] == (3, 2)
        assert bias[2] == (1, 0)

    def test_empty(self):
        assert per_branch_bias(BranchTrace.empty()) == {}


class TestComputeStats:
    def test_counts_and_rate(self):
        t = build([1, 2, 1], [True, False, True])
        stats = compute_stats(t)
        assert stats.static_branches == 2
        assert stats.dynamic_branches == 3
        assert stats.taken_rate == pytest.approx(2 / 3)

    def test_strong_bias_classification(self):
        # branch 1: 10/10 taken (ST); branch 2: 0/10 (SNT); branch 3: 5/10 (WB)
        pcs = [1] * 10 + [2] * 10 + [3] * 10
        outcomes = [True] * 10 + [False] * 10 + [True, False] * 5
        stats = compute_stats(build(pcs, outcomes))
        assert stats.strongly_taken_fraction == pytest.approx(1 / 3)
        assert stats.strongly_not_taken_fraction == pytest.approx(1 / 3)
        assert stats.weakly_biased_fraction == pytest.approx(1 / 3)

    def test_threshold_is_inclusive(self):
        # exactly 90% taken is ST by the paper's definition
        pcs = [1] * 10
        outcomes = [True] * 9 + [False]
        stats = compute_stats(build(pcs, outcomes))
        assert stats.strongly_taken_fraction == 1.0

    def test_custom_threshold(self):
        pcs = [1] * 10
        outcomes = [True] * 8 + [False] * 2
        assert compute_stats(build(pcs, outcomes), bias_threshold=0.8).strongly_taken_fraction == 1.0
        assert compute_stats(build(pcs, outcomes), bias_threshold=0.9).strongly_taken_fraction == 0.0

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            compute_stats(build([1], [True]), bias_threshold=0.4)

    def test_empty_trace(self):
        stats = compute_stats(BranchTrace.empty("e"))
        assert stats.dynamic_branches == 0
        assert stats.strongly_biased_fraction == 0.0

    def test_name_carried(self):
        assert compute_stats(build([1], [True], name="gcc")).name == "gcc"


class TestBiasDistribution:
    def test_sums_to_one(self):
        pcs = [1] * 10 + [2] * 30
        outcomes = [True] * 10 + [False] * 30
        dist = bias_distribution(build(pcs, outcomes))
        assert sum(dist) == pytest.approx(1.0)

    def test_bins_are_dynamic_weighted(self):
        pcs = [1] * 10 + [2] * 30
        outcomes = [True] * 10 + [False] * 30
        dist = bias_distribution(build(pcs, outcomes), num_bins=10)
        assert dist[9] == pytest.approx(0.25)  # branch 1: rate 1.0
        assert dist[0] == pytest.approx(0.75)  # branch 2: rate 0.0

    def test_rate_one_lands_in_last_bin(self):
        dist = bias_distribution(build([1, 1], [True, True]), num_bins=4)
        assert dist[3] == 1.0

    def test_empty(self):
        assert bias_distribution(BranchTrace.empty(), num_bins=5) == [0.0] * 5

    def test_rejects_bad_bins(self):
        with pytest.raises(ValueError):
            bias_distribution(BranchTrace.empty(), num_bins=0)


class TestOnGeneratedWorkload:
    def test_workload_has_sensible_bias_mix(self, small_workload):
        stats = compute_stats(small_workload)
        # a majority of the dynamic stream should come from strongly
        # biased statics, per [Chang94]'s ~50% observation
        assert 0.3 < stats.strongly_biased_fraction < 0.95
        assert 0.3 < stats.taken_rate < 0.8
