"""Scheme-agnostic kernel registry: spec -> fastest bit-exact engine.

Before this layer each fast path was a special case: gshare had the
counting-sort lanes and fused C arena (:mod:`repro.sim.batch`),
bi-mode had its compiled step loop (:mod:`repro.sim.batch_bimode`),
and the other ~18 registered schemes ran the scalar engine everywhere.
The registry makes kernel dispatch a lookup:

``kernel_for_spec(spec)`` resolves any predictor spec to a *kernel
kind* plus a parsed lane description.  Kinds are:

* ``"gshare"`` / ``"bimode"`` — the pre-existing fused family kernels,
  unchanged and still owning their dedicated health components;
* one kind per **ported scheme** — bimodal, the two-level family
  (gag/gas/gap/gselect/pag/pas/pap), agree, gskew, tournament,
  tri-mode, YAGS, and the second wave: perceptron, the bias filter
  (over its gshare/bimodal sub-predictors) and the three static
  schemes — executed by the lane kernels of :mod:`repro.sim.lanes`;
* ``"scalar"`` — any spec whose knobs the lane parser rejects
  (out-of-range geometry, unknown options, a bias-filter
  sub-predictor without a kernel lane), run per-cell through the
  scalar engine.  Since the second wave, :data:`SCALAR_ONLY` is empty:
  every registered scheme has a batch kernel, and the meta-test
  asserting the set stays empty keeps it that way.

``family_rates(kind, specs, lanes, trace)`` evaluates one family,
choosing the engine per the ``REPRO_KERNEL`` pin and reporting every
dispatch decision through :mod:`repro.health` (component
``"<kind>-kernel"``).

Dispatch
--------
``REPRO_KERNEL`` mirrors the per-scheme ``REPRO_BIMODE_KERNEL`` /
``REPRO_DETAILED_KERNEL`` pins, but applies to every scheme at once:

* ``auto`` (default) — compiled loops when a C compiler is available,
  otherwise the numpy lane kernels (degradation health-reported);
* ``c`` — compiled loops or ``RuntimeError`` (no silent fallback);
* ``numpy`` — the numpy lane kernels; schemes whose update feeds
  predictor state back into training (e-gskew, tri-mode, YAGS, the
  perceptron) have no counter-major form and degrade to the scalar
  engine, health-reported;
* ``scalar`` — everything through the scalar engine (the fused planner
  routes every spec to the scalar family, with the pin as the reason).

Precedence: a scheme-specific pin (``REPRO_BIMODE_KERNEL``) and an
explicit ``REPRO_FUSED=on`` override ``REPRO_KERNEL`` for the scheme
or family they name.

Engine tiers
------------
``registered_schemes()`` maps every scheme name of
:func:`repro.core.registry.available_schemes` to its declared tier:

* ``"fused"`` — dedicated single-pass family kernel (gshare, bimode);
* ``"lane"`` — compiled loop + numpy form (counter-major scans, the
  bias-filter decomposition, the statics' vectorized one-shots);
* ``"cloop"`` — compiled per-access loop only (scalar fallback when no
  compiler): e-gskew's partial update, tri-mode, YAGS, perceptron;
* ``"scalar"`` — the :data:`SCALAR_ONLY` allowlist, empty since the
  second wave.

The verification suite (``tests/test_kernels.py``) is generated from
this mapping, so a scheme that registers in ``core/registry.py``
without declaring a tier here — or without oracle and golden coverage —
fails CI by construction.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.sim import _cstep
from repro.sim import lanes as _lanes
from repro.traces.record import BranchTrace

__all__ = [
    "SCALAR_ONLY",
    "BIASFILTER_SUBS",
    "KernelEntry",
    "kernel_mode",
    "kernel_for_spec",
    "spec_for_predictor",
    "registered_schemes",
    "registered_detailed_tiers",
    "family_order",
    "family_rates",
    "family_predictions",
    "family_detailed",
    "planner_vetoes",
]

#: Schemes deliberately left on the scalar engine: empty since the
#: second wave (perceptron + bias filter compiled loops, static
#: one-shot lanes).  A meta-test asserts it stays empty, so a future
#: scheme cannot quietly register without a batch kernel.
SCALAR_ONLY = frozenset()

#: Sub-predictor schemes the bias-filter kernel executes in-lane; a
#: ``biasfilter:...,sub=<other>`` spec runs scalar with an explicit
#: planner veto (:func:`planner_vetoes`).
BIASFILTER_SUBS = _lanes.BIASFILTER_SUBS


@dataclass(frozen=True)
class KernelEntry:
    """One ported scheme: how to parse its specs and run its lanes."""

    scheme: str
    tier: str  # "lane" (c+numpy) | "cloop" (c only, scalar fallback)
    lane_for_spec: Callable[[str], Optional[object]]
    predictions: Callable[..., np.ndarray]
    numpy_ok: Callable[[object], bool]  # lane -> numpy engine exists?
    #: Optional direct rate computation (lane, trace) -> float for
    #: schemes whose misprediction count reduces without materializing
    #: predictions (the statics); must be bit-identical to the
    #: prediction path.
    rates: Optional[Callable[[object, BranchTrace], float]] = None
    #: Section-4 attribution kernel: ``(lane, trace, engine, hist_cache)
    #: -> (predictions, counter_ids)``, bit-identical to the scalar
    #: ``simulate_detailed`` loop.  The detailed tier shares the
    #: prediction tier's engine matrix (``numpy_ok`` gates both) — the
    #: completeness meta-test asserts no ported scheme leaves this
    #: ``None``.
    detailed: Optional[Callable[..., Tuple[np.ndarray, np.ndarray]]] = None


def _always(lane: object) -> bool:
    return True


def _never(lane: object) -> bool:
    return False


_TWOLEVEL = {
    scheme: KernelEntry(
        scheme=scheme,
        tier="lane",
        lane_for_spec=_lanes.twolevel_lane_for_spec,
        predictions=_lanes.twolevel_predictions,
        numpy_ok=_always,
        detailed=_lanes.twolevel_detailed,
    )
    for scheme in ("gag", "gas", "gap", "gselect", "pag", "pas", "pap")
}

#: The ported wave, in planner/display order.
PORTED: Dict[str, KernelEntry] = {
    "bimodal": KernelEntry(
        "bimodal",
        "lane",
        _lanes.bimodal_lane_for_spec,
        _lanes.bimodal_predictions,
        _always,
        detailed=_lanes.bimodal_detailed,
    ),
    **_TWOLEVEL,
    "agree": KernelEntry(
        "agree",
        "lane",
        _lanes.agree_lane_for_spec,
        _lanes.agree_predictions,
        _always,
        detailed=_lanes.agree_detailed,
    ),
    "gskew": KernelEntry(
        "gskew",
        "cloop",
        _lanes.gskew_lane_for_spec,
        _lanes.gskew_predictions,
        # total-update gskew is feedback-free, e-gskew is not
        lambda lane: not lane.enhanced,
        detailed=_lanes.gskew_detailed,
    ),
    "tournament": KernelEntry(
        "tournament",
        "lane",
        _lanes.tournament_lane_for_spec,
        _lanes.tournament_predictions,
        _always,
        detailed=_lanes.tournament_detailed,
    ),
    "trimode": KernelEntry(
        "trimode",
        "cloop",
        _lanes.trimode_lane_for_spec,
        _lanes.trimode_predictions,
        _never,
        detailed=_lanes.trimode_detailed,
    ),
    "yags": KernelEntry(
        "yags",
        "cloop",
        _lanes.yags_lane_for_spec,
        _lanes.yags_predictions,
        _never,
        detailed=_lanes.yags_detailed,
    ),
    # -- second wave: the former SCALAR_ONLY tier -------------------------------
    "perceptron": KernelEntry(
        "perceptron",
        "cloop",
        _lanes.perceptron_lane_for_spec,
        _lanes.perceptron_predictions,
        # the threshold gate reads the trained dot product: training
        # feeds back into training, so no counter-major form exists
        _never,
        detailed=_lanes.perceptron_detailed,
    ),
    "biasfilter": KernelEntry(
        "biasfilter",
        "lane",
        _lanes.biasfilter_lane_for_spec,
        _lanes.biasfilter_predictions,
        _always,
        detailed=_lanes.biasfilter_detailed,
    ),
    **{
        scheme: KernelEntry(
            scheme=scheme,
            tier="lane",
            lane_for_spec=_lanes.static_lane_for_spec,
            predictions=_lanes.static_predictions,
            numpy_ok=_always,
            rates=_lanes.static_rates,
            detailed=_lanes.static_detailed,
        )
        for scheme in ("always-taken", "always-not-taken", "btfnt")
    },
}


def kernel_mode() -> str:
    """The ``REPRO_KERNEL`` pin: ``auto`` (default), ``c``, ``numpy``
    or ``scalar``."""
    mode = os.environ.get("REPRO_KERNEL", "auto").strip().lower() or "auto"
    if mode not in ("auto", "c", "numpy", "scalar"):
        raise ValueError(f"REPRO_KERNEL must be auto/c/numpy/scalar, got {mode!r}")
    return mode


def family_order() -> Tuple[str, ...]:
    """Every family kind, in planner order (fused first, scalar last)."""
    return ("gshare", "bimode", *PORTED, "scalar")


def kernel_for_spec(spec: str) -> Tuple[str, Optional[object]]:
    """Resolve a spec to ``(kind, lane)``; ``("scalar", None)`` when no
    lane kernel covers it.

    Resolution is structural only — the ``REPRO_KERNEL`` pin changes
    which *engine* runs a family, not which family a spec belongs to
    (except ``scalar``, which the planner applies before ever asking).
    A spec whose knobs a lane parser rejects (out-of-range geometry,
    unknown options) falls to scalar so the scalar constructor can
    raise its original, descriptive error.
    """
    scheme = spec.split(":", 1)[0].strip()
    if scheme == "gshare":
        from repro.sim.batch import lane_for_spec

        lane = lane_for_spec(spec)
        if lane is not None:
            return "gshare", lane
    elif scheme == "bimode":
        from repro.sim.batch_bimode import bimode_lane_for_spec

        lane = bimode_lane_for_spec(spec)
        if lane is not None:
            return "bimode", lane
    else:
        entry = PORTED.get(scheme)
        if entry is not None:
            lane = entry.lane_for_spec(spec)
            if lane is not None:
                return scheme, lane
    return "scalar", None


def spec_for_predictor(predictor: object) -> Optional[str]:
    """Reconstruct the canonical spec of a live predictor instance, or
    ``None`` when its configuration has no spec form.

    The detailed-kernel dispatcher receives a *predictor object*, not a
    spec (``engine.run_detailed``'s contract), and predictor ``name``
    strings are display labels, not parseable specs (the bias filter
    brackets its sub-predictor; agree renames its knobs).  Rebuilding
    the spec from the instance's attributes and round-tripping it
    through the lane parsers reuses their geometry validation, so a
    hand-constructed predictor outside a lane's supported range safely
    resolves to the scalar family.
    """
    from repro.core.bimode import BiModePredictor
    from repro.predictors.agree import AgreePredictor
    from repro.predictors.bimodal import BimodalPredictor
    from repro.predictors.filtered import BiasFilterPredictor
    from repro.predictors.gshare import GSharePredictor
    from repro.predictors.gskew import GSkewPredictor
    from repro.predictors.perceptron import PerceptronPredictor
    from repro.predictors.static_ import (
        AlwaysNotTakenPredictor,
        AlwaysTakenPredictor,
        BTFNTPredictor,
    )
    from repro.predictors.tournament import TournamentPredictor
    from repro.predictors.trimode import TriModePredictor
    from repro.predictors.twolevel import TwoLevelPredictor
    from repro.predictors.yags import YagsPredictor

    p = predictor
    if isinstance(p, GSharePredictor):
        return f"gshare:index={p.index_bits},hist={p.history_bits}"
    if isinstance(p, BiModePredictor):
        if not p.full_update or not p.choice_uses_history:
            return None  # ablation variants have no registry spec
        return (
            f"bimode:dir={p.direction_index_bits},hist={p.history_bits},"
            f"choice={p.choice_index_bits}"
        )
    if isinstance(p, BimodalPredictor):
        return f"bimodal:index={p.index_bits},bits={p.table.bits}"
    if isinstance(p, TwoLevelPredictor):
        scheme = type(p).scheme
        knobs = [f"hist={p.history_bits}"]
        if scheme in ("gas", "pas"):
            knobs.append(f"select={p.pht_select_bits}")
        elif scheme in ("gselect", "gap", "pap"):
            knobs.append(f"addr={p.pht_select_bits}")
        if p.per_address:
            knobs.append(f"bht={p.bht.index_bits}")
        return f"{scheme}:" + ",".join(knobs)
    if isinstance(p, AgreePredictor):
        return (
            f"agree:index={p.index_bits},hist={p.history_bits},"
            f"bias={p.bias_index_bits}"
        )
    if isinstance(p, GSkewPredictor):
        return (
            f"gskew:bank={p.bank_index_bits},hist={p.history_bits},"
            f"update={p.update_policy}"
        )
    if isinstance(p, TournamentPredictor):
        a, b = p.component_a, p.component_b
        # the lane models the registry pairing: bimodal + same-geometry
        # gshare at one shared index width
        if (
            isinstance(a, BimodalPredictor)
            and isinstance(b, GSharePredictor)
            and a.table.bits == 2
            and a.index_bits == b.index_bits == b.history_bits
        ):
            return f"tournament:index={a.index_bits},meta={p.meta_index_bits}"
        return None
    if isinstance(p, TriModePredictor):
        return (
            f"trimode:dir={p.direction_index_bits},hist={p.history_bits},"
            f"choice={p.choice_index_bits}"
        )
    if isinstance(p, YagsPredictor):
        return (
            f"yags:choice={p.choice_index_bits},cache={p.cache_index_bits},"
            f"hist={p.history_bits},tag={p.tag_bits}"
        )
    if isinstance(p, PerceptronPredictor):
        return (
            f"perceptron:index={p.index_bits},hist={p.history_bits},"
            f"w={p.weight_bits}"
        )
    if isinstance(p, BiasFilterPredictor):
        sub = p.sub_predictor
        head = f"biasfilter:table={p.filter_index_bits},run={p.run_bits}"
        if isinstance(sub, GSharePredictor):
            return (
                f"{head},sub=gshare,sub_index={sub.index_bits},"
                f"sub_hist={sub.history_bits}"
            )
        if isinstance(sub, BimodalPredictor) and sub.table.bits == 2:
            return f"{head},sub=bimodal,sub_index={sub.index_bits}"
        return None
    if isinstance(p, (AlwaysTakenPredictor, AlwaysNotTakenPredictor)):
        return type(p).scheme
    if isinstance(p, BTFNTPredictor):
        from repro.predictors.static_ import _default_backward_classifier

        # the lane hard-codes the workload convention; a custom
        # backward-classifier has no spec form
        if p._backward is _default_backward_classifier:
            return "btfnt"
        return None
    return None


def registered_schemes() -> Dict[str, str]:
    """Scheme name -> declared kernel tier, for every scheme this
    registry covers.

    The completeness meta-test asserts this spans
    :func:`repro.core.registry.available_schemes`; a newly registered
    scheme missing here fails that test by name.
    """
    tiers: Dict[str, str] = {"gshare": "fused", "bimode": "fused"}
    for scheme, entry in PORTED.items():
        tiers[scheme] = entry.tier
    for scheme in sorted(SCALAR_ONLY):
        tiers[scheme] = "scalar"
    return tiers


def registered_detailed_tiers() -> Dict[str, str]:
    """Scheme name -> Section-4 attribution-kernel tier.

    ``"fused"`` for the dedicated gshare/bimode attribution kernels,
    the prediction tier (``"lane"``/``"cloop"``) for ported schemes
    whose :class:`KernelEntry` carries a ``detailed`` kernel, and
    ``"scalar"`` otherwise.  The completeness meta-test asserts no
    registered scheme maps to ``"scalar"`` — every scheme's detailed
    pipeline must be batched.
    """
    tiers: Dict[str, str] = {"gshare": "fused", "bimode": "fused"}
    for scheme, entry in PORTED.items():
        tiers[scheme] = entry.tier if entry.detailed is not None else "scalar"
    for scheme in sorted(SCALAR_ONLY):
        tiers[scheme] = "scalar"
    return tiers


# -- family evaluation --------------------------------------------------------------


def _resolve_engines(
    entry: KernelEntry, lanes: Sequence[object], mode: str
) -> Tuple[List[str], str, str]:
    """Per-lane engine choice plus ``(expected, fallback_reason)``.

    Follows the ``bimode-kernel`` convention: in ``auto`` the expected
    engine is the compiled loop, so running anything slower surfaces as
    a degradation with the compiler's absence (or the scheme's missing
    numpy form) as the reason.
    """
    compiled = _cstep.available()
    if mode == "c" and not compiled:
        raise RuntimeError(
            "REPRO_KERNEL=c but no compiled driver is available "
            "(no C compiler, or REPRO_NO_CC is set)"
        )
    expected = "c" if mode == "auto" else mode
    engines: List[str] = []
    reasons: List[str] = []
    for lane in lanes:
        if mode == "scalar":
            engines.append("scalar")
        elif mode == "c" or (mode == "auto" and compiled):
            engines.append("c")
        elif entry.numpy_ok(lane):
            engines.append("numpy")
            if mode == "auto":
                reasons.append(_cstep.unavailable_reason() or "")
        else:
            engines.append("scalar")
            reasons.append(
                f"no numpy kernel for {entry.scheme} (sequential update feedback)"
            )
    reason = next((r for r in reasons if r), "")
    return engines, expected, reason


def family_predictions(
    kind: str,
    specs: Sequence[str],
    lanes: Sequence[object],
    trace: BranchTrace,
    mode: Optional[str] = None,
) -> List[np.ndarray]:
    """Per-branch predictions of every lane of one ported family.

    Rows are bit-for-bit what the scalar predictor would emit from
    power-on state; the engine per lane follows ``REPRO_KERNEL`` (or an
    explicit ``mode``), with the dispatch health-reported under
    ``"<kind>-kernel"``.
    """
    from repro import health
    from repro.core.registry import make_predictor
    from repro.sim.engine import run

    entry = PORTED[kind]
    if len(specs) != len(lanes):
        raise ValueError("specs and lanes must be parallel")
    mode = kernel_mode() if mode is None else mode
    engines, expected, reason = _resolve_engines(entry, lanes, mode)
    for engine in dict.fromkeys(engines):
        health.engine_used(
            f"{kind}-kernel",
            engine,
            expected=expected,
            cells=engines.count(engine),
            reason=reason if engine != expected else "",
        )
    hist_cache: Dict[int, np.ndarray] = {}
    out: List[np.ndarray] = []
    for spec, lane, engine in zip(specs, lanes, engines):
        if engine == "scalar":
            result = run(make_predictor(spec), trace)
            out.append(np.asarray(result.predictions, dtype=bool))
        else:
            out.append(entry.predictions(lane, trace, engine, hist_cache))
    return out


def family_detailed(
    kind: str,
    specs: Sequence[str],
    lanes: Sequence[object],
    trace: BranchTrace,
    mode: Optional[str] = None,
) -> List[Tuple[np.ndarray, np.ndarray, int]]:
    """Section-4 attribution of every lane of one ported family.

    Returns ``(predictions, counter_ids, num_counters)`` per lane,
    bit-for-bit what the scalar ``simulate_detailed`` loop would emit
    from power-on state.  Engine choice per lane follows
    ``REPRO_KERNEL`` (or an explicit ``mode``) exactly like
    :func:`family_predictions` — the detailed kernels share the
    prediction kernels' engine matrix — and dispatch is health-reported
    under ``"<kind>-kernel"``.
    """
    from repro import health
    from repro.core.registry import make_predictor

    entry = PORTED[kind]
    if entry.detailed is None:  # pragma: no cover - meta-test keeps this dead
        raise RuntimeError(f"scheme {kind!r} has no detailed attribution kernel")
    if len(specs) != len(lanes):
        raise ValueError("specs and lanes must be parallel")
    mode = kernel_mode() if mode is None else mode
    engines, expected, reason = _resolve_engines(entry, lanes, mode)
    for engine in dict.fromkeys(engines):
        health.engine_used(
            f"{kind}-kernel",
            engine,
            expected=expected,
            cells=engines.count(engine),
            reason=reason if engine != expected else "",
        )
    hist_cache: Dict[int, np.ndarray] = {}
    out: List[Tuple[np.ndarray, np.ndarray, int]] = []
    for spec, lane, engine in zip(specs, lanes, engines):
        if engine == "scalar":
            detailed = make_predictor(spec).simulate_detailed(trace)
            out.append(
                (
                    np.asarray(detailed.result.predictions, dtype=bool),
                    detailed.counter_ids,
                    detailed.num_counters,
                )
            )
        else:
            preds, cids = entry.detailed(lane, trace, engine, hist_cache)
            out.append((preds, cids, _lanes.detailed_num_counters(lane)))
    return out


def family_rates(
    kind: str,
    specs: Sequence[str],
    lanes: Sequence[object],
    trace: BranchTrace,
    mode: Optional[str] = None,
) -> List[float]:
    """Misprediction rate of every lane of one ported family."""
    n = len(trace)
    if n == 0:
        return [0.0 for _ in specs]
    entry = PORTED[kind]
    mode = kernel_mode() if mode is None else mode
    if entry.rates is not None and mode != "scalar":
        # Direct reduction (the statics): no prediction stream is
        # materialized, with the same dispatch reporting as the
        # prediction path.
        from repro import health

        engines, expected, _ = _resolve_engines(entry, lanes, mode)
        for engine in dict.fromkeys(engines):
            health.engine_used(
                f"{kind}-kernel", engine, expected=expected, cells=engines.count(engine)
            )
        return [entry.rates(lane, trace) for lane in lanes]
    outcomes = trace.outcomes
    return [
        int(np.count_nonzero(preds != outcomes)) / n
        for preds in family_predictions(kind, specs, lanes, trace, mode=mode)
    ]


def planner_vetoes(specs: Sequence[str]) -> None:
    """Health-report the explicit kernel vetoes among scalar-routed
    ``specs``.

    The generic "unfusable scheme(s)" degradation names schemes the
    registry has never heard of; a bias filter over an unsupported
    sub-predictor is different — the scheme *is* ported, but the
    requested ``sub=`` has no kernel lane — so the veto is reported by
    name under ``biasfilter-kernel``.
    """
    from repro import health
    from repro.core.registry import parse_spec

    for spec in specs:
        if spec.split(":", 1)[0].strip() != "biasfilter":
            continue
        try:
            _, kwargs = parse_spec(spec)
        except ValueError:
            continue
        sub = kwargs.get("sub", "gshare")
        if sub not in BIASFILTER_SUBS:
            health.engine_used(
                "biasfilter-kernel",
                "scalar",
                expected="c",
                cells=1,
                reason=(
                    f"sub-predictor {sub!r} has no kernel lane "
                    f"(supported: {', '.join(BIASFILTER_SUBS)})"
                ),
            )
