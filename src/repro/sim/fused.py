"""Fused sweep planner: one trace pass evaluates every cell.

A paper sweep aims a *grid* of predictor specs at each benchmark trace
— Figure 2/3/4 together evaluate a hundred-plus configurations per
trace — and before this module every cell replayed the shared trace
independently: O(specs x trace) work for what is structurally O(trace)
of streaming plus O(specs) of reduction.  The planner closes that gap.

Planner model
-------------
``plan_families`` groups a spec grid into **families** by shared
precomputation:

* **gshare** — every plain ``gshare:index=I,hist=H`` spec.  All lanes
  observe the same global-history contents (only masked widths differ)
  and index with the same ``(pc & imask) ^ (h & hmask)`` form, so one
  64-bit history register and one pass over the raw ``(pc, outcome)``
  stream serves the whole family
  (:func:`repro.sim.batch.gshare_family_rates`).
* **bimode** — every bi-mode spec, including the ``full_update`` /
  ``choice_hist`` ablation variants: the same shared-register argument
  holds for both of its index streams
  (:func:`repro.sim.batch_bimode.bimode_family_rates`).
* **scalar** — anything else (1-bit PHTs, static schemes, ...).  These
  run per-cell through the scalar engine; falling off the fused path is
  reported as a health degradation so the CLI's coalesced summary shows
  exactly which schemes did not fuse.

Families split only on *kind*: two gshare specs never land in separate
families, because nothing about them prevents sharing the pass.  The
family evaluators reduce to per-spec misprediction rates in-loop, so
journals and rate caches keep their per-cell granularity unchanged.

Dispatch
--------
``REPRO_FUSED`` selects the engine per the ``REPRO_*_KERNEL`` pattern:

* ``auto`` (default) — fused when the compiled step driver
  (:mod:`repro.sim._cstep`) is available, otherwise the pre-existing
  per-trace batched kernels, with the fallback health-reported;
* ``on`` — always fused; without a compiler the family evaluators use
  their stacked-numpy fallbacks (health-reported);
* ``off`` — the legacy per-trace batched path, unconditionally.

Every path is bit-identical; the equivalence suite and the
differential oracle assert it cell by cell.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.sim.batch import (
    gshare_family_rates,
    gshare_lane_rates,
    lane_for_spec,
)
from repro.sim.batch_bimode import (
    bimode_family_rates,
    bimode_lane_for_spec,
    bimode_lane_rates,
)
from repro.traces.record import BranchTrace

__all__ = [
    "SpecFamily",
    "plan_families",
    "fused_mode",
    "fused_active",
    "family_rates",
]


@dataclass(frozen=True)
class SpecFamily:
    """One group of specs sharing a fused evaluation pass."""

    kind: str  # "gshare" | "bimode" | "scalar"
    specs: Tuple[str, ...]
    lanes: Tuple[object, ...]  # parallel to specs; None for scalar

    def __post_init__(self) -> None:
        if self.kind not in ("gshare", "bimode", "scalar"):
            raise ValueError(f"unknown family kind {self.kind!r}")
        if len(self.specs) != len(self.lanes):
            raise ValueError("specs and lanes must be parallel")

    def __len__(self) -> int:
        return len(self.specs)


def plan_families(specs: Sequence[str]) -> List[SpecFamily]:
    """Group a spec grid into fused families.

    Duplicate specs collapse to one lane (the grid's answer is the same
    cell); order within a family follows first appearance.  Returns
    only non-empty families, gshare first, scalar last.
    """
    groups: Dict[str, List[Tuple[str, object]]] = {
        "gshare": [],
        "bimode": [],
        "scalar": [],
    }
    for spec in dict.fromkeys(specs):
        glane = lane_for_spec(spec)
        if glane is not None:
            groups["gshare"].append((spec, glane))
            continue
        blane = bimode_lane_for_spec(spec)
        if blane is not None:
            groups["bimode"].append((spec, blane))
            continue
        groups["scalar"].append((spec, None))
    return [
        SpecFamily(
            kind=kind,
            specs=tuple(spec for spec, _ in members),
            lanes=tuple(lane for _, lane in members),
        )
        for kind, members in groups.items()
        if members
    ]


def fused_mode() -> str:
    """The ``REPRO_FUSED`` knob: ``auto`` (default), ``on`` or ``off``."""
    mode = os.environ.get("REPRO_FUSED", "auto").strip().lower() or "auto"
    if mode not in ("auto", "on", "off"):
        raise ValueError(f"REPRO_FUSED must be auto/on/off, got {mode!r}")
    return mode


def fused_active(mode: Optional[str] = None) -> bool:
    """Whether batchable families should run through the fused pass.

    ``auto`` requires the compiled driver — the stacked-numpy fallbacks
    are bit-identical but not faster than the per-trace batched kernels
    they would replace, so auto degrades to those (health-reported)
    rather than change engines for nothing.
    """
    mode = fused_mode() if mode is None else mode
    if mode == "off":
        return False
    if mode == "on":
        return True
    from repro.sim import _cstep

    if _cstep.available():
        return True
    from repro import health

    health.emit(
        "fused-planner",
        "fused",
        "batched",
        reason=_cstep.unavailable_reason() or "",
        severity="degraded",
    )
    return False


def _scalar_rates(specs: Sequence[str], trace: BranchTrace) -> List[float]:
    from repro import health
    from repro.core.registry import make_predictor
    from repro.sim.engine import run

    schemes = sorted({spec.split(":", 1)[0] for spec in specs})
    health.emit(
        "sweep-planner",
        "fused",
        "scalar",
        reason="unfusable scheme(s): " + ", ".join(schemes),
        severity="degraded",
        cells=len(specs),
    )
    return [run(make_predictor(spec), trace).misprediction_rate for spec in specs]


def family_rates(
    family: SpecFamily, trace: BranchTrace, fused: Optional[bool] = None
) -> Dict[str, float]:
    """Misprediction rate of every spec in one family on one trace.

    ``fused`` pins the engine choice (the sweep entry points resolve
    :func:`fused_active` once per call rather than once per family);
    ``None`` resolves it here.  Scalar families always run per-cell and
    report the degradation.
    """
    if family.kind == "scalar":
        return dict(zip(family.specs, _scalar_rates(family.specs, trace)))
    use_fused = fused_active() if fused is None else fused
    if family.kind == "gshare":
        fn = gshare_family_rates if use_fused else gshare_lane_rates
    else:
        fn = bimode_family_rates if use_fused else bimode_lane_rates
    return dict(zip(family.specs, fn(list(family.lanes), trace)))
