"""Saturating-counter primitives.

The paper's predictors are built entirely from 2-bit saturating up-down
counters (Smith counters).  A counter holds a state in ``[0, 3]``:

====== ===================== ==========
state  meaning               prediction
====== ===================== ==========
0      strongly not-taken    not taken
1      weakly not-taken      not taken
2      weakly taken          taken
3      strongly taken        taken
====== ===================== ==========

A *taken* outcome increments the state (saturating at 3), a *not-taken*
outcome decrements it (saturating at 0).  The prediction is the counter's
sign bit, i.e. ``state >= 2``.

Two classes are provided:

* :class:`SaturatingCounter` — a single counter, convenient for unit
  tests and for explaining the automaton.
* :class:`CounterTable` — an array of counters backed by a Python list
  of small ints, the storage used by every table-based predictor.  The
  list representation (rather than a numpy array) is deliberate: the
  per-branch simulation loops index it with Python ints, where list
  access is several times faster than numpy scalar access.
"""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

__all__ = [
    "WEAKLY_NOT_TAKEN",
    "WEAKLY_TAKEN",
    "STRONGLY_NOT_TAKEN",
    "STRONGLY_TAKEN",
    "SaturatingCounter",
    "CounterTable",
]

STRONGLY_NOT_TAKEN = 0
WEAKLY_NOT_TAKEN = 1
WEAKLY_TAKEN = 2
STRONGLY_TAKEN = 3

_STATE_NAMES = {
    STRONGLY_NOT_TAKEN: "strongly-not-taken",
    WEAKLY_NOT_TAKEN: "weakly-not-taken",
    WEAKLY_TAKEN: "weakly-taken",
    STRONGLY_TAKEN: "strongly-taken",
}


class SaturatingCounter:
    """A single n-bit saturating up-down counter.

    Parameters
    ----------
    bits:
        Width of the counter.  The paper uses 2-bit counters throughout;
        other widths are supported for ablation studies.
    init:
        Initial state, in ``[0, 2**bits - 1]``.

    Examples
    --------
    >>> c = SaturatingCounter(init=WEAKLY_TAKEN)
    >>> c.prediction
    True
    >>> c.update(False); c.update(False)
    >>> c.state, c.prediction
    (0, False)
    >>> c.update(False)           # saturates at 0
    >>> c.state
    0
    """

    __slots__ = ("bits", "_max", "_threshold", "state")

    def __init__(self, bits: int = 2, init: int = WEAKLY_TAKEN):
        if bits < 1:
            raise ValueError(f"counter width must be >= 1 bit, got {bits}")
        self.bits = bits
        self._max = (1 << bits) - 1
        self._threshold = 1 << (bits - 1)
        if not 0 <= init <= self._max:
            raise ValueError(f"initial state {init} out of range [0, {self._max}]")
        self.state = init

    @property
    def prediction(self) -> bool:
        """Predicted direction: ``True`` means taken."""
        return self.state >= self._threshold

    def update(self, taken: bool) -> None:
        """Train the counter with the resolved branch outcome."""
        if taken:
            if self.state < self._max:
                self.state += 1
        elif self.state > 0:
            self.state -= 1

    def predict_and_update(self, taken: bool) -> bool:
        """Return the prediction for this access, then train."""
        prediction = self.prediction
        self.update(taken)
        return prediction

    @property
    def is_saturated(self) -> bool:
        return self.state in (0, self._max)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = _STATE_NAMES.get(self.state, str(self.state)) if self.bits == 2 else str(self.state)
        return f"SaturatingCounter(bits={self.bits}, state={name})"


class CounterTable:
    """A table of 2-bit (by default) saturating counters.

    This is the PHT building block.  Storage is a plain Python list so
    the hot simulation loops can read and write entries at native list
    speed; :meth:`as_array` exposes a numpy copy for analysis code.

    Parameters
    ----------
    index_bits:
        The table holds ``2**index_bits`` counters.
    bits:
        Counter width (2 in the paper).
    init:
        Initial state for every counter.  The paper initializes gshare
        tables and the bi-mode choice predictor to weakly-taken, the
        bi-mode taken bank to weakly-taken and the not-taken bank to
        weakly-not-taken.
    """

    __slots__ = ("index_bits", "bits", "init", "size", "_max", "_threshold", "states")

    def __init__(self, index_bits: int, bits: int = 2, init: int = WEAKLY_TAKEN):
        if index_bits < 0:
            raise ValueError(f"index_bits must be >= 0, got {index_bits}")
        if index_bits > 24:
            raise ValueError(
                f"index_bits={index_bits} would allocate {1 << index_bits} counters; "
                "refusing (likely a mis-parsed size)"
            )
        if bits < 1:
            raise ValueError(f"counter width must be >= 1 bit, got {bits}")
        self._max = (1 << bits) - 1
        self._threshold = 1 << (bits - 1)
        if not 0 <= init <= self._max:
            raise ValueError(f"initial state {init} out of range [0, {self._max}]")
        self.index_bits = index_bits
        self.bits = bits
        self.init = init
        self.size = 1 << index_bits
        self.states: List[int] = [init] * self.size

    # -- single-access interface -------------------------------------------------

    def predict(self, index: int) -> bool:
        """Predicted direction of the counter at ``index``."""
        return self.states[index] >= self._threshold

    def update(self, index: int, taken: bool) -> None:
        """Train the counter at ``index`` with the branch outcome."""
        state = self.states[index]
        if taken:
            if state < self._max:
                self.states[index] = state + 1
        elif state > 0:
            self.states[index] = state - 1

    def predict_and_update(self, index: int, taken: bool) -> bool:
        """Predict at ``index`` then train with ``taken``; returns the prediction."""
        state = self.states[index]
        if taken:
            if state < self._max:
                self.states[index] = state + 1
        elif state > 0:
            self.states[index] = state - 1
        return state >= self._threshold

    # -- bulk / analysis interface -----------------------------------------------

    def reset(self, init: int | None = None) -> None:
        """Restore every counter to its initial (or a new ``init``) state."""
        if init is not None:
            if not 0 <= init <= self._max:
                raise ValueError(f"init {init} out of range [0, {self._max}]")
            self.init = init
        self.states = [self.init] * self.size

    def fill(self, states: Iterable[int]) -> None:
        """Overwrite the table with explicit states (for tests and checkpoints)."""
        new = [int(s) for s in states]
        if len(new) != self.size:
            raise ValueError(f"expected {self.size} states, got {len(new)}")
        for s in new:
            if not 0 <= s <= self._max:
                raise ValueError(f"state {s} out of range [0, {self._max}]")
        self.states = new

    def as_array(self) -> np.ndarray:
        """Return a numpy copy of the counter states."""
        return np.asarray(self.states, dtype=np.uint8)

    @property
    def threshold(self) -> int:
        """Smallest state predicting taken (the sign-bit boundary)."""
        return self._threshold

    @property
    def max_state(self) -> int:
        return self._max

    def size_bits(self) -> int:
        """Hardware cost of the table in bits of counter storage."""
        return self.size * self.bits

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CounterTable(index_bits={self.index_bits}, bits={self.bits}, init={self.init})"
