"""Unit tests for the bias-filter predictor."""

import numpy as np
import pytest

from repro.predictors.bimodal import BimodalPredictor
from repro.predictors.filtered import BiasFilterPredictor
from repro.predictors.gshare import GSharePredictor
from repro.sim.engine import run, run_steps
from tests.conftest import make_toy_trace


def fresh(run_bits=3, filter_bits=8, sub=None):
    return BiasFilterPredictor(
        sub_predictor=sub or GSharePredictor(index_bits=8),
        filter_index_bits=filter_bits,
        run_bits=run_bits,
    )


class TestClassification:
    def test_not_filtered_initially(self):
        assert not fresh().is_filtered(5)

    def test_filtered_after_saturated_run(self):
        p = fresh(run_bits=2)  # threshold: 3 identical outcomes
        for _ in range(3):
            p.update(5, True)
        assert p.is_filtered(5)
        assert p.predict(5) is True

    def test_flip_unfilters(self):
        p = fresh(run_bits=2)
        for _ in range(3):
            p.update(5, True)
        p.update(5, False)
        assert not p.is_filtered(5)

    def test_run_tracks_direction_change(self):
        p = fresh(run_bits=2)
        p.update(5, True)
        p.update(5, False)  # run restarts at 1 with the new direction
        p.update(5, False)
        p.update(5, False)
        assert p.is_filtered(5)
        assert p.predict(5) is False

    def test_aliasing_in_filter_table(self):
        p = fresh(run_bits=2, filter_bits=2)
        for _ in range(3):
            p.update(1, True)
        assert p.is_filtered(1 + 4)  # shares slot 1


class TestFiltering:
    def test_sub_predictor_not_trained_while_filtered(self):
        sub = GSharePredictor(index_bits=6, history_bits=0)
        p = fresh(run_bits=1, sub=sub)  # threshold: 1 outcome
        p.update(9, False)  # trains sub (unfiltered), then filters
        state_after = sub.table.states[9]
        for _ in range(10):
            p.update(9, False)  # filtered: sub untouched
        assert sub.table.states[9] == state_after

    def test_sub_history_frozen_while_filtered(self):
        sub = GSharePredictor(index_bits=6, history_bits=6)
        p = fresh(run_bits=1, sub=sub)
        p.update(9, True)
        ghr = sub.ghr.value
        p.update(9, True)  # filtered now
        assert sub.ghr.value == ghr

    def test_protects_sub_predictor_from_monotone_pollution(self):
        """The headline effect: two oppositely-monotone branches sharing
        a counter destroy each other in the raw sub-predictor; the
        filter absorbs both and the destructive aliasing vanishes."""
        def misses(predictor):
            total = 0
            for _ in range(200):
                # 0x11 (always taken) and 0x21 (always not-taken) share
                # counter 1 in the 4-entry table
                total += predictor.predict_and_update(0x11, True) is not True
                total += predictor.predict_and_update(0x21, False) is not False
            return total

        plain = misses(GSharePredictor(index_bits=2, history_bits=0))
        filtered = misses(
            fresh(run_bits=2, filter_bits=8,
                  sub=GSharePredictor(index_bits=2, history_bits=0))
        )
        assert plain > 100  # oscillation: roughly every other access wrong
        assert filtered < 20  # only the pre-classification window

    def test_size_accounts_filter_state(self):
        p = fresh(run_bits=3, filter_bits=8)
        assert p.size_bits() == p.sub_predictor.size_bits() + 256 * 4

    def test_batch_equals_step(self):
        trace = make_toy_trace(length=1200)
        a = run(fresh(), trace).predictions
        b = run_steps(fresh(), trace).predictions
        assert np.array_equal(a, b)

    def test_reset(self):
        trace = make_toy_trace(length=400)
        p = fresh()
        a = run(p, trace).predictions
        b = run(p, trace).predictions
        assert np.array_equal(a, b)

    def test_reduces_misprediction_on_real_workload(self, small_workload):
        """Filtering should help (or at least not hurt much) on a
        realistic workload at small table sizes."""
        plain = run(GSharePredictor(index_bits=9), small_workload).misprediction_rate
        filtered = run(
            BiasFilterPredictor(GSharePredictor(index_bits=9), filter_index_bits=10),
            small_workload,
        ).misprediction_rate
        assert filtered <= plain * 1.05

    def test_validation(self):
        with pytest.raises(ValueError):
            fresh(run_bits=0)
        with pytest.raises(ValueError):
            BiasFilterPredictor(BimodalPredictor(4), filter_index_bits=-1)

    def test_name(self):
        assert "biasfilter" in fresh().name and "gshare" in fresh().name
