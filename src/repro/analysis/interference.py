"""Bias-class interference counting (paper Section 4.2, Table 4).

The normalized-count analysis ignores *ordering*: a counter whose
dominant and non-dominant accesses are separated in time suffers less
than one where they interleave.  Table 4 therefore counts, per counter,
how often the access stream *changes* between substreams of different
dominance roles, accumulated over all counters.  Following the table's
caption ("the total number of changes of the dominant class due to
interference by the other two classes"), a change between consecutive
accesses of different roles is attributed to the role of the **earlier**
access — the run that got interrupted.

Fewer changes ⇒ the ST and SNT substreams are less intermingled ⇒ less
destructive interference; the paper shows bi-mode beats history-indexed
gshare on every column.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.bias import SubstreamAnalysis
from repro.core.grouping import stable_group_order
from repro.core.interfaces import DetailedSimulation

__all__ = ["ClassChangeCounts", "count_class_changes"]


@dataclass(frozen=True)
class ClassChangeCounts:
    """Table-4 row: interruptions per dominance role."""

    dominant: int
    non_dominant: int
    wb: int

    @property
    def total(self) -> int:
        return self.dominant + self.non_dominant + self.wb

    def as_dict(self) -> dict:
        return {
            "dominant": self.dominant,
            "non_dominant": self.non_dominant,
            "wb": self.wb,
        }


def count_class_changes(
    detailed: DetailedSimulation, analysis: SubstreamAnalysis
) -> ClassChangeCounts:
    """Count role changes between consecutive accesses to each counter.

    ``analysis`` must come from the same ``detailed`` simulation (the
    per-access stream mapping is reused).
    """
    n = detailed.result.num_branches
    if n != len(analysis.access_stream):
        raise ValueError("analysis does not match the detailed simulation")
    if n < 2:
        return ClassChangeCounts(dominant=0, non_dominant=0, wb=0)

    counter_ids = np.ascontiguousarray(detailed.counter_ids, dtype=np.int32)
    from repro.sim import _cstep

    if _cstep.available():
        # single time-ordered pass with a per-counter last-role array —
        # no sort at all; attributing each change to the earlier
        # access's role exactly as the grouped formulation does
        counts = _cstep.class_changes(
            counter_ids,
            np.ascontiguousarray(analysis.access_stream, dtype=np.int64),
            np.ascontiguousarray(analysis.stream_role(), dtype=np.int8),
            analysis.num_counters,
        )
    else:
        roles = analysis.access_role()
        # group accesses by counter, keeping time order within each
        # group; the stable counting sort is the same permutation
        # np.lexsort over (time, counter) produces, at O(n) instead of
        # O(n log n)
        order = stable_group_order(counter_ids, analysis.num_counters)
        sorted_counters = counter_ids[order]
        sorted_roles = roles[order]
        same_counter = sorted_counters[1:] == sorted_counters[:-1]
        role_change = sorted_roles[1:] != sorted_roles[:-1]
        interrupted = sorted_roles[:-1][same_counter & role_change]
        counts = np.bincount(interrupted, minlength=3)
    return ClassChangeCounts(
        dominant=int(counts[0]), non_dominant=int(counts[1]), wb=int(counts[2])
    )
