"""Wire protocol for the sweep service: JSON lines over a local socket.

The service listens on a unix-domain socket by default (one file under
the cache root, so every client on the host finds it without
configuration) with a loopback-TCP fallback for platforms without
``AF_UNIX``.  Every message — request, response, or streamed event —
is one JSON object on one ``\\n``-terminated line; a connection carries
one request and its response(s).  Streaming requests (``submit`` with
``wait``, ``wait``) keep the connection open and receive event objects
(``{"event": "progress" | "health" | "state" | "done", ...}``) until
the terminal ``done`` event.

Error responses are ``{"ok": false, "error": ..., "retryable": ...}``;
``retryable`` is the backpressure signal — the queue was full or the
daemon was draining, and the same request may succeed later.
"""

from __future__ import annotations

import json
import os
import socket
from pathlib import Path
from typing import Optional, Tuple, Union

__all__ = [
    "Address",
    "default_socket_path",
    "parse_address",
    "connect",
    "write_message",
    "read_message",
    "ProtocolError",
]

#: Linux caps ``sun_path`` at 108 bytes; stay clearly inside it.
_MAX_UNIX_PATH = 100

Address = Union[str, Tuple[str, int]]


class ProtocolError(RuntimeError):
    """A malformed message or an unusable service address."""


def default_socket_path(root: Optional[os.PathLike] = None) -> Path:
    """The daemon's default unix-socket path under the cache root."""
    if root is None:
        from repro.workloads.suite import default_cache_dir

        root = default_cache_dir() / "service"
    return Path(root) / "serve.sock"


def parse_address(address: Optional[Address] = None) -> Tuple[str, object]:
    """Normalize an address to ``("unix", path)`` or ``("tcp", (host, port))``.

    ``None`` means the default unix socket; ``"host:port"`` strings and
    ``(host, port)`` tuples select TCP; anything else is a socket path.
    """
    if address is None:
        address = str(default_socket_path())
    if isinstance(address, tuple):
        host, port = address
        return "tcp", (str(host), int(port))
    address = str(address)
    if address.startswith("tcp:"):
        address = address[len("tcp:"):]
        host, _, port = address.rpartition(":")
        if not port.isdigit():
            raise ProtocolError(f"tcp address must be host:port, got {address!r}")
        return "tcp", (host or "127.0.0.1", int(port))
    if len(address.encode()) > _MAX_UNIX_PATH:
        raise ProtocolError(
            f"unix socket path too long ({len(address)} chars): {address!r}; "
            "use --socket with a shorter path or a tcp:host:port address"
        )
    return "unix", address


def connect(address: Optional[Address] = None, timeout: Optional[float] = None) -> socket.socket:
    """Open one client connection to the service."""
    family, target = parse_address(address)
    if family == "unix":
        if not hasattr(socket, "AF_UNIX"):  # pragma: no cover - non-posix
            raise ProtocolError("platform has no AF_UNIX; use a tcp:host:port address")
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    else:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.settimeout(timeout)
    try:
        sock.connect(target)
    except BaseException:
        sock.close()
        raise
    return sock


def write_message(wfile, message: dict) -> None:
    """Send one message as a single JSON line (flushes)."""
    wfile.write(json.dumps(message, sort_keys=True).encode() + b"\n")
    wfile.flush()


def read_message(rfile) -> Optional[dict]:
    """Read one JSON-line message; ``None`` on a closed connection."""
    line = rfile.readline()
    if not line:
        return None
    try:
        message = json.loads(line)
    except ValueError as exc:
        raise ProtocolError(f"malformed message line: {exc}")
    if not isinstance(message, dict):
        raise ProtocolError(f"message must be a JSON object, got {type(message).__name__}")
    return message
