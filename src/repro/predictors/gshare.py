"""The gshare predictor [McFarling93], the paper's primary baseline.

gshare xor-es the global history with the low-order branch address bits
to index a single table of 2-bit counters.  The paper (Section 3.1,
following [SechrestLeeMudge96]) is careful to compare against the *best*
gshare configuration, which generally uses fewer history bits than index
bits — equivalently, multiple PHTs: with ``h`` history bits and ``n``
index bits, the top ``n - h`` index bits come from the address alone,
giving ``2**(n-h)`` PHTs of ``2**h`` counters (paper footnote 1).

``GSharePredictor(n, n)`` is the classic single-PHT *gshare.1PHT*;
``GSharePredictor(n, h)`` with ``h < n`` is the multi-PHT family over
which *gshare.best* is searched (see
:func:`repro.analysis.sweep.best_gshare_search`).

All counters initialize weakly-taken (paper footnote 2).
"""

from __future__ import annotations

import numpy as np

from repro.core.counters import WEAKLY_TAKEN, CounterTable
from repro.core.history import GlobalHistoryRegister, global_history_stream
from repro.core.indexing import gshare_index, gshare_index_stream, num_phts
from repro.core.interfaces import (
    BranchPredictor,
    DetailedSimulation,
    SimulationResult,
)
from repro.traces.record import BranchTrace

__all__ = ["GSharePredictor"]


class GSharePredictor(BranchPredictor):
    """gshare with a configurable history length.

    Parameters
    ----------
    index_bits:
        log2 of the PHT size; the table holds ``2**index_bits`` 2-bit
        counters.
    history_bits:
        Global history length, ``0 <= history_bits <= index_bits``.
        Defaults to ``index_bits`` (single-PHT gshare).  With 0 the
        predictor degenerates to a Smith bimodal table.
    """

    scheme = "gshare"

    def __init__(self, index_bits: int, history_bits: int | None = None):
        if index_bits < 0:
            raise ValueError(f"index_bits must be >= 0, got {index_bits}")
        if history_bits is None:
            history_bits = index_bits
        if not 0 <= history_bits <= index_bits:
            raise ValueError(
                f"history_bits ({history_bits}) must be in [0, {index_bits}]"
            )
        self.index_bits = index_bits
        self.history_bits = history_bits
        self.table = CounterTable(index_bits, init=WEAKLY_TAKEN)
        self.ghr = GlobalHistoryRegister(history_bits)

    @property
    def name(self) -> str:
        return f"gshare:index={self.index_bits},hist={self.history_bits}"

    @property
    def num_phts(self) -> int:
        """PHT count in the two-level model (1 when fully history-hashed)."""
        return num_phts(self.index_bits, self.history_bits)

    def size_bits(self) -> int:
        return self.table.size_bits()

    def reset(self) -> None:
        self.table.reset()
        self.ghr.reset()

    # -- step interface ----------------------------------------------------------

    def _index(self, pc: int) -> int:
        return gshare_index(pc, self.ghr.value, self.index_bits, self.history_bits)

    def predict(self, pc: int) -> bool:
        return self.table.predict(self._index(pc))

    def update(self, pc: int, taken: bool) -> None:
        self.table.update(self._index(pc), taken)
        self.ghr.push(taken)

    def _counter_id(self, pc: int) -> int:
        """Counter attribution at the current state, for predictors that
        embed this one (tournament, bias filter)."""
        return self._index(pc)

    def _num_detail_counters(self) -> int:
        return self.table.size

    # -- batch interface -----------------------------------------------------------

    def simulate(self, trace: BranchTrace) -> SimulationResult:
        predictions, _ = self._run(trace, want_counters=False)
        return SimulationResult(
            predictor_name=self.name,
            trace_name=trace.name,
            predictions=predictions,
            outcomes=trace.outcomes,
        )

    def simulate_detailed(self, trace: BranchTrace) -> DetailedSimulation:
        predictions, counter_ids = self._run(trace, want_counters=True)
        result = SimulationResult(
            predictor_name=self.name,
            trace_name=trace.name,
            predictions=predictions,
            outcomes=trace.outcomes,
        )
        return DetailedSimulation(
            result=result,
            counter_ids=counter_ids,
            num_counters=self.table.size,
            pcs=trace.pcs,
        )

    def _run(self, trace: BranchTrace, want_counters: bool):
        n = len(trace)
        predictions = np.empty(n, dtype=bool)

        histories = global_history_stream(
            trace.outcomes, self.history_bits, initial=self.ghr.value
        )
        idx_arr = gshare_index_stream(
            trace.pcs, histories, self.index_bits, self.history_bits
        )
        counter_ids = idx_arr.copy() if want_counters else None
        indices = idx_arr.tolist()
        outcomes = trace.outcomes.tolist()
        states = self.table.states

        for i in range(n):
            j = indices[i]
            state = states[j]
            predictions[i] = state >= 2
            if outcomes[i]:
                if state < 3:
                    states[j] = state + 1
            elif state > 0:
                states[j] = state - 1

        if n and self.history_bits:
            for taken in outcomes[-self.history_bits:]:
                self.ghr.push(taken)
        return predictions, counter_ids
