"""Append-only sweep journal: crash-safe resume for long sweeps.

The result cache (:class:`repro.sim.runner.ResultCache`) batches its
writes — inside a ``deferred()`` block a SIGINT can lose every rate
computed since the last flush, and a paper-scale Figure-3/Figure-4
sweep holds hours of work in that window.  The journal closes the gap:
every completed ``(trace key, spec) -> rate`` cell is appended to a
JSONL file *as it completes*, with one ``O_APPEND`` write (plus fsync)
per batch, so lines are never interleaved or half-visible.  A crashed
or killed sweep can then be rerun with resume enabled and only the
cells missing from the journal are re-simulated; rates round-trip
through JSON exactly (``repr`` floats), so the resumed table is
bit-identical to an uninterrupted run.

A torn final line (the one write a hard kill can truncate) is detected
and skipped on load, as is any line whose rate is not a float in
[0, 1] — the journal trusts nothing it reads.

:class:`PayloadJournal` is the same machinery keyed to JSON-object
values instead of rates: the detailed (Section-4) parallel pipeline
journals each cell's compact analysis summary so interrupted breakdown
sweeps resume without re-running any attribution simulation.

:meth:`SweepJournal.guard` additionally installs SIGINT/SIGTERM
handlers for the duration of a sweep that flush the deferred result
cache before the signal is re-delivered, so even the cache loses
nothing on a polite kill.
"""

from __future__ import annotations

import json
import logging
import os
import re
import signal
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Mapping, Optional, Tuple

__all__ = ["SweepJournal", "PayloadJournal"]

logger = logging.getLogger(__name__)


class SweepJournal:
    """Append-only JSONL record of completed sweep cells."""

    #: JSON field holding each cell's value; subclasses override together
    #: with :meth:`_coerce` to journal a different value shape.
    VALUE_KEY = "rate"

    def __init__(self, path: os.PathLike):
        self.path = Path(path)
        self._completed: Optional[Dict[Tuple[str, str], object]] = None
        self.corrupt_lines = 0
        self.resumed_cells = 0

    @staticmethod
    def _coerce(value):
        """Validated journal-ready form of ``value`` (raises ValueError)."""
        if (
            not isinstance(value, (int, float))
            or isinstance(value, bool)
            or not 0.0 <= value <= 1.0
        ):
            raise ValueError(f"rate must be a float in [0, 1], got {value!r}")
        return float(value)

    @classmethod
    def for_name(cls, name: str, root: Optional[os.PathLike] = None) -> "SweepJournal":
        """Journal under the shared cache directory, keyed by sweep name."""
        if root is None:
            from repro.workloads.suite import default_cache_dir

            root = default_cache_dir() / "journal"
        safe = re.sub(r"[^A-Za-z0-9._-]+", "_", name.strip()) or "sweep"
        return cls(Path(root) / f"{safe}.jsonl")

    # -- reading ------------------------------------------------------------

    def _load(self) -> Dict[Tuple[str, str], object]:
        if self._completed is not None:
            return self._completed
        table: Dict[Tuple[str, str], object] = {}
        raw = ""
        if self.path.exists():
            try:
                raw = self.path.read_text()
            except OSError as exc:
                logger.warning("sweep journal %s unreadable (%s); starting empty", self.path, exc)
        for line in raw.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
                tkey = entry["tkey"]
                spec = entry["spec"]
                if not (isinstance(tkey, str) and isinstance(spec, str)):
                    raise ValueError(f"invalid journal cell {entry!r}")
                value = self._coerce(entry[self.VALUE_KEY])
            except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                self.corrupt_lines += 1
                continue
            table[(tkey, spec)] = value
        if self.corrupt_lines:
            logger.warning(
                "sweep journal %s: ignored %d corrupt line(s)",
                self.path,
                self.corrupt_lines,
            )
        self._completed = table
        self.resumed_cells = len(table)
        return table

    def lookup(self, tkey: str, spec: str):
        """The journalled value of one cell, or ``None``."""
        return self._load().get((tkey, spec))

    def completed(self, tkey: str) -> Dict[str, object]:
        """Every journalled ``spec -> value`` for one trace key."""
        return {
            spec: value for (key, spec), value in self._load().items() if key == tkey
        }

    def __len__(self) -> int:
        return len(self._load())

    # -- writing ------------------------------------------------------------

    def record_many(self, tkey: str, values: Mapping[str, object]) -> int:
        """Append the cells not already journalled; returns how many."""
        table = self._load()
        fresh = {
            spec: self._coerce(value)
            for spec, value in values.items()
            if (tkey, spec) not in table
        }
        if not fresh:
            return 0
        payload = "".join(
            json.dumps(
                {"tkey": tkey, "spec": spec, self.VALUE_KEY: value}, sort_keys=True
            )
            + "\n"
            for spec, value in sorted(fresh.items())
        ).encode()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(self.path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
        try:
            os.write(fd, payload)
            os.fsync(fd)
        finally:
            os.close(fd)
        for spec, value in fresh.items():
            table[(tkey, spec)] = value
        return len(fresh)

    def record(self, tkey: str, spec: str, value) -> int:
        return self.record_many(tkey, {spec: value})

    def compact(self) -> int:
        """Atomically rewrite the file to one line per completed cell.

        ``O_APPEND`` journals only ever grow: duplicate cells appended
        by concurrent writers or across restarts, torn lines from hard
        kills, and corrupt lines all stay on disk forever.  Compaction
        rewrites the journal as exactly one well-formed line per
        completed cell (sorted, so equal journals are byte-equal),
        via a sibling temp file and ``os.replace`` — a crash mid-compact
        leaves the original journal untouched.  Returns the number of
        raw lines dropped (duplicates + corrupt + torn).
        """
        table = self._load()
        if not self.path.exists():
            return 0
        try:
            raw_lines = sum(
                1 for line in self.path.read_text().splitlines() if line.strip()
            )
        except OSError:
            raw_lines = 0
        payload = "".join(
            json.dumps(
                {"tkey": tkey, "spec": spec, self.VALUE_KEY: value}, sort_keys=True
            )
            + "\n"
            for (tkey, spec), value in sorted(table.items())
        ).encode()
        tmp = self.path.with_name(f".tmp-{self.path.name}-{os.getpid()}")
        fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
        try:
            os.write(fd, payload)
            os.fsync(fd)
        finally:
            os.close(fd)
        try:
            os.replace(tmp, self.path)
        except OSError:
            tmp.unlink(missing_ok=True)
            raise
        self.corrupt_lines = 0
        return max(0, raw_lines - len(table))

    def discard(self) -> None:
        """Delete the journal file and forget everything loaded."""
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass
        self._completed = None
        self.corrupt_lines = 0
        self.resumed_cells = 0

    # -- signal safety ------------------------------------------------------

    @contextmanager
    def guard(self, cache=None):
        """SIGINT/SIGTERM-safe region around a sweep.

        On either signal the deferred result cache is flushed first,
        then the interruption proceeds normally (``KeyboardInterrupt``
        for SIGINT, ``SystemExit(128 + signum)`` for SIGTERM).  Outside
        the main thread — where Python forbids installing handlers —
        this degrades to a no-op wrapper; the journal itself is already
        durable line-by-line.
        """
        previous = {}

        def _flush() -> None:
            if cache is not None:
                try:
                    cache.flush()
                except Exception:  # pragma: no cover - last-ditch flush
                    logger.exception("cache flush on signal failed")

        def _handler(signum, frame):
            _flush()
            if signum == signal.SIGINT:
                raise KeyboardInterrupt
            raise SystemExit(128 + signum)

        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                previous[signum] = signal.signal(signum, _handler)
            except (ValueError, OSError):  # not the main thread / unsupported
                pass
        try:
            yield self
        finally:
            for signum, old in previous.items():
                try:
                    signal.signal(signum, old)
                except (ValueError, OSError):  # pragma: no cover
                    pass


class PayloadJournal(SweepJournal):
    """Sweep journal whose cell values are JSON objects, not rates.

    Used by the parallel detailed pipeline to persist each cell's
    Section-4 summary dict.  Values must round-trip through JSON
    unchanged (plain dicts/lists/strs/numbers), which `json.dumps`
    guarantees for the payloads :func:`repro.analysis.summary.
    summarize_detailed` produces — so a resumed cell compares equal to
    a recomputed one.
    """

    VALUE_KEY = "payload"

    @staticmethod
    def _coerce(value):
        if not isinstance(value, dict):
            raise ValueError(f"payload must be a JSON object, got {value!r}")
        return value
