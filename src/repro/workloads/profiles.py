"""Benchmark profiles — the knobs that stand in for the paper's traces.

One :class:`BenchmarkProfile` per paper benchmark (Table 2): the six
SPEC CINT95 programs traced with ATOM, and the eight IBS-Ultrix
workloads traced by hardware monitoring (kernel + user).  Static branch
counts are the paper's exact Table 2 values; dynamic lengths are the
paper's counts scaled by ~1/50 (clamped to [200 K, 800 K]) to keep
pure-Python simulation tractable — misprediction rates are steady-state
dominated, so the scaling preserves the comparisons.

The behavioural knobs are set from what the paper reports about each
program:

* ``compress`` / ``xlisp`` — the two smallest static footprints ("no
  aliasing problems", Section 3.3), so their curves flatten early and
  single-PHT gshare is competitive.
* ``go`` — "intrinsically hard to predict because about half of its
  dynamic branches are in the WB class" (Section 4.4), and deep history
  is what helps; hence a large weak fraction plus deep correlation.
* ``vortex`` — the easiest CINT95 program (lowest curves in Figure 3):
  overwhelmingly biased branches.
* ``gcc`` / ``real_gcc`` — huge static footprints (16–17 K branches)
  ⇒ aliasing-dominated at small sizes.
* IBS workloads — mid-size static footprints with kernel activity
  interleaved (``kernel_fraction``), moderate predictability; the
  paper's Figure 4 curves sit in the 2–9 % band.

Input-data notes from the paper's Table 1 are preserved in
``input_note`` for documentation parity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = [
    "BehaviorMix",
    "BenchmarkProfile",
    "CINT95_PROFILES",
    "IBS_PROFILES",
    "ALL_PROFILES",
    "get_profile",
]


def _scaled_length(paper_dynamic: int, scale: int = 40) -> int:
    return int(min(800_000, max(200_000, paper_dynamic // scale)))


@dataclass(frozen=True)
class BehaviorMix:
    """Fractions of body branch sites per behaviour family.

    ``biased + correlated + pattern`` must be <= 1; the remainder is the
    intrinsically weakly-biased population.
    """

    biased: float
    correlated: float
    pattern: float

    def __post_init__(self) -> None:
        for label, value in (
            ("biased", self.biased),
            ("correlated", self.correlated),
            ("pattern", self.pattern),
        ):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{label} fraction must be in [0, 1], got {value}")
        if self.biased + self.correlated + self.pattern > 1.0 + 1e-9:
            raise ValueError("behaviour fractions sum to more than 1")

    @property
    def weak(self) -> float:
        return max(0.0, 1.0 - self.biased - self.correlated - self.pattern)


@dataclass(frozen=True)
class BenchmarkProfile:
    """All parameters defining one synthetic benchmark."""

    name: str
    suite: str  # "cint95" or "ibs"
    paper_static: int  # Table 2, static conditional branches
    paper_dynamic: int  # Table 2, dynamic conditional branches
    mix: BehaviorMix
    #: strong-bias probability for the biased population (>= 0.9)
    strong_bias: float = 0.995
    #: fraction of strongly-biased branches biased toward taken
    taken_bias_fraction: float = 0.55
    correlated_depth: Tuple[int, int] = (3, 8)
    correlated_noise: float = 0.01
    weak_p_range: Tuple[float, float] = (0.3, 0.7)
    pattern_length: Tuple[int, int] = (3, 6)
    region_size: int = 8
    loop_fraction: float = 0.3
    loop_trip: int = 6
    loop_jitter: int = 0
    zipf_skew: float = 1.0
    kernel_fraction: float = 0.0
    #: control-flow temporal locality (see repro.workloads.cfg.Program):
    #: probability of immediately re-executing the current region ...
    repeat_prob: float = 0.25
    #: ... and of an unstructured Zipf jump (higher = noisier history)
    jump_prob: float = 0.005
    #: static-footprint scaling applied with the dynamic-length scaling:
    #: traces are ~1/40 of the paper's dynamic counts, so footprints of
    #: the largest programs are shrunk (less aggressively) to keep the
    #: executions-per-branch ratio within a realistic factor of the
    #: paper's; Table 2 reporting shows both paper and scaled values.
    static_scale: float = 1.0
    input_note: str = ""

    def __post_init__(self) -> None:
        if self.suite not in ("cint95", "ibs"):
            raise ValueError(f"unknown suite {self.suite!r}")
        if self.paper_static < 1:
            raise ValueError("paper_static must be >= 1")
        if not 0.9 <= self.strong_bias < 1.0:
            raise ValueError("strong_bias must be in [0.9, 1.0)")
        lo, hi = self.correlated_depth
        if not 1 <= lo <= hi <= 20:
            raise ValueError(f"bad correlated_depth range {self.correlated_depth}")

    @property
    def static_branches(self) -> int:
        """Static site budget for the generator (paper count x scale)."""
        return max(32, round(self.paper_static * self.static_scale))

    @property
    def default_length(self) -> int:
        """Scaled dynamic branch count used by the benchmark suite."""
        return _scaled_length(self.paper_dynamic)


# -- SPEC CINT95 (Table 1 & 2) -------------------------------------------------

CINT95_PROFILES: Dict[str, BenchmarkProfile] = {
    "compress": BenchmarkProfile(
        name="compress",
        suite="cint95",
        paper_static=482,
        paper_dynamic=10_114_353,
        mix=BehaviorMix(biased=0.42, correlated=0.34, pattern=0.08),
        correlated_depth=(4, 9),
        correlated_noise=0.03,
        loop_jitter=1,
        weak_p_range=(0.3, 0.7),
        region_size=7,
        loop_fraction=0.32,
        loop_trip=7,
        zipf_skew=0.9,
        input_note="bigtest.in, reduced",
    ),
    "gcc": BenchmarkProfile(
        name="gcc",
        suite="cint95",
        paper_static=16_035,
        paper_dynamic=26_520_618,
        static_scale=0.25,
        mix=BehaviorMix(biased=0.50, correlated=0.30, pattern=0.08),
        correlated_depth=(4, 10),
        correlated_noise=0.015,
        region_size=9,
        loop_fraction=0.25,
        loop_trip=5,
        zipf_skew=1.1,
        input_note="jump.i",
    ),
    "go": BenchmarkProfile(
        name="go",
        suite="cint95",
        paper_static=5_112,
        paper_dynamic=17_873_772,
        static_scale=0.5,
        mix=BehaviorMix(biased=0.24, correlated=0.30, pattern=0.04),
        correlated_depth=(8, 14),
        correlated_noise=0.05,
        loop_jitter=1,
        weak_p_range=(0.25, 0.75),
        region_size=10,
        loop_fraction=0.18,
        loop_trip=4,
        zipf_skew=0.8,
        input_note="2stone9.in, train data, reduced",
    ),
    "xlisp": BenchmarkProfile(
        name="xlisp",
        suite="cint95",
        paper_static=636,
        paper_dynamic=25_008_567,
        mix=BehaviorMix(biased=0.55, correlated=0.30, pattern=0.08),
        correlated_depth=(3, 6),
        correlated_noise=0.008,
        region_size=6,
        loop_fraction=0.3,
        loop_trip=5,
        zipf_skew=1.0,
        input_note="train.lsp",
    ),
    "perl": BenchmarkProfile(
        name="perl",
        suite="cint95",
        paper_static=1_974,
        paper_dynamic=39_714_684,
        mix=BehaviorMix(biased=0.55, correlated=0.32, pattern=0.06),
        correlated_depth=(4, 8),
        correlated_noise=0.008,
        region_size=8,
        loop_fraction=0.28,
        loop_trip=6,
        zipf_skew=1.05,
        input_note="scrabbl.in, reduced",
    ),
    "vortex": BenchmarkProfile(
        name="vortex",
        suite="cint95",
        paper_static=6_599,
        paper_dynamic=27_792_020,
        static_scale=0.5,
        mix=BehaviorMix(biased=0.80, correlated=0.15, pattern=0.03),
        strong_bias=0.997,
        correlated_depth=(3, 6),
        correlated_noise=0.005,
        region_size=10,
        loop_fraction=0.25,
        loop_trip=10,
        zipf_skew=1.1,
        input_note="train data, reduced",
    ),
}


# -- IBS-Ultrix (Table 2) -------------------------------------------------------

def _ibs(name: str, static: int, dynamic: int, **overrides) -> BenchmarkProfile:
    defaults = dict(
        suite="ibs",
        mix=BehaviorMix(biased=0.58, correlated=0.27, pattern=0.06),
        correlated_depth=(3, 8),
        correlated_noise=0.012,
        region_size=8,
        loop_fraction=0.28,
        loop_trip=6,
        zipf_skew=1.0,
        kernel_fraction=0.35,
    )
    defaults.update(overrides)
    return BenchmarkProfile(
        name=name, paper_static=static, paper_dynamic=dynamic, **defaults
    )


IBS_PROFILES: Dict[str, BenchmarkProfile] = {
    "groff": _ibs("groff", 6_333, 11_901_481, correlated_noise=0.01, static_scale=0.5),
    "gs": _ibs("gs", 12_852, 16_307_247, zipf_skew=1.05, static_scale=0.25),
    "mpeg_play": _ibs(
        "mpeg_play",
        5_598,
        9_566_290,
        static_scale=0.5,
        mix=BehaviorMix(biased=0.55, correlated=0.28, pattern=0.09),
        loop_fraction=0.35,
        loop_trip=8,
    ),
    "nroff": _ibs(
        "nroff",
        5_249,
        22_574_884,
        static_scale=0.5,
        mix=BehaviorMix(biased=0.62, correlated=0.26, pattern=0.06),
        correlated_noise=0.008,
    ),
    "real_gcc": _ibs(
        "real_gcc",
        17_361,
        14_309_867,
        static_scale=0.25,
        mix=BehaviorMix(biased=0.50, correlated=0.30, pattern=0.08),
        correlated_depth=(4, 10),
        correlated_noise=0.015,
        region_size=9,
        zipf_skew=1.1,
    ),
    "sdet": _ibs(
        "sdet",
        5_310,
        5_514_439,
        static_scale=0.5,
        kernel_fraction=0.55,  # system-call intensive SPEC SDET workload
        mix=BehaviorMix(biased=0.55, correlated=0.26, pattern=0.05),
    ),
    "verilog": _ibs(
        "verilog",
        4_636,
        6_212_381,
        static_scale=0.5,
        mix=BehaviorMix(biased=0.56, correlated=0.28, pattern=0.06),
    ),
    "video_play": _ibs(
        "video_play",
        4_606,
        5_759_231,
        static_scale=0.5,
        mix=BehaviorMix(biased=0.52, correlated=0.28, pattern=0.08),
        loop_fraction=0.33,
        loop_trip=7,
    ),
}


ALL_PROFILES: Dict[str, BenchmarkProfile] = {**CINT95_PROFILES, **IBS_PROFILES}


def get_profile(name: str) -> BenchmarkProfile:
    """Look up a profile by benchmark name."""
    try:
        return ALL_PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; available: {sorted(ALL_PROFILES)}"
        ) from None
