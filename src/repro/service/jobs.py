"""Persistent job model for the sweep service.

A *job* is one client's sweep request — a spec grid crossed with a set
of benchmark trace recipes, evaluated either as Section-2 misprediction
rates (``kind="rates"``) or Section-4 detailed summaries
(``kind="detailed"``).  Jobs must survive a ``kill -9`` of the daemon,
so every job is persisted as a small JSON *manifest* under
``<root>/jobs/<job_id>.json`` (written atomically: temp file +
``os.replace``) and every completed cell is appended to a per-job
:class:`repro.sim.journal.SweepJournal` under ``<root>/journal/``.  On
restart :meth:`JobStore.incomplete` returns every job that never
reached a terminal state; re-submitting those replays their journals,
so a recovered job re-simulates only the cells that were in flight when
the daemon died — everything journalled resumes bit-identically.

Manifests are the service's only source of truth across restarts;
:func:`repro.faults.fault_point` site ``service.persist`` sits on the
manifest write so CI can drill crashes at the exact moment state hits
disk.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.faults import fault_point
from repro.sim.journal import PayloadJournal, SweepJournal

__all__ = ["BenchmarkRef", "ServiceJob", "JobStore", "QUEUED", "RUNNING", "DONE", "FAILED"]

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"

#: States a restarted daemon must pick back up.
_INCOMPLETE = (QUEUED, RUNNING)

KINDS = ("rates", "detailed")


@dataclass(frozen=True)
class BenchmarkRef:
    """One benchmark trace identity: enough to rebuild its recipe."""

    name: str
    length: int
    seed: int = 0

    @property
    def tkey(self) -> str:
        return f"{self.name}-n{self.length}-s{self.seed}"


@dataclass
class ServiceJob:
    """One submitted sweep request and its lifecycle state."""

    job_id: str
    client: str
    kind: str
    specs: Tuple[str, ...]
    benchmarks: Tuple[BenchmarkRef, ...]
    priority: int = 0
    timeout: Optional[float] = None
    state: str = QUEUED
    error: str = ""
    submitted_at: float = 0.0
    finished_at: float = 0.0
    total_cells: int = 0
    completed_cells: int = 0
    results: Dict[str, Dict[str, object]] = field(default_factory=dict)
    failures: List[Dict[str, str]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"job kind must be one of {KINDS}, got {self.kind!r}")
        if not self.specs:
            raise ValueError("job has no specs")
        if not self.benchmarks:
            raise ValueError("job has no benchmarks")

    @property
    def terminal(self) -> bool:
        return self.state in (DONE, FAILED)

    def to_dict(self, results: bool = True) -> dict:
        data = asdict(self)
        data["specs"] = list(self.specs)
        data["benchmarks"] = [asdict(b) for b in self.benchmarks]
        if not results:
            data.pop("results", None)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "ServiceJob":
        benches = tuple(
            BenchmarkRef(
                name=str(b["name"]), length=int(b["length"]), seed=int(b.get("seed", 0))
            )
            for b in data["benchmarks"]
        )
        return cls(
            job_id=str(data["job_id"]),
            client=str(data.get("client", "anonymous")),
            kind=str(data.get("kind", "rates")),
            specs=tuple(str(s) for s in data["specs"]),
            benchmarks=benches,
            priority=int(data.get("priority", 0)),
            timeout=(None if data.get("timeout") in (None, 0) else float(data["timeout"])),
            state=str(data.get("state", QUEUED)),
            error=str(data.get("error", "")),
            submitted_at=float(data.get("submitted_at", 0.0)),
            finished_at=float(data.get("finished_at", 0.0)),
            total_cells=int(data.get("total_cells", 0)),
            completed_cells=int(data.get("completed_cells", 0)),
            results=dict(data.get("results", {})),
            failures=list(data.get("failures", [])),
        )


class JobStore:
    """Crash-safe manifest + journal storage for service jobs."""

    def __init__(self, root: Optional[os.PathLike] = None):
        if root is None:
            from repro.workloads.suite import default_cache_dir

            root = default_cache_dir() / "service"
        self.root = Path(root)
        self._counter = 0
        self._mu = threading.Lock()

    @property
    def jobs_dir(self) -> Path:
        return self.root / "jobs"

    @property
    def journal_dir(self) -> Path:
        return self.root / "journal"

    def new_job_id(self) -> str:
        """A job id unique across daemon restarts and threads."""
        with self._mu:
            self._counter += 1
            count = self._counter
        return f"job-{int(time.time() * 1000):x}-{os.getpid()}-{count}"

    def journal_for(self, job: ServiceJob) -> SweepJournal:
        """The job's per-cell journal (payload journal for detailed jobs)."""
        cls = PayloadJournal if job.kind == "detailed" else SweepJournal
        return cls(self.journal_dir / f"{job.job_id}.jsonl")

    # -- manifests -----------------------------------------------------------

    def _path(self, job_id: str) -> Path:
        return self.jobs_dir / f"{job_id}.json"

    def save(self, job: ServiceJob) -> None:
        """Atomically persist one job manifest (tmp + ``os.replace``)."""
        fault_point("service.persist", job=job.job_id, state=job.state)
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        final = self._path(job.job_id)
        tmp = final.with_name(f".tmp-{final.name}-{os.getpid()}")
        payload = json.dumps(job.to_dict(), sort_keys=True).encode()
        fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
        try:
            os.write(fd, payload)
            os.fsync(fd)
        finally:
            os.close(fd)
        os.replace(tmp, final)

    def load(self, job_id: str) -> Optional[ServiceJob]:
        """One persisted job, or ``None`` (absent or unreadable manifest)."""
        try:
            data = json.loads(self._path(job_id).read_text())
            return ServiceJob.from_dict(data)
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def list(self) -> List[ServiceJob]:
        """Every readable manifest, oldest submission first."""
        jobs: List[ServiceJob] = []
        if not self.jobs_dir.is_dir():
            return jobs
        for path in sorted(self.jobs_dir.glob("*.json")):
            job = self.load(path.stem)
            if job is not None:
                jobs.append(job)
        jobs.sort(key=lambda j: (j.submitted_at, j.job_id))
        return jobs

    def incomplete(self) -> List[ServiceJob]:
        """Jobs a restarted daemon must resume (never reached terminal)."""
        return [job for job in self.list() if job.state in _INCOMPLETE]

    def forget(self, job_id: str) -> None:
        """Drop one job's manifest and journal (completed-job cleanup)."""
        self._path(job_id).unlink(missing_ok=True)
        (self.journal_dir / f"{job_id}.jsonl").unlink(missing_ok=True)
