"""Synthetic program model.

A :class:`Program` is a set of :class:`Region`\\ s (think: hot
functions / loop nests) executed under a Zipf-weighted dispatcher
(think: the call graph's hot spine).  Each region is a short straight-
line sequence of conditional branches, optionally wrapped in a loop
whose back-edge is a :class:`~repro.workloads.components.LoopBehavior`
branch.

Executing the program emits the dynamic conditional-branch stream:

* the dispatcher picks a region (Zipf over regions — a few regions are
  very hot, most are cold, matching real instruction-stream skew);
* the region body executes in order; with a loop, the body repeats
  while the back-edge is taken;
* each branch's outcome comes from its behaviour model, fed the current
  global outcome history — so correlated behaviours inside a region see
  the outcomes of the branches just before them, exactly the
  neighboring-branch correlation global-history predictors exploit.

Addresses: regions are laid out ``region_stride`` words apart starting
at ``base_address``; branch sites take consecutive *even* word
addresses, loop back-edges an *odd* address (the BTFNT convention used
by :class:`repro.predictors.static_.BTFNTPredictor`).  Distinct static
branches always receive distinct addresses; table aliasing then arises
naturally from low-order address-bit collisions, as in real predictors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from random import Random
from typing import List, Optional, Sequence

import numpy as np

from repro.traces.record import BranchTrace
from repro.workloads.components import BranchBehavior, LoopBehavior

__all__ = ["BranchSite", "Region", "Program", "zipf_weights"]


@dataclass
class BranchSite:
    """One static conditional branch: an address and a behaviour."""

    address: int
    behavior: BranchBehavior

    def __post_init__(self) -> None:
        if self.address < 0:
            raise ValueError(f"address must be >= 0, got {self.address}")


@dataclass
class Region:
    """A straight-line branch sequence, optionally looped.

    Attributes
    ----------
    body:
        Branch sites executed in order once per (loop) iteration.
    loop:
        Optional back-edge site; its behaviour should be a
        :class:`LoopBehavior` (enforced).  When present, the body
        re-executes while the back-edge is taken.
    max_iterations:
        Safety valve on loop visits (runaway behaviours cannot stall
        generation).
    """

    body: List[BranchSite]
    loop: Optional[BranchSite] = None
    max_iterations: int = 4096

    def __post_init__(self) -> None:
        if self.loop is not None and not isinstance(self.loop.behavior, LoopBehavior):
            raise TypeError("region loop site must use a LoopBehavior")
        if not self.body and self.loop is None:
            raise ValueError("region must contain at least one branch site")

    def sites(self) -> List[BranchSite]:
        """All static sites in the region (body then back-edge)."""
        return self.body + ([self.loop] if self.loop is not None else [])

    def execute(self, emit, history_ref: List[int], rng: Random) -> None:
        """Run the region once, emitting ``(pc, taken)`` via ``emit``.

        ``history_ref`` is a 1-element list holding the global history
        integer, shared with the :class:`Program` driver (a mutable cell
        keeps the hot path free of attribute lookups).
        """
        iterations = 0
        for site in self.body:
            site.behavior.sync()
        if self.loop is not None:
            self.loop.behavior.sync()
        while True:
            for site in self.body:
                history = history_ref[0]
                taken = site.behavior.next_outcome(history, rng)
                emit(site.address, taken)
                history_ref[0] = ((history << 1) | taken) & 0xFFFFFFFF
            if self.loop is None:
                return
            history = history_ref[0]
            taken = self.loop.behavior.next_outcome(history, rng)
            emit(self.loop.address, taken)
            history_ref[0] = ((history << 1) | taken) & 0xFFFFFFFF
            iterations += 1
            if not taken or iterations >= self.max_iterations:
                return


def zipf_weights(n: int, skew: float = 1.0) -> np.ndarray:
    """Zipf popularity weights ``1/rank**skew``, normalized to sum 1."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if skew < 0:
        raise ValueError(f"skew must be >= 0, got {skew}")
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks**-skew
    return weights / weights.sum()


@dataclass
class Program:
    """A control-flow walk over regions; running it emits a branch trace.

    Execution follows a **deterministic cyclic schedule**: each region
    carries a small cyclic list of successor region indices, advanced by
    one on every exit.  A region's schedule encodes its control-flow
    habits — self-entries give repeat bursts, a dominant successor gives
    the fall-through path, occasional other entries give the excursions
    (rare callees, error paths).  Global branch history only carries
    predictive value when control flow is repetitive, and real control
    flow is overwhelmingly repetitive (hot loops, phase behaviour);
    random-walk dispatch would bury predictors in unique history
    contexts that a short trace can never warm up.

    A small ``jump_prob`` adds Zipf-weighted random jumps on top —
    interrupts, indirect calls through cold tables — which is the
    walk's only dispatch-level stochasticity.

    Attributes
    ----------
    regions:
        The program's regions.
    schedule:
        Per region, a non-empty cyclic list of successor region indices.
        ``None`` gives every region the schedule ``[next region]`` (one
        big ring).
    weights:
        Popularity used for the start region and for random jumps
        (defaults to Zipf with skew 1 over the region order).
    jump_prob:
        Probability, per region execution, of a random Zipf jump.
    name:
        Benchmark name recorded on generated traces.
    """

    regions: List[Region]
    schedule: Optional[List[List[int]]] = None
    weights: Optional[Sequence[float]] = None
    jump_prob: float = 0.01
    name: str = ""
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.regions:
            raise ValueError("program must contain at least one region")
        n = len(self.regions)
        if self.schedule is None:
            self.schedule = [[(i + 1) % n] for i in range(n)]
        if len(self.schedule) != n:
            raise ValueError("need one schedule per region")
        for i, entries in enumerate(self.schedule):
            if not entries:
                raise ValueError(f"region {i} has an empty schedule")
            for target in entries:
                if not 0 <= target < n:
                    raise ValueError(f"region {i}: bad schedule target {target}")
        if self.weights is None:
            self.weights = zipf_weights(n)
        self.weights = np.asarray(self.weights, dtype=np.float64)
        if len(self.weights) != n:
            raise ValueError(f"{len(self.weights)} weights for {n} regions")
        if (self.weights < 0).any() or self.weights.sum() <= 0:
            raise ValueError("weights must be non-negative and sum to > 0")
        self.weights = self.weights / self.weights.sum()
        if not 0.0 <= self.jump_prob <= 1.0:
            raise ValueError(f"jump_prob must be in [0, 1], got {self.jump_prob}")

    def static_sites(self) -> List[BranchSite]:
        """Every static branch site in the program."""
        sites: List[BranchSite] = []
        for region in self.regions:
            sites.extend(region.sites())
        return sites

    def reset(self) -> None:
        for site in self.static_sites():
            site.behavior.reset()

    def run(self, length: int, seed: int = 0) -> BranchTrace:
        """Generate ``length`` dynamic conditional branches.

        Deterministic in ``(program, length, seed)``.  Behaviour state
        is reset first, so repeated runs are reproducible.
        """
        if length < 0:
            raise ValueError(f"length must be >= 0, got {length}")
        self.reset()
        rng = Random(seed)
        # numpy generator only for the bulk random-jump draws
        chooser = np.random.default_rng(seed ^ 0x5EED)
        jump_targets = chooser.choice(
            len(self.regions), size=max(64, length // 16 + 16), p=self.weights
        )
        jump_pos = 0

        pcs: List[int] = []
        outcomes: List[int] = []
        append_pc = pcs.append
        append_outcome = outcomes.append

        def emit(pc: int, taken: bool) -> None:
            append_pc(pc)
            append_outcome(taken)

        def random_jump() -> int:
            nonlocal jump_pos
            if jump_pos >= len(jump_targets):
                jump_pos = 0
            target = int(jump_targets[jump_pos])
            jump_pos += 1
            return target

        history_ref = [0]
        current = random_jump()
        jump_prob = self.jump_prob
        schedule = self.schedule
        pointers = [0] * len(self.regions)
        regions = self.regions
        while len(pcs) < length:
            regions[current].execute(emit, history_ref, rng)
            if jump_prob and rng.random() < jump_prob:
                current = random_jump()
                continue
            entries = schedule[current]
            pointer = pointers[current]
            pointers[current] = pointer + 1 if pointer + 1 < len(entries) else 0
            current = entries[pointer]

        trace = BranchTrace(
            pcs=np.asarray(pcs[:length], dtype=np.int64),
            outcomes=np.asarray(outcomes[:length], dtype=bool),
            name=self.name,
            metadata=dict(self.metadata),
        )
        return trace
