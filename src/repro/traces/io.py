"""Trace persistence.

Traces serialize to two formats:

* **``.npz``** (binary, compact) — portable interchange; round-trips
  arrays, name and metadata.
* **text** — one ``pc taken`` pair per line (pc in hex), matching the
  classic trace-file shape of academic branch-prediction tools, so
  externally produced traces can be imported.

Generated benchmark traces no longer live as ``.npz`` in the cache:
:class:`repro.traces.store.TraceStore` keeps them as uncompressed,
memory-mapped ``.npy`` pairs (and can import/export ``.npz`` for
interchange).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.traces.record import BranchTrace

__all__ = ["save_npz", "load_npz", "save_text", "load_text"]


def save_npz(trace: BranchTrace, path) -> Path:
    """Write a trace to ``path`` in compressed ``.npz`` form."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(
        path,
        pcs=trace.pcs,
        outcomes=trace.outcomes,
        name=np.array(trace.name),
        metadata=np.array(json.dumps(trace.metadata)),
    )
    # np.savez appends .npz if missing; normalize the returned path
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_npz(path) -> BranchTrace:
    """Load a trace written by :func:`save_npz`."""
    path = Path(path)
    with np.load(path, allow_pickle=False) as data:
        metadata = {}
        if "metadata" in data:
            metadata = json.loads(str(data["metadata"]))
        return BranchTrace(
            pcs=data["pcs"],
            outcomes=data["outcomes"],
            name=str(data["name"]) if "name" in data else "",
            metadata=metadata,
        )


def save_text(trace: BranchTrace, path) -> Path:
    """Write ``pc taken`` lines; pc in hex, taken as ``T``/``N``.

    The header carries the trace name and (when present) its metadata
    as a ``# meta:`` JSON comment, so round-tripping through the text
    format preserves cache identity (``profile_seed``) and provenance.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as fh:
        if trace.name:
            fh.write(f"# trace: {trace.name}\n")
        if trace.metadata:
            fh.write(f"# meta: {json.dumps(trace.metadata)}\n")
        for pc, taken in zip(trace.pcs.tolist(), trace.outcomes.tolist()):
            fh.write(f"{pc:#x} {'T' if taken else 'N'}\n")
    return path


def load_text(path, name: str = "") -> BranchTrace:
    """Load ``pc taken`` lines.

    Accepts hex (``0x..``) or decimal PCs and ``T/N``, ``1/0`` or
    ``taken/not-taken`` outcome tokens; ``#`` starts a comment.  A
    ``# meta:`` header comment (written by :func:`save_text`) restores
    the trace metadata; a malformed one is ignored like any comment.
    """
    pcs = []
    outcomes = []
    trace_name = name
    metadata: dict = {}
    with open(path) as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                if line.startswith("# trace:") and not trace_name:
                    trace_name = line[len("# trace:"):].strip()
                elif line.startswith("# meta:") and not metadata:
                    try:
                        parsed = json.loads(line[len("# meta:"):].strip())
                        if isinstance(parsed, dict):
                            metadata = parsed
                    except json.JSONDecodeError:
                        pass
                continue
            parts = line.split()
            if len(parts) != 2:
                raise ValueError(f"{path}:{lineno}: expected 'pc outcome', got {line!r}")
            pc_text, outcome_text = parts
            pc = int(pc_text, 16) if pc_text.lower().startswith("0x") else int(pc_text)
            token = outcome_text.lower()
            if token in ("t", "1", "taken"):
                taken = True
            elif token in ("n", "0", "not-taken", "nt"):
                taken = False
            else:
                raise ValueError(f"{path}:{lineno}: unknown outcome token {outcome_text!r}")
            pcs.append(pc)
            outcomes.append(taken)
    return BranchTrace(
        pcs=np.asarray(pcs, dtype=np.int64),
        outcomes=np.asarray(outcomes, dtype=bool),
        name=trace_name,
        metadata=metadata,
    )
