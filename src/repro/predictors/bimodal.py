"""The Smith bimodal predictor [Smith81].

A single table of 2-bit counters indexed by low-order branch-address
bits — the "conventional two-bit counter scheme" the paper's Section 2.1
discusses, and exactly the structure the bi-mode predictor reuses as its
*choice predictor*.  It captures per-address bias (typically 80 %+
accuracy at modest cost) but no inter-branch correlation.
"""

from __future__ import annotations

import numpy as np

from repro.core.counters import CounterTable
from repro.core.indexing import mask
from repro.core.interfaces import (
    BranchPredictor,
    DetailedSimulation,
    SimulationResult,
)
from repro.traces.record import BranchTrace

__all__ = ["BimodalPredictor"]


class BimodalPredictor(BranchPredictor):
    """Per-address 2-bit counter table.

    Parameters
    ----------
    index_bits:
        log2 of the counter table size.
    counter_bits:
        Counter width (2 in all classic designs; other widths support
        the ablation studies).
    """

    scheme = "bimodal"

    def __init__(self, index_bits: int, counter_bits: int = 2):
        if index_bits < 0:
            raise ValueError(f"index_bits must be >= 0, got {index_bits}")
        init = 1 << (counter_bits - 1)  # weakly taken for any width
        self.index_bits = index_bits
        self.table = CounterTable(index_bits, bits=counter_bits, init=init)
        self._mask = mask(index_bits)

    @property
    def name(self) -> str:
        if self.table.bits != 2:
            return f"bimodal:index={self.index_bits},bits={self.table.bits}"
        return f"bimodal:index={self.index_bits}"

    def size_bits(self) -> int:
        return self.table.size_bits()

    def reset(self) -> None:
        self.table.reset()

    def predict(self, pc: int) -> bool:
        return self.table.predict(pc & self._mask)

    def update(self, pc: int, taken: bool) -> None:
        self.table.update(pc & self._mask, taken)

    def _counter_id(self, pc: int) -> int:
        """Counter attribution at the current state, for predictors that
        embed this one (tournament, bias filter)."""
        return pc & self._mask

    def _num_detail_counters(self) -> int:
        return self.table.size

    def simulate(self, trace: BranchTrace) -> SimulationResult:
        predictions, _ = self._run(trace, want_counters=False)
        return SimulationResult(
            predictor_name=self.name,
            trace_name=trace.name,
            predictions=predictions,
            outcomes=trace.outcomes,
        )

    def simulate_detailed(self, trace: BranchTrace) -> DetailedSimulation:
        predictions, counter_ids = self._run(trace, want_counters=True)
        result = SimulationResult(
            predictor_name=self.name,
            trace_name=trace.name,
            predictions=predictions,
            outcomes=trace.outcomes,
        )
        return DetailedSimulation(
            result=result,
            counter_ids=counter_ids,
            num_counters=self.table.size,
            pcs=trace.pcs,
        )

    def _run(self, trace: BranchTrace, want_counters: bool):
        n = len(trace)
        predictions = np.empty(n, dtype=bool)
        idx_arr = trace.pcs & self._mask
        counter_ids = idx_arr.copy() if want_counters else None
        indices = idx_arr.tolist()
        outcomes = trace.outcomes.tolist()
        states = self.table.states
        threshold = self.table.threshold
        max_state = self.table.max_state

        for i in range(n):
            j = indices[i]
            state = states[j]
            predictions[i] = state >= threshold
            if outcomes[i]:
                if state < max_state:
                    states[j] = state + 1
            elif state > 0:
                states[j] = state - 1
        return predictions, counter_ids
