#!/usr/bin/env python
"""Full report — regenerate a compact reproduction report in one run.

Produces ``results/REPORT.md``: the headline Figure-2 sweep, the
Figure-5/6 bias areas, the Figure-7 class breakdown and the Table-4
interference counts, all at a configurable (default: reduced) scale so
the whole thing finishes in about a minute cold and seconds warm.

This is the "show me everything" entry point; for the full-scale
assertion-checked versions run ``pytest benchmarks/ --benchmark-only``.

Run with::

    python examples/full_report.py [--scale 0.25] [--out results/REPORT.md]
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.analysis.bias import analyze_substreams, counter_bias_table
from repro.analysis.breakdown import misprediction_breakdown
from repro.analysis.interference import count_class_changes
from repro.analysis.sweep import paper_sweep
from repro.core.registry import make_predictor
from repro.sim.engine import run_detailed
from repro.sim.runner import ResultCache
from repro.workloads.profiles import get_profile
from repro.workloads.suite import load_suite, suite_names


def markdown_table(headers, rows) -> str:
    lines = ["| " + " | ".join(str(h) for h in headers) + " |"]
    lines.append("|" + "---|" * len(headers))
    for row in rows:
        lines.append("| " + " | ".join(str(cell) for cell in row) + " |")
    return "\n".join(lines)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.25,
                        help="trace length scale vs benchmark defaults")
    parser.add_argument("--out", default="results/REPORT.md")
    args = parser.parse_args()

    sections = ["# Bi-mode reproduction report\n"]

    # -- Figure 2 (CINT95, reduced) -----------------------------------------
    lengths = {
        name: max(30_000, int(get_profile(name).default_length * args.scale))
        for name in suite_names("cint95")
    }
    print("loading CINT95 traces...")
    traces = {
        name: __import__("repro.workloads.suite", fromlist=["load_benchmark"])
        .load_benchmark(name, length=length)
        for name, length in lengths.items()
    }
    print("sweeping sizes (cached after first run)...")
    series = paper_sweep(traces, kb_points=[0.25, 1.0, 4.0, 16.0], cache=ResultCache())
    rows = [
        [label] + [f"{100 * p.average:.2f}%" for p in sweep.points]
        for label, sweep in series.items()
    ]
    sections.append("## Figure 2 — CINT95 average misprediction vs size\n")
    sections.append(markdown_table(
        ["scheme", "0.25KB", "1KB", "4KB", "16KB"], rows) + "\n")

    # -- Figures 5/6 + Table 4 on gcc ----------------------------------------
    print("bias analysis on gcc...")
    gcc = traces["gcc"]
    bias_rows = []
    t4_rows = []
    breakdown_rows = []
    for label, spec in (
        ("history-indexed gshare", "gshare:index=8,hist=8"),
        ("address-indexed gshare", "gshare:index=8,hist=2"),
        ("bi-mode", "bimode:dir=7,hist=7,choice=7"),
    ):
        detailed = run_detailed(make_predictor(spec), gcc)
        analysis = analyze_substreams(detailed)
        table = counter_bias_table(analysis)
        bias_rows.append([
            label,
            f"{100 * table[:, 0].mean():.1f}%",
            f"{100 * table[:, 1].mean():.1f}%",
            f"{100 * table[:, 2].mean():.1f}%",
        ])
        changes = count_class_changes(detailed, analysis)
        t4_rows.append([label, changes.dominant, changes.non_dominant,
                        changes.wb, changes.total])
        b = misprediction_breakdown(analysis)
        breakdown_rows.append([
            label, f"{100 * b.snt:.2f}%", f"{100 * b.st:.2f}%",
            f"{100 * b.wb:.2f}%", f"{100 * b.overall:.2f}%",
        ])

    sections.append("## Figures 5/6 — per-counter bias areas (gcc, 256 counters)\n")
    sections.append(markdown_table(
        ["scheme", "dominant", "non-dominant", "WB"], bias_rows) + "\n")
    sections.append("## Figure 7 — misprediction by bias class (gcc)\n")
    sections.append(markdown_table(
        ["scheme", "SNT", "ST", "WB", "overall"], breakdown_rows) + "\n")
    sections.append("## Table 4 — bias-class interference changes (gcc)\n")
    sections.append(markdown_table(
        ["scheme", "dominant", "non-dominant", "WB", "total"], t4_rows) + "\n")

    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text("\n".join(sections))
    print(f"\nwrote {out}")
    print("\n".join(sections))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
