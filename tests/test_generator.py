"""Unit tests for the profile-driven program generator."""

import numpy as np
import pytest

from repro.workloads.cfg import Program
from repro.workloads.components import LoopBehavior
from repro.workloads.generator import (
    KERNEL_BASE,
    build_program,
    generate_trace,
)
from repro.workloads.profiles import get_profile


class TestBuildProgram:
    def test_static_budget_consumed_exactly(self):
        for name in ("xlisp", "compress", "perl"):
            profile = get_profile(name)
            program = build_program(profile)
            assert len(program.static_sites()) == profile.static_branches

    def test_deterministic_in_seed(self):
        a = build_program(get_profile("xlisp"), seed=5)
        b = build_program(get_profile("xlisp"), seed=5)
        assert [s.address for s in a.static_sites()] == [
            s.address for s in b.static_sites()
        ]

    def test_different_seeds_give_different_programs(self):
        a = build_program(get_profile("xlisp"), seed=1)
        b = build_program(get_profile("xlisp"), seed=2)
        assert [repr(s.behavior) for s in a.static_sites()] != [
            repr(s.behavior) for s in b.static_sites()
        ]

    def test_addresses_unique(self):
        program = build_program(get_profile("gcc"))
        addresses = [s.address for s in program.static_sites()]
        assert len(addresses) == len(set(addresses))

    def test_loop_backedges_have_odd_addresses(self):
        program = build_program(get_profile("xlisp"))
        for region in program.regions:
            if region.loop is not None:
                assert region.loop.address % 2 == 1
                assert isinstance(region.loop.behavior, LoopBehavior)
            for site in region.body:
                assert site.address % 2 == 0

    def test_user_profile_has_no_kernel_addresses(self):
        program = build_program(get_profile("gcc"))  # kernel_fraction 0
        assert all(s.address < KERNEL_BASE for s in program.static_sites())

    def test_ibs_profile_has_kernel_regions(self):
        program = build_program(get_profile("sdet"))
        kernel = [s for s in program.static_sites() if s.address >= KERNEL_BASE]
        user = [s for s in program.static_sites() if s.address < KERNEL_BASE]
        assert kernel and user
        # sdet is system-call heavy: kernel share should dominate user
        assert len(kernel) > len(user) * 0.6

    def test_every_region_scheduled(self):
        program = build_program(get_profile("xlisp"))
        reachable = set()
        for entries in program.schedule:
            reachable.update(entries)
        assert reachable == set(range(len(program.regions)))

    def test_returns_program(self):
        assert isinstance(build_program(get_profile("vortex")), Program)


class TestGenerateTrace:
    def test_length_default_from_profile(self):
        profile = get_profile("compress")
        trace = generate_trace(profile, length=1000)
        assert len(trace) == 1000

    def test_metadata(self):
        trace = generate_trace(get_profile("gcc"), length=500)
        assert trace.metadata["suite"] == "cint95"
        assert trace.metadata["paper_static"] == 16_035
        assert trace.metadata["paper_dynamic"] == 26_520_618
        assert trace.metadata["kernel_base"] == KERNEL_BASE

    def test_deterministic(self):
        a = generate_trace(get_profile("xlisp"), length=2000, seed=4)
        b = generate_trace(get_profile("xlisp"), length=2000, seed=4)
        assert a == b

    def test_name(self):
        assert generate_trace(get_profile("go"), length=100).name == "go"

    def test_covers_most_static_branches(self):
        """The walk must visit nearly the whole static footprint in a
        realistic trace length (Table 2 comparability)."""
        profile = get_profile("xlisp")
        trace = generate_trace(profile, length=120_000)
        coverage = trace.num_static / profile.static_branches
        assert coverage > 0.9

    def test_taken_rate_plausible(self):
        trace = generate_trace(get_profile("perl"), length=20_000)
        assert 0.3 < trace.taken_rate < 0.8

    def test_predictability_ordering(self):
        """vortex (easy) must be more predictable than go (hard) for a
        reference predictor."""
        from repro.predictors.gshare import GSharePredictor
        from repro.sim.engine import run

        easy = generate_trace(get_profile("vortex"), length=40_000)
        hard = generate_trace(get_profile("go"), length=40_000)
        rate_easy = run(GSharePredictor(12), easy).misprediction_rate
        rate_hard = run(GSharePredictor(12), hard).misprediction_rate
        assert rate_easy < rate_hard
