"""Figure 7 — misprediction contributed by bias class, gcc.

Three schemes at three second-level sizes (256, 1K, 32K counters):

* ``gshare(few)`` — fewer history bits (address-indexed flavour);
* ``gshare(full)`` — full history (history-indexed flavour);
* ``bi-mode`` — direction banks at half size plus half-size choice,
  the paper's 'choice predictor half its second-level table' setup.

Each bar decomposes the total misprediction rate into the SNT, ST and
WB substream classes.  Paper shapes:

* the few-history gshare always has the least strong-class (SNT+ST)
  error but the most WB error;
* the full-history gshare trades WB error for strong-class error;
* bi-mode keeps the low WB error while reducing strong-class error in
  most configurations;
* everything improves with size.
"""

from __future__ import annotations

import pytest

from benchmarks.common import detailed_summaries, emit_table, load_detailed_trace

#: (log2 counters, few-history bits) per the paper's 256 / 1K / 32K axis;
#: paper used gshare(2)/gshare(8), gshare(4)/gshare(10), gshare(9)/gshare(15).
SIZES = [(8, 2), (10, 4), (15, 9)]
BENCHMARK = "gcc"


def _schemes(bits, few):
    return [
        (f"gshare({few})", f"gshare:index={bits},hist={few}"),
        (f"gshare({bits})", f"gshare:index={bits},hist={bits}"),
        (
            f"bi-mode({bits - 1})",
            f"bimode:dir={bits - 1},hist={bits - 1},choice={bits - 2}",
        ),
    ]


def compute_breakdowns(trace, sizes):
    """``(counters, label, breakdown-dict)`` per cell, via the parallel
    detailed pipeline (one supervised task per cell under $REPRO_JOBS)."""
    cells = [
        (1 << bits, label, spec)
        for bits, few in sizes
        for label, spec in _schemes(bits, few)
    ]
    summaries = detailed_summaries(
        [spec for _, _, spec in cells],
        {trace.name: trace},
        stem=f"breakdown_{trace.name}",
    )
    return [
        (counters, label, summaries[spec][trace.name]["breakdown"])
        for counters, label, spec in cells
    ]


@pytest.mark.benchmark(group="fig7")
def test_fig7_gcc_breakdown(benchmark):
    trace = load_detailed_trace(BENCHMARK)
    results = benchmark.pedantic(
        compute_breakdowns, args=(trace, SIZES), rounds=1, iterations=1
    )

    rows = [
        [
            counters,
            label,
            f"{100 * b['snt']:.2f}%",
            f"{100 * b['st']:.2f}%",
            f"{100 * b['wb']:.2f}%",
            f"{100 * b['overall']:.2f}%",
        ]
        for counters, label, b in results
    ]
    emit_table(
        "fig7_gcc_breakdown",
        f"Figure 7 — misprediction by bias class, {BENCHMARK}",
        ["counters", "scheme", "SNT", "ST", "WB", "overall"],
        rows,
    )

    def strong(b):
        return b["snt"] + b["st"]

    by_size = {}
    for counters, label, b in results:
        by_size.setdefault(counters, []).append((label, b))

    for counters, entries in by_size.items():
        few_b = entries[0][1]
        full_b = entries[1][1]
        bimode_b = entries[2][1]
        # few-history: least strong-class error where aliasing binds
        # (256/1K counters).  At 32K aliasing is gone and the longer
        # history's finer substream split narrows the comparison to a
        # near-tie either way on the scaled traces, so the tolerance
        # widens to 1pt there (see EXPERIMENTS.md).  WB error is still
        # largest for few-history at every size.
        tol = 0.01 if counters >= 32768 else 0.005
        assert strong(few_b) <= strong(full_b) + tol, counters
        assert few_b["wb"] >= full_b["wb"] - 1e-9, counters
        # bi-mode: strong-class error below full-history gshare
        assert strong(bimode_b) < strong(full_b), counters
        # bi-mode keeps the WB advantage of history
        assert bimode_b["wb"] <= few_b["wb"] + 1e-9, counters

    # everything improves with size (compare best overall at 256 vs 32K)
    small = min(b["overall"] for _, b in by_size[256])
    large = min(b["overall"] for _, b in by_size[32768])
    assert large < small
