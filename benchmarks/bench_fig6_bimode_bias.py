"""Figure 6 — per-counter bias breakdown for bi-mode on gcc.

The paper's Figure 6 runs a bi-mode with a 128-counter choice predictor
and two 128-counter direction banks (256 direction counters total —
comparable to the Figure 5 predictors plus 50% for the choice table)
and shows that the dominant class dominates most direction counters:
the WB area stays as small as history-indexed gshare's while the
non-dominant area nearly vanishes.

Shape checks against the Figure 5 measurement on the same trace:

* bi-mode WB area ≈ history-indexed gshare's WB area (small);
* bi-mode non-dominant area < history-indexed gshare's;
* bi-mode dominant area > history-indexed gshare's.
"""

from __future__ import annotations

import pytest

from benchmarks.common import emit_table, load_bench_trace, results_dir
from repro.analysis.bias import analyze_substreams, counter_bias_table
from repro.analysis.report import write_csv
from repro.core.registry import make_predictor
from repro.sim.engine import run_detailed

BIMODE_SPEC = "bimode:dir=7,hist=7,choice=7"  # 2x128 direction + 128 choice
GSHARE_SPEC = "gshare:index=8,hist=8"  # the Figure 5 history-indexed reference
ADDRESS_SPEC = "gshare:index=8,hist=2"


def _areas(table):
    return (
        float(table[:, 0].mean()),
        float(table[:, 1].mean()),
        float(table[:, 2].mean()),
    )


@pytest.mark.benchmark(group="fig6")
def test_fig6_bimode_bias_breakdown(benchmark):
    trace = load_bench_trace("gcc")

    def compute():
        tables = {}
        for label, spec in (
            ("bi-mode", BIMODE_SPEC),
            ("history-indexed", GSHARE_SPEC),
            ("address-indexed", ADDRESS_SPEC),
        ):
            detailed = run_detailed(make_predictor(spec), trace)
            tables[label] = counter_bias_table(analyze_substreams(detailed))
        return tables

    tables = benchmark.pedantic(compute, rounds=1, iterations=1)

    rows = []
    for label, table in tables.items():
        dom, non, wb = _areas(table)
        rows.append(
            [label, len(table), f"{100 * dom:.1f}%", f"{100 * non:.1f}%", f"{100 * wb:.1f}%"]
        )
    emit_table(
        "fig6_bias_areas",
        "Figure 6 — bi-mode bias areas vs Figure 5 references, gcc",
        ["scheme", "counters used", "dominant", "non-dominant", "WB"],
        rows,
    )
    write_csv(
        results_dir() / "fig6_bimode_counters.csv",
        ["dominant", "non_dominant", "wb"],
        [list(map(float, row)) for row in tables["bi-mode"]],
    )

    b_dom, b_non, b_wb = _areas(tables["bi-mode"])
    g_dom, g_non, g_wb = _areas(tables["history-indexed"])
    a_dom, a_non, a_wb = _areas(tables["address-indexed"])

    assert b_non < g_non, "bi-mode must reduce the non-dominant area"
    assert b_dom > g_dom, "bi-mode must enlarge the dominant area"
    # WB advantage of history preserved: bi-mode's WB area stays well
    # below the address-indexed scheme's
    assert b_wb < a_wb
    # and in the history-indexed scheme's neighbourhood (paper: "as small")
    assert b_wb < 1.5 * g_wb
