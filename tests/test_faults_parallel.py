"""End-to-end fault-tolerance tests for sweep execution.

These inject real faults — worker exceptions, hard worker kills,
stragglers, mid-sweep SIGINT, corrupted cache files — into real
``ProcessPoolExecutor`` sweeps and assert the supervision machinery's
contract: completed work is never discarded or recomputed, failed cells
are retried, salvaged serially, or quarantined, and an interrupted
journalled sweep resumes bit-identically.

Call counts are asserted through the cross-process fault-point trace
(``$REPRO_FAULT_TRACE``), so "benchmark X was simulated exactly once"
holds across the parent and every worker process.
"""

import pytest

from repro import faults, health
from repro.sim.journal import SweepJournal
from repro.sim.parallel import (
    FailedCell,
    TaskPolicy,
    evaluate_matrix_parallel,
)
from repro.sim.runner import ResultCache, evaluate_matrix, trace_key
from repro.workloads.generator import generate_trace
from repro.workloads.profiles import get_profile

SPECS = [
    "gshare:index=8,hist=8",
    "gshare:index=8,hist=2",
    "bimode:dir=6,hist=6,choice=6",
]

#: SPECS spans one gshare family and one bi-mode family, and the
#: parallel planner ships one supervised task per (trace, family) —
#: so each benchmark's cells are simulated in exactly this many tasks.
FAMILIES = 2

BENCHES = ("gcc", "xlisp", "compress")


@pytest.fixture(scope="module")
def traces():
    return {
        name: generate_trace(get_profile(name), length=6_000, seed=7)
        for name in BENCHES
    }


@pytest.fixture(scope="module")
def serial_reference(traces):
    return evaluate_matrix(SPECS, traces, jobs=1)


@pytest.fixture(autouse=True)
def clean_slate(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "shared-cache"))
    health.clear()
    yield
    health.clear()


class TestWorkerCrashSalvage:
    """ISSUE acceptance: one crashing worker must not discard, or force
    a recompute of, the benchmarks whose workers succeeded."""

    def test_completed_benches_not_recomputed(
        self, traces, serial_reference, tmp_path
    ):
        with faults.traced(tmp_path / "trace"):
            with faults.inject("worker:raise:bench=gcc,where=worker"):
                result = evaluate_matrix_parallel(
                    SPECS,
                    traces,
                    jobs=2,
                    policy=TaskPolicy(retries=1, backoff=0.0),
                )
        assert result == serial_reference
        assert result.failures == []

        counts = faults.trace_counts(tmp_path / "trace", site="evaluate")
        # every healthy benchmark was simulated exactly once per family
        # task, in its own worker — the gcc crash did not trigger any
        # recompute
        assert counts[("evaluate", "xlisp")] == FAMILIES
        assert counts[("evaluate", "compress")] == FAMILIES
        # gcc itself was only ever simulated by the in-parent salvage:
        # the injected fault fired at worker entry, before simulation
        assert counts[("evaluate", "gcc")] == FAMILIES
        # the worker-side attempts really happened (initial + 1 retry,
        # for each of gcc's family tasks)
        worker_hits = faults.trace_counts(tmp_path / "trace", site="worker")
        assert worker_hits[("worker", "gcc")] == 2 * FAMILIES

    def test_salvage_reported_as_degradation(self, traces):
        with faults.inject("worker:raise:bench=gcc,where=worker"):
            evaluate_matrix_parallel(
                SPECS, traces, jobs=2, policy=TaskPolicy(retries=0, backoff=0.0)
            )
        kinds = {e.actual for e in health.events(component="parallel-pool")}
        assert "worker-raised" in kinds
        assert "serial-salvage" in kinds


class TestQuarantine:
    """ISSUE acceptance: a cell failing every retry *and* the serial
    salvage is quarantined as exactly one structured FailedCell."""

    def test_exactly_one_failed_cell_per_family(self, traces, serial_reference):
        with faults.inject("evaluate:raise:bench=gcc"):
            result = evaluate_matrix_parallel(
                SPECS, traces, jobs=2, policy=TaskPolicy(retries=1, backoff=0.0)
            )

        # one quarantined cell per family task, together covering
        # exactly gcc's spec grid
        assert len(result.failures) == FAMILIES
        covered = set()
        for cell in result.failures:
            assert isinstance(cell, FailedCell)
            assert cell.bench == "gcc"
            assert cell.error_type == "FaultInjected"
            assert "injected fault" in cell.message
            assert "FaultInjected" in cell.traceback
            assert cell.attempts == 3  # 2 pool attempts + 1 serial salvage
            assert not covered & set(cell.specs)
            covered |= set(cell.specs)
        assert covered == set(SPECS)
        assert result.quarantined_benches == ["gcc"]

        # the quarantined benchmark is omitted from the matrix, not
        # poisoned with partial data …
        for spec in SPECS:
            assert "gcc" not in result[spec]
        # … and every other benchmark is still correct
        for spec in SPECS:
            for bench in ("xlisp", "compress"):
                assert result[spec][bench] == serial_reference[spec][bench]

        events = health.events(component="sweep", severity="error")
        assert len(events) == FAMILIES
        assert all(event.actual == "quarantined" for event in events)

    def test_serial_path_quarantines_too(self, traces, serial_reference):
        with faults.inject("evaluate:raise:bench=gcc"):
            result = evaluate_matrix_parallel(SPECS, traces, jobs=1)
        assert [cell.bench for cell in result.failures] == ["gcc"]
        for spec in SPECS:
            assert result[spec]["xlisp"] == serial_reference[spec]["xlisp"]


class TestKilledWorker:
    def test_hard_killed_worker_reseeds_pool(self, traces, serial_reference):
        # os._exit in the worker → BrokenProcessPool → fresh pool, retry;
        # gcc exhausts its pool attempts and is salvaged in-parent
        # (the exit action never fires outside a worker).
        with faults.inject("worker:exit:bench=gcc"):
            result = evaluate_matrix_parallel(
                SPECS, traces, jobs=2, policy=TaskPolicy(retries=2, backoff=0.0)
            )
        assert result == serial_reference
        assert result.failures == []
        kinds = {e.actual for e in health.events(component="parallel-pool")}
        assert "pool-broken" in kinds


class TestTimeout:
    def test_straggler_is_abandoned_and_salvaged(self, traces, serial_reference):
        # the gcc worker wedges for 30 s; the supervisor times it out,
        # abandons the pool, and the parent salvages the cell serially
        with faults.inject("worker:sleep:seconds=30,bench=gcc,where=worker"):
            result = evaluate_matrix_parallel(
                SPECS,
                traces,
                jobs=2,
                policy=TaskPolicy(timeout=0.5, retries=0, backoff=0.0),
            )
        assert result == serial_reference
        assert result.failures == []
        timeouts = [
            e
            for e in health.events(component="parallel-pool")
            if e.actual == "task-timeout"
        ]
        assert timeouts and "REPRO_TASK_TIMEOUT" in timeouts[0].reason


class TestCorruptCacheMidSweep:
    def test_sweep_survives_corrupted_cache_table(
        self, traces, serial_reference, tmp_path
    ):
        cache = ResultCache(tmp_path / "rc")
        first = evaluate_matrix(SPECS, traces, cache=cache, jobs=1)
        assert first == serial_reference

        victim = trace_key(traces["gcc"])
        path = faults.corrupt_cache_file(cache, victim)
        rerun = evaluate_matrix(SPECS, traces, cache=cache, jobs=1)
        assert rerun == serial_reference
        # the corrupt table was quarantined for inspection, not deleted
        quarantined = list(path.parent.glob(f"{victim}.json.corrupt-*"))
        assert len(quarantined) == 1
        assert health.events(component="result-cache", severity="degraded")


class TestCompilerDenied:
    def test_bimode_kernel_reports_fallback(self, traces):
        from repro.sim.batch_bimode import bimode_lane_for_spec, bimode_lane_rates

        lane = bimode_lane_for_spec("bimode:dir=6,hist=6,choice=6")
        baseline = bimode_lane_rates([lane], traces["gcc"])
        health.clear()
        with faults.deny_compiler():
            denied = bimode_lane_rates([lane], traces["gcc"])
            (event,) = health.events(component="bimode-kernel")
            assert event.expected == "c"
            assert event.actual in ("numpy", "python")
            assert event.severity == "degraded"
            assert "REPRO_NO_CC" in event.reason
        # dispatch chain degradation never changes the numbers
        assert denied == baseline


class TestInterruptAndResume:
    """ISSUE acceptance: SIGINT mid-Figure-3-sweep, then resume — the
    table is bit-identical and only incomplete cells are re-simulated."""

    KB_POINTS = (1 / 64, 1 / 32)

    def _sweep(self, traces, journal=None):
        from repro.analysis.sweep import paper_sweep

        return paper_sweep(
            traces, kb_points=self.KB_POINTS, cache=None, jobs=1, journal=journal
        )

    @staticmethod
    def _table(series):
        return {
            label: [(point.spec, point.per_benchmark) for point in sweep.points]
            for label, sweep in series.items()
        }

    def test_resume_is_bit_identical(self, traces, tmp_path):
        reference = self._table(self._sweep(traces))

        journal = SweepJournal(tmp_path / "fig3.jsonl")
        # SIGINT as the second benchmark starts simulating: the journal
        # then holds the bi-mode prepass plus the first benchmark only
        with faults.inject("evaluate:sigint:nth=2"):
            with pytest.raises(KeyboardInterrupt):
                self._sweep(traces, journal=journal)
        assert len(SweepJournal(journal.path)) > 0

        resumed_journal = SweepJournal(journal.path)
        with faults.traced(tmp_path / "trace"):
            resumed = self._table(self._sweep(traces, journal=resumed_journal))

        assert resumed == reference  # bit-identical, not approximately
        assert resumed_journal.resumed_cells > 0

        # only the interrupted and never-started benchmarks were
        # re-simulated; the completed first benchmark came entirely
        # from the journal
        counts = faults.trace_counts(tmp_path / "trace", site="evaluate")
        assert ("evaluate", "gcc") not in counts
        assert counts[("evaluate", "xlisp")] == 1
        assert counts[("evaluate", "compress")] == 1

    def test_parallel_resume_matches_serial(self, traces, tmp_path):
        journal = SweepJournal(tmp_path / "par.jsonl")
        with faults.inject("evaluate:sigint:nth=2"):
            with pytest.raises(KeyboardInterrupt):
                self._sweep(traces, journal=journal)

        from repro.analysis.sweep import paper_sweep

        resumed = self._table(
            paper_sweep(
                traces,
                kb_points=self.KB_POINTS,
                cache=None,
                jobs=2,
                journal=SweepJournal(journal.path),
            )
        )
        assert resumed == self._table(self._sweep(traces))
