"""Figure 5 — per-counter bias breakdown for gshare on gcc.

The paper compares two 256-counter gshare-style predictors on gcc:

* *history-indexed*: 8 address bits xor 8 history bits;
* *address-indexed*: 8 address bits xor 2 history bits;

plotting, per counter (sorted by WB share), the normalized dynamic
counts of the dominant, non-dominant, and weakly-biased substream
groups.  The address-indexed scheme has a larger WB area; the
history-indexed scheme has a larger non-dominant (destructive-aliasing)
area.

We reproduce the same 256-counter geometry on the gcc trace, print the
area summary, and write the full sorted per-counter table as CSV (the
data behind the stacked-area plot).
"""

from __future__ import annotations

import pytest

from benchmarks.common import (
    detailed_summaries,
    emit_table,
    load_detailed_trace,
    results_dir,
)
from repro.analysis.report import write_csv

SCHEMES = [
    ("history-indexed", "gshare:index=8,hist=8"),
    ("address-indexed", "gshare:index=8,hist=2"),
]


@pytest.mark.benchmark(group="fig5")
def test_fig5_gshare_bias_breakdown(benchmark):
    trace = load_detailed_trace("gcc")

    def compute():
        summaries = detailed_summaries(
            [spec for _, spec in SCHEMES],
            {"gcc": trace},
            stem="fig5_gcc",
            include_bias_table=True,
        )
        return {label: summaries[spec]["gcc"] for label, spec in SCHEMES}

    results = benchmark.pedantic(compute, rounds=1, iterations=1)

    rows = []
    for label, summary in results.items():
        areas = summary["bias_areas"]
        rows.append(
            [
                label,
                len(summary["bias_table"]),
                f"{100 * areas['dominant']:.1f}%",
                f"{100 * areas['non_dominant']:.1f}%",
                f"{100 * areas['wb']:.1f}%",
            ]
        )
        write_csv(
            results_dir() / f"fig5_{label.replace('-', '_')}_counters.csv",
            ["dominant", "non_dominant", "wb"],
            summary["bias_table"],
        )
    emit_table(
        "fig5_bias_areas",
        "Figure 5 — mean bias areas over 256 counters, gcc",
        ["scheme", "counters used", "dominant", "non-dominant", "WB"],
        rows,
    )

    history = results["history-indexed"]["bias_areas"]
    address = results["address-indexed"]["bias_areas"]
    # the paper's two observations
    assert history["wb"] < address["wb"], "more history must shrink the WB area"
    assert history["non_dominant"] > address["non_dominant"], (
        "more history must pay in destructive aliasing"
    )
