"""Unit tests for the predictor registry and spec strings."""

import pytest

from repro.core.bimode import BiModePredictor
from repro.core.registry import (
    available_schemes,
    bimode_at_kb,
    gshare_at_kb,
    make_predictor,
    parse_spec,
)
from repro.predictors.gshare import GSharePredictor


class TestParseSpec:
    def test_scheme_only(self):
        assert parse_spec("bimodal") == ("bimodal", {})

    def test_with_options(self):
        scheme, kwargs = parse_spec("gshare:index=12,hist=8")
        assert scheme == "gshare"
        assert kwargs == {"index": "12", "hist": "8"}

    def test_whitespace_tolerated(self):
        scheme, kwargs = parse_spec("gshare: index = 12 , hist = 8")
        assert kwargs == {"index": "12", "hist": "8"}

    def test_rejects_malformed_option(self):
        with pytest.raises(ValueError):
            parse_spec("gshare:index")

    def test_rejects_empty_scheme(self):
        with pytest.raises(ValueError):
            parse_spec(":index=1")


class TestMakePredictor:
    def test_by_spec_string(self):
        p = make_predictor("gshare:index=10,hist=6")
        assert isinstance(p, GSharePredictor)
        assert p.index_bits == 10
        assert p.history_bits == 6

    def test_by_kwargs(self):
        p = make_predictor("bimode", dir=8, hist=5)
        assert isinstance(p, BiModePredictor)
        assert p.history_bits == 5

    def test_unknown_scheme(self):
        with pytest.raises(ValueError, match="tage"):
            make_predictor("tage")

    def test_every_scheme_is_buildable(self):
        examples = {
            "bimode": {"dir": "6"},
            "gshare": {"index": "8"},
            "bimodal": {"index": "8"},
            "gag": {"hist": "6"},
            "gas": {"hist": "4", "select": "2"},
            "gap": {"hist": "4"},
            "gselect": {"hist": "4", "addr": "2"},
            "pag": {"hist": "4", "bht": "4"},
            "pas": {"hist": "4", "select": "2", "bht": "4"},
            "pap": {"hist": "3", "addr": "2", "bht": "4"},
            "perceptron": {"index": "6"},
            "agree": {"index": "8"},
            "gskew": {"bank": "6"},
            "yags": {"choice": "8", "cache": "6"},
            "tournament": {"index": "8"},
            "trimode": {"dir": "6"},
            "biasfilter": {"sub_index": "8"},
            "always-taken": {},
            "always-not-taken": {},
            "btfnt": {},
        }
        for scheme in available_schemes():
            assert scheme in examples, f"no example for {scheme}"
            p = make_predictor(scheme, **examples[scheme])
            assert p.size_bits() >= 0

    def test_spec_roundtrip_for_gshare(self):
        spec = "gshare:index=12,hist=7"
        assert make_predictor(spec).name == spec

    def test_bimode_ablation_flags(self):
        p = make_predictor("bimode:dir=6,full_update=1,choice_hist=1")
        assert p.full_update and p.choice_uses_history


class TestSpecErrorMessages:
    """Malformed specs must raise ValueError naming the offending spec,
    so a bad entry in a sweep's spec list is identifiable from the
    message alone."""

    @pytest.mark.parametrize(
        "spec",
        [
            "tage:index=10",  # unknown predictor
            "gshare:index=-3",  # negative bits
            "gshare:index=8,hist=12",  # hist > index
            "bimode:dir=6,hist=9",  # hist > dir
            "bimode:hist=4",  # missing required option
            "gshare:index=8,flavor=mild",  # unknown option
            "gshare:index=ten",  # non-numeric value
            "bimodal:index=30",  # absurd size (allocation guard)
        ],
    )
    def test_bad_spec_raises_valueerror_naming_spec(self, spec):
        with pytest.raises(ValueError) as excinfo:
            make_predictor(spec)
        assert spec in str(excinfo.value)

    def test_unknown_scheme_lists_alternatives(self):
        with pytest.raises(ValueError, match="available"):
            make_predictor("tage:index=10")

    @pytest.mark.parametrize(
        "typo, suggestion",
        [
            ("gshar:index=8", "gshare"),
            ("bimod:dir=6", "bimode"),
            ("trimod:dir=6", "trimode"),
            ("yag:choice=6,cache=5", "yags"),
        ],
    )
    def test_near_miss_scheme_suggests_nearest_name(self, typo, suggestion):
        with pytest.raises(ValueError) as excinfo:
            make_predictor(typo)
        message = str(excinfo.value)
        assert f"did you mean {suggestion!r}?" in message
        assert typo in message

    def test_far_miss_scheme_has_no_suggestion(self):
        with pytest.raises(ValueError) as excinfo:
            make_predictor("zzzzqqq:index=8")
        assert "did you mean" not in str(excinfo.value)

    def test_kwargs_form_also_reports_spec(self):
        with pytest.raises(ValueError, match="gshare:index=-3"):
            make_predictor("gshare", index=-3)


class TestSizeHelpers:
    def test_gshare_at_kb(self):
        p = gshare_at_kb(0.25)
        assert p.index_bits == 10
        assert p.size_bytes() == 256.0

    def test_gshare_at_kb_with_history(self):
        assert gshare_at_kb(1.0, history_bits=5).history_bits == 5

    def test_bimode_at_kb_costs_1_5x(self):
        p = bimode_at_kb(1.0)
        assert p.size_bytes() == pytest.approx(1.5 * 1024)

    def test_bimode_at_kb_banks_are_half(self):
        assert bimode_at_kb(0.5).bank_size == 1024

    def test_bimode_at_kb_clamps_history(self):
        p = bimode_at_kb(0.5, history_bits=20)
        assert p.history_bits == p.direction_index_bits

    def test_bimode_at_kb_rejects_tiny(self):
        with pytest.raises(ValueError):
            bimode_at_kb(0.25 / 1024)
