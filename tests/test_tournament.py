"""Unit tests for the McFarling tournament combiner."""

import numpy as np

from repro.predictors.bimodal import BimodalPredictor
from repro.predictors.gshare import GSharePredictor
from repro.predictors.static_ import (
    AlwaysNotTakenPredictor,
    AlwaysTakenPredictor,
)
from repro.predictors.tournament import TournamentPredictor
from repro.sim.engine import run, run_steps
from tests.conftest import make_toy_trace


def make(meta_bits=6):
    return TournamentPredictor(
        component_a=BimodalPredictor(index_bits=6),
        component_b=GSharePredictor(index_bits=6),
        meta_index_bits=meta_bits,
    )


class TestTournament:
    def test_meta_starts_selecting_component_b(self):
        # weakly-taken meta counter selects component b
        p = TournamentPredictor(
            AlwaysNotTakenPredictor(), AlwaysTakenPredictor(), meta_index_bits=4
        )
        assert p.predict(0) is True

    def test_meta_learns_better_component(self):
        p = TournamentPredictor(
            AlwaysNotTakenPredictor(), AlwaysTakenPredictor(), meta_index_bits=4
        )
        # feed not-taken outcomes: component a (always-NT) is right
        for _ in range(4):
            p.update(0, False)
        assert p.predict(0) is False

    def test_meta_not_trained_on_agreement(self):
        p = TournamentPredictor(
            AlwaysTakenPredictor(), AlwaysTakenPredictor(), meta_index_bits=4
        )
        before = list(p.meta.states)
        p.update(0, False)  # both wrong, but they agree
        assert p.meta.states == before

    def test_components_always_train(self):
        p = make()
        p.update(3, False)
        p.update(3, False)
        assert p.component_a.predict(3) is False

    def test_size_is_sum_of_parts(self):
        p = make(meta_bits=6)
        expected = (
            p.component_a.size_bits() + p.component_b.size_bits() + 64 * 2
        )
        assert p.size_bits() == expected

    def test_combines_strengths(self):
        """Tournament should track the better component per branch: an
        alternating branch (needs history) and a biased branch living
        together.  (8-bit tables: at 6 bits the two branches' contexts
        xor-collide destructively, which is its own test elsewhere.)"""
        p = TournamentPredictor(
            component_a=BimodalPredictor(index_bits=8),
            component_b=GSharePredictor(index_bits=8),
            meta_index_bits=8,
        )
        misses = 0
        for i in range(400):
            o1 = bool(i % 2)
            misses += p.predict_and_update(5, o1) != o1
            misses += p.predict_and_update(9, True) is not True
        assert misses / 800 < 0.1

    def test_batch_equals_step(self):
        trace = make_toy_trace(length=900)
        batch = run(make(), trace)
        steps = run_steps(make(), trace)
        assert np.array_equal(batch.predictions, steps.predictions)

    def test_reset_propagates(self):
        p = make()
        trace = make_toy_trace(length=400)
        a = run(p, trace).predictions
        b = run(p, trace).predictions
        assert np.array_equal(a, b)

    def test_name_mentions_components(self):
        assert "bimodal" in make().name and "gshare" in make().name
