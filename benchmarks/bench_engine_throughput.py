"""Engine throughput microbenchmarks (pytest-benchmark timing proper).

Not a paper artifact: measures the simulator's branches/second for the
main predictors, which bounds how long the figure benches take.  These
use multiple rounds (real statistics) since each round is cheap.
"""

from __future__ import annotations

import pytest

from benchmarks.common import load_bench_trace
from repro.core.registry import make_predictor
from repro.sim.engine import run

TRACE_NAME = "xlisp"
SPECS = [
    "bimodal:index=12",
    "gshare:index=12,hist=12",
    "bimode:dir=11,hist=11,choice=11",
    "pas:hist=6,select=4,bht=10",
]


@pytest.fixture(scope="module")
def trace():
    full = load_bench_trace(TRACE_NAME)
    return full[:100_000]


@pytest.mark.parametrize("spec", SPECS)
@pytest.mark.benchmark(group="throughput")
def test_simulation_throughput(benchmark, spec, trace):
    predictor = make_predictor(spec)
    result = benchmark.pedantic(
        run, args=(predictor, trace), rounds=3, iterations=1
    )
    assert 0.0 <= result.misprediction_rate <= 1.0
    branches_per_second = len(trace) / benchmark.stats["mean"]
    print(f"\n{spec}: {branches_per_second / 1e6:.2f} M branches/s")
    # sanity floor: the harness is unusable below ~100 K branches/s
    assert branches_per_second > 100_000
