"""Unit tests for suite loading and the trace cache."""

import numpy as np

from repro.traces.record import BranchTrace
from repro.workloads.suite import (
    default_cache_dir,
    load_benchmark,
    load_suite,
    suite_names,
    trace_store,
)


class TestSuiteNames:
    def test_suites(self):
        assert len(suite_names("cint95")) == 6
        assert len(suite_names("ibs")) == 8
        assert len(suite_names("all")) == 14

    def test_unknown_suite(self):
        import pytest

        with pytest.raises(ValueError):
            suite_names("spec2017")


class TestLoadBenchmark:
    def test_generates_without_cache(self):
        trace = load_benchmark("xlisp", length=2000, use_cache=False)
        assert isinstance(trace, BranchTrace)
        assert len(trace) == 2000
        assert trace.name == "xlisp"

    def test_cache_roundtrip(self, tmp_path):
        a = load_benchmark("xlisp", length=1500, cache_dir=tmp_path)
        assert trace_store(tmp_path).has("xlisp", 1500, 0)
        b = load_benchmark("xlisp", length=1500, cache_dir=tmp_path)
        assert a == b
        assert b.metadata == a.metadata

    def test_cached_trace_is_read_only_mmap(self, tmp_path):
        import pytest

        trace = load_benchmark("xlisp", length=1500, cache_dir=tmp_path)
        with pytest.raises(ValueError):
            trace.outcomes[0] = not trace.outcomes[0]

    def test_cache_key_includes_seed(self, tmp_path):
        load_benchmark("xlisp", length=1000, seed=1, cache_dir=tmp_path)
        load_benchmark("xlisp", length=1000, seed=2, cache_dir=tmp_path)
        files = list((tmp_path / "store").iterdir())
        assert len(files) == 2

    def test_legacy_npz_migrated_into_store(self, tmp_path):
        from repro.traces.io import save_npz
        from repro.workloads.generator import generate_trace
        from repro.workloads.profiles import get_profile

        legacy = generate_trace(get_profile("xlisp"), length=1200, seed=0)
        save_npz(legacy, tmp_path / "traces" / "xlisp-n1200-s0.npz")
        loaded = load_benchmark("xlisp", length=1200, cache_dir=tmp_path)
        assert loaded == legacy
        assert trace_store(tmp_path).has("xlisp", 1200, 0)

    def test_load_suite(self, tmp_path):
        traces = load_suite(["xlisp", "compress"], length=1000, cache_dir=tmp_path)
        assert set(traces) == {"xlisp", "compress"}
        assert all(len(t) == 1000 for t in traces.values())


class TestDefaultCacheDir:
    def test_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "override"))
        assert default_cache_dir() == tmp_path / "override"

    def test_default_under_home(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert "repro-bimode" in str(default_cache_dir())
