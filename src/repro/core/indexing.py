"""PHT index functions.

The *index function* of a two-level predictor decides how the branch PC
and the branch history are combined into a second-level table index.
The paper's Section 4 shows this choice is what trades weak bias against
destructive aliasing, so the index functions live in one place and are
shared by every predictor and by the analysis framework.

All functions exist in two forms:

* a scalar form (``int`` in, ``int`` out) used by the step-by-step
  predictor interface, and
* a vectorized form (suffix ``_stream``) operating on numpy arrays,
  used by the fast trace-simulation paths.

PC handling: real front-ends drop the instruction-alignment bits before
indexing.  Branch PCs in this package are *word addresses* already (the
workload generator emits consecutive integers), so index functions use
the PC as-is.  Callers with byte addresses should shift right first.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "mask",
    "concat_index",
    "gselect_index",
    "gshare_index",
    "gshare_index_stream",
    "gselect_index_stream",
    "concat_index_stream",
    "num_phts",
]


def mask(bits: int) -> int:
    """Bit-mask with the low ``bits`` bits set."""
    if bits < 0:
        raise ValueError(f"bits must be >= 0, got {bits}")
    return (1 << bits) - 1


def concat_index(history: int, history_bits: int, pc: int, pc_bits: int) -> int:
    """GAs-style index: ``pc_bits`` address bits above ``history_bits`` history bits.

    The address bits select one of ``2**pc_bits`` PHTs; the history bits
    index within the selected PHT.  Total index width is
    ``history_bits + pc_bits``.
    """
    return ((pc & mask(pc_bits)) << history_bits) | (history & mask(history_bits))


def gselect_index(history: int, history_bits: int, pc: int, pc_bits: int) -> int:
    """McFarling's gselect: concatenation, alias of :func:`concat_index`."""
    return concat_index(history, history_bits, pc, pc_bits)


def gshare_index(pc: int, history: int, index_bits: int, history_bits: int) -> int:
    """gshare index [McFarling93]: PC xor-ed with global history.

    ``index_bits`` is the log2 table size; ``history_bits <= index_bits``
    is how much history participates.  With ``history_bits == index_bits``
    this is the classic single-PHT gshare.  With fewer history bits the
    top ``index_bits - history_bits`` bits of the index come from the PC
    alone, which is exactly the multiple-PHT organization of the paper
    (footnote 1): ``2**(index_bits - history_bits)`` PHTs of
    ``2**history_bits`` counters each.
    """
    if history_bits > index_bits:
        raise ValueError(
            f"history_bits ({history_bits}) must not exceed index_bits ({index_bits})"
        )
    return (pc & mask(index_bits)) ^ (history & mask(history_bits))


def num_phts(index_bits: int, history_bits: int) -> int:
    """Number of PHTs in the two-level model for a gshare/GAs configuration."""
    if history_bits > index_bits:
        raise ValueError(
            f"history_bits ({history_bits}) must not exceed index_bits ({index_bits})"
        )
    return 1 << (index_bits - history_bits)


# -- vectorized forms ----------------------------------------------------------


def gshare_index_stream(
    pcs: np.ndarray, histories: np.ndarray, index_bits: int, history_bits: int
) -> np.ndarray:
    """Vectorized :func:`gshare_index` over whole trace arrays."""
    if history_bits > index_bits:
        raise ValueError(
            f"history_bits ({history_bits}) must not exceed index_bits ({index_bits})"
        )
    pcs = np.asarray(pcs, dtype=np.int64)
    histories = np.asarray(histories, dtype=np.int64)
    return (pcs & mask(index_bits)) ^ (histories & mask(history_bits))


def concat_index_stream(
    histories: np.ndarray, history_bits: int, pcs: np.ndarray, pc_bits: int
) -> np.ndarray:
    """Vectorized :func:`concat_index`."""
    pcs = np.asarray(pcs, dtype=np.int64)
    histories = np.asarray(histories, dtype=np.int64)
    return ((pcs & mask(pc_bits)) << history_bits) | (histories & mask(history_bits))


def gselect_index_stream(
    histories: np.ndarray, history_bits: int, pcs: np.ndarray, pc_bits: int
) -> np.ndarray:
    """Vectorized :func:`gselect_index`."""
    return concat_index_stream(histories, history_bits, pcs, pc_bits)
