"""Front-end pipeline impact model.

The paper's motivation is pipeline bubbles: every misprediction costs a
refill.  This module turns misprediction rates into cycle estimates for
a simple in-order front-end, so examples and benches can report the
performance meaning of a predictor difference (e.g. "bi-mode's 1.2
points of accuracy on gcc are worth ~4% IPC on a Pentium-Pro-class
pipeline").

The model is deliberately simple — a fetch-width-limited front end plus
a fixed misprediction penalty — matching how branch-prediction papers
of the era quoted performance impact:

* instructions are fetched ``fetch_width`` per cycle;
* conditional branches occur every ``instructions_per_branch``
  instructions (integer code: ~5);
* each misprediction inserts ``misprediction_penalty`` bubble cycles
  (Pentium Pro: 11+; a short pipeline: 4-7).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.interfaces import SimulationResult

__all__ = ["FetchEngine", "FetchStats"]


@dataclass(frozen=True)
class FetchStats:
    """Cycle accounting of one simulated run through the front end."""

    instructions: int
    branches: int
    mispredictions: int
    base_cycles: int
    bubble_cycles: int

    @property
    def cycles(self) -> int:
        return self.base_cycles + self.bubble_cycles

    @property
    def ipc(self) -> float:
        """Fetched instructions per cycle."""
        if self.cycles == 0:
            return 0.0
        return self.instructions / self.cycles

    @property
    def bubble_fraction(self) -> float:
        """Fraction of cycles lost to misprediction bubbles."""
        if self.cycles == 0:
            return 0.0
        return self.bubble_cycles / self.cycles


class FetchEngine:
    """Fetch-width-limited front end with a fixed misprediction penalty.

    Parameters
    ----------
    fetch_width:
        Instructions fetched per cycle when not stalled.
    misprediction_penalty:
        Bubble cycles per mispredicted branch (pipeline refill).
    instructions_per_branch:
        Average instructions per conditional branch in the modelled
        code (the trace substrate stores only branches).
    """

    def __init__(
        self,
        fetch_width: int = 4,
        misprediction_penalty: int = 7,
        instructions_per_branch: int = 5,
    ):
        if fetch_width < 1:
            raise ValueError(f"fetch_width must be >= 1, got {fetch_width}")
        if misprediction_penalty < 0:
            raise ValueError(
                f"misprediction_penalty must be >= 0, got {misprediction_penalty}"
            )
        if instructions_per_branch < 1:
            raise ValueError(
                f"instructions_per_branch must be >= 1, got {instructions_per_branch}"
            )
        self.fetch_width = fetch_width
        self.misprediction_penalty = misprediction_penalty
        self.instructions_per_branch = instructions_per_branch

    def run(self, result: SimulationResult) -> FetchStats:
        """Cycle accounting for a finished prediction run."""
        branches = result.num_branches
        mispredictions = result.num_mispredictions
        instructions = branches * self.instructions_per_branch
        base_cycles = math.ceil(instructions / self.fetch_width)
        bubble_cycles = mispredictions * self.misprediction_penalty
        return FetchStats(
            instructions=instructions,
            branches=branches,
            mispredictions=mispredictions,
            base_cycles=base_cycles,
            bubble_cycles=bubble_cycles,
        )

    def speedup(self, baseline: SimulationResult, improved: SimulationResult) -> float:
        """Cycle-count ratio baseline/improved (> 1 means faster)."""
        base = self.run(baseline).cycles
        new = self.run(improved).cycles
        if new == 0:
            return 0.0 if base == 0 else float("inf")
        return base / new

    def ideal_ipc(self) -> float:
        """IPC with perfect prediction (the fetch-width bound)."""
        return float(self.fetch_width)
