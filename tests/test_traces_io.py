"""Unit tests for trace persistence."""

import numpy as np
import pytest

from repro.traces.io import load_npz, load_text, save_npz, save_text
from repro.traces.record import BranchTrace


@pytest.fixture
def trace():
    return BranchTrace(
        pcs=np.array([64, 68, 72, 64]),
        outcomes=np.array([True, True, False, True]),
        name="demo",
        metadata={"suite": "cint95", "profile_seed": 3},
    )


class TestNpz:
    def test_roundtrip(self, trace, tmp_path):
        path = save_npz(trace, tmp_path / "t.npz")
        loaded = load_npz(path)
        assert loaded == trace
        assert loaded.metadata == trace.metadata

    def test_extension_normalized(self, trace, tmp_path):
        path = save_npz(trace, tmp_path / "t")
        assert path.suffix == ".npz"
        assert load_npz(path) == trace

    def test_creates_parent_dirs(self, trace, tmp_path):
        path = save_npz(trace, tmp_path / "a" / "b" / "t.npz")
        assert path.exists()


class TestText:
    def test_roundtrip(self, trace, tmp_path):
        path = save_text(trace, tmp_path / "t.txt")
        loaded = load_text(path)
        assert loaded == BranchTrace(
            pcs=trace.pcs, outcomes=trace.outcomes, name="demo"
        )

    def test_accepts_decimal_and_tokens(self, tmp_path):
        path = tmp_path / "t.txt"
        path.write_text("# comment\n100 T\n0x10 0\n12 taken\n13 nt\n")
        t = load_text(path)
        assert t.pcs.tolist() == [100, 16, 12, 13]
        assert t.outcomes.tolist() == [True, False, True, False]

    def test_rejects_bad_outcome(self, tmp_path):
        path = tmp_path / "t.txt"
        path.write_text("100 X\n")
        with pytest.raises(ValueError):
            load_text(path)

    def test_rejects_malformed_line(self, tmp_path):
        path = tmp_path / "t.txt"
        path.write_text("100 T extra\n")
        with pytest.raises(ValueError):
            load_text(path)

    def test_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "t.txt"
        path.write_text("\n100 T\n\n")
        assert len(load_text(path)) == 1

    def test_name_override(self, tmp_path):
        path = tmp_path / "t.txt"
        path.write_text("100 T\n")
        assert load_text(path, name="zz").name == "zz"
