"""The predictor interface.

Every predictor in this package implements :class:`BranchPredictor`:

* the **step interface** (:meth:`predict` / :meth:`update` /
  :meth:`predict_and_update`), the reference semantics, convenient for
  unit tests and for composing predictors;
* the **batch interface** (:meth:`simulate`), which runs a whole
  :class:`~repro.traces.record.BranchTrace` and returns the per-branch
  predictions.  The default implementation loops over the step
  interface; concrete predictors override it with an optimized loop.
  The two must agree — the test suite checks this equivalence
  property for every predictor.

For the Section-4 analysis, predictors that expose which second-level
counter produced each prediction additionally implement
:meth:`simulate_detailed`, returning a :class:`DetailedSimulation` that
records the (globally unique) counter id used for every access.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from repro.traces.record import BranchTrace

__all__ = ["BranchPredictor", "DetailedSimulation", "SimulationResult"]


@dataclass
class SimulationResult:
    """Outcome of running one predictor over one trace."""

    predictor_name: str
    trace_name: str
    predictions: np.ndarray  # bool, per dynamic branch
    outcomes: np.ndarray  # bool, per dynamic branch

    def __post_init__(self) -> None:
        self.predictions = np.asarray(self.predictions, dtype=bool)
        self.outcomes = np.asarray(self.outcomes, dtype=bool)
        if self.predictions.shape != self.outcomes.shape:
            raise ValueError("predictions and outcomes must have the same shape")

    @property
    def mispredicted(self) -> np.ndarray:
        return self.predictions != self.outcomes

    @property
    def num_branches(self) -> int:
        return len(self.outcomes)

    @property
    def num_mispredictions(self) -> int:
        return int(self.mispredicted.sum())

    @property
    def misprediction_rate(self) -> float:
        """Fraction of dynamic branches mispredicted (the paper's y-axis)."""
        if not self.num_branches:
            return 0.0
        return self.num_mispredictions / self.num_branches

    @property
    def accuracy(self) -> float:
        return 1.0 - self.misprediction_rate


@dataclass
class DetailedSimulation:
    """Per-access record of a simulation, for the Section-4 analysis.

    Attributes
    ----------
    counter_ids:
        For every dynamic branch, the globally-unique id of the
        second-level direction counter that supplied the prediction.
        For single-table schemes this is the table index; for bi-mode it
        is ``bank * bank_size + index`` so the two banks' counters are
        distinct "prediction counters" (as in Figure 6, which plots all
        256 direction counters of a 2x128 configuration).
    num_counters:
        Total number of distinct direction-counter ids.
    """

    result: SimulationResult
    counter_ids: np.ndarray
    num_counters: int
    pcs: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        self.counter_ids = np.asarray(self.counter_ids, dtype=np.int64)
        if len(self.counter_ids) != self.result.num_branches:
            raise ValueError("counter_ids length must match the number of branches")
        if len(self.counter_ids) and (
            self.counter_ids.min() < 0 or self.counter_ids.max() >= self.num_counters
        ):
            raise ValueError("counter ids out of range")
        if self.pcs is not None:
            self.pcs = np.asarray(self.pcs, dtype=np.int64)
            if len(self.pcs) != self.result.num_branches:
                raise ValueError("pcs length must match the number of branches")


class BranchPredictor(abc.ABC):
    """Abstract dynamic branch predictor.

    Subclasses must implement :meth:`predict`, :meth:`update`,
    :meth:`reset` and :meth:`size_bits`; they should override
    :meth:`simulate` with a fast loop and, if they participate in the
    bias analysis, :meth:`simulate_detailed`.
    """

    #: Short scheme name, e.g. ``"gshare"``; set by subclasses.
    scheme = "abstract"

    @abc.abstractmethod
    def predict(self, pc: int) -> bool:
        """Predicted direction for the branch at ``pc`` (``True`` = taken)."""

    @abc.abstractmethod
    def update(self, pc: int, taken: bool) -> None:
        """Train the predictor with the resolved outcome of the branch at ``pc``.

        Must be called exactly once per executed branch, after
        :meth:`predict`, in program order.
        """

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        """Predict, then train; returns the prediction.  May be overridden
        by subclasses whose update rule needs the prediction (bi-mode's
        partial update does not — it needs internal state — so such
        predictors keep the state between the two calls instead)."""
        prediction = self.predict(pc)
        self.update(pc, taken)
        return prediction

    @abc.abstractmethod
    def reset(self) -> None:
        """Restore the power-on state (counters and history registers)."""

    @abc.abstractmethod
    def size_bits(self) -> int:
        """Total counter storage in bits (the paper's cost metric)."""

    def size_bytes(self) -> float:
        return self.size_bits() / 8.0

    @property
    def name(self) -> str:
        """Human-readable configuration name; subclasses should override."""
        return self.scheme

    # -- batch simulation -----------------------------------------------------

    def simulate(self, trace: BranchTrace) -> SimulationResult:
        """Run the whole trace; returns per-branch predictions.

        The default implementation steps :meth:`predict_and_update`
        once per branch.  Subclasses override this with vectorized /
        tight-loop versions; behaviour must be identical.
        """
        predictions = np.empty(len(trace), dtype=bool)
        step = self.predict_and_update
        for i, (pc, taken) in enumerate(
            zip(trace.pcs.tolist(), trace.outcomes.tolist())
        ):
            predictions[i] = step(pc, taken)
        return SimulationResult(
            predictor_name=self.name,
            trace_name=trace.name,
            predictions=predictions,
            outcomes=trace.outcomes,
        )

    def simulate_detailed(self, trace: BranchTrace) -> DetailedSimulation:
        """Like :meth:`simulate` but also records the direction counter
        used per access.  Only implemented by predictors participating
        in the Section-4 bias analysis."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support detailed simulation"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}>"
