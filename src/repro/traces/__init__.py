"""Branch-trace substrate: containers, persistence, statistics, filters."""

from repro.traces.filters import (
    filter_branches,
    interleave,
    skip_warmup,
    split_address_space,
    take_prefix,
)
from repro.traces.io import load_npz, load_text, save_npz, save_text
from repro.traces.record import BranchRecord, BranchTrace
from repro.traces.stats import (
    TraceStats,
    bias_distribution,
    compute_stats,
    per_branch_bias,
)

__all__ = [
    "BranchRecord",
    "BranchTrace",
    "TraceStats",
    "bias_distribution",
    "compute_stats",
    "filter_branches",
    "interleave",
    "load_npz",
    "load_text",
    "per_branch_bias",
    "save_npz",
    "save_text",
    "skip_warmup",
    "split_address_space",
    "take_prefix",
]
