"""Unit tests for the benchmark profiles (Table 1/2 parity)."""

import pytest

from repro.workloads.profiles import (
    ALL_PROFILES,
    CINT95_PROFILES,
    IBS_PROFILES,
    BehaviorMix,
    BenchmarkProfile,
    get_profile,
)

#: Paper Table 2, exactly.
PAPER_TABLE_2 = {
    "compress": (482, 10_114_353),
    "gcc": (16_035, 26_520_618),
    "go": (5_112, 17_873_772),
    "xlisp": (636, 25_008_567),
    "perl": (1_974, 39_714_684),
    "vortex": (6_599, 27_792_020),
    "groff": (6_333, 11_901_481),
    "gs": (12_852, 16_307_247),
    "mpeg_play": (5_598, 9_566_290),
    "nroff": (5_249, 22_574_884),
    "real_gcc": (17_361, 14_309_867),
    "sdet": (5_310, 5_514_439),
    "verilog": (4_636, 6_212_381),
    "video_play": (4_606, 5_759_231),
}


class TestSuiteComposition:
    def test_six_cint95_benchmarks(self):
        assert set(CINT95_PROFILES) == {
            "compress", "gcc", "go", "xlisp", "perl", "vortex",
        }

    def test_eight_ibs_benchmarks(self):
        assert set(IBS_PROFILES) == {
            "groff", "gs", "mpeg_play", "nroff",
            "real_gcc", "sdet", "verilog", "video_play",
        }

    def test_all_profiles_is_union(self):
        assert set(ALL_PROFILES) == set(CINT95_PROFILES) | set(IBS_PROFILES)

    def test_get_profile(self):
        assert get_profile("gcc").name == "gcc"

    def test_get_profile_unknown(self):
        with pytest.raises(KeyError):
            get_profile("spec2017")


class TestTable2Parity:
    @pytest.mark.parametrize("name", sorted(PAPER_TABLE_2))
    def test_paper_counts_exact(self, name):
        profile = get_profile(name)
        static, dynamic = PAPER_TABLE_2[name]
        assert profile.paper_static == static
        assert profile.paper_dynamic == dynamic

    def test_static_scale_only_shrinks_large_footprints(self):
        for name, profile in ALL_PROFILES.items():
            assert 0 < profile.static_scale <= 1.0
            if profile.paper_static < 2000:
                assert profile.static_scale == 1.0, name

    def test_default_lengths_bounded(self):
        for profile in ALL_PROFILES.values():
            assert 200_000 <= profile.default_length <= 800_000

    def test_default_length_ordering_follows_paper(self):
        # perl has the largest dynamic count, sdet among the smallest
        assert get_profile("perl").default_length >= get_profile("sdet").default_length


class TestProfileInvariants:
    def test_mix_fractions_valid(self):
        for name, profile in ALL_PROFILES.items():
            mix = profile.mix
            total = mix.biased + mix.correlated + mix.pattern + mix.weak
            assert total == pytest.approx(1.0), name

    def test_go_is_weak_heavy(self):
        go = get_profile("go")
        assert go.mix.weak > 0.3
        for other in ("xlisp", "vortex", "perl"):
            assert go.mix.weak > get_profile(other).mix.weak

    def test_vortex_is_bias_heavy(self):
        assert get_profile("vortex").mix.biased >= max(
            p.mix.biased for p in CINT95_PROFILES.values() if p.name != "vortex"
        )

    def test_ibs_profiles_have_kernel_activity(self):
        for name, profile in IBS_PROFILES.items():
            assert profile.kernel_fraction > 0, name

    def test_cint95_profiles_are_user_only(self):
        for name, profile in CINT95_PROFILES.items():
            assert profile.kernel_fraction == 0, name

    def test_input_notes_preserved_from_table_1(self):
        assert get_profile("gcc").input_note == "jump.i"
        assert get_profile("xlisp").input_note == "train.lsp"

    def test_validation_rejects_bad_mix(self):
        with pytest.raises(ValueError):
            BehaviorMix(biased=0.9, correlated=0.2, pattern=0.0)

    def test_validation_rejects_bad_suite(self):
        with pytest.raises(ValueError):
            BenchmarkProfile(
                name="x", suite="spec2006", paper_static=10, paper_dynamic=10,
                mix=BehaviorMix(0.5, 0.3, 0.1),
            )

    def test_validation_rejects_weak_strong_bias(self):
        with pytest.raises(ValueError):
            BenchmarkProfile(
                name="x", suite="ibs", paper_static=10, paper_dynamic=10,
                mix=BehaviorMix(0.5, 0.3, 0.1), strong_bias=0.5,
            )
