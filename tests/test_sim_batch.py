"""Equivalence tests for the batched multi-lane gshare kernel.

The scalar step interface (:func:`repro.sim.engine.run_steps`) is the
semantic reference; every lane the batch kernel produces must match it
bit-for-bit — predictions and rates — including degenerate histories
and traces.
"""

import numpy as np
import pytest

from repro.predictors.gshare import GSharePredictor
from repro.sim.batch import (
    GShareLane,
    gshare_lane_predictions,
    gshare_lane_rates,
    lane_for_spec,
)
from repro.sim.engine import run_steps
from repro.traces.record import BranchTrace
from tests.conftest import make_toy_trace, make_trace


def reference(lane: GShareLane, trace: BranchTrace):
    return run_steps(
        GSharePredictor(index_bits=lane.index_bits, history_bits=lane.history_bits),
        trace,
    )


class TestGShareLane:
    def test_spec_round_trip(self):
        lane = GShareLane(index_bits=10, history_bits=4)
        assert lane.spec == "gshare:index=10,hist=4"
        assert lane_for_spec(lane.spec) == lane

    def test_table_size(self):
        assert GShareLane(index_bits=5, history_bits=0).table_size == 32

    def test_rejects_negative_index(self):
        with pytest.raises(ValueError):
            GShareLane(index_bits=-1, history_bits=0)

    def test_rejects_history_longer_than_index(self):
        with pytest.raises(ValueError):
            GShareLane(index_bits=4, history_bits=5)


class TestLaneForSpec:
    def test_plain_gshare(self):
        assert lane_for_spec("gshare:index=8,hist=3") == GShareLane(8, 3)

    def test_hist_defaults_to_index(self):
        assert lane_for_spec("gshare:index=8") == GShareLane(8, 8)

    @pytest.mark.parametrize(
        "spec",
        [
            "bimodal:index=8",
            "bimode:dir=7,hist=7,choice=7",
            "gshare:index=8,hist=3,extra=1",
            "gshare:hist=3",
            "gshare:index=4,hist=9",
            "gshare:index=x",
            "not a spec",
        ],
    )
    def test_rejects_non_batchable(self, spec):
        assert lane_for_spec(spec) is None


class TestPredictionEquivalence:
    def test_every_lane_matches_run_steps(self, toy_trace):
        """All (index_bits, history_bits) lanes up to index 6, in one
        batch, against the scalar reference."""
        lanes = [
            GShareLane(index_bits=i, history_bits=h)
            for i in range(7)
            for h in range(i + 1)
        ]
        batch = gshare_lane_predictions(lanes, toy_trace)
        rates = gshare_lane_rates(lanes, toy_trace)
        for k, lane in enumerate(lanes):
            ref = reference(lane, toy_trace)
            np.testing.assert_array_equal(batch[k], ref.predictions, err_msg=lane.spec)
            assert rates[k] == ref.misprediction_rate, lane.spec

    def test_workload_trace(self, small_workload):
        lanes = [GShareLane(10, h) for h in (0, 3, 7, 10)]
        batch = gshare_lane_predictions(lanes, small_workload)
        rates = gshare_lane_rates(lanes, small_workload)
        for k, lane in enumerate(lanes):
            ref = reference(lane, small_workload)
            np.testing.assert_array_equal(batch[k], ref.predictions, err_msg=lane.spec)
            assert rates[k] == ref.misprediction_rate, lane.spec

    def test_zero_history(self, toy_trace):
        """history_bits=0 degenerates to per-PC bimodal."""
        lane = GShareLane(index_bits=6, history_bits=0)
        np.testing.assert_array_equal(
            gshare_lane_predictions([lane], toy_trace)[0],
            reference(lane, toy_trace).predictions,
        )

    def test_single_counter(self):
        """index_bits=0: every branch hammers one counter."""
        trace = make_trace([4, 8, 12, 4] * 50, [True, False, False, True] * 50)
        lane = GShareLane(index_bits=0, history_bits=0)
        ref = reference(lane, trace)
        np.testing.assert_array_equal(
            gshare_lane_predictions([lane], trace)[0], ref.predictions
        )
        assert gshare_lane_rates([lane], trace) == [ref.misprediction_rate]

    @pytest.mark.parametrize(
        "outcomes",
        [
            [True] * 64,
            [False] * 64,
            [True, False] * 32,
            [True] * 32 + [False] * 32,
        ],
        ids=["all-taken", "all-not-taken", "alternating", "flip-once"],
    )
    def test_adversarial_outcome_patterns(self, outcomes):
        trace = make_trace([64 + 4 * (i % 3) for i in range(64)], outcomes)
        lanes = [GShareLane(2, 0), GShareLane(2, 2), GShareLane(4, 1)]
        batch = gshare_lane_predictions(lanes, trace)
        rates = gshare_lane_rates(lanes, trace)
        for k, lane in enumerate(lanes):
            ref = reference(lane, trace)
            np.testing.assert_array_equal(batch[k], ref.predictions, err_msg=lane.spec)
            assert rates[k] == ref.misprediction_rate, lane.spec


class TestEdgeCases:
    def test_empty_trace(self):
        trace = make_trace([], [])
        lanes = [GShareLane(4, 2)]
        assert gshare_lane_predictions(lanes, trace).shape == (1, 0)
        assert gshare_lane_rates(lanes, trace) == [0.0]

    def test_length_one(self):
        trace = make_trace([64], [False])
        lane = GShareLane(4, 2)
        ref = reference(lane, trace)
        np.testing.assert_array_equal(
            gshare_lane_predictions([lane], trace)[0], ref.predictions
        )
        assert gshare_lane_rates([lane], trace) == [ref.misprediction_rate]

    def test_length_two(self):
        trace = make_trace([64, 64], [False, True])
        lane = GShareLane(3, 3)
        ref = reference(lane, trace)
        np.testing.assert_array_equal(
            gshare_lane_predictions([lane], trace)[0], ref.predictions
        )
        assert gshare_lane_rates([lane], trace) == [ref.misprediction_rate]

    def test_no_lanes(self, toy_trace):
        assert gshare_lane_predictions([], toy_trace).shape == (0, len(toy_trace))
        assert gshare_lane_rates([], toy_trace) == []

    def test_rates_match_predictions(self):
        """The closed-form rate path agrees with counting mispredictions
        from the materialized prediction path."""
        trace = make_toy_trace(length=3000, seed=11)
        lanes = [GShareLane(i, h) for i in (3, 5, 8) for h in (0, i // 2, i)]
        preds = gshare_lane_predictions(lanes, trace)
        rates = gshare_lane_rates(lanes, trace)
        for k in range(len(lanes)):
            expected = int((preds[k] != trace.outcomes).sum()) / len(trace)
            assert rates[k] == expected
