"""Branch-history registers.

Two-level predictors [YehPatt91] keep a *first level* of branch history:

* a single **global history register** (GHR) recording the outcomes of
  the most recent conditional branches, used by the GAx / gshare /
  bi-mode family, or
* a **per-address history table** (BHT) with one shift register per
  static branch (folded by low-order PC bits), used by the PAx family.

Conventions used throughout this package:

* a *taken* outcome is recorded as bit ``1``;
* the most recent outcome occupies the **least significant bit**;
* registers are initialized to all zeros (all not-taken).

Because history contents depend only on the resolved outcomes in the
trace — never on predictions — history streams can be precomputed for a
whole trace.  :func:`global_history_stream` does this vectorized with
numpy; it is the workhorse behind the fast simulation paths.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "GlobalHistoryRegister",
    "PerAddressHistoryTable",
    "global_history_stream",
]


class GlobalHistoryRegister:
    """A ``bits``-wide shift register of recent global branch outcomes.

    Examples
    --------
    >>> ghr = GlobalHistoryRegister(4)
    >>> for taken in (True, True, False, True):
    ...     ghr.push(taken)
    >>> bin(ghr.value)              # pushes T,T,F,T -> bits 1101, newest in LSB
    '0b1101'
    """

    __slots__ = ("bits", "_mask", "value")

    def __init__(self, bits: int, value: int = 0):
        if bits < 0:
            raise ValueError(f"history width must be >= 0, got {bits}")
        if bits > 62:
            raise ValueError(f"history width {bits} is unreasonably large")
        self.bits = bits
        self._mask = (1 << bits) - 1
        if value & ~self._mask:
            raise ValueError(f"value {value:#x} does not fit in {bits} bits")
        self.value = value

    def push(self, taken: bool) -> None:
        """Shift the outcome of the newest resolved branch into the register."""
        self.value = ((self.value << 1) | (1 if taken else 0)) & self._mask

    def reset(self) -> None:
        self.value = 0

    @property
    def mask(self) -> int:
        return self._mask

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GlobalHistoryRegister(bits={self.bits}, value={self.value:#x})"


class PerAddressHistoryTable:
    """First-level table of per-branch history registers (PAx schemes).

    The table holds ``2**index_bits`` shift registers, selected by the
    branch's low-order PC bits.  Distinct static branches that collide in
    the table share a register — the first-level analogue of PHT
    aliasing.

    Parameters
    ----------
    index_bits:
        log2 of the number of history registers.
    history_bits:
        Width of each register.
    """

    __slots__ = ("index_bits", "history_bits", "_index_mask", "_hist_mask", "registers")

    def __init__(self, index_bits: int, history_bits: int):
        if index_bits < 0:
            raise ValueError(f"index_bits must be >= 0, got {index_bits}")
        if history_bits < 0:
            raise ValueError(f"history_bits must be >= 0, got {history_bits}")
        self.index_bits = index_bits
        self.history_bits = history_bits
        self._index_mask = (1 << index_bits) - 1
        self._hist_mask = (1 << history_bits) - 1
        self.registers = [0] * (1 << index_bits)

    def read(self, pc: int) -> int:
        """History register contents for the branch at ``pc``."""
        return self.registers[pc & self._index_mask]

    def push(self, pc: int, taken: bool) -> None:
        """Record the resolved outcome of the branch at ``pc``."""
        i = pc & self._index_mask
        self.registers[i] = ((self.registers[i] << 1) | (1 if taken else 0)) & self._hist_mask

    def reset(self) -> None:
        self.registers = [0] * (1 << self.index_bits)

    def size_bits(self) -> int:
        """First-level storage cost in bits."""
        return len(self.registers) * self.history_bits

    def __len__(self) -> int:
        return len(self.registers)


def global_history_stream(
    outcomes: np.ndarray, bits: int, initial: int = 0
) -> np.ndarray:
    """Global-history value seen by each branch in a trace, vectorized.

    ``result[t]`` is the GHR contents *at prediction time* of branch
    ``t``, i.e. built from ``outcomes[:t]`` shifted into a register that
    starts at ``initial``.  This matches driving a
    :class:`GlobalHistoryRegister` (pre-loaded with ``initial``, e.g.
    from a checkpoint) with ``push(outcomes[t])`` *after* predicting
    branch ``t``.

    Parameters
    ----------
    outcomes:
        Boolean (or 0/1) array of resolved branch outcomes.
    bits:
        History width; the result fits in ``bits`` bits.
    initial:
        Register contents before the first branch (default: power-on 0).

    Returns
    -------
    numpy.ndarray of ``int64``, same length as ``outcomes``.
    """
    if bits < 0:
        raise ValueError(f"history width must be >= 0, got {bits}")
    outcomes = np.asarray(outcomes)
    n = len(outcomes)
    hist = np.zeros(n, dtype=np.int64)
    if bits == 0 or n == 0:
        return hist
    bits_arr = outcomes.astype(np.int64)
    # outcome of branch t-1-j contributes bit j of result[t]
    for j in range(bits):
        shift = j + 1
        if shift >= n:
            break
        hist[shift:] |= bits_arr[:-shift] << j
    if initial:
        mask = (1 << bits) - 1
        initial &= mask
        # result[t] currently holds only outcome bits (the low t bits);
        # the initial register contents occupy the remaining high bits
        # for the first `bits` branches, shifted left once per branch
        for t in range(min(bits, n)):
            hist[t] |= (initial << t) & mask
    return hist
