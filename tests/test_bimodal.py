"""Unit tests for the Smith bimodal predictor."""

import numpy as np
import pytest

from repro.predictors.bimodal import BimodalPredictor
from repro.sim.engine import run, run_steps
from tests.conftest import make_toy_trace


class TestBimodal:
    def test_indexes_by_low_pc_bits(self):
        p = BimodalPredictor(index_bits=4)
        p.update(3, False)
        p.update(3, False)
        assert p.predict(3) is False
        assert p.predict(3 + 16) is False  # aliases into the same counter
        assert p.predict(4) is True

    def test_aliasing_is_real(self):
        p = BimodalPredictor(index_bits=2)
        p.update(1, False)
        p.update(1, False)
        # pc 5 and pc 1 share counter 1 in a 4-entry table
        assert p.predict(5) is False

    def test_size_bits(self):
        assert BimodalPredictor(index_bits=10).size_bits() == 2048

    def test_wider_counters(self):
        p = BimodalPredictor(index_bits=4, counter_bits=3)
        assert p.size_bits() == 48
        assert p.predict(0) is True  # init = 4 = weakly taken for 3 bits
        p.update(0, False)
        assert p.predict(0) is False  # 3 < threshold 4

    def test_three_bit_counter_has_more_hysteresis(self):
        p2 = BimodalPredictor(index_bits=2, counter_bits=2)
        p3 = BimodalPredictor(index_bits=2, counter_bits=3)
        for p in (p2, p3):
            for _ in range(8):
                p.update(0, True)  # saturate high
        p2.update(0, False)
        p2.update(0, False)
        p3.update(0, False)
        p3.update(0, False)
        assert p2.predict(0) is False  # 2-bit flipped
        assert p3.predict(0) is True  # 3-bit needs more anomalies

    def test_no_history_state(self):
        p = BimodalPredictor(index_bits=6)
        # prediction for pc A unaffected by outcomes at other pcs
        before = p.predict(1)
        for _ in range(20):
            p.update(2, False)
        assert p.predict(1) == before

    def test_batch_equals_step(self):
        trace = make_toy_trace(length=1000)
        batch = run(BimodalPredictor(8), trace)
        steps = run_steps(BimodalPredictor(8), trace)
        assert np.array_equal(batch.predictions, steps.predictions)

    def test_detailed_ids(self):
        trace = make_toy_trace(length=300)
        detailed = BimodalPredictor(6).simulate_detailed(trace)
        assert np.array_equal(detailed.counter_ids, trace.pcs & 63)

    def test_reset(self):
        p = BimodalPredictor(index_bits=4)
        p.update(0, False)
        p.reset()
        assert p.predict(0) is True

    def test_name(self):
        assert BimodalPredictor(10).name == "bimodal:index=10"
        assert "bits=3" in BimodalPredictor(4, counter_bits=3).name
