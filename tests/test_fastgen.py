"""Differential suite for the vectorized trace-generation fast path.

The contract under test is *bit-identity*: for every registered profile
and multiple (length, seed) points, :func:`repro.workloads.fastgen.fast_run`
must reproduce ``Program.run`` exactly — same pcs, same outcomes, same
metadata-bearing name — on both the compiled event-pass driver and the
pure-Python fallback.  Plus the ``$REPRO_TRACEGEN`` dispatcher: engine
selection, health bookkeeping, and the scalar fallback for programs the
fast path refuses.
"""

import numpy as np
import pytest

from repro import faults, health
from repro.workloads import _cgen, fastgen
from repro.workloads.components import BiasedBehavior
from repro.workloads.generator import build_program, generate_trace
from repro.workloads.profiles import ALL_PROFILES, get_profile

#: (length, run seed) differential points — two per profile, matching
#: the ISSUE acceptance bar.  The run seeds correspond to
#: ``generate_trace`` seeds 0 and 3 (run seed = 2 * seed + 1).
POINTS = [(20_000, 1), (50_000, 7)]


@pytest.fixture(autouse=True)
def _clean_health():
    health.clear()
    yield
    health.clear()


_scalar_cache = {}


def scalar_reference(name: str, length: int, run_seed: int):
    key = (name, length, run_seed)
    if key not in _scalar_cache:
        program = build_program(get_profile(name), seed=run_seed)
        _scalar_cache[key] = program.run(length=length, seed=run_seed)
    return _scalar_cache[key]


def assert_bit_identical(fast, reference):
    assert np.array_equal(fast.pcs, reference.pcs)
    assert np.array_equal(fast.outcomes, reference.outcomes)
    assert fast.name == reference.name


class TestDifferential:
    """fast_run == Program.run, every profile, both engines."""

    @pytest.mark.parametrize("length,run_seed", POINTS)
    @pytest.mark.parametrize("name", sorted(ALL_PROFILES))
    def test_compiled_engine(self, name, length, run_seed):
        program = build_program(get_profile(name), seed=run_seed)
        assert fastgen.supports(program)
        fast = fastgen.fast_run(program, length, seed=run_seed)
        assert_bit_identical(fast, scalar_reference(name, length, run_seed))

    @pytest.mark.parametrize("length,run_seed", POINTS)
    @pytest.mark.parametrize("name", sorted(ALL_PROFILES))
    def test_python_engine(self, name, length, run_seed):
        program = build_program(get_profile(name), seed=run_seed)
        with faults.deny_compiler():
            assert fastgen.engine_name() == "fastgen-py"
            fast = fastgen.fast_run(program, length, seed=run_seed)
        assert_bit_identical(fast, scalar_reference(name, length, run_seed))

    def test_plan_reuse_is_stable(self):
        # the per-program plan cache must not leak state between runs
        program = build_program(get_profile("gcc"), seed=1)
        first = fastgen.fast_run(program, 20_000, seed=1)
        second = fastgen.fast_run(program, 20_000, seed=1)
        assert_bit_identical(second, first)


class TestEngineSelection:
    def test_engine_name_reports_compiler(self):
        assert fastgen.engine_name() in ("fastgen-c", "fastgen-py")
        with faults.deny_compiler():
            assert fastgen.engine_name() == "fastgen-py"
            assert "REPRO_NO_CC" in _cgen.unavailable_reason()

    def test_unsupported_program_refused(self):
        class Tweaked(BiasedBehavior):
            """A subclass may override draw logic: must be refused."""

        program = build_program(get_profile("compress"), seed=0)
        site = program.regions[0].sites()[0]
        original = site.behavior
        try:
            site.behavior = Tweaked(p_taken=0.5)
            assert not fastgen.supports(program)
            with pytest.raises(fastgen.UnsupportedProgram):
                fastgen.fast_run(program, 1_000, seed=1)
        finally:
            site.behavior = original


class TestDispatch:
    """$REPRO_TRACEGEN routing in generate_trace."""

    def test_default_is_fast_and_identical_to_scalar(self, monkeypatch):
        profile = get_profile("xlisp")
        monkeypatch.delenv("REPRO_TRACEGEN", raising=False)
        fast = generate_trace(profile, length=20_000, seed=3)
        monkeypatch.setenv("REPRO_TRACEGEN", "scalar")
        slow = generate_trace(profile, length=20_000, seed=3)
        assert np.array_equal(fast.pcs, slow.pcs)
        assert np.array_equal(fast.outcomes, slow.outcomes)
        assert fast.metadata == slow.metadata

    def test_invalid_mode_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACEGEN", "warp")
        with pytest.raises(ValueError, match="REPRO_TRACEGEN"):
            generate_trace(get_profile("xlisp"), length=1_000, seed=0)

    def test_fast_mode_records_engine(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACEGEN", "fast")
        generate_trace(get_profile("compress"), length=1_000, seed=0)
        (event,) = health.events(component="tracegen")
        assert event.expected == "fastgen-c"
        assert event.actual == fastgen.engine_name()

    def test_python_engine_counts_as_degraded(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACEGEN", "fast")
        with faults.deny_compiler():
            generate_trace(get_profile("compress"), length=1_000, seed=0)
        (event,) = health.events(component="tracegen")
        assert event.actual == "fastgen-py"
        assert event.severity == "degraded"

    def test_unsupported_falls_back_to_scalar(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACEGEN", "fast")
        monkeypatch.setattr(fastgen, "supports", lambda program: False)
        trace = generate_trace(get_profile("go"), length=2_000, seed=1)
        monkeypatch.setenv("REPRO_TRACEGEN", "scalar")
        reference = generate_trace(get_profile("go"), length=2_000, seed=1)
        assert np.array_equal(trace.outcomes, reference.outcomes)
        events = health.events(component="tracegen")
        fallback = [e for e in events if e.actual == "scalar"]
        assert fallback and fallback[0].severity == "degraded"

    def test_scalar_mode_is_not_degraded(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACEGEN", "scalar")
        generate_trace(get_profile("compress"), length=1_000, seed=0)
        events = health.events(component="tracegen")
        assert events and not any(e.degraded for e in events)
