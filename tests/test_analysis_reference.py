"""Equivalence suite for the optimized Section-4 analysis pipeline.

The fast path (compiled grouping drivers + counting sorts, see
``repro.core.grouping`` and ``repro.sim._cstep``) must produce
bit-identical summaries to the naive sort-based reference
implementations preserved in :mod:`repro.analysis.reference` — on every
predictor family with a detailed path, through both the compiled and the
pure-numpy fallback formulations, and on the degenerate inputs the
counting sorts are most likely to get wrong.
"""

import numpy as np
import pytest

from repro.analysis.bias import SNT, ST, WB, analyze_substreams, counter_bias_table
from repro.analysis.breakdown import misprediction_breakdown
from repro.analysis.reference import (
    analyze_substreams_reference,
    count_class_changes_reference,
    summarize_detailed_reference,
)
from repro.analysis.interference import count_class_changes
from repro.analysis.summary import summarize_detailed
from repro.core.registry import make_predictor
from repro.sim import _cstep
from repro.sim.engine import run_detailed
from repro.traces.record import BranchTrace
from tests.conftest import make_toy_trace
from tests.test_analysis_bias import detailed_from

DETAILED_SPECS = [
    "gshare:index=8,hist=6",
    "gshare:index=8,hist=8",
    "bimode:dir=7,hist=7,choice=6",
    "bimodal:index=8",
]


@pytest.fixture(scope="module")
def trace():
    return make_toy_trace(length=4000, seed=11)


def assert_analysis_equal(a, b):
    assert np.array_equal(a.stream_counter, b.stream_counter)
    assert np.array_equal(a.stream_pc, b.stream_pc)
    assert np.array_equal(a.stream_total, b.stream_total)
    assert np.array_equal(a.stream_taken, b.stream_taken)
    assert np.array_equal(a.stream_mispredicted, b.stream_mispredicted)
    assert np.array_equal(a.stream_class, b.stream_class)
    assert np.array_equal(a.access_stream, b.access_stream)
    assert np.array_equal(a.counter_dominant, b.counter_dominant)
    assert a.num_counters == b.num_counters


class TestFastVsReference:
    @pytest.mark.parametrize("spec", DETAILED_SPECS)
    def test_analysis_identical(self, spec, trace):
        detailed = run_detailed(make_predictor(spec), trace)
        assert_analysis_equal(
            analyze_substreams(detailed), analyze_substreams_reference(detailed)
        )

    @pytest.mark.parametrize("spec", DETAILED_SPECS)
    def test_summary_identical(self, spec, trace):
        detailed = run_detailed(make_predictor(spec), trace)
        fast = summarize_detailed(detailed, include_bias_table=True)
        ref = summarize_detailed_reference(detailed, include_bias_table=True)
        assert fast == ref

    @pytest.mark.parametrize("spec", DETAILED_SPECS)
    def test_class_changes_identical(self, spec, trace):
        detailed = run_detailed(make_predictor(spec), trace)
        analysis = analyze_substreams(detailed)
        assert count_class_changes(detailed, analysis) == count_class_changes_reference(
            detailed, analysis
        )

    def test_numpy_fallback_identical(self, trace, monkeypatch):
        """With the compiled drivers disabled, the pure-numpy counting
        sorts must still match both the compiled result and the
        reference."""
        spec = "gshare:index=8,hist=6"
        detailed = run_detailed(make_predictor(spec), trace)
        with_cc = summarize_detailed(detailed, include_bias_table=True)
        monkeypatch.setattr(_cstep, "available", lambda: False)
        without_cc = summarize_detailed(detailed, include_bias_table=True)
        assert without_cc == with_cc
        assert without_cc == summarize_detailed_reference(
            detailed, include_bias_table=True
        )

    def test_kernel_modes_identical(self, trace, monkeypatch):
        """Scalar and batch detailed kernels feed the same analysis."""
        spec = "bimode:dir=7,hist=7,choice=6"
        monkeypatch.setenv("REPRO_DETAILED_KERNEL", "scalar")
        scalar = summarize_detailed(run_detailed(make_predictor(spec), trace))
        monkeypatch.setenv("REPRO_DETAILED_KERNEL", "batch")
        batch = summarize_detailed(run_detailed(make_predictor(spec), trace))
        assert scalar == batch


class TestAnalysisEdgeCases:
    def test_empty_trace(self):
        detailed = run_detailed(
            make_predictor("gshare:index=6,hist=4"), BranchTrace.empty("none")
        )
        analysis = analyze_substreams(detailed)
        assert analysis.num_streams == 0
        assert len(analysis.access_stream) == 0
        assert (analysis.counter_dominant == -1).all()
        bd = misprediction_breakdown(analysis)
        assert bd.overall == 0.0 and bd.total_branches == 0
        assert summarize_detailed(detailed) == summarize_detailed_reference(detailed)

    def test_single_counter_table(self):
        # every access lands on the only counter; streams split by PC only
        detailed = detailed_from(
            pcs=[1, 2, 1, 2, 1, 2],
            counter_ids=[0, 0, 0, 0, 0, 0],
            outcomes=[True, False, True, False, True, False],
            mispredicted=[False, True, False, False, False, True],
            num_counters=1,
        )
        analysis = analyze_substreams(detailed)
        assert analysis.num_streams == 2
        assert counter_bias_table(analysis).shape == (1, 3)
        assert_analysis_equal(analysis, analyze_substreams_reference(detailed))
        assert summarize_detailed(detailed) == summarize_detailed_reference(detailed)

    def test_all_wb_stream(self):
        # one branch, 50 % taken: a single WB stream, so every miss is WB
        detailed = detailed_from(
            pcs=[7] * 8,
            counter_ids=[3] * 8,
            outcomes=[True, False] * 4,
            mispredicted=[True, False, False, True, False, False, True, False],
            num_counters=4,
        )
        analysis = analyze_substreams(detailed)
        assert (analysis.stream_class == WB).all()
        bd = misprediction_breakdown(analysis)
        assert bd.snt == 0.0 and bd.st == 0.0
        assert bd.wb == pytest.approx(3 / 8)
        assert bd.overall == pytest.approx(detailed.result.misprediction_rate)
        assert summarize_detailed(detailed) == summarize_detailed_reference(detailed)

    def test_exact_boundary_rates(self):
        # taken rates landing exactly on 0.9 and 0.1 must classify as
        # strong (>= / <=), identically in the fast and reference paths
        pcs = [1] * 10 + [2] * 10
        outcomes = [True] * 9 + [False] + [True] + [False] * 9
        detailed = detailed_from(
            pcs=pcs,
            counter_ids=[0] * 10 + [1] * 10,
            outcomes=outcomes,
            num_counters=2,
        )
        analysis = analyze_substreams(detailed)
        by_pc = dict(zip(analysis.stream_pc, analysis.stream_class))
        assert by_pc[1] == ST  # exactly 0.9 taken
        assert by_pc[2] == SNT  # exactly 0.1 taken
        assert_analysis_equal(analysis, analyze_substreams_reference(detailed))

    def test_edge_cases_survive_numpy_fallback(self, monkeypatch):
        monkeypatch.setattr(_cstep, "available", lambda: False)
        self.test_single_counter_table()
        self.test_all_wb_stream()
        self.test_exact_boundary_rates()
