#!/usr/bin/env python
"""Capture & checkpoint — the library's workflow features.

Two workflows a downstream user needs beyond the paper reproduction:

1. **Profile capture** — fit a synthetic profile to *your own* trace
   (here: a generated stand-in) and regenerate arbitrarily long
   lookalikes for predictor studies;
2. **Checkpointing** — warm a predictor on one trace chunk, save its
   architectural state to JSON, and resume later (or fork the warm
   state into several what-if continuations).

Run with::

    python examples/capture_and_checkpoint.py
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

from repro import load_benchmark, make_predictor, run
from repro.core.checkpoint import load_checkpoint, save_checkpoint
from repro.traces.stats import compute_stats
from repro.workloads.capture import estimate_profile
from repro.workloads.generator import generate_trace


def demonstrate_capture() -> None:
    print("== profile capture ==")
    # pretend this came in via repro.traces.io.load_text from your tool
    original = load_benchmark("perl", length=80_000)
    stats = compute_stats(original)
    print(f"original : {original.name}: {stats.static_branches} static, "
          f"taken {100 * stats.taken_rate:.1f}%, "
          f"strongly-biased {100 * stats.strongly_biased_fraction:.1f}%")

    profile = estimate_profile(original, name="my-workload")
    lookalike = generate_trace(profile, length=200_000, seed=42)
    fit_stats = compute_stats(lookalike)
    print(f"lookalike: {lookalike.name}: {fit_stats.static_branches} static, "
          f"taken {100 * fit_stats.taken_rate:.1f}%, "
          f"strongly-biased {100 * fit_stats.strongly_biased_fraction:.1f}%")

    for spec in ("gshare:index=12,hist=12", "bimode:dir=11,hist=11,choice=11"):
        a = run(make_predictor(spec), original).misprediction_rate
        b = run(make_predictor(spec), lookalike).misprediction_rate
        print(f"  {spec:<34} original {100 * a:5.2f}%   lookalike {100 * b:5.2f}%")
    print()


def demonstrate_checkpoint() -> None:
    print("== checkpoint / resume ==")
    trace = load_benchmark("gcc", length=120_000)
    first, second = trace[:60_000], trace[60_000:]
    spec = "bimode:dir=11,hist=11,choice=11"

    warm = make_predictor(spec)
    run(warm, first)
    with tempfile.TemporaryDirectory() as tmp:
        path = save_checkpoint(warm, Path(tmp) / "bimode.json")
        payload = json.loads(path.read_text())
        print(f"saved {path.name}: predictor {payload['name']!r}, "
              f"{len(payload['state']['choice'])} choice counters")

        resumed = make_predictor(spec)
        load_checkpoint(resumed, path)
        warm_rate = run(resumed, second, reset=False).misprediction_rate

    cold_rate = run(make_predictor(spec), second).misprediction_rate
    print(f"second half, resumed from checkpoint: {100 * warm_rate:.2f}%")
    print(f"second half, cold start            : {100 * cold_rate:.2f}%")
    print("warm state is worth "
          f"{100 * (cold_rate - warm_rate):.2f} points on this chunk")


if __name__ == "__main__":
    demonstrate_capture()
    demonstrate_checkpoint()
