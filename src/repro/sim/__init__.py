"""Trace-driven simulation: engine, batch kernel, metrics, cached and
process-parallel multi-run orchestration."""

from repro.sim.batch import (
    GShareLane,
    gshare_lane_predictions,
    gshare_lane_rates,
    lane_for_spec,
)
from repro.sim.engine import run, run_detailed, run_steps
from repro.sim.fetch import FetchEngine, FetchStats
from repro.sim.metrics import (
    branch_penalty_cpi,
    misprediction_rate,
    per_branch_rates,
    steady_state_rate,
    wilson_interval,
)
from repro.sim.parallel import (
    TraceRecipe,
    evaluate_matrix_parallel,
    parallel_jobs,
    recipe_of,
)
from repro.sim.runner import (
    ResultCache,
    evaluate,
    evaluate_matrix,
    evaluate_specs,
    trace_key,
)

__all__ = [
    "FetchEngine",
    "FetchStats",
    "GShareLane",
    "ResultCache",
    "TraceRecipe",
    "branch_penalty_cpi",
    "evaluate",
    "evaluate_matrix",
    "evaluate_matrix_parallel",
    "evaluate_specs",
    "gshare_lane_predictions",
    "gshare_lane_rates",
    "lane_for_spec",
    "misprediction_rate",
    "parallel_jobs",
    "per_branch_rates",
    "recipe_of",
    "run",
    "run_detailed",
    "run_steps",
    "steady_state_rate",
    "trace_key",
    "wilson_interval",
]
