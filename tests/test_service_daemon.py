"""Subprocess end-to-end drills for the sweep daemon.

These run ``repro serve`` as a real child process and exercise the
acceptance criteria the in-process tests cannot: a ``kill -9`` of the
whole daemon mid-sweep (journal recovery, exactly-once accounting via
the fault trace) and a ``SIGTERM`` graceful drain.  The CI
``sweep-service`` job runs this module on every push.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.service import ServiceClient

SPECS_A = [
    "gshare:index=8,hist=6",
    "bimode:dir=6,hist=6,choice=6",
    "bimodal:index=6",
]
SPECS_B = [
    "gshare:index=8,hist=6",        # overlaps A
    "bimode:dir=6,hist=6,choice=6",  # overlaps A
    "gshare:index=9,hist=5",
]
BENCHES = ["xlisp", "compress", "go"]
LENGTH = 40_000

SRC = str(Path(__file__).resolve().parent.parent / "src")


def daemon_env(cache, **extra):
    env = dict(
        os.environ,
        PYTHONPATH=SRC,
        REPRO_CACHE_DIR=str(cache),
        REPRO_JOBS="2",
        REPRO_HEALTH_JSON="1",
    )
    env.pop("REPRO_FAULTS", None)
    env.pop("REPRO_FAULT_TRACE", None)
    env.update({k: str(v) for k, v in extra.items()})
    return env


def start_daemon(sock, env, log_path):
    log = open(log_path, "w")
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--socket", str(sock)],
        env=env, stdout=log, stderr=subprocess.STDOUT,
    )


def wait_up(client, proc, log_path, timeout=60):
    deadline = time.monotonic() + timeout
    while True:
        if proc.poll() is not None:
            pytest.fail(f"daemon died on startup:\n{Path(log_path).read_text()}")
        try:
            client.ping()
            return
        except OSError:
            if time.monotonic() > deadline:
                pytest.fail(f"daemon never came up:\n{Path(log_path).read_text()}")
            time.sleep(0.05)


def union_cells():
    cells = set()
    for spec in SPECS_A + SPECS_B:
        for bench in BENCHES:
            cells.add((f"{bench}-n{LENGTH}-s0", spec))
    return cells


def recovered_cells(cache, union):
    """Cells of the job union already present in cache or journals."""
    have = set()
    results_dir = Path(cache) / "results"
    if results_dir.is_dir():
        for table in results_dir.glob("*.json"):
            try:
                data = json.loads(table.read_text())
            except (OSError, json.JSONDecodeError):
                continue
            for spec in data:
                have.add((table.stem, spec))
    journal_dir = Path(cache) / "service" / "journal"
    if journal_dir.is_dir():
        for journal in journal_dir.glob("*.jsonl"):
            for line in journal.read_text().splitlines():
                try:
                    row = json.loads(line)
                    have.add((row["tkey"], row["spec"]))
                except (json.JSONDecodeError, KeyError, TypeError):
                    continue
    return have & union


def trace_snapshot(trace_root):
    root = Path(trace_root)
    if not root.is_dir():
        return {}
    return {p.name: len(p.read_text().splitlines()) for p in root.glob("*.log")}


def evaluated_cells_since(trace_root, snapshot):
    total = 0
    root = Path(trace_root)
    if not root.is_dir():
        return 0
    for path in sorted(root.glob("*.log")):
        lines = path.read_text().splitlines()
        for line in lines[snapshot.get(path.name, 0):]:
            fields = line.split()
            if fields and fields[0] == "evaluate":
                for field in fields[1:]:
                    if field.startswith("cells="):
                        total += int(field[len("cells="):])
    return total


def serial_reference(root, monkeypatch):
    """Ground truth from the one-shot path, against a fresh trace store."""
    from repro.sim.runner import evaluate_matrix
    from repro.traces.store import TraceStore

    monkeypatch.setenv("REPRO_CACHE_DIR", str(Path(root) / "refcache"))
    store = TraceStore(Path(root) / "refcache" / "traces")
    traces = {b: store.materialize(b, LENGTH, 0) for b in BENCHES}
    return evaluate_matrix(sorted(set(SPECS_A + SPECS_B)), traces, jobs=1)


class TestKillNineDrill:
    def test_kill9_mid_sweep_recovers_bit_identically(self, tmp_path, monkeypatch):
        cache = tmp_path / "cache"
        trace_root = tmp_path / "ftrace"
        sock = tmp_path / "s.sock"
        benches = [{"name": b, "length": LENGTH} for b in BENCHES]
        alice = ServiceClient(str(sock), client_id="alice")
        bob = ServiceClient(str(sock), client_id="bob")

        # Daemon 1: sleepy workers guarantee the kill lands mid-sweep.
        env1 = daemon_env(
            cache,
            REPRO_FAULTS="worker:sleep:seconds=0.25",
            REPRO_FAULT_TRACE=trace_root,
        )
        daemon1 = start_daemon(sock, env1, tmp_path / "daemon1.log")
        try:
            wait_up(alice, daemon1, tmp_path / "daemon1.log")
            job_a = alice.submit(SPECS_A, benches, priority=1)
            job_b = bob.submit(SPECS_B, benches)

            deadline = time.monotonic() + 120
            while True:
                jobs = {j["job_id"]: j for j in alice.status()}
                done = (jobs[job_a]["completed_cells"]
                        + jobs[job_b]["completed_cells"])
                total = jobs[job_a]["total_cells"] + jobs[job_b]["total_cells"]
                if jobs[job_a]["state"] == "done" and jobs[job_b]["state"] == "done":
                    pytest.fail("sweep finished before the kill: workload too fast")
                if 0 < done <= total // 2:
                    break
                assert time.monotonic() < deadline, "no progress before kill window"
                time.sleep(0.02)

            os.kill(daemon1.pid, signal.SIGKILL)
            daemon1.wait(timeout=30)
        finally:
            if daemon1.poll() is None:
                daemon1.kill()
        time.sleep(1.5)  # let orphaned pool workers wind down

        union = union_cells()
        recovered = recovered_cells(cache, union)
        assert recovered, "nothing journalled before the kill"
        assert recovered != union, "kill landed after the sweep finished"
        snapshot = trace_snapshot(trace_root)

        # Daemon 2: no sleep fault; must resume and finish both jobs.
        env2 = daemon_env(cache, REPRO_FAULT_TRACE=trace_root)
        daemon2 = start_daemon(sock, env2, tmp_path / "daemon2.log")
        try:
            final_a = alice.wait(job_a, timeout=300)
            final_b = bob.wait(job_b, timeout=300)
            assert final_a["state"] == "done", final_a.get("error")
            assert final_b["state"] == "done", final_b.get("error")

            # Exactly-once: the restarted daemon simulated precisely the
            # cells missing from the journals/cache, nothing twice.
            resimulated = evaluated_cells_since(trace_root, snapshot)
            assert resimulated == len(union) - len(recovered)

            ref = serial_reference(tmp_path, monkeypatch)
            for final, specs in ((final_a, SPECS_A), (final_b, SPECS_B)):
                for spec in specs:
                    for bench in BENCHES:
                        assert final["results"][spec][bench] == ref[spec][bench]

            alice.drain()
            daemon2.wait(timeout=60)
            assert daemon2.returncode == 0
        finally:
            if daemon2.poll() is None:
                daemon2.kill()


class TestSigtermDrain:
    def test_sigterm_persists_queued_and_restart_completes(self, tmp_path):
        cache = tmp_path / "cache"
        sock = tmp_path / "s.sock"
        benches = [{"name": b, "length": LENGTH} for b in BENCHES]
        client = ServiceClient(str(sock), client_id="drainer")

        env1 = daemon_env(cache, REPRO_FAULTS="worker:sleep:seconds=0.3")
        daemon1 = start_daemon(sock, env1, tmp_path / "daemon1.log")
        try:
            wait_up(client, daemon1, tmp_path / "daemon1.log")
            job_id = client.submit(SPECS_A, benches)
            deadline = time.monotonic() + 120
            while True:
                (row,) = client.status(job_id)
                if 0 < row["completed_cells"] < row["total_cells"]:
                    break
                assert row["state"] != "done", "finished before SIGTERM"
                assert time.monotonic() < deadline
                time.sleep(0.02)

            daemon1.send_signal(signal.SIGTERM)
            daemon1.wait(timeout=120)
            assert daemon1.returncode == 0
        finally:
            if daemon1.poll() is None:
                daemon1.kill()
        assert not sock.exists()  # graceful exit removed the socket

        manifest = json.loads(
            (cache / "service" / "jobs" / f"{job_id}.json").read_text()
        )
        assert manifest["state"] == "queued"  # persisted for the next daemon
        assert 0 < manifest["completed_cells"] < manifest["total_cells"]

        daemon2 = start_daemon(sock, daemon_env(cache), tmp_path / "daemon2.log")
        try:
            final = client.wait(job_id, timeout=300)
            assert final["state"] == "done"
            assert final["completed_cells"] == final["total_cells"]
            client.drain()
            daemon2.wait(timeout=60)
        finally:
            if daemon2.poll() is None:
                daemon2.kill()
