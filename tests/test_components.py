"""Unit tests for the branch behaviour models."""

from random import Random

import pytest

from repro.workloads.components import (
    BiasedBehavior,
    CorrelatedBehavior,
    LoopBehavior,
    PatternBehavior,
)


class TestBiasedBehavior:
    def test_extremes_are_deterministic(self):
        rng = Random(0)
        assert all(BiasedBehavior(1.0).next_outcome(0, rng) for _ in range(20))
        assert not any(BiasedBehavior(0.0).next_outcome(0, rng) for _ in range(20))

    def test_rate_approximates_p(self):
        rng = Random(1)
        b = BiasedBehavior(0.8)
        rate = sum(b.next_outcome(0, rng) for _ in range(5000)) / 5000
        assert abs(rate - 0.8) < 0.03

    def test_rejects_bad_p(self):
        with pytest.raises(ValueError):
            BiasedBehavior(1.5)


class TestLoopBehavior:
    def test_trip_count_pattern(self):
        rng = Random(0)
        loop = LoopBehavior(trip_count=4)
        outcomes = [loop.next_outcome(0, rng) for _ in range(8)]
        # taken 3x, exit, taken 3x, exit
        assert outcomes == [True, True, True, False] * 2

    def test_trip_one_always_exits(self):
        rng = Random(0)
        loop = LoopBehavior(trip_count=1)
        assert [loop.next_outcome(0, rng) for _ in range(3)] == [False] * 3

    def test_jitter_varies_trip(self):
        rng = Random(2)
        loop = LoopBehavior(trip_count=6, jitter=2)
        trips = []
        count = 0
        for _ in range(2000):
            if loop.next_outcome(0, rng):
                count += 1
            else:
                trips.append(count + 1)
                count = 0
        assert min(trips) >= 4 and max(trips) <= 8
        assert len(set(trips)) > 1

    def test_reset_restarts_visit(self):
        rng = Random(0)
        loop = LoopBehavior(trip_count=3)
        loop.next_outcome(0, rng)
        loop.reset()
        outcomes = [loop.next_outcome(0, rng) for _ in range(3)]
        assert outcomes == [True, True, False]

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            LoopBehavior(trip_count=0)
        with pytest.raises(ValueError):
            LoopBehavior(trip_count=2, jitter=-1)


class TestCorrelatedBehavior:
    def test_reads_selected_positions(self):
        # outcome = history bit 2 (third most recent)
        b = CorrelatedBehavior(positions=[2], table=[False, True])
        rng = Random(0)
        assert b.next_outcome(0b100, rng) is True
        assert b.next_outcome(0b011, rng) is False

    def test_multi_input_table_indexing(self):
        # index bit0 = history[0], bit1 = history[3]
        b = CorrelatedBehavior(positions=[0, 3], table=[False, True, False, True])
        rng = Random(0)
        # history bit0=1, bit3=0 -> table[0b01] = True
        assert b.next_outcome(0b0001, rng) is True
        # history bit0=0, bit3=1 -> table[0b10] = False
        assert b.next_outcome(0b1000, rng) is False

    def test_noise_flips_sometimes(self):
        b = CorrelatedBehavior(positions=[0], table=[True, True], noise=0.3)
        rng = Random(3)
        flips = sum(not b.next_outcome(0, rng) for _ in range(2000))
        assert 450 < flips < 750

    def test_depth(self):
        assert CorrelatedBehavior(positions=[1, 5], table=[0, 1, 1, 0]).depth == 6

    def test_random_constructor_depth_anchor(self):
        for seed in range(10):
            b = CorrelatedBehavior.random(depth=7, rng=Random(seed))
            assert b.depth == 7  # deepest input anchored at depth-1
            assert 1 <= len(b.positions) <= 3

    def test_random_table_not_constant(self):
        for seed in range(20):
            b = CorrelatedBehavior.random(depth=4, rng=Random(seed))
            assert len(set(b.table)) == 2

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            CorrelatedBehavior(positions=[], table=[])
        with pytest.raises(ValueError):
            CorrelatedBehavior(positions=[2, 1], table=[0, 0, 1, 1])
        with pytest.raises(ValueError):
            CorrelatedBehavior(positions=[0], table=[True])
        with pytest.raises(ValueError):
            CorrelatedBehavior(positions=[0], table=[0, 1], noise=2.0)


class TestPatternBehavior:
    def test_cycles(self):
        b = PatternBehavior([True, True, False])
        rng = Random(0)
        outcomes = [b.next_outcome(0, rng) for _ in range(6)]
        assert outcomes == [True, True, False, True, True, False]

    def test_sync_restarts_phase(self):
        b = PatternBehavior([True, False])
        rng = Random(0)
        b.next_outcome(0, rng)
        b.sync()
        assert b.next_outcome(0, rng) is True

    def test_reset_restarts_phase(self):
        b = PatternBehavior([True, False])
        rng = Random(0)
        b.next_outcome(0, rng)
        b.reset()
        assert b.next_outcome(0, rng) is True

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            PatternBehavior([])

    def test_history_is_ignored(self):
        b = PatternBehavior([True, False])
        rng = Random(0)
        assert b.next_outcome(0xFFFF, rng) is True
