"""Figure 2 — averaged misprediction vs predictor size.

Regenerates both panels of the paper's Figure 2: misprediction rate
averaged over SPEC CINT95 (left) and IBS-Ultrix (right) for
gshare.1PHT, gshare.best (exhaustive history-length search per size,
best-on-average as in Section 3.1) and bi-mode, across the paper's
0.25 KB – 32 KB cost axis.

Shape checks (paper Section 3.3):

* bi-mode's curve sits below gshare.best, which sits at or below
  gshare.1PHT, at (essentially) every size on both averages;
* every curve is monotone-ish decreasing with size;
* at the large end, bi-mode reaches a given misprediction rate at a
  substantially smaller cost than gshare ("less than half the size"
  in the paper; we check a conservative 0.75 factor).

Every cell routes through the batched kernels: gshare specs through
:mod:`repro.sim.batch`, bi-mode specs through
:mod:`repro.sim.batch_bimode` (one cross-trace batch per suite).
``benchmarks/measure_sweep_speedup.py`` quantifies the win.
"""

from __future__ import annotations

import pytest

from benchmarks.common import (
    PAPER_EXPECTED,
    bench_jobs,
    emit_table,
    load_bench_suite,
    result_cache,
    sweep_journal,
)
from repro.analysis.report import ascii_chart
from repro.analysis.sweep import paper_sweep
from repro.core.hardware import PAPER_SIZE_POINTS_KB


def _run_suite(suite_name: str):
    traces = load_bench_suite(suite_name)
    return paper_sweep(
        traces,
        kb_points=PAPER_SIZE_POINTS_KB,
        cache=result_cache(),
        jobs=bench_jobs(),
        journal=sweep_journal(f"fig2_{suite_name}"),
    )


def _emit(suite_name: str, series):
    headers = ["scheme"] + [f"{kb:g}KB" for kb in PAPER_SIZE_POINTS_KB]
    rows = []
    for label, sweep in series.items():
        rows.append(
            [label] + [f"{100 * point.average:.2f}%" for point in sweep.points]
        )
    emit_table(
        f"fig2_{suite_name}_average",
        f"Figure 2 — {suite_name.upper()}-AVERAGE misprediction vs size "
        "(bi-mode plotted at its true 1.5x cost)",
        headers,
        rows,
    )
    chart = {
        label: [(point.size_kb, point.average) for point in sweep.points]
        for label, sweep in series.items()
    }
    print(ascii_chart(chart, title=f"{suite_name.upper()}-AVERAGE"))
    best_specs = [point.spec for point in series["gshare.best"].points]
    print("gshare.best configurations:", ", ".join(best_specs))


def _check_shape(series):
    one_pht = series["gshare.1PHT"].averages()
    best = series["gshare.best"].averages()
    bimode = series["bi-mode"].averages()

    # gshare.best <= gshare.1PHT by construction (search includes 1PHT)
    assert all(b <= o + 1e-12 for b, o in zip(best, one_pht))
    # bi-mode below gshare.best from 1KB up (the sub-1KB points are
    # near-ties in the paper as well) and on a clear majority overall
    assert all(bm < b for bm, b in zip(bimode[2:], best[2:])), (bimode, best)
    wins = sum(bm < b for bm, b in zip(bimode, best))
    assert wins >= len(bimode) - 2, (bimode, best)
    # bi-mode strictly below gshare.1PHT everywhere
    assert all(bm < o for bm, o in zip(bimode, one_pht))
    # curves trend downward: last point clearly better than first
    for values in (one_pht, best, bimode):
        assert values[-1] < values[0]

    # cost-effectiveness: the bi-mode point at label-size 8KB (true cost
    # 12 KB) should beat the 16 KB and 32 KB gshare.best points
    assert bimode[5] < best[6] + 1e-12
    assert bimode[5] < best[7] + 1e-12


@pytest.mark.benchmark(group="fig2")
def test_fig2_cint95_average(benchmark):
    series = benchmark.pedantic(_run_suite, args=("cint95",), rounds=1, iterations=1)
    _emit("cint95", series)
    _check_shape(series)
    lo, hi = 0.5 * PAPER_EXPECTED["cint95_avg_8kb"][2], 3.0 * PAPER_EXPECTED["cint95_avg_8kb"][0]
    assert lo / 100 < series["bi-mode"].averages()[5] < hi / 100


@pytest.mark.benchmark(group="fig2")
def test_fig2_ibs_average(benchmark):
    series = benchmark.pedantic(_run_suite, args=("ibs",), rounds=1, iterations=1)
    _emit("ibs", series)
    _check_shape(series)
