"""Unit tests for ASCII reporting and CSV export."""

import csv

import pytest

from repro.analysis.report import ascii_chart, ascii_table, format_rate, write_csv


class TestFormatRate:
    def test_percent(self):
        assert format_rate(0.0625) == "6.25%"
        assert format_rate(0.0) == "0.00%"


class TestAsciiTable:
    def test_alignment_and_content(self):
        text = ascii_table(["name", "rate"], [["gcc", 0.123456], ["go", 0.5]])
        lines = text.splitlines()
        assert lines[0].split() == ["name", "rate"]
        assert "gcc" in lines[2]
        assert "0.1235" in lines[2]  # 4 significant digits

    def test_title(self):
        text = ascii_table(["a"], [[1]], title="Table 2")
        assert text.splitlines()[0] == "Table 2"

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            ascii_table(["a", "b"], [[1]])

    def test_wide_cells_expand_columns(self):
        text = ascii_table(["a"], [["a-very-long-cell"]])
        header, rule, row = text.splitlines()
        assert len(header) == len(row)


class TestAsciiChart:
    def test_contains_markers_and_legend(self):
        series = {
            "gshare": [(0.25, 0.10), (1.0, 0.08), (4.0, 0.06)],
            "bimode": [(0.25, 0.08), (1.0, 0.06), (4.0, 0.04)],
        }
        text = ascii_chart(series, width=40, height=10)
        assert "o=gshare" in text
        assert "*=bimode" in text
        assert "o" in text and "*" in text

    def test_empty(self):
        assert ascii_chart({}, width=10, height=5) == "(empty chart)"

    def test_linear_axis(self):
        text = ascii_chart({"s": [(1, 0.5), (2, 0.4)]}, log_x=False)
        assert "x" in text

    def test_flat_series_does_not_crash(self):
        text = ascii_chart({"s": [(1, 0.5), (2, 0.5)]})
        assert "s" in text


class TestWriteCsv:
    def test_roundtrip(self, tmp_path):
        path = write_csv(tmp_path / "out.csv", ["a", "b"], [[1, 2], [3, 4]])
        with open(path) as fh:
            rows = list(csv.reader(fh))
        assert rows == [["a", "b"], ["1", "2"], ["3", "4"]]

    def test_creates_directories(self, tmp_path):
        path = write_csv(tmp_path / "x" / "y.csv", ["a"], [[1]])
        assert path.exists()
