"""Compact Section-4 aggregates of one detailed simulation.

The parallel detailed pipeline (:func:`repro.sim.parallel.
detailed_matrix`) runs the per-access attribution kernels *inside*
worker processes.  Shipping the per-branch arrays back to the parent
would cost tens of megabytes per cell, so workers reduce each detailed
simulation to this module's :func:`summarize_detailed` payload first —
every aggregate the Section-4 benches and CLI commands consume
(misprediction breakdown, bias areas, WB dynamic share, aliasing and
sharing decompositions, class-change counts), a few kilobytes of plain
JSON-serializable data.

Payloads round-trip through JSON exactly (repr floats, int counts,
lists), so a summary resumed from the sweep journal is equal to a
freshly computed one and resumed benches stay bit-identical.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.analysis.aliasing import AliasingStats, SharingDecomposition, aliasing_stats, sharing_decomposition
from repro.analysis.bias import (
    BIAS_THRESHOLD,
    WB,
    SubstreamAnalysis,
    analyze_substreams,
    counter_bias_table,
)
from repro.analysis.breakdown import misprediction_breakdown
from repro.analysis.interference import ClassChangeCounts, count_class_changes
from repro.core.interfaces import DetailedSimulation

__all__ = ["summarize_detailed", "bias_areas", "build_summary"]


def bias_areas(table: np.ndarray) -> Dict[str, float]:
    """Mean dominant / non-dominant / WB shares of a bias table."""
    if len(table) == 0:
        return {"dominant": 0.0, "non_dominant": 0.0, "wb": 0.0}
    return {
        "dominant": float(table[:, 0].mean()),
        "non_dominant": float(table[:, 1].mean()),
        "wb": float(table[:, 2].mean()),
    }


def build_summary(
    detailed: DetailedSimulation,
    analysis: SubstreamAnalysis,
    table: np.ndarray,
    alias: AliasingStats,
    sharing: SharingDecomposition,
    changes: ClassChangeCounts,
    include_bias_table: bool = False,
) -> dict:
    """Assemble the summary payload from precomputed aggregates.

    Shared by :func:`summarize_detailed` and the reference baseline
    (:mod:`repro.analysis.reference`), so the two can never drift in
    payload shape.
    """
    result = detailed.result
    breakdown = misprediction_breakdown(analysis)
    total = int(analysis.stream_total.sum())
    wb_dynamic = (
        float(analysis.stream_total[analysis.stream_class == WB].sum() / total)
        if total
        else 0.0
    )
    summary = {
        "num_branches": int(result.num_branches),
        "num_counters": int(detailed.num_counters),
        "misprediction_rate": float(result.misprediction_rate),
        "breakdown": {
            "overall": float(breakdown.overall),
            "snt": float(breakdown.snt),
            "st": float(breakdown.st),
            "wb": float(breakdown.wb),
        },
        "bias_areas": bias_areas(table),
        "wb_dynamic_share": wb_dynamic,
        "num_streams": int(analysis.num_streams),
        "aliasing": {
            "counters_used": int(alias.counters_used),
            "aliased_counters": int(alias.aliased_counters),
            "destructive_counters": int(alias.destructive_counters),
            "aliased_access_fraction": float(alias.aliased_access_fraction),
            "destructive_access_fraction": float(alias.destructive_access_fraction),
            "harmless_access_fraction": float(alias.harmless_access_fraction),
            "mean_streams_per_counter": float(alias.mean_streams_per_counter),
        },
        "sharing": {
            "streams": int(sharing.streams),
            "counters": int(sharing.counters),
            "measured_share": float(sharing.measured_share),
            "capacity_share": float(sharing.capacity_share),
            "conflict_share": float(sharing.conflict_share),
        },
        "class_changes": {
            "dominant": int(changes.dominant),
            "non_dominant": int(changes.non_dominant),
            "wb": int(changes.wb),
            "total": int(changes.total),
        },
    }
    if include_bias_table:
        summary["bias_table"] = [[float(v) for v in row] for row in table]
    return summary


def summarize_detailed(
    detailed: DetailedSimulation,
    threshold: float = BIAS_THRESHOLD,
    include_bias_table: bool = False,
    analysis: Optional[SubstreamAnalysis] = None,
    pc_codes: Optional[Tuple[np.ndarray, np.ndarray]] = None,
) -> dict:
    """Reduce one detailed simulation to its Section-4 aggregates.

    The returned dict is JSON-serializable and carries everything the
    figure/table benches read: ``misprediction_rate``, ``breakdown``
    (Figures 7–8), ``bias_areas`` and optionally the full per-counter
    ``bias_table`` rows (Figures 5–6), ``wb_dynamic_share`` (history
    length sweep), ``aliasing`` / ``sharing`` (interference
    decomposition), and ``class_changes`` (Table 4).

    ``pc_codes`` (from :func:`repro.analysis.bias.pc_code_stream`) lets
    sweeps over one trace amortize the PC dictionary across cells.
    """
    if analysis is None:
        analysis = analyze_substreams(detailed, threshold=threshold, pc_codes=pc_codes)
    return build_summary(
        detailed,
        analysis,
        table=counter_bias_table(analysis),
        alias=aliasing_stats(analysis),
        sharing=sharing_decomposition(analysis),
        changes=count_class_changes(detailed, analysis),
        include_bias_table=include_bias_table,
    )
