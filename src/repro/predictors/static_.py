"""Static (non-adaptive) predictors [Smith81, FisherFreudenberger92].

These cost no counter storage and serve as floors/sanity baselines:

* :class:`AlwaysTakenPredictor` / :class:`AlwaysNotTakenPredictor` —
  fixed direction.
* :class:`BTFNTPredictor` — *backward taken, forward not-taken*: the
  classic static heuristic exploiting that backward branches are mostly
  loop back-edges.  Needs the branch target to know the direction; the
  trace substrate stores only PCs, so the heuristic is parameterized by
  a ``backward`` PC-classifier callable (the workload generator marks
  loop back-edges with odd word addresses by convention, which the
  default classifier uses).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.interfaces import (
    BranchPredictor,
    DetailedSimulation,
    SimulationResult,
)
from repro.traces.record import BranchTrace

__all__ = [
    "AlwaysTakenPredictor",
    "AlwaysNotTakenPredictor",
    "BTFNTPredictor",
]


class _FixedPredictor(BranchPredictor):
    """Common machinery for direction-constant predictors."""

    _direction: bool = True

    def predict(self, pc: int) -> bool:
        return self._direction

    def update(self, pc: int, taken: bool) -> None:
        pass

    def reset(self) -> None:
        pass

    def size_bits(self) -> int:
        return 0

    def simulate(self, trace: BranchTrace) -> SimulationResult:
        predictions = np.full(len(trace), self._direction, dtype=bool)
        return SimulationResult(
            predictor_name=self.name,
            trace_name=trace.name,
            predictions=predictions,
            outcomes=trace.outcomes,
        )

    def simulate_detailed(self, trace: BranchTrace) -> DetailedSimulation:
        """One virtual "counter" — the hardwired direction."""
        return DetailedSimulation(
            result=self.simulate(trace),
            counter_ids=np.zeros(len(trace), dtype=np.int64),
            num_counters=1,
            pcs=trace.pcs,
        )


class AlwaysTakenPredictor(_FixedPredictor):
    """Predict every branch taken."""

    scheme = "always-taken"
    _direction = True

    @property
    def name(self) -> str:
        return self.scheme


class AlwaysNotTakenPredictor(_FixedPredictor):
    """Predict every branch not-taken."""

    scheme = "always-not-taken"
    _direction = False

    @property
    def name(self) -> str:
        return self.scheme


def _default_backward_classifier(pc: int) -> bool:
    """Workload-generator convention: loop back-edges get odd word addresses."""
    return bool(pc & 1)


class BTFNTPredictor(BranchPredictor):
    """Backward-taken / forward-not-taken static heuristic.

    Parameters
    ----------
    backward:
        Callable classifying a branch PC as a backward branch.  Defaults
        to the workload-generator convention (odd word address ⇒
        backward loop edge).
    """

    scheme = "btfnt"

    def __init__(self, backward: Callable[[int], bool] = _default_backward_classifier):
        self._backward = backward

    @property
    def name(self) -> str:
        return self.scheme

    def predict(self, pc: int) -> bool:
        return self._backward(pc)

    def update(self, pc: int, taken: bool) -> None:
        pass

    def reset(self) -> None:
        pass

    def size_bits(self) -> int:
        return 0

    def simulate(self, trace: BranchTrace) -> SimulationResult:
        backward = self._backward
        predictions = np.fromiter(
            (backward(pc) for pc in trace.pcs.tolist()), dtype=bool, count=len(trace)
        )
        return SimulationResult(
            predictor_name=self.name,
            trace_name=trace.name,
            predictions=predictions,
            outcomes=trace.outcomes,
        )

    def simulate_detailed(self, trace: BranchTrace) -> DetailedSimulation:
        """Two virtual "counters": 0 = forward rule, 1 = backward rule."""
        result = self.simulate(trace)
        return DetailedSimulation(
            result=result,
            counter_ids=result.predictions.astype(np.int64),
            num_counters=2,
            pcs=trace.pcs,
        )
