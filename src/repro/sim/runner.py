"""Multi-run orchestration with a persistent result cache.

The figure benchmarks evaluate hundreds of (predictor spec, benchmark)
pairs; a pair's misprediction rate is deterministic, so results are
memoized on disk as JSON keyed by ``(spec, trace key)``.  The cache
lives beside the trace cache (``repro.workloads.suite.default_cache_dir``)
and survives across processes, which makes re-running a figure bench
after the first time nearly free.

Spec grids are grouped into fused families by the sweep planner
(:mod:`repro.sim.fused`): gshare families and bi-mode families advance
every lane in one pass over the shared trace (``REPRO_FUSED``), with
the pre-existing per-trace batched kernels (:mod:`repro.sim.batch`,
:mod:`repro.sim.batch_bimode`) as the dispatch fallback, and the
scalar engine for anything unfusable (health-reported).  When the
fallback path is active, :func:`evaluate_matrix` additionally batches
the whole bi-mode portion of a sweep matrix — every uncached (spec,
bench) bi-mode cell — into one cross-trace kernel invocation, which is
where the stepped strategy gets its width.  Every path produces
bit-identical rates (asserted by the equivalence suites and the
differential oracle in :mod:`repro.verify`), so cache entries are
interchangeable between them.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set

from repro import health
from repro.faults import fault_point
from repro.sim.batch_bimode import bimode_lane_for_spec, bimode_matrix_rates
from repro.sim.fused import family_rates, fused_active, plan_families
from repro.traces.record import BranchTrace
from repro.workloads.suite import default_cache_dir

__all__ = [
    "trace_key",
    "ResultCache",
    "evaluate",
    "evaluate_specs",
    "evaluate_matrix",
]

logger = logging.getLogger(__name__)


def trace_key(trace: BranchTrace) -> str:
    """Stable identity of a trace for cache keying.

    Generated workload traces carry their ``profile_seed`` in metadata,
    which (with name and length) pins down their content.  Traces
    without one — hand-built arrays, recorded captures — fall back to a
    short content hash so two different anonymous traces of equal
    length can never collide on a cache cell.  A
    :class:`~repro.sim.parallel.TraceRecipe` carries the same identity
    without the arrays and is accepted directly.
    """
    tkey = getattr(trace, "tkey", None)
    if tkey is not None:
        return tkey
    seed = trace.metadata.get("profile_seed")
    if seed is None:
        digest = hashlib.sha1()
        digest.update(trace.pcs.tobytes())
        digest.update(trace.outcomes.tobytes())
        suffix = f"h{digest.hexdigest()[:12]}"
    else:
        suffix = f"s{seed}"
    return f"{trace.name or 'anon'}-n{len(trace)}-{suffix}"


class ResultCache:
    """Disk-backed ``(spec, trace) -> misprediction rate`` memo.

    One JSON file per trace key keeps files small and avoids rewrite
    contention across benchmarks.  Writes are atomic (temp file +
    ``os.replace``), so a reader — or a concurrent sweep worker's
    merge — can never observe a half-written table.  Batch producers
    should use :meth:`put_many` or the :meth:`deferred` context manager:
    ``put`` alone rewrites the trace's file on every cell, which is
    O(cells²) bytes over a sweep.
    """

    def __init__(self, root: Optional[Path] = None):
        self.root = (Path(root) if root is not None else default_cache_dir()) / "results"
        self._loaded: Dict[str, Dict[str, float]] = {}
        self._dirty: Set[str] = set()
        self._defer_writes = False

    def _path(self, tkey: str) -> Path:
        return self.root / f"{tkey}.json"

    def _table(self, tkey: str) -> Dict[str, float]:
        if tkey not in self._loaded:
            self._loaded[tkey] = self._load_table(tkey)
        return self._loaded[tkey]

    def _load_table(self, tkey: str) -> Dict[str, float]:
        """Load one per-trace table, distrusting everything on disk.

        A file that is not valid JSON (a crash mid-write of a foreign
        tool, bit rot) is quarantined to ``<name>.json.corrupt-<pid>``
        — preserved for inspection, out of the cache's way — rather
        than silently treated as empty.  Loaded cells are validated:
        anything that is not a float in [0, 1] is dropped with a
        warning, so a poisoned cache cannot leak NaNs or garbage into
        a sweep table.
        """
        path = self._path(tkey)
        if not path.exists():
            return {}
        try:
            loaded = json.loads(path.read_text())
            if not isinstance(loaded, dict):
                raise ValueError(f"expected a JSON object, got {type(loaded).__name__}")
        except OSError as exc:
            logger.warning("result cache %s unreadable (%s); treating as empty", path, exc)
            return {}
        except (json.JSONDecodeError, ValueError) as exc:
            quarantine = path.with_name(f"{path.name}.corrupt-{os.getpid()}")
            try:
                os.replace(path, quarantine)
                where = quarantine.name
            except OSError:
                where = "<unmovable>"
            logger.warning(
                "quarantined corrupt result cache %s -> %s (%s)", path, where, exc
            )
            health.emit(
                "result-cache",
                "load",
                "quarantined",
                reason=f"{path.name}: {exc}",
                severity="degraded",
            )
            return {}
        table: Dict[str, float] = {}
        for spec, rate in loaded.items():
            if (
                isinstance(spec, str)
                and isinstance(rate, (int, float))
                and not isinstance(rate, bool)
                and 0.0 <= rate <= 1.0
            ):
                table[spec] = float(rate)
            else:
                logger.warning(
                    "dropping invalid cache cell %r=%r in %s", spec, rate, path.name
                )
        return table

    def get(self, spec: str, tkey: str) -> Optional[float]:
        return self._table(tkey).get(spec)

    def put(self, spec: str, tkey: str, rate: float) -> None:
        self.put_many(tkey, {spec: rate})

    def put_many(self, tkey: str, rates: Mapping[str, float]) -> None:
        """Record many cells of one trace, with a single file write."""
        if not rates:
            return
        self._table(tkey).update(rates)
        self._dirty.add(tkey)
        if not self._defer_writes:
            self.flush()

    def flush(self) -> List[str]:
        """Write every dirty per-trace table atomically.

        Exception-safe per trace key: one unwritable file does not drop
        the remaining dirty tables.  Keys that failed stay dirty (a
        later flush retries them) and are returned, warned about, and
        reported as degradation events.
        """
        failed: List[str] = []
        for tkey in sorted(self._dirty):
            path = self._path(tkey)
            tmp = None
            try:
                path.parent.mkdir(parents=True, exist_ok=True)
                tmp = path.with_name(f"{path.name}.tmp{os.getpid()}")
                tmp.write_text(
                    json.dumps(self._loaded[tkey], indent=0, sort_keys=True)
                )
                os.replace(tmp, path)
            except OSError as exc:
                if tmp is not None:
                    try:
                        tmp.unlink()
                    except OSError:
                        pass
                failed.append(tkey)
                logger.warning("could not flush result cache %s (%s)", path, exc)
                health.emit(
                    "result-cache",
                    "flush",
                    "kept-dirty",
                    reason=f"{tkey}: {exc}",
                    severity="error",
                )
        self._dirty = set(failed)
        return failed

    @contextmanager
    def deferred(self):
        """Batch all writes inside the block into one flush per trace.

        Re-entrant: the outermost block flushes.
        """
        outermost = not self._defer_writes
        self._defer_writes = True
        try:
            yield self
        finally:
            if outermost:
                self._defer_writes = False
                self.flush()


def evaluate_specs(
    specs: Sequence[str],
    trace: BranchTrace,
    cache: Optional[ResultCache] = None,
    precomputed: Optional[Mapping[str, float]] = None,
    fused: Optional[bool] = None,
) -> Dict[str, float]:
    """Misprediction rate of every spec on one trace, batched.

    Uncached specs are grouped into fused families by the sweep
    planner (:mod:`repro.sim.fused`): plain gshare and bi-mode
    configurations each advance as one family over the trace (fused
    single pass when active, the per-trace batched kernels otherwise);
    other schemes fall back to the scalar engine with a health
    degradation recorded.  ``precomputed`` rates (from a matrix-level
    prepass) are honoured like cache hits; ``fused`` pins the engine
    choice (``None`` resolves ``REPRO_FUSED``).  Results are memoized
    through ``cache`` with one write per trace.
    """
    tkey = trace_key(trace)
    rates: Dict[str, float] = {}
    missing: List[str] = []
    for spec in specs:
        if spec in rates or spec in missing:
            continue
        hit = precomputed.get(spec) if precomputed is not None else None
        if hit is None and cache is not None:
            hit = cache.get(spec, tkey)
        if hit is not None:
            rates[spec] = hit
        else:
            missing.append(spec)

    computed: Dict[str, float] = {}
    if missing:
        # Injectable (and countable) point: fires only when this call
        # actually simulates cells, so fault-injection tests can assert
        # exactly which benchmarks were recomputed, in which process.
        fault_point("evaluate", bench=trace.name or "anon", cells=len(missing))
        if fused is None:
            fused = fused_active()
        for family in plan_families(missing):
            computed.update(family_rates(family, trace, fused=fused))

    if cache is not None and computed:
        cache.put_many(tkey, computed)
    rates.update(computed)
    return {spec: rates[spec] for spec in specs}


def evaluate(
    spec: str,
    trace: BranchTrace,
    cache: Optional[ResultCache] = None,
) -> float:
    """Misprediction rate of the predictor ``spec`` on ``trace``.

    Builds the predictor from its spec string, simulates (through the
    batch kernel when the spec is a plain gshare), and memoizes through
    ``cache`` when given.
    """
    return evaluate_specs([spec], trace, cache=cache)[spec]


def evaluate_matrix(
    specs: Iterable[str],
    traces: Mapping[str, BranchTrace],
    cache: Optional[ResultCache] = None,
    progress=None,
    jobs: Optional[int] = None,
    journal=None,
) -> Dict[str, Dict[str, float]]:
    """Rates for every (spec, benchmark) pair: ``result[spec][bench]``.

    ``progress`` (optional) is called with ``(spec, bench, rate)`` after
    each cell, for CLI feedback on long sweeps.  ``jobs`` selects the
    process-parallel executor (default: the ``$REPRO_JOBS`` knob, serial
    when unset); results are identical either way.  ``journal``
    (optional, a :class:`repro.sim.journal.SweepJournal`) makes the
    sweep resumable: completed cells are appended to the journal as
    they finish, cells already journalled are never re-simulated, and
    SIGINT/SIGTERM flush the deferred cache before interrupting.
    """
    specs = list(specs)
    from repro.sim.parallel import (
        SweepResult,
        effective_jobs,
        evaluate_matrix_parallel,
    )

    if effective_jobs(jobs) > 1:
        return evaluate_matrix_parallel(
            specs, traces, cache=cache, progress=progress, jobs=jobs, journal=journal
        )

    # Recipe-valued entries (store-backed sweeps) are materialized here
    # on the serial path; the parallel path fans them out instead.
    from repro.sim.parallel import _resolve_trace

    traces = {bench: _resolve_trace(value) for bench, value in traces.items()}

    per_bench: Dict[str, Dict[str, float]] = {}
    maybe_deferred = cache.deferred() if cache is not None else _null_context()
    guard = journal.guard(cache) if journal is not None else _null_context()
    with guard, maybe_deferred:
        # The cross-trace bi-mode prepass exists to give the stepped
        # strategy batch width; under the fused engine the per-trace
        # family pass is the fast path, so the prepass would only steal
        # its cells.
        use_fused = fused_active()
        pre = (
            {}
            if use_fused
            else _bimode_matrix_prepass(specs, traces, cache, journal=journal)
        )
        if journal is not None:
            for bench, trace in traces.items():
                known = journal.completed(trace_key(trace))
                if known:
                    merged = dict(pre.get(bench, {}))
                    merged.update({s: known[s] for s in specs if s in known})
                    pre[bench] = merged
        for bench, trace in traces.items():
            per_bench[bench] = evaluate_specs(
                specs, trace, cache=cache, precomputed=pre.get(bench), fused=use_fused
            )
            if journal is not None:
                journal.record_many(trace_key(trace), per_bench[bench])
            if progress is not None:
                for spec in specs:
                    progress(spec, bench, per_bench[bench][spec])
    return SweepResult(
        {spec: {bench: per_bench[bench][spec] for bench in traces} for spec in specs}
    )


def _bimode_matrix_prepass(
    specs: Sequence[str],
    traces: Mapping[str, BranchTrace],
    cache: Optional[ResultCache],
    journal=None,
) -> Dict[str, Dict[str, float]]:
    """Batch every uncached bi-mode cell of a matrix into one kernel call.

    The lane-stepped bi-mode strategy gets faster per cell the more
    (configuration, benchmark) pairs it advances at once, so collecting
    the cells here — across *all* traces — rather than per-trace inside
    ``evaluate_specs`` is what gives sweeps their batch width.  Returns
    ``{bench: {spec: rate}}``, already written through ``cache`` (and
    ``journal``, when given); cells the journal already holds are
    skipped like cache hits.
    """
    cells = []
    where = []
    for bench, trace in traces.items():
        tkey = trace_key(trace)
        for spec in dict.fromkeys(specs):
            lane = bimode_lane_for_spec(spec)
            if lane is None:
                continue
            if cache is not None and cache.get(spec, tkey) is not None:
                continue
            if journal is not None and journal.lookup(tkey, spec) is not None:
                continue
            cells.append((lane, trace))
            where.append((bench, spec, tkey))
    if not cells:
        return {}
    pre: Dict[str, Dict[str, float]] = {}
    by_tkey: Dict[str, Dict[str, float]] = {}
    for (bench, spec, tkey), rate in zip(where, bimode_matrix_rates(cells)):
        pre.setdefault(bench, {})[spec] = rate
        by_tkey.setdefault(tkey, {})[spec] = rate
    for tkey, found in by_tkey.items():
        if cache is not None:
            cache.put_many(tkey, found)
        if journal is not None:
            journal.record_many(tkey, found)
    return pre


@contextmanager
def _null_context():
    yield None
