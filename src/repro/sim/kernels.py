"""Scheme-agnostic kernel registry: spec -> fastest bit-exact engine.

Before this layer each fast path was a special case: gshare had the
counting-sort lanes and fused C arena (:mod:`repro.sim.batch`),
bi-mode had its compiled step loop (:mod:`repro.sim.batch_bimode`),
and the other ~18 registered schemes ran the scalar engine everywhere.
The registry makes kernel dispatch a lookup:

``kernel_for_spec(spec)`` resolves any predictor spec to a *kernel
kind* plus a parsed lane description.  Kinds are:

* ``"gshare"`` / ``"bimode"`` — the pre-existing fused family kernels,
  unchanged and still owning their dedicated health components;
* one kind per **ported scheme** — bimodal, the two-level family
  (gag/gas/gap/gselect/pag/pas/pap), agree, gskew, tournament,
  tri-mode, YAGS, and the second wave: perceptron, the bias filter
  (over its gshare/bimodal sub-predictors) and the three static
  schemes — executed by the lane kernels of :mod:`repro.sim.lanes`;
* ``"scalar"`` — any spec whose knobs the lane parser rejects
  (out-of-range geometry, unknown options, a bias-filter
  sub-predictor without a kernel lane), run per-cell through the
  scalar engine.  Since the second wave, :data:`SCALAR_ONLY` is empty:
  every registered scheme has a batch kernel, and the meta-test
  asserting the set stays empty keeps it that way.

``family_rates(kind, specs, lanes, trace)`` evaluates one family,
choosing the engine per the ``REPRO_KERNEL`` pin and reporting every
dispatch decision through :mod:`repro.health` (component
``"<kind>-kernel"``).

Dispatch
--------
``REPRO_KERNEL`` mirrors the per-scheme ``REPRO_BIMODE_KERNEL`` /
``REPRO_DETAILED_KERNEL`` pins, but applies to every scheme at once:

* ``auto`` (default) — compiled loops when a C compiler is available,
  otherwise the numpy lane kernels (degradation health-reported);
* ``c`` — compiled loops or ``RuntimeError`` (no silent fallback);
* ``numpy`` — the numpy lane kernels; schemes whose update feeds
  predictor state back into training (e-gskew, tri-mode, YAGS, the
  perceptron) have no counter-major form and degrade to the scalar
  engine, health-reported;
* ``scalar`` — everything through the scalar engine (the fused planner
  routes every spec to the scalar family, with the pin as the reason).

Precedence: a scheme-specific pin (``REPRO_BIMODE_KERNEL``) and an
explicit ``REPRO_FUSED=on`` override ``REPRO_KERNEL`` for the scheme
or family they name.

Engine tiers
------------
``registered_schemes()`` maps every scheme name of
:func:`repro.core.registry.available_schemes` to its declared tier:

* ``"fused"`` — dedicated single-pass family kernel (gshare, bimode);
* ``"lane"`` — compiled loop + numpy form (counter-major scans, the
  bias-filter decomposition, the statics' vectorized one-shots);
* ``"cloop"`` — compiled per-access loop only (scalar fallback when no
  compiler): e-gskew's partial update, tri-mode, YAGS, perceptron;
* ``"scalar"`` — the :data:`SCALAR_ONLY` allowlist, empty since the
  second wave.

The verification suite (``tests/test_kernels.py``) is generated from
this mapping, so a scheme that registers in ``core/registry.py``
without declaring a tier here — or without oracle and golden coverage —
fails CI by construction.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.sim import _cstep
from repro.sim import lanes as _lanes
from repro.traces.record import BranchTrace

__all__ = [
    "SCALAR_ONLY",
    "BIASFILTER_SUBS",
    "KernelEntry",
    "kernel_mode",
    "kernel_for_spec",
    "registered_schemes",
    "family_order",
    "family_rates",
    "family_predictions",
    "planner_vetoes",
]

#: Schemes deliberately left on the scalar engine: empty since the
#: second wave (perceptron + bias filter compiled loops, static
#: one-shot lanes).  A meta-test asserts it stays empty, so a future
#: scheme cannot quietly register without a batch kernel.
SCALAR_ONLY = frozenset()

#: Sub-predictor schemes the bias-filter kernel executes in-lane; a
#: ``biasfilter:...,sub=<other>`` spec runs scalar with an explicit
#: planner veto (:func:`planner_vetoes`).
BIASFILTER_SUBS = _lanes.BIASFILTER_SUBS


@dataclass(frozen=True)
class KernelEntry:
    """One ported scheme: how to parse its specs and run its lanes."""

    scheme: str
    tier: str  # "lane" (c+numpy) | "cloop" (c only, scalar fallback)
    lane_for_spec: Callable[[str], Optional[object]]
    predictions: Callable[..., np.ndarray]
    numpy_ok: Callable[[object], bool]  # lane -> numpy engine exists?
    #: Optional direct rate computation (lane, trace) -> float for
    #: schemes whose misprediction count reduces without materializing
    #: predictions (the statics); must be bit-identical to the
    #: prediction path.
    rates: Optional[Callable[[object, BranchTrace], float]] = None


def _always(lane: object) -> bool:
    return True


def _never(lane: object) -> bool:
    return False


_TWOLEVEL = {
    scheme: KernelEntry(
        scheme=scheme,
        tier="lane",
        lane_for_spec=_lanes.twolevel_lane_for_spec,
        predictions=_lanes.twolevel_predictions,
        numpy_ok=_always,
    )
    for scheme in ("gag", "gas", "gap", "gselect", "pag", "pas", "pap")
}

#: The ported wave, in planner/display order.
PORTED: Dict[str, KernelEntry] = {
    "bimodal": KernelEntry(
        "bimodal", "lane", _lanes.bimodal_lane_for_spec, _lanes.bimodal_predictions, _always
    ),
    **_TWOLEVEL,
    "agree": KernelEntry(
        "agree", "lane", _lanes.agree_lane_for_spec, _lanes.agree_predictions, _always
    ),
    "gskew": KernelEntry(
        "gskew",
        "cloop",
        _lanes.gskew_lane_for_spec,
        _lanes.gskew_predictions,
        # total-update gskew is feedback-free, e-gskew is not
        lambda lane: not lane.enhanced,
    ),
    "tournament": KernelEntry(
        "tournament",
        "lane",
        _lanes.tournament_lane_for_spec,
        _lanes.tournament_predictions,
        _always,
    ),
    "trimode": KernelEntry(
        "trimode", "cloop", _lanes.trimode_lane_for_spec, _lanes.trimode_predictions, _never
    ),
    "yags": KernelEntry(
        "yags", "cloop", _lanes.yags_lane_for_spec, _lanes.yags_predictions, _never
    ),
    # -- second wave: the former SCALAR_ONLY tier -------------------------------
    "perceptron": KernelEntry(
        "perceptron",
        "cloop",
        _lanes.perceptron_lane_for_spec,
        _lanes.perceptron_predictions,
        # the threshold gate reads the trained dot product: training
        # feeds back into training, so no counter-major form exists
        _never,
    ),
    "biasfilter": KernelEntry(
        "biasfilter",
        "lane",
        _lanes.biasfilter_lane_for_spec,
        _lanes.biasfilter_predictions,
        _always,
    ),
    **{
        scheme: KernelEntry(
            scheme=scheme,
            tier="lane",
            lane_for_spec=_lanes.static_lane_for_spec,
            predictions=_lanes.static_predictions,
            numpy_ok=_always,
            rates=_lanes.static_rates,
        )
        for scheme in ("always-taken", "always-not-taken", "btfnt")
    },
}


def kernel_mode() -> str:
    """The ``REPRO_KERNEL`` pin: ``auto`` (default), ``c``, ``numpy``
    or ``scalar``."""
    mode = os.environ.get("REPRO_KERNEL", "auto").strip().lower() or "auto"
    if mode not in ("auto", "c", "numpy", "scalar"):
        raise ValueError(f"REPRO_KERNEL must be auto/c/numpy/scalar, got {mode!r}")
    return mode


def family_order() -> Tuple[str, ...]:
    """Every family kind, in planner order (fused first, scalar last)."""
    return ("gshare", "bimode", *PORTED, "scalar")


def kernel_for_spec(spec: str) -> Tuple[str, Optional[object]]:
    """Resolve a spec to ``(kind, lane)``; ``("scalar", None)`` when no
    lane kernel covers it.

    Resolution is structural only — the ``REPRO_KERNEL`` pin changes
    which *engine* runs a family, not which family a spec belongs to
    (except ``scalar``, which the planner applies before ever asking).
    A spec whose knobs a lane parser rejects (out-of-range geometry,
    unknown options) falls to scalar so the scalar constructor can
    raise its original, descriptive error.
    """
    scheme = spec.split(":", 1)[0].strip()
    if scheme == "gshare":
        from repro.sim.batch import lane_for_spec

        lane = lane_for_spec(spec)
        if lane is not None:
            return "gshare", lane
    elif scheme == "bimode":
        from repro.sim.batch_bimode import bimode_lane_for_spec

        lane = bimode_lane_for_spec(spec)
        if lane is not None:
            return "bimode", lane
    else:
        entry = PORTED.get(scheme)
        if entry is not None:
            lane = entry.lane_for_spec(spec)
            if lane is not None:
                return scheme, lane
    return "scalar", None


def registered_schemes() -> Dict[str, str]:
    """Scheme name -> declared kernel tier, for every scheme this
    registry covers.

    The completeness meta-test asserts this spans
    :func:`repro.core.registry.available_schemes`; a newly registered
    scheme missing here fails that test by name.
    """
    tiers: Dict[str, str] = {"gshare": "fused", "bimode": "fused"}
    for scheme, entry in PORTED.items():
        tiers[scheme] = entry.tier
    for scheme in sorted(SCALAR_ONLY):
        tiers[scheme] = "scalar"
    return tiers


# -- family evaluation --------------------------------------------------------------


def _resolve_engines(
    entry: KernelEntry, lanes: Sequence[object], mode: str
) -> Tuple[List[str], str, str]:
    """Per-lane engine choice plus ``(expected, fallback_reason)``.

    Follows the ``bimode-kernel`` convention: in ``auto`` the expected
    engine is the compiled loop, so running anything slower surfaces as
    a degradation with the compiler's absence (or the scheme's missing
    numpy form) as the reason.
    """
    compiled = _cstep.available()
    if mode == "c" and not compiled:
        raise RuntimeError(
            "REPRO_KERNEL=c but no compiled driver is available "
            "(no C compiler, or REPRO_NO_CC is set)"
        )
    expected = "c" if mode == "auto" else mode
    engines: List[str] = []
    reasons: List[str] = []
    for lane in lanes:
        if mode == "scalar":
            engines.append("scalar")
        elif mode == "c" or (mode == "auto" and compiled):
            engines.append("c")
        elif entry.numpy_ok(lane):
            engines.append("numpy")
            if mode == "auto":
                reasons.append(_cstep.unavailable_reason() or "")
        else:
            engines.append("scalar")
            reasons.append(
                f"no numpy kernel for {entry.scheme} (sequential update feedback)"
            )
    reason = next((r for r in reasons if r), "")
    return engines, expected, reason


def family_predictions(
    kind: str,
    specs: Sequence[str],
    lanes: Sequence[object],
    trace: BranchTrace,
    mode: Optional[str] = None,
) -> List[np.ndarray]:
    """Per-branch predictions of every lane of one ported family.

    Rows are bit-for-bit what the scalar predictor would emit from
    power-on state; the engine per lane follows ``REPRO_KERNEL`` (or an
    explicit ``mode``), with the dispatch health-reported under
    ``"<kind>-kernel"``.
    """
    from repro import health
    from repro.core.registry import make_predictor
    from repro.sim.engine import run

    entry = PORTED[kind]
    if len(specs) != len(lanes):
        raise ValueError("specs and lanes must be parallel")
    mode = kernel_mode() if mode is None else mode
    engines, expected, reason = _resolve_engines(entry, lanes, mode)
    for engine in dict.fromkeys(engines):
        health.engine_used(
            f"{kind}-kernel",
            engine,
            expected=expected,
            cells=engines.count(engine),
            reason=reason if engine != expected else "",
        )
    hist_cache: Dict[int, np.ndarray] = {}
    out: List[np.ndarray] = []
    for spec, lane, engine in zip(specs, lanes, engines):
        if engine == "scalar":
            result = run(make_predictor(spec), trace)
            out.append(np.asarray(result.predictions, dtype=bool))
        else:
            out.append(entry.predictions(lane, trace, engine, hist_cache))
    return out


def family_rates(
    kind: str,
    specs: Sequence[str],
    lanes: Sequence[object],
    trace: BranchTrace,
    mode: Optional[str] = None,
) -> List[float]:
    """Misprediction rate of every lane of one ported family."""
    n = len(trace)
    if n == 0:
        return [0.0 for _ in specs]
    entry = PORTED[kind]
    mode = kernel_mode() if mode is None else mode
    if entry.rates is not None and mode != "scalar":
        # Direct reduction (the statics): no prediction stream is
        # materialized, with the same dispatch reporting as the
        # prediction path.
        from repro import health

        engines, expected, _ = _resolve_engines(entry, lanes, mode)
        for engine in dict.fromkeys(engines):
            health.engine_used(
                f"{kind}-kernel", engine, expected=expected, cells=engines.count(engine)
            )
        return [entry.rates(lane, trace) for lane in lanes]
    outcomes = trace.outcomes
    return [
        int(np.count_nonzero(preds != outcomes)) / n
        for preds in family_predictions(kind, specs, lanes, trace, mode=mode)
    ]


def planner_vetoes(specs: Sequence[str]) -> None:
    """Health-report the explicit kernel vetoes among scalar-routed
    ``specs``.

    The generic "unfusable scheme(s)" degradation names schemes the
    registry has never heard of; a bias filter over an unsupported
    sub-predictor is different — the scheme *is* ported, but the
    requested ``sub=`` has no kernel lane — so the veto is reported by
    name under ``biasfilter-kernel``.
    """
    from repro import health
    from repro.core.registry import parse_spec

    for spec in specs:
        if spec.split(":", 1)[0].strip() != "biasfilter":
            continue
        try:
            _, kwargs = parse_spec(spec)
        except ValueError:
            continue
        sub = kwargs.get("sub", "gshare")
        if sub not in BIASFILTER_SUBS:
            health.engine_used(
                "biasfilter-kernel",
                "scalar",
                expected="c",
                cells=1,
                reason=(
                    f"sub-predictor {sub!r} has no kernel lane "
                    f"(supported: {', '.join(BIASFILTER_SUBS)})"
                ),
            )
