"""Multi-tenant sweep scheduler: one shared supervised worker pool.

Every sweep the daemon accepts — from however many clients — runs on a
single :class:`~concurrent.futures.ProcessPoolExecutor`, supervised
with the same :class:`repro.sim.parallel.TaskPolicy` machinery the
one-shot CLI uses (per-task timeouts, bounded retries with exponential
backoff, pool reseeding after a killed worker, in-parent serial salvage,
structured quarantine).  On top of that pool the scheduler adds the
multi-tenant concerns:

* **fair round-robin across clients** — dispatch cycles over clients
  with pending work, so one client's thousand-cell campaign cannot
  starve another's two-cell probe; within a client, higher-priority
  jobs dispatch first (FIFO within a priority);
* **admission control** — :meth:`submit` rejects new jobs with
  :class:`QueueFull` once the number of pending cells would exceed
  ``$REPRO_SERVICE_QUEUE_MAX`` (backpressure: the client retries);
* **per-request timeouts** — a job past its deadline (its own
  ``timeout`` or ``$REPRO_SERVICE_TIMEOUT``) fails with every completed
  cell preserved in its journal, so a resubmission resumes instead of
  restarting;
* **exactly-once cells** — identical ``(trace, spec)`` cells wanted by
  concurrent jobs are *single-flighted*: the first job's task computes
  the cell, every subscribed job receives the result, and the shared
  rate cache plus per-job journals make the dedupe durable across
  daemon restarts.  Cross-process, cold traces single-flight through
  the content-addressed trace store exactly as in one-shot sweeps;
* **graceful drain** — :meth:`drain` stops dispatch, lets in-flight
  tasks finish (their cells are journalled), re-persists unfinished
  jobs as ``queued``, and returns; a restarted daemon resumes them
  bit-identically.

The scheduler thread is the only mutator of pool state; servers talk
to it through :meth:`submit` / :meth:`subscribe` under the scheduler
lock.  Workers are the exact functions one-shot parallel sweeps use
(:func:`repro.sim.parallel._worker_evaluate` and friends), so a cell
computed by the service is bit-identical to the same cell from
``repro-bimode figure2``.
"""

from __future__ import annotations

import heapq
import os
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro import health
from repro.faults import FaultInjected, fault_point
from repro.service.jobs import DONE, FAILED, QUEUED, RUNNING, JobStore, ServiceJob
from repro.sim.parallel import (
    TaskPolicy,
    TraceRecipe,
    _abandon_pool,
    _worker_detailed,
    _worker_evaluate,
)

__all__ = ["QueueFull", "SchedulerStopped", "SweepScheduler", "queue_max_from_env"]

Cell = Tuple[str, str]  # (trace key, spec)

#: Seconds between supervision ticks while tasks are in flight.
_TICK_S = 0.05

#: Default admission-control ceiling (pending cells) when the
#: ``$REPRO_SERVICE_QUEUE_MAX`` knob is unset.
_DEFAULT_QUEUE_MAX = 100_000


class QueueFull(RuntimeError):
    """Admission control rejected a job: the pending-cell queue is deep."""


class SchedulerStopped(RuntimeError):
    """The scheduler is draining or stopped and accepts no new jobs."""


def queue_max_from_env() -> int:
    """The ``$REPRO_SERVICE_QUEUE_MAX`` knob (pending cells)."""
    raw = os.environ.get("REPRO_SERVICE_QUEUE_MAX", "").strip()
    if not raw:
        return _DEFAULT_QUEUE_MAX
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(f"REPRO_SERVICE_QUEUE_MAX must be an integer, got {raw!r}")
    return value if value > 0 else _DEFAULT_QUEUE_MAX


def service_timeout_from_env() -> Optional[float]:
    """The ``$REPRO_SERVICE_TIMEOUT`` knob (seconds per job; unset = none)."""
    raw = os.environ.get("REPRO_SERVICE_TIMEOUT", "").strip()
    if not raw:
        return None
    try:
        value = float(raw)
    except ValueError:
        raise ValueError(f"REPRO_SERVICE_TIMEOUT must be a number, got {raw!r}")
    return value if value > 0 else None


class _ServiceTask:
    """One pool work item: a family of cells on one trace."""

    __slots__ = (
        "client",
        "tkey",
        "recipe",
        "specs",
        "kind",
        "opts",
        "priority",
        "seq",
        "attempts",
        "last_error",
    )

    def __init__(self, client, tkey, recipe, specs, kind, opts, priority, seq):
        self.client = client
        self.tkey = tkey
        self.recipe = recipe
        self.specs = tuple(specs)
        self.kind = kind  # "rates" | "detailed"
        self.opts = opts
        self.priority = priority
        self.seq = seq
        self.attempts = 0
        self.last_error: Optional[BaseException] = None

    @property
    def cells(self) -> List[Cell]:
        return [(self.tkey, spec) for spec in self.specs]


class _JobRuntime:
    """In-memory bookkeeping for one active job."""

    __slots__ = ("job", "journal", "remaining", "tkey_benches", "deadline", "subscribers")

    def __init__(self, job: ServiceJob, journal, tkey_benches, remaining, deadline):
        self.job = job
        self.journal = journal
        self.tkey_benches: Dict[str, List[str]] = tkey_benches
        self.remaining: Set[Cell] = remaining
        self.deadline: Optional[float] = deadline
        self.subscribers: List[Callable[[dict], None]] = []


class SweepScheduler:
    """Shared supervised pool scheduling jobs from many clients."""

    def __init__(
        self,
        store: Optional[JobStore] = None,
        cache=None,
        jobs: Optional[int] = None,
        policy: Optional[TaskPolicy] = None,
        queue_max: Optional[int] = None,
        default_timeout: Optional[float] = None,
    ):
        from repro.sim.parallel import effective_jobs
        from repro.sim.runner import ResultCache

        self.store = store if store is not None else JobStore()
        self.cache = cache if cache is not None else ResultCache()
        self.workers = max(1, effective_jobs(jobs))
        self.policy = policy if policy is not None else TaskPolicy.from_env()
        self.queue_max = queue_max if queue_max is not None else queue_max_from_env()
        self.default_timeout = (
            default_timeout if default_timeout is not None else service_timeout_from_env()
        )

        self._mu = threading.Lock()
        self._wake = threading.Event()
        self._jobs: Dict[str, _JobRuntime] = {}
        #: Per-client priority queues of (-priority, seq, task).
        self._queues: Dict[str, List[Tuple[int, int, _ServiceTask]]] = {}
        #: Round-robin order over client ids with pending work.
        self._rr: List[str] = []
        self._rr_next = 0
        #: (tkey, spec) -> job ids waiting on that cell.  Presence of a
        #: cell here (still uncomputed) is the single-flight guarantee:
        #: at most one queued/in-flight task owns it.
        self._cell_subs: Dict[Cell, Set[str]] = {}
        self._seq = 0
        self._pending_cells = 0
        self._draining = False
        self._stopped = False
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._loop, name="sweep-scheduler", daemon=True
        )
        self._thread.start()

    def recover(self) -> List[str]:
        """Re-queue every job a previous daemon left unfinished.

        Their journals replay completed cells, so recovery re-simulates
        only what was in flight when the daemon died.
        """
        resumed = []
        for job in self.store.incomplete():
            job.state = QUEUED
            self._admit(job, enforce_admission=False)
            resumed.append(job.job_id)
        if resumed:
            health.emit(
                "sweep-service",
                "clean-start",
                "recovered",
                reason=f"resumed {len(resumed)} unfinished job(s) from manifests",
                severity="degraded",
                jobs=len(resumed),
            )
        return resumed

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Graceful shutdown: finish in-flight tasks, persist the rest.

        Queued (undispatched) work is *not* started; unfinished jobs are
        re-persisted as ``queued`` so the next daemon resumes them.
        Returns ``False`` if the scheduler thread failed to stop within
        ``timeout``.
        """
        with self._mu:
            self._draining = True
        self._wake.set()
        stopped = True
        if self._thread is not None:
            self._thread.join(timeout)
            stopped = not self._thread.is_alive()
        with self._mu:
            for rt in self._jobs.values():
                if not rt.job.terminal:
                    rt.job.state = QUEUED
                    self.store.save(rt.job)
        return stopped

    def stop(self) -> None:
        """Hard stop (tests): abandon everything without persisting."""
        with self._mu:
            self._draining = True
            self._stopped = True
        self._wake.set()
        if self._thread is not None:
            self._thread.join(5.0)

    # -- submission and subscription ----------------------------------------

    def submit(self, job: ServiceJob) -> ServiceJob:
        """Admit one job (admission control applies) and persist it."""
        return self._admit(job, enforce_admission=True)

    def _admit(self, job: ServiceJob, enforce_admission: bool) -> ServiceJob:
        if job.timeout is None:
            job.timeout = self.default_timeout
        if not job.submitted_at:
            job.submitted_at = time.time()
        journal = self.store.journal_for(job)

        with self._mu:
            if self._draining or self._stopped:
                raise SchedulerStopped("scheduler is draining; resubmit later")
            if job.job_id in self._jobs:
                return self._jobs[job.job_id].job

            plan = self._plan(job, journal)
            if (
                enforce_admission
                and self._pending_cells + len(plan.fresh_cells) > self.queue_max
            ):
                health.emit(
                    "sweep-service",
                    "admitted",
                    "rejected",
                    reason=(
                        f"queue depth {self._pending_cells} + "
                        f"{len(plan.fresh_cells)} new cells exceeds "
                        f"REPRO_SERVICE_QUEUE_MAX={self.queue_max}"
                    ),
                    severity="degraded",
                    job=job.job_id,
                )
                raise QueueFull(
                    f"queue is full ({self._pending_cells} cells pending, "
                    f"max {self.queue_max}); retry later"
                )

            runtime = _JobRuntime(
                job,
                journal,
                plan.tkey_benches,
                set(plan.missing_cells),
                (job.submitted_at + job.timeout) if job.timeout else None,
            )
            self._jobs[job.job_id] = runtime
            job.state = RUNNING if plan.missing_cells else job.state
            job.total_cells = plan.total_cells
            job.completed_cells = plan.total_cells - len(plan.missing_cells)

            # Subscribe to every missing cell; queue tasks only for the
            # cells nobody else is already computing (single flight).
            for cell in plan.missing_cells:
                subs = self._cell_subs.get(cell)
                if subs is None:
                    self._cell_subs[cell] = {job.job_id}
                else:
                    subs.add(job.job_id)
            for task in plan.tasks:
                self._enqueue(task)
            self._pending_cells += len(plan.fresh_cells)

        self.store.save(job)
        if not plan.missing_cells:
            # Everything came from the cache/journal: complete inline.
            with self._mu:
                self._finalize(runtime)
        self._wake.set()
        return job

    def subscribe(self, job_id: str, callback: Callable[[dict], None]) -> Optional[dict]:
        """Stream events for one job; returns a terminal snapshot instead
        if the job already finished (or ``None`` for an unknown job)."""
        with self._mu:
            runtime = self._jobs.get(job_id)
            if runtime is not None and not runtime.job.terminal:
                runtime.subscribers.append(callback)
                return None
        job = self.store.load(job_id)
        if job is None:
            return {"event": "error", "error": f"unknown job {job_id!r}"}
        return self._done_event(job)

    def status(self, job_id: Optional[str] = None) -> List[dict]:
        """Manifest snapshots (without result payloads) for ``status``."""
        with self._mu:
            live = {jid: rt.job for jid, rt in self._jobs.items()}
        if job_id is not None:
            job = live.get(job_id) or self.store.load(job_id)
            return [job.to_dict(results=False)] if job is not None else []
        jobs = {job.job_id: job for job in self.store.list()}
        jobs.update(live)
        return [
            job.to_dict(results=False)
            for job in sorted(jobs.values(), key=lambda j: (j.submitted_at, j.job_id))
        ]

    def result(self, job_id: str) -> Optional[dict]:
        """A terminal job's full manifest (with results), else ``None``."""
        job = self.store.load(job_id)
        if job is None or not job.terminal:
            return None
        return job.to_dict()

    @property
    def pending_cells(self) -> int:
        with self._mu:
            return self._pending_cells

    # -- planning ------------------------------------------------------------

    class _Plan:
        __slots__ = ("tkey_benches", "missing_cells", "fresh_cells", "tasks", "total_cells")

        def __init__(self):
            self.tkey_benches: Dict[str, List[str]] = {}
            self.missing_cells: List[Cell] = []
            self.fresh_cells: List[Cell] = []
            self.tasks: List[_ServiceTask] = []
            self.total_cells = 0

    def _plan(self, job: ServiceJob, journal) -> "_Plan":
        """Split a job into cached hits, subscriptions, and new tasks.

        Called under the scheduler lock.  Cached and journalled cells
        land in ``job.results`` immediately; cells already owned by
        another job's pending task become subscriptions; the rest group
        into new tasks (fused families for rate jobs, one cell per task
        for detailed jobs, matching the one-shot planners).
        """
        from repro.sim.fused import plan_families

        plan = self._Plan()
        specs = list(dict.fromkeys(job.specs))
        rates_job = job.kind == "rates"
        for bench in job.benchmarks:
            tkey = bench.tkey
            plan.tkey_benches.setdefault(tkey, []).append(bench.name)
        for tkey, benches in plan.tkey_benches.items():
            ref = next(b for b in job.benchmarks if b.tkey == tkey)
            plan.total_cells += len(specs)
            fresh_specs: List[str] = []
            for spec in specs:
                hit = self.cache.get(spec, tkey) if rates_job else None
                if hit is None:
                    hit = journal.lookup(tkey, spec)
                    if hit is not None and rates_job:
                        self.cache.put_many(tkey, {spec: hit})
                if hit is not None:
                    for name in benches:
                        plan_results = job.results.setdefault(spec, {})
                        plan_results[name] = hit
                    continue
                cell = (tkey, spec)
                plan.missing_cells.append(cell)
                if cell not in self._cell_subs:
                    plan.fresh_cells.append(cell)
                    fresh_specs.append(spec)
            if not fresh_specs:
                continue
            recipe = TraceRecipe(name=ref.name, length=ref.length, seed=ref.seed)
            if rates_job:
                groups = [family.specs for family in plan_families(fresh_specs)]
            else:
                groups = [(spec,) for spec in fresh_specs]
            for group in groups:
                self._seq += 1
                plan.tasks.append(
                    _ServiceTask(
                        client=job.client,
                        tkey=tkey,
                        recipe=recipe,
                        specs=group,
                        kind=job.kind,
                        opts={"threshold": None, "include_bias_table": False},
                        priority=job.priority,
                        seq=self._seq,
                    )
                )
        return plan

    # -- queues and fairness --------------------------------------------------

    def _enqueue(self, task: _ServiceTask) -> None:
        queue = self._queues.setdefault(task.client, [])
        heapq.heappush(queue, (-task.priority, task.seq, task))
        if task.client not in self._rr:
            self._rr.append(task.client)

    def _next_task(self) -> Optional[_ServiceTask]:
        """Pop the next dispatchable task, fair round-robin over clients.

        Called under the lock.  Tasks whose every cell lost its
        subscribers (job timed out or failed) are skipped and their
        cells retired.
        """
        if not self._rr:
            return None
        for _ in range(len(self._rr)):
            self._rr_next %= len(self._rr)
            client = self._rr[self._rr_next]
            queue = self._queues.get(client, [])
            while queue:
                _, _, task = heapq.heappop(queue)
                live = []
                for spec in task.specs:
                    cell = (task.tkey, spec)
                    if self._cell_subs.get(cell):
                        live.append(spec)
                    elif cell in self._cell_subs:
                        # Every subscriber abandoned this cell: retire it.
                        del self._cell_subs[cell]
                        self._pending_cells -= 1
                if not live:
                    continue
                task.specs = tuple(live)
                if not queue:
                    del self._queues[client]
                    self._rr.pop(self._rr_next)
                else:
                    self._rr_next += 1
                return task
            # Empty queue for this client: retire it from the rotation.
            self._queues.pop(client, None)
            self._rr.pop(self._rr_next)
        return None

    # -- completion and delivery ----------------------------------------------

    def _notify(self, runtime: _JobRuntime, event: dict) -> None:
        for callback in list(runtime.subscribers):
            try:
                callback(event)
            except Exception:  # subscriber gone; drop it
                try:
                    runtime.subscribers.remove(callback)
                except ValueError:
                    pass

    def _done_event(self, job: ServiceJob) -> dict:
        return {"event": "done", "job": job.to_dict()}

    def _deliver(self, task: _ServiceTask, values: Dict[str, object]) -> None:
        """Fan one completed task's cells out to every subscribed job.

        Called under the lock.  Writes the shared cache (rates only),
        each job's journal, progress events, and finalizes jobs whose
        last cell arrived.
        """
        tkey = task.tkey
        if task.kind == "rates":
            self.cache.put_many(tkey, values)
        else:
            rates = {
                spec: summary["misprediction_rate"]
                for spec, summary in values.items()
                if isinstance(summary, dict) and "misprediction_rate" in summary
            }
            if rates:
                self.cache.put_many(tkey, rates)
        touched: Set[str] = set()
        for spec, value in values.items():
            cell = (tkey, spec)
            for job_id in self._cell_subs.pop(cell, ()):  # may be shared
                runtime = self._jobs.get(job_id)
                if runtime is None or cell not in runtime.remaining:
                    continue
                runtime.journal.record_many(tkey, {spec: value})
                for bench_name in runtime.tkey_benches.get(tkey, ()):
                    runtime.job.results.setdefault(spec, {})[bench_name] = value
                runtime.remaining.discard(cell)
                runtime.job.completed_cells = runtime.job.total_cells - len(
                    runtime.remaining
                )
                touched.add(job_id)
            self._pending_cells -= 1
        for job_id in touched:
            runtime = self._jobs.get(job_id)
            if runtime is None:
                continue
            self._notify(
                runtime,
                {
                    "event": "progress",
                    "job_id": job_id,
                    "completed": runtime.job.completed_cells,
                    "total": runtime.job.total_cells,
                    "tkey": tkey,
                },
            )
            if not runtime.remaining:
                self._finalize(runtime)

    def _finalize(self, runtime: _JobRuntime) -> None:
        """Terminal transition; called under the lock."""
        job = runtime.job
        if job.terminal:
            return
        job.state = FAILED if (job.failures or job.error) else DONE
        if job.failures and not job.error:
            job.error = f"{len(job.failures)} cell(s) quarantined"
        job.finished_at = time.time()
        removed = 0
        try:
            removed = runtime.journal.compact()
        except OSError:  # pragma: no cover - compaction is best-effort
            pass
        self.store.save(job)
        if removed:
            health.emit(
                "sweep-service",
                "journal",
                "compacted",
                reason=f"{job.job_id}: dropped {removed} redundant line(s)",
                severity="info",
                job=job.job_id,
            )
        self._notify(runtime, self._done_event(job))
        runtime.subscribers.clear()
        # Terminal jobs live on disk only; evicting the runtime bounds
        # the daemon's memory over an unbounded job history.
        self._jobs.pop(job.job_id, None)

    def _fail_job(self, runtime: _JobRuntime, error: str) -> None:
        """Abandon a job (timeout); completed cells stay journalled.

        Called under the lock.  The job's pending cells lose their
        subscription; cells shared with other jobs keep flying, and
        cells nobody else wants are retired lazily at dispatch time.
        """
        job = runtime.job
        job.error = error
        for cell in list(runtime.remaining):
            subs = self._cell_subs.get(cell)
            if subs is not None:
                subs.discard(job.job_id)
        runtime.remaining.clear()
        self._finalize(runtime)
        health.emit(
            "sweep-service",
            "completed",
            "abandoned",
            reason=f"{job.job_id}: {error}",
            severity="error",
            job=job.job_id,
        )

    def _quarantine_task(self, task: _ServiceTask, exc: BaseException) -> None:
        """Give up on a task's cells for every subscribed job."""
        detail = f"{type(exc).__name__}: {exc}"
        health.emit(
            "sweep-service",
            "computed",
            "quarantined",
            reason=f"{task.tkey}: {detail}",
            severity="error",
            cells=len(task.specs),
            attempts=task.attempts,
        )
        with self._mu:
            for spec in task.specs:
                cell = (task.tkey, spec)
                for job_id in self._cell_subs.pop(cell, ()):
                    runtime = self._jobs.get(job_id)
                    if runtime is None or cell not in runtime.remaining:
                        continue
                    runtime.remaining.discard(cell)
                    runtime.job.failures.append(
                        {"tkey": task.tkey, "spec": spec, "error": detail}
                    )
                    runtime.job.completed_cells = runtime.job.total_cells - len(
                        runtime.remaining
                    )
                    if not runtime.remaining:
                        self._finalize(runtime)
                self._pending_cells -= 1

    # -- the supervision loop --------------------------------------------------

    def _submit_to_pool(self, pool: ProcessPoolExecutor, task: _ServiceTask):
        fault_point(
            "service.dispatch", bench=task.recipe.name, cells=len(task.specs)
        )
        if task.kind == "detailed":
            from repro.analysis.bias import BIAS_THRESHOLD

            opts = dict(task.opts)
            if opts.get("threshold") is None:
                opts["threshold"] = BIAS_THRESHOLD
            return pool.submit(_worker_detailed, task.recipe, task.specs, opts)
        return pool.submit(_worker_evaluate, task.recipe, task.specs)

    def _run_serial(self, task: _ServiceTask) -> Dict[str, object]:
        """In-daemon fallback (pool unavailable or final salvage)."""
        if task.kind == "detailed":
            from repro.analysis.bias import BIAS_THRESHOLD

            opts = dict(task.opts)
            if opts.get("threshold") is None:
                opts["threshold"] = BIAS_THRESHOLD
            return _worker_detailed(task.recipe, task.specs, opts)[1]
        return _worker_evaluate(task.recipe, task.specs)[1]

    def _note_failure(self, task: _ServiceTask, exc: BaseException, kind: str) -> bool:
        """Charge one failed attempt; returns True if retries remain."""
        task.attempts += 1
        task.last_error = exc
        health.emit(
            "sweep-service",
            "worker-ok",
            kind,
            reason=f"{task.tkey}: {type(exc).__name__}: {exc}",
            severity="degraded",
            attempt=task.attempts,
        )
        if task.attempts > self.policy.retries:
            return False
        if self.policy.backoff:
            time.sleep(self.policy.backoff * (2 ** max(0, task.attempts - 1)))
        return True

    def _requeue(self, task: _ServiceTask) -> None:
        with self._mu:
            self._enqueue(task)

    def _exhausted(self, task: _ServiceTask, exc: BaseException) -> None:
        """Final in-daemon serial attempt, then quarantine."""
        try:
            values = self._run_serial(task)
        except Exception as serial_exc:
            task.attempts += 1
            self._quarantine_task(task, serial_exc)
        else:
            health.emit(
                "sweep-service",
                "pool",
                "serial-salvage",
                reason=f"{task.tkey} recovered after {task.attempts} failed attempts",
                severity="degraded",
                cells=len(task.specs),
            )
            with self._mu:
                self._deliver(task, values)

    def _expire_jobs(self) -> None:
        """Fail every running job past its deadline (under the lock)."""
        now = time.time()
        for runtime in list(self._jobs.values()):
            if runtime.job.terminal or runtime.deadline is None:
                continue
            if now > runtime.deadline:
                self._fail_job(
                    runtime,
                    f"timed out after {runtime.job.timeout:g}s "
                    "(completed cells are journalled; resubmit to resume)",
                )

    def _loop(self) -> None:
        pool: Optional[ProcessPoolExecutor] = None
        pool_broken_serial = False
        inflight: Dict[object, Tuple[_ServiceTask, float]] = {}
        try:
            while True:
                with self._mu:
                    if self._stopped:
                        return
                    draining = self._draining
                    self._expire_jobs()
                    todo: List[_ServiceTask] = []
                    if not draining:
                        while len(inflight) + len(todo) < self.workers:
                            task = self._next_task()
                            if task is None:
                                break
                            todo.append(task)
                if draining and not inflight:
                    return
                if todo and pool is None and not pool_broken_serial:
                    try:
                        pool = ProcessPoolExecutor(max_workers=self.workers)
                    except (OSError, ValueError, RuntimeError) as exc:
                        health.emit(
                            "sweep-service",
                            "pool",
                            "serial",
                            reason=f"{type(exc).__name__}: {exc}",
                            severity="degraded",
                        )
                        pool_broken_serial = True
                if todo and pool_broken_serial:
                    # No pool on this platform: run in the scheduler
                    # thread; supervision still applies via _exhausted.
                    for task in todo:
                        try:
                            values = self._run_serial(task)
                        except Exception as exc:
                            if self._note_failure(task, exc, "worker-raised"):
                                self._requeue(task)
                            else:
                                self._exhausted(task, exc)
                        else:
                            with self._mu:
                                self._deliver(task, values)
                    continue
                if todo:
                    dispatch_failed = False
                    for index, task in enumerate(todo):
                        try:
                            future = self._submit_to_pool(pool, task)
                        except FaultInjected as exc:
                            # service.dispatch drill: a per-task failure,
                            # not a pool failure — retry just this task.
                            if self._note_failure(task, exc, "dispatch-fault"):
                                self._requeue(task)
                            else:
                                self._exhausted(task, exc)
                            continue
                        except (BrokenProcessPool, RuntimeError) as exc:
                            for queued_task in todo[index:]:
                                self._requeue(queued_task)
                            for _, (pending, _t) in list(inflight.items()):
                                if self._note_failure(pending, exc, "pool-broken"):
                                    self._requeue(pending)
                                else:
                                    self._exhausted(pending, exc)
                            inflight.clear()
                            _abandon_pool(pool)
                            pool = None
                            dispatch_failed = True
                            break
                        inflight[future] = (task, time.monotonic())
                    if dispatch_failed:
                        continue
                if not inflight:
                    self._wake.wait(timeout=_TICK_S if draining else 0.2)
                    self._wake.clear()
                    continue

                ready, _ = wait(
                    list(inflight), timeout=_TICK_S, return_when=FIRST_COMPLETED
                )
                broken: Optional[BaseException] = None
                for future in ready:
                    task, _started = inflight.pop(future)
                    try:
                        _, values = future.result()
                    except BrokenProcessPool as exc:
                        broken = exc
                        if self._note_failure(task, exc, "pool-broken"):
                            self._requeue(task)
                        else:
                            self._exhausted(task, exc)
                    except Exception as exc:
                        if self._note_failure(task, exc, "worker-raised"):
                            self._requeue(task)
                        else:
                            self._exhausted(task, exc)
                    else:
                        with self._mu:
                            self._deliver(task, values)
                if broken is not None:
                    for future, (task, _) in list(inflight.items()):
                        if self._note_failure(task, broken, "pool-broken"):
                            self._requeue(task)
                        else:
                            self._exhausted(task, broken)
                    inflight.clear()
                    _abandon_pool(pool)
                    pool = None
                    continue
                if self.policy.timeout is not None and inflight:
                    now = time.monotonic()
                    expired = [
                        future
                        for future, (_, started) in inflight.items()
                        if now - started > self.policy.timeout
                    ]
                    if expired:
                        for future in expired:
                            task, _ = inflight.pop(future)
                            future.cancel()
                            exc = TimeoutError(
                                f"task exceeded REPRO_TASK_TIMEOUT={self.policy.timeout}s"
                            )
                            if self._note_failure(task, exc, "task-timeout"):
                                self._requeue(task)
                            else:
                                self._exhausted(task, exc)
                        for future, (task, _) in list(inflight.items()):
                            future.cancel()
                            self._requeue(task)
                        inflight.clear()
                        _abandon_pool(pool)
                        pool = None
        finally:
            if pool is not None:
                if self._stopped:
                    _abandon_pool(pool)
                else:
                    pool.shutdown(wait=True)
