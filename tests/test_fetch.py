"""Unit tests for the front-end pipeline impact model."""

import numpy as np
import pytest

from repro.core.interfaces import SimulationResult
from repro.sim.fetch import FetchEngine


def result(branches: int, misses: int) -> SimulationResult:
    outcomes = np.ones(branches, dtype=bool)
    predictions = outcomes.copy()
    predictions[:misses] = False
    return SimulationResult("p", "t", predictions, outcomes)


class TestFetchEngine:
    def test_perfect_prediction_hits_fetch_bound(self):
        engine = FetchEngine(fetch_width=4, instructions_per_branch=5)
        stats = engine.run(result(branches=1000, misses=0))
        assert stats.bubble_cycles == 0
        assert stats.ipc == pytest.approx(4.0, rel=0.01)

    def test_bubble_accounting(self):
        engine = FetchEngine(
            fetch_width=4, misprediction_penalty=7, instructions_per_branch=5
        )
        stats = engine.run(result(branches=1000, misses=100))
        assert stats.instructions == 5000
        assert stats.base_cycles == 1250
        assert stats.bubble_cycles == 700
        assert stats.cycles == 1950
        assert stats.ipc == pytest.approx(5000 / 1950)
        assert stats.bubble_fraction == pytest.approx(700 / 1950)

    def test_higher_penalty_hurts_more(self):
        short = FetchEngine(misprediction_penalty=4)
        long = FetchEngine(misprediction_penalty=12)
        r = result(branches=1000, misses=50)
        assert long.run(r).ipc < short.run(r).ipc

    def test_speedup(self):
        engine = FetchEngine(fetch_width=4, misprediction_penalty=7)
        worse = result(branches=1000, misses=100)
        better = result(branches=1000, misses=50)
        assert engine.speedup(worse, better) > 1.0
        assert engine.speedup(better, better) == 1.0

    def test_empty_run(self):
        stats = FetchEngine().run(result(branches=0, misses=0))
        assert stats.cycles == 0
        assert stats.ipc == 0.0

    def test_ideal_ipc(self):
        assert FetchEngine(fetch_width=6).ideal_ipc() == 6.0

    def test_validation(self):
        with pytest.raises(ValueError):
            FetchEngine(fetch_width=0)
        with pytest.raises(ValueError):
            FetchEngine(misprediction_penalty=-1)
        with pytest.raises(ValueError):
            FetchEngine(instructions_per_branch=0)

    def test_predictor_quality_translates_to_ipc(self, small_workload):
        """Better prediction must mean better IPC through the model."""
        from repro.core.registry import make_predictor
        from repro.sim.engine import run

        engine = FetchEngine()
        good = run(make_predictor("bimode:dir=11,hist=11,choice=11"), small_workload)
        bad = run(make_predictor("gshare:index=8,hist=8"), small_workload)
        assert engine.run(good).ipc > engine.run(bad).ipc