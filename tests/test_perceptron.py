"""Unit tests for the perceptron predictor (Jiménez & Lin lineage point)."""

import numpy as np
import pytest

from repro.predictors.perceptron import PerceptronPredictor
from repro.sim.engine import run, run_steps
from tests.conftest import make_toy_trace


def fresh(index_bits=6, hist=8, **kw):
    return PerceptronPredictor(index_bits=index_bits, history_bits=hist, **kw)


class TestStructure:
    def test_threshold_follows_paper_formula(self):
        assert fresh(hist=12).theta == int(1.93 * 12 + 14)

    def test_size_bits(self):
        # 2^4 perceptrons x (8 history + bias) weights x 8 bits
        assert fresh(index_bits=4, hist=8).size_bits() == 16 * 9 * 8

    def test_zero_weights_initially_predict_taken(self):
        assert fresh().predict(0) is True  # y == 0 -> taken

    def test_validation(self):
        with pytest.raises(ValueError):
            PerceptronPredictor(index_bits=-1)
        with pytest.raises(ValueError):
            fresh(weight_bits=1)


class TestLearning:
    def test_learns_biased_branch(self):
        p = fresh()
        misses = sum(not p.predict_and_update(5, True) for _ in range(60))
        assert misses <= 1

    def test_learns_not_taken_bias(self):
        p = fresh()
        results = [p.predict_and_update(5, False) for _ in range(60)]
        assert sum(results[5:]) == 0  # settles on not-taken quickly

    def test_learns_alternation(self):
        p = fresh(hist=4)
        outcomes = [bool(i % 2) for i in range(300)]
        misses = sum(p.predict_and_update(5, o) != o for o in outcomes)
        assert misses <= 20

    def test_learns_linear_history_function(self):
        """Outcome = history bit 3 (a single weight) is the perceptron's
        home turf."""
        p = fresh(hist=8)
        rng = np.random.default_rng(4)
        history = []
        misses = 0
        for i in range(600):
            if len(history) >= 4:
                outcome = history[-4]
            else:
                outcome = bool(rng.integers(2))
            misses += p.predict_and_update(9, outcome) != outcome
            history.append(outcome)
        assert misses / 600 < 0.15

    def test_weights_saturate(self):
        p = fresh(index_bits=2, hist=2, weight_bits=4)
        for _ in range(200):
            p.update(0, True)
        row = p.weights[0]
        assert all(-8 <= w <= 7 for w in row)
        assert row[0] == 7  # bias saturated high

    def test_long_history_scales_linearly_in_cost(self):
        short = fresh(index_bits=6, hist=8).size_bits()
        long = fresh(index_bits=6, hist=16).size_bits()
        assert long < 2 * short  # linear, not exponential


class TestBatchPath:
    def test_batch_equals_step(self):
        trace = make_toy_trace(length=1200, seed=17)
        for kwargs in ({}, {"hist": 0}, {"weight_bits": 4}):
            a = run(fresh(**kwargs), trace).predictions
            b = run_steps(fresh(**kwargs), trace).predictions
            assert np.array_equal(a, b), kwargs

    def test_reset(self):
        trace = make_toy_trace(length=400)
        p = fresh()
        a = run(p, trace).predictions
        b = run(p, trace).predictions
        assert np.array_equal(a, b)

    def test_warm_start_split_equals_full(self):
        trace = make_toy_trace(length=800)
        full = run(fresh(), trace).predictions
        p = fresh()
        a = run(p, trace[:400]).predictions
        b = run(p, trace[400:], reset=False).predictions
        assert np.array_equal(np.concatenate([a, b]), full)

    def test_beats_bimodal_on_history_workload(self, small_workload):
        from repro.predictors.bimodal import BimodalPredictor

        perceptron = run(fresh(index_bits=9, hist=12), small_workload)
        bimodal = run(BimodalPredictor(index_bits=9), small_workload)
        assert perceptron.misprediction_rate < bimodal.misprediction_rate
