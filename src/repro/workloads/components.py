"""Branch behaviour models for synthetic workloads.

The paper's traces came from real programs; this package synthesizes
traces whose *predictability structure* matches what the paper measures,
using a small vocabulary of per-static-branch behaviour models.  Each
model captures one of the branch populations the paper's analysis talks
about:

* :class:`BiasedBehavior` — error-check/guard branches: strongly biased
  in one direction (the ST/SNT static population of Section 4); with
  ``p_taken`` near 0.5 it models the intrinsically weakly-biased
  population that dominates ``go``.
* :class:`LoopBehavior` — loop back-edges: taken ``trip-1`` times, then
  not-taken once.  Per-address bias depends on the trip count; global
  history that spans one loop body makes the exit predictable.
* :class:`CorrelatedBehavior` — if-then-else branches whose outcome is a
  (noisy) boolean function of the recent *global* outcome history: per
  address they can look arbitrary, but a global-history predictor with
  enough bits sees near-deterministic substreams.  This is the paper's
  "special conditions ... not difficult to recognize, but recognition
  requires memory space".
* :class:`PatternBehavior` — short repeating local patterns, the
  population that per-address history (PAx) captures best.

A behaviour is a tiny state machine: ``next_outcome(history, rng)``
returns the branch's resolved direction given the current *global
history integer* (newest outcome in the LSB, as maintained by the
generator) and the workload's random stream.  Behaviours hold only
their own private state and are reset with :meth:`reset`.
"""

from __future__ import annotations

import abc
from random import Random
from typing import Sequence, Tuple

__all__ = [
    "BranchBehavior",
    "BiasedBehavior",
    "LoopBehavior",
    "CorrelatedBehavior",
    "PatternBehavior",
]


class BranchBehavior(abc.ABC):
    """Outcome model of one static branch."""

    @abc.abstractmethod
    def next_outcome(self, history: int, rng: Random) -> bool:
        """Resolved direction of the branch's next execution.

        Parameters
        ----------
        history:
            Global outcome history at prediction time, newest branch in
            the least-significant bit (the generator maintains an
            effectively unbounded register; behaviours mask what they
            need).
        rng:
            The workload's seeded random stream.
        """

    def reset(self) -> None:
        """Forget private state (default: stateless)."""

    def sync(self) -> None:
        """Re-anchor phase state at a region entry (default: no-op).

        Called by :meth:`repro.workloads.cfg.Region.execute` when a
        region visit starts, so phase-based behaviours (patterns) stay
        aligned with the control-flow structure instead of free-running
        — an alternating branch inside a loop restarts its pattern each
        time the loop is entered.
        """


class BiasedBehavior(BranchBehavior):
    """Biased branch with optionally *bursty* deviations.

    ``p_taken >= 0.9`` / ``<= 0.1`` produces the strongly-biased static
    population; values near 0.5 produce intrinsically hard branches.

    With the default ``burst_length=1`` deviations from the dominant
    direction are independent per execution.  With ``burst_length > 1``
    the branch instead alternates between a *normal* phase (dominant
    direction) and rarer *deviant* phases of geometric mean length
    ``burst_length`` during which the direction inverts — the way real
    guard branches deviate (a run of unusual data), which matters for
    predictors: a counter re-trains once per burst, not once per
    deviation, and the deviant history patterns recur.  The long-run
    deviation fraction equals ``min(p, 1-p)`` in both modes.
    """

    def __init__(self, p_taken: float, burst_length: int = 1):
        if not 0.0 <= p_taken <= 1.0:
            raise ValueError(f"p_taken must be in [0, 1], got {p_taken}")
        if burst_length < 1:
            raise ValueError(f"burst_length must be >= 1, got {burst_length}")
        self.p_taken = p_taken
        self.burst_length = burst_length
        self._deviant = False
        self._remaining = 0

    def _dominant(self) -> bool:
        return self.p_taken >= 0.5

    def next_outcome(self, history: int, rng: Random) -> bool:
        if self.burst_length == 1:
            return rng.random() < self.p_taken
        # Two-state phase model: at each phase boundary the next phase
        # is deviant with probability = the deviation rate; both phase
        # kinds have geometric length with mean burst_length, so the
        # stationary deviant fraction equals the deviation rate.
        if self._remaining <= 0:
            deviation_rate = min(self.p_taken, 1.0 - self.p_taken)
            self._deviant = rng.random() < deviation_rate
            self._remaining = max(1, round(rng.expovariate(1.0 / self.burst_length)))
        self._remaining -= 1
        outcome = self._dominant()
        return (not outcome) if self._deviant else outcome

    def reset(self) -> None:
        self._deviant = False
        self._remaining = 0

    def __repr__(self) -> str:
        if self.burst_length > 1:
            return f"BiasedBehavior(p_taken={self.p_taken}, burst_length={self.burst_length})"
        return f"BiasedBehavior(p_taken={self.p_taken})"


class LoopBehavior(BranchBehavior):
    """Loop back-edge: taken while iterations remain.

    Parameters
    ----------
    trip_count:
        Mean iterations per loop visit (must be >= 1).  The back-edge is
        taken ``trip - 1`` times then not-taken once per visit.
    jitter:
        Half-width of a uniform integer perturbation on the trip count,
        modelling data-dependent bounds.  ``jitter=0`` gives perfectly
        periodic (hence history-predictable) behaviour.
    resample_prob:
        Probability, per loop visit, of drawing a *new* jittered trip
        count.  Real loop bounds change with program phase, not on every
        visit; a small value (the generator uses 0.05) keeps the trip
        constant for long stretches so the exit pattern stays learnable,
        while still varying over the run.  ``1.0`` re-draws every visit.
    """

    def __init__(self, trip_count: int, jitter: int = 0, resample_prob: float = 1.0):
        if trip_count < 1:
            raise ValueError(f"trip_count must be >= 1, got {trip_count}")
        if jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {jitter}")
        if not 0.0 <= resample_prob <= 1.0:
            raise ValueError(f"resample_prob must be in [0, 1], got {resample_prob}")
        self.trip_count = trip_count
        self.jitter = jitter
        self.resample_prob = resample_prob
        self._current_trip = None  # trip in effect for the current phase
        self._remaining = None  # iterations left in the current visit

    def _fresh_trip(self, rng: Random) -> int:
        if self.jitter:
            return max(1, self.trip_count + rng.randint(-self.jitter, self.jitter))
        return self.trip_count

    def next_outcome(self, history: int, rng: Random) -> bool:
        if self._remaining is None:
            if self._current_trip is None or (
                self.jitter and rng.random() < self.resample_prob
            ):
                self._current_trip = self._fresh_trip(rng)
            self._remaining = self._current_trip
        self._remaining -= 1
        if self._remaining <= 0:
            self._remaining = None  # exit: next call starts a new visit
            return False
        return True

    def reset(self) -> None:
        self._current_trip = None
        self._remaining = None

    def __repr__(self) -> str:
        return f"LoopBehavior(trip_count={self.trip_count}, jitter={self.jitter})"


class CorrelatedBehavior(BranchBehavior):
    """Branch correlated with *specific* recent global outcomes.

    Real if-then-else correlation ties a branch to the outcomes of one
    to three particular earlier branches (e.g. a flag tested twice), not
    to an arbitrary function of the entire history window.  The model
    therefore selects ``positions`` — history bit offsets, 0 = the
    immediately preceding branch — and a truth table over just those
    bits; all other history bits are irrelevant, which keeps synthetic
    control flow compressible the way real control flow is.

    The outcome is ``table[bits-at-positions]``, flipped with
    probability ``noise``.  A global-history predictor whose history
    length covers ``max(positions)`` sees ``1 - noise`` predictable
    substreams; a per-address table sees only the marginal bias the
    table and history distribution happen to produce.

    Parameters
    ----------
    positions:
        History bit offsets the branch reads (strictly increasing).
    table:
        Truth table of length ``2**len(positions)``; bit ``i`` of the
        table index is the history bit at ``positions[i]``.
    noise:
        Deviation rate, modelling data dependence beyond control
        history.
    burst_length:
        With the default 1, deviations are independent flips.  With
        ``burst_length > 1`` deviations arrive in phases of geometric
        mean length ``burst_length`` during which the truth table is
        inverted (see :class:`BiasedBehavior` for the phase model and
        why burstiness matters to predictors).
    """

    def __init__(
        self,
        positions: Sequence[int],
        table: Sequence[bool],
        noise: float = 0.0,
        burst_length: int = 1,
    ):
        positions = tuple(int(p) for p in positions)
        if not positions:
            raise ValueError("need at least one history position")
        if list(positions) != sorted(set(positions)):
            raise ValueError(f"positions must be strictly increasing, got {positions}")
        if positions[0] < 0 or positions[-1] > 20:
            raise ValueError(f"positions out of range: {positions}")
        if len(positions) > 6:
            raise ValueError(f"{len(positions)} inputs is unreasonably many")
        if len(table) != 1 << len(positions):
            raise ValueError(
                f"table must have {1 << len(positions)} entries, got {len(table)}"
            )
        if not 0.0 <= noise <= 1.0:
            raise ValueError(f"noise must be in [0, 1], got {noise}")
        if burst_length < 1:
            raise ValueError(f"burst_length must be >= 1, got {burst_length}")
        self.positions = positions
        self.table: Tuple[bool, ...] = tuple(bool(x) for x in table)
        self.noise = noise
        self.burst_length = burst_length
        self._deviant = False
        self._remaining = 0

    @property
    def depth(self) -> int:
        """History length needed to capture the correlation."""
        return self.positions[-1] + 1

    @classmethod
    def random(
        cls,
        depth: int,
        rng: Random,
        noise: float = 0.0,
        num_inputs: int | None = None,
        burst_length: int = 1,
    ) -> "CorrelatedBehavior":
        """A random sparse correlation within a ``depth``-bit window.

        Picks 1–3 input positions (unless ``num_inputs`` is given), the
        deepest anchored near ``depth - 1`` so the stated depth is what
        a predictor actually needs, and a random non-constant truth
        table over them.
        """
        if depth < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")
        if num_inputs is None:
            num_inputs = rng.randint(1, min(3, depth))
        if not 1 <= num_inputs <= depth:
            raise ValueError(f"num_inputs must be in [1, {depth}], got {num_inputs}")
        anchor = depth - 1
        others = rng.sample(range(anchor), num_inputs - 1) if num_inputs > 1 else []
        positions = sorted(others + [anchor])
        table = [rng.random() < 0.5 for _ in range(1 << num_inputs)]
        if all(table) or not any(table):
            table[rng.randrange(len(table))] = not table[0]
        return cls(
            positions=positions, table=table, noise=noise, burst_length=burst_length
        )

    def next_outcome(self, history: int, rng: Random) -> bool:
        index = 0
        for i, position in enumerate(self.positions):
            index |= ((history >> position) & 1) << i
        outcome = self.table[index]
        if not self.noise:
            return outcome
        if self.burst_length == 1:
            if rng.random() < self.noise:
                return not outcome
            return outcome
        if self._remaining <= 0:
            self._deviant = rng.random() < self.noise
            self._remaining = max(1, round(rng.expovariate(1.0 / self.burst_length)))
        self._remaining -= 1
        return (not outcome) if self._deviant else outcome

    def reset(self) -> None:
        self._deviant = False
        self._remaining = 0

    def __repr__(self) -> str:
        return f"CorrelatedBehavior(positions={self.positions}, noise={self.noise})"


class PatternBehavior(BranchBehavior):
    """Fixed repeating outcome pattern (e.g. ``TTN TTN ...``).

    Perfectly predictable by per-address history of length
    ``len(pattern)``; per-address 2-bit counters mispredict the minority
    outcomes forever.
    """

    def __init__(self, pattern: Sequence[bool]):
        if not pattern:
            raise ValueError("pattern must be non-empty")
        self.pattern: Tuple[bool, ...] = tuple(bool(x) for x in pattern)
        self._position = 0

    def next_outcome(self, history: int, rng: Random) -> bool:
        outcome = self.pattern[self._position]
        self._position = (self._position + 1) % len(self.pattern)
        return outcome

    def reset(self) -> None:
        self._position = 0

    def sync(self) -> None:
        self._position = 0

    def __repr__(self) -> str:
        text = "".join("T" if x else "N" for x in self.pattern)
        return f"PatternBehavior({text})"
