"""Tests for the memory-mapped trace store and store-backed sweeps.

Covers the PR-4 acceptance contract: atomic publish, read-only mmap
views, corrupt-directory quarantine mirroring ``ResultCache``, legacy
``.npz`` migration, single-flight cold materialization (exactly once,
verified cross-process via ``$REPRO_FAULT_TRACE`` call counts), and a
worker hard-killed *during* materialization leaving a bit-identical
final sweep table.
"""

import json
import os
from concurrent.futures import ProcessPoolExecutor

import numpy as np
import pytest

from repro import faults, health
from repro.sim.parallel import TaskPolicy, TraceRecipe, evaluate_matrix_parallel
from repro.sim.runner import evaluate_matrix
from repro.traces.io import load_npz, save_npz
from repro.traces.store import GENERATOR_VERSION, TraceStore
from repro.workloads.generator import generate_trace
from repro.workloads.profiles import get_profile

NAME, LENGTH, SEED = "compress", 6_000, 2


@pytest.fixture(autouse=True)
def clean_slate(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "shared-cache"))
    health.clear()
    yield
    health.clear()


@pytest.fixture
def store(tmp_path):
    return TraceStore(tmp_path / "store")


@pytest.fixture(scope="module")
def trace():
    return generate_trace(get_profile(NAME), length=LENGTH, seed=SEED)


class TestRoundTrip:
    def test_put_open(self, store, trace):
        mapped = store.put(trace, SEED)
        assert np.array_equal(mapped.pcs, trace.pcs)
        assert np.array_equal(mapped.outcomes, trace.outcomes)
        assert mapped.name == trace.name
        assert mapped.metadata == trace.metadata  # profile_seed survives
        again = store.open(NAME, LENGTH, SEED)
        assert np.array_equal(again.outcomes, trace.outcomes)

    def test_open_absent_returns_none(self, store):
        assert store.open(NAME, LENGTH, SEED) is None
        assert not store.has(NAME, LENGTH, SEED)

    def test_mapped_arrays_are_read_only(self, store, trace):
        mapped = store.put(trace, SEED)
        with pytest.raises(ValueError):
            mapped.outcomes[0] = not mapped.outcomes[0]
        with pytest.raises(ValueError):
            mapped.pcs[0] = 0
        # the store bytes were not corrupted by the attempts
        fresh = store.open(NAME, LENGTH, SEED)
        assert np.array_equal(fresh.pcs, trace.pcs)

    def test_key_carries_generator_version(self, store):
        assert f"-g{GENERATOR_VERSION}" in store.key(NAME, LENGTH, SEED)

    def test_unnamed_trace_rejected(self, store, trace):
        anon = type(trace).trusted(pcs=trace.pcs, outcomes=trace.outcomes)
        with pytest.raises(ValueError):
            store.put(anon, SEED)


class TestAtomicPublish:
    def test_no_temp_dirs_survive(self, store, trace):
        store.put(trace, SEED)
        leftovers = [p for p in store.root.iterdir() if p.name.startswith(".tmp-")]
        assert leftovers == []

    def test_lost_race_keeps_existing_bytes(self, store, trace):
        first = store.put(trace, SEED)
        mtime = (store.path(NAME, LENGTH, SEED) / "pcs.npy").stat().st_mtime_ns
        second = store.put(trace, SEED)  # key already published
        assert (store.path(NAME, LENGTH, SEED) / "pcs.npy").stat().st_mtime_ns == mtime
        assert np.array_equal(second.outcomes, first.outcomes)


class TestQuarantine:
    def test_corrupt_arrays_quarantined_and_regenerated(self, store, trace):
        store.put(trace, SEED)
        (store.path(NAME, LENGTH, SEED) / "pcs.npy").write_bytes(b"not numpy")
        assert store.open(NAME, LENGTH, SEED) is None
        quarantined = list(store.root.glob("*.corrupt-*"))
        assert len(quarantined) == 1
        (event,) = health.events(component="trace-store")
        assert event.actual == "quarantined"
        assert event.severity == "degraded"
        # materialize repairs the slot from scratch
        repaired = store.materialize(NAME, LENGTH, SEED)
        assert np.array_equal(repaired.outcomes, trace.outcomes)

    def test_meta_mismatch_quarantined(self, store, trace):
        store.put(trace, SEED)
        meta_path = store.path(NAME, LENGTH, SEED) / "meta.json"
        meta = json.loads(meta_path.read_text())
        meta["length"] = LENGTH + 1
        meta_path.write_text(json.dumps(meta))
        assert store.open(NAME, LENGTH, SEED) is None
        assert list(store.root.glob("*.corrupt-*"))


class TestMaterialize:
    def test_generates_once_then_opens(self, store, tmp_path):
        with faults.traced(tmp_path / "trace"):
            first = store.materialize(NAME, LENGTH, SEED)
            second = store.materialize(NAME, LENGTH, SEED)
        assert np.array_equal(first.outcomes, second.outcomes)
        counts = faults.trace_counts(tmp_path / "trace", site="materialize")
        assert counts[("materialize", NAME)] == 1

    def test_custom_generate_callback(self, store, trace):
        calls = []

        def gen():
            calls.append(1)
            return trace

        out = store.materialize(NAME, LENGTH, SEED, generate=gen)
        assert calls == [1]
        assert np.array_equal(out.pcs, trace.pcs)

    def test_legacy_npz_imported_not_regenerated(self, store, trace, tmp_path):
        legacy = save_npz(trace, tmp_path / "legacy.npz")

        def never():  # pragma: no cover - the point is it must not run
            raise AssertionError("regenerated despite a valid legacy npz")

        out = store.materialize(NAME, LENGTH, SEED, generate=never, legacy_npz=legacy)
        assert np.array_equal(out.outcomes, trace.outcomes)
        assert store.has(NAME, LENGTH, SEED)

    def test_mismatched_legacy_npz_regenerates(self, store, trace, tmp_path):
        short = generate_trace(get_profile(NAME), length=500, seed=SEED)
        legacy = save_npz(short, tmp_path / "stale.npz")
        out = store.materialize(NAME, LENGTH, SEED, generate=lambda: trace, legacy_npz=legacy)
        assert len(out) == LENGTH

    def test_garbage_legacy_npz_regenerates_with_event(self, store, trace, tmp_path):
        legacy = tmp_path / "torn.npz"
        legacy.write_bytes(b"\x00" * 32)  # the torn-file race this PR fixes
        out = store.materialize(NAME, LENGTH, SEED, generate=lambda: trace, legacy_npz=legacy)
        assert np.array_equal(out.outcomes, trace.outcomes)
        events = [e for e in health.events(component="trace-store") if e.actual == "regenerated"]
        assert events and events[0].severity == "degraded"


class TestSingleFlightLock:
    def test_stale_lock_of_dead_holder_is_stolen(self, store, trace):
        import multiprocessing

        proc = multiprocessing.Process(target=lambda: None)
        proc.start()
        proc.join()  # a pid guaranteed dead
        store.root.mkdir(parents=True, exist_ok=True)
        lock = store.root / f"{store.key(NAME, LENGTH, SEED)}.lock"
        lock.write_text(str(proc.pid))
        out = store.materialize(NAME, LENGTH, SEED, generate=lambda: trace)
        assert np.array_equal(out.outcomes, trace.outcomes)
        assert not lock.exists()

    def test_stale_lock_steal_emits_health_event(self, store, trace):
        import multiprocessing

        proc = multiprocessing.Process(target=lambda: None)
        proc.start()
        proc.join()  # a pid guaranteed dead
        store.root.mkdir(parents=True, exist_ok=True)
        key = store.key(NAME, LENGTH, SEED)
        lock = store.root / f"{key}.lock"
        lock.write_text(str(proc.pid))
        health.clear()
        store.materialize(NAME, LENGTH, SEED, generate=lambda: trace)
        steals = [
            e for e in health.events(component="trace-store") if e.actual == "lock-stolen"
        ]
        assert len(steals) == 1
        (event,) = steals
        # The steal must be loud and attributable: name the dead holder
        # and the trace key whose generation is being redone.
        assert event.severity == "degraded"
        assert event.ctx["pid"] == proc.pid
        assert event.ctx["key"] == key
        assert str(proc.pid) in event.reason

    def test_live_holder_lock_is_not_stolen_no_event(self, store):
        store.root.mkdir(parents=True, exist_ok=True)
        lock = store.root / "probe.lock"
        lock.write_text(str(os.getpid()))  # we are alive
        health.clear()
        assert not store._acquire(lock)
        assert lock.exists()
        assert [e for e in health.events(component="trace-store") if e.actual == "lock-stolen"] == []

    def test_holder_liveness_probe(self, store):
        store.root.mkdir(parents=True, exist_ok=True)
        lock = store.root / "probe.lock"
        lock.write_text(str(os.getpid()))
        assert not TraceStore._holder_dead(lock)  # we are alive
        lock.write_text("not-a-pid")
        assert not TraceStore._holder_dead(lock)  # conservative on garbage


def _pool_materialize(root, name, length, seed):
    """Top-level so ProcessPoolExecutor can pickle it."""
    mapped = TraceStore(root).materialize(name, length, seed)
    return int(mapped.outcomes.sum())


class TestCrossProcessSingleFlight:
    def test_concurrent_cold_opens_generate_exactly_once(self, store, tmp_path):
        with faults.traced(tmp_path / "trace"):
            with ProcessPoolExecutor(max_workers=2) as pool:
                futures = [
                    pool.submit(_pool_materialize, str(store.root), NAME, LENGTH, SEED)
                    for _ in range(2)
                ]
                results = [f.result(timeout=120) for f in futures]
        assert results[0] == results[1]
        counts = faults.trace_counts(tmp_path / "trace", site="materialize")
        assert counts[("materialize", NAME)] == 1


SPECS = ["gshare:index=8,hist=8", "bimode:dir=6,hist=6,choice=6"]
RECIPE_BENCHES = ("gcc", "xlisp")


class TestStoreBackedSweeps:
    """Recipe-valued sweeps: workers mmap the store instead of
    regenerating, cold traces fan out as supervised materialize tasks."""

    def _recipes(self, store):
        return {
            name: TraceRecipe(name, LENGTH, SEED, store_root=str(store.root))
            for name in RECIPE_BENCHES
        }

    def test_parallel_recipes_match_serial(self, store, tmp_path):
        serial = evaluate_matrix(SPECS, self._recipes(store), jobs=1)
        with faults.traced(tmp_path / "trace"):
            parallel = evaluate_matrix_parallel(
                SPECS,
                self._recipes(TraceStore(tmp_path / "store2")),
                jobs=2,
                policy=TaskPolicy(retries=1, backoff=0.0),
            )
        assert parallel == serial
        assert parallel.failures == []
        # each cold trace was generated exactly once across every process
        counts = faults.trace_counts(tmp_path / "trace", site="materialize")
        for name in RECIPE_BENCHES:
            assert counts[("materialize", name)] == 1

    def test_worker_killed_mid_materialization(self, store):
        serial = evaluate_matrix(SPECS, self._recipes(store), jobs=1)
        kill_root = store.root.with_name("store-kill")
        cold = self._recipes(TraceStore(kill_root))
        # every fresh worker dies at its first generation attempt; only
        # the in-parent salvage (where exit never fires) can finish
        with faults.inject("materialize:exit:nth=1"):
            result = evaluate_matrix_parallel(
                SPECS, cold, jobs=2, policy=TaskPolicy(retries=1, backoff=0.0)
            )
        assert result == serial  # bit-identical final table
        assert result.failures == []
        kinds = {e.actual for e in health.events(component="parallel-pool")}
        assert "pool-broken" in kinds
        # the dead workers' single-flight locks were stolen, not wedged
        assert not list(kill_root.glob("*.lock"))

    def test_warm_store_skips_generation(self, store, tmp_path):
        recipes = self._recipes(store)
        evaluate_matrix(SPECS, recipes, jobs=1)  # warms the store
        with faults.traced(tmp_path / "trace"):
            evaluate_matrix_parallel(
                SPECS, recipes, jobs=2, policy=TaskPolicy(retries=0, backoff=0.0)
            )
        counts = faults.trace_counts(tmp_path / "trace", site="materialize")
        assert counts == {}  # nothing regenerated: mmap-open only
