"""Unit tests for the YAGS predictor."""

import numpy as np
import pytest

from repro.predictors.yags import YagsPredictor, _TaggedCache
from repro.sim.engine import run, run_steps
from tests.conftest import make_toy_trace


class TestTaggedCache:
    def test_miss_returns_none(self):
        cache = _TaggedCache(index_bits=4, tag_bits=4, init=2)
        assert cache.lookup(0, 5) is None

    def test_allocate_on_train_miss(self):
        cache = _TaggedCache(index_bits=4, tag_bits=4, init=2)
        cache.train(3, 7, True)
        assert cache.lookup(3, 7) == 2  # weakly taken after allocation

    def test_allocation_replaces_resident_tag(self):
        cache = _TaggedCache(index_bits=4, tag_bits=4, init=2)
        cache.train(3, 7, True)
        cache.train(3, 9, False)
        assert cache.lookup(3, 7) is None
        assert cache.lookup(3, 9) == 1  # weakly not-taken

    def test_hit_trains_counter(self):
        cache = _TaggedCache(index_bits=4, tag_bits=4, init=2)
        cache.train(3, 7, True)
        cache.train(3, 7, True)
        assert cache.lookup(3, 7) == 3

    def test_size_includes_tags(self):
        cache = _TaggedCache(index_bits=4, tag_bits=6, init=2)
        assert cache.size_bits() == 16 * 8  # 2-bit counter + 6-bit tag


class TestYags:
    def test_bias_prediction_without_exception(self):
        p = YagsPredictor(choice_index_bits=6, cache_index_bits=4)
        assert p.predict(0) is True  # choice starts weakly taken, no hits

    def test_exception_overrides_bias(self):
        p = YagsPredictor(choice_index_bits=6, cache_index_bits=4, history_bits=0)
        # pc 5 is taken-biased per the choice table; feed not-taken
        # outcomes so the NT-cache learns the exception
        p.update(5, False)  # deviates: allocates in NT cache
        assert p.predict(5) is False

    def test_learns_alternation_with_history(self):
        p = YagsPredictor(choice_index_bits=6, cache_index_bits=6, history_bits=4)
        outcomes = [bool(i % 2) for i in range(300)]
        misses = sum(p.predict_and_update(9, o) != o for o in outcomes)
        assert misses <= 20

    def test_cache_not_polluted_by_bias_conformant_outcomes(self):
        p = YagsPredictor(choice_index_bits=6, cache_index_bits=4, history_bits=0)
        for _ in range(5):
            p.update(5, True)  # conforms to taken bias: no allocation
        index = p._cache_index(5)
        assert p.not_taken_cache.lookup(index, p.not_taken_cache.tag_of(5)) is None

    def test_size_bits(self):
        p = YagsPredictor(choice_index_bits=8, cache_index_bits=6, tag_bits=6)
        assert p.size_bits() == 256 * 2 + 2 * 64 * 8

    def test_batch_equals_step(self):
        trace = make_toy_trace(length=900)
        batch = run(YagsPredictor(8, 6, 6), trace)
        steps = run_steps(YagsPredictor(8, 6, 6), trace)
        assert np.array_equal(batch.predictions, steps.predictions)

    def test_reset(self):
        p = YagsPredictor(6, 4)
        trace = make_toy_trace(length=300)
        a = run(p, trace).predictions
        b = run(p, trace).predictions
        assert np.array_equal(a, b)

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            YagsPredictor(choice_index_bits=6, cache_index_bits=4, history_bits=5)
        with pytest.raises(ValueError):
            YagsPredictor(choice_index_bits=6, cache_index_bits=4, tag_bits=0)
