"""Differential verification layer.

Two pieces, built to be the repo-wide correctness backstop for every
batched/optimized simulation kernel:

* :mod:`repro.verify.oracle` — a deliberately slow, dict-based
  re-implementation of every registered predictor's step semantics,
  sharing **no** simulation code with :mod:`repro.core` /
  :mod:`repro.predictors` / :mod:`repro.sim`;
* :mod:`repro.verify.differential` — replays a trace through the
  oracle, the scalar engine, and any applicable batched kernel, and
  pinpoints the first diverging branch when they disagree.
"""

from repro.verify.differential import DifferentialReport, EngineRun, diff_spec
from repro.verify.oracle import oracle_predictions, oracle_rate, oracle_supports

__all__ = [
    "oracle_predictions",
    "oracle_rate",
    "oracle_supports",
    "diff_spec",
    "DifferentialReport",
    "EngineRun",
]
