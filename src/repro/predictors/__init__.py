"""Baseline and comparator branch predictors.

The paper's primary baseline (gshare, single- and multi-PHT), the
classic two-level family it generalizes, the static and bimodal floors,
and the contemporary de-aliasing proposals it cites (agree, gskew) plus
the follow-on YAGS design and McFarling's tournament combiner.
"""

from repro.predictors.agree import AgreePredictor
from repro.predictors.bimodal import BimodalPredictor
from repro.predictors.filtered import BiasFilterPredictor
from repro.predictors.gshare import GSharePredictor
from repro.predictors.gskew import GSkewPredictor
from repro.predictors.perceptron import PerceptronPredictor
from repro.predictors.static_ import (
    AlwaysNotTakenPredictor,
    AlwaysTakenPredictor,
    BTFNTPredictor,
)
from repro.predictors.tournament import TournamentPredictor
from repro.predictors.trimode import TriModePredictor
from repro.predictors.twolevel import (
    GAgPredictor,
    GApPredictor,
    GAsPredictor,
    GSelectPredictor,
    PAgPredictor,
    PApPredictor,
    PAsPredictor,
    TwoLevelPredictor,
)
from repro.predictors.yags import YagsPredictor

__all__ = [
    "AgreePredictor",
    "AlwaysNotTakenPredictor",
    "AlwaysTakenPredictor",
    "BTFNTPredictor",
    "BiasFilterPredictor",
    "BimodalPredictor",
    "GAgPredictor",
    "GApPredictor",
    "GAsPredictor",
    "GSelectPredictor",
    "GSharePredictor",
    "GSkewPredictor",
    "PAgPredictor",
    "PApPredictor",
    "PerceptronPredictor",
    "PAsPredictor",
    "TournamentPredictor",
    "TriModePredictor",
    "TwoLevelPredictor",
    "YagsPredictor",
]
