"""Vectorized trace-generation fast path, bit-identical to ``Program.run``.

``Program.run`` walks the region graph emitting one branch at a time:
every dynamic branch pays a Python method call, a history update and two
list appends, which caps generation at ~1 M branches/s and makes the
trace pipeline — not simulation — the wall for paper-length sweeps.

This module regenerates the *same* trace in two passes:

1. **Event pass** (scalar, but tiny): replay only the points where the
   shared ``random.Random`` stream is actually consumed.  The key
   observation is that draw *timing* is history-independent: behaviours
   draw at phase boundaries (bursty biased/correlated sites), on every
   execution (weak sites), at loop-visit starts, and once per region
   execution (the jump check) — and none of those schedules depend on
   branch outcomes, only on earlier draws.  So the pass walks the visit
   schedule, consumes draws in exactly the order ``Program.run`` would
   (body position order within an iteration, loop back-edge at the end
   of iteration 0, jump check after the visit), and records run-length
   encoded phase values per static site.  Each region keeps a
   persistent min-heap of pending phase boundaries keyed by
   ``(region iteration, body position)`` — the draw order within an
   iteration — so cost is O(draws log sites + visits), typically an
   order of magnitude fewer steps than branches.

2. **Assembly pass** (numpy): expand the visit schedule into the
   ``pcs`` array with gathers, expand the per-site phase runs into
   outcomes with one ``np.repeat``, compute pattern sites from the
   within-visit iteration index, and resolve correlated sites — the
   only history-*dependent* population — with vectorized waves over the
   dependency DAG.  A correlated element is ready when no *unresolved*
   element sits in its history window; since unresolved elements are a
   sorted index set, readiness is one vectorized gap test per wave
   (an element is ready iff its nearest unresolved predecessor falls
   outside its window), so each wave costs O(pending), not O(trace).
   Pathologically deep chains that survive the wave budget are finished
   by a scalar sweep in index order, which always makes progress
   because the earliest unresolved element is ready by construction.

Bit-identity with ``Program.run`` holds because the event pass consumes
the Mersenne-Twister stream through the same ``random.Random`` API in
the same order, and the one inlined draw formula (``expovariate``) is
verified bit-exact against the stdlib at runtime (:func:`supports`
reports ``False`` — and the dispatcher falls back to the scalar
generator — if the host Python ever diverges).  The differential suite
in ``tests/test_fastgen.py`` checks full-trace equality for every
registered profile.

Programs outside the fast path's replay envelope — behaviour
*subclasses* (which may override draw logic), loops beyond 8191
iterations, or bursts beyond ~200 — are refused via
:class:`UnsupportedProgram`; the dispatcher in
:func:`repro.workloads.generator.generate_trace` then runs the scalar
path and emits a :mod:`repro.health` degradation event.
"""

from __future__ import annotations

import heapq
import math
from random import Random
from types import SimpleNamespace
from typing import List, Optional, Tuple

import numpy as np

from repro.traces.record import BranchTrace
from repro.workloads import _cgen
from repro.workloads.cfg import Program
from repro.workloads.components import (
    BiasedBehavior,
    CorrelatedBehavior,
    LoopBehavior,
    PatternBehavior,
)

__all__ = ["UnsupportedProgram", "supports", "fast_run"]


class UnsupportedProgram(ValueError):
    """The program uses behaviours the fast path cannot replay."""


# Site kinds for the assembly pass.
_K_RUN = 0  # outcome comes straight from the phase-run pool
_K_PATTERN = 1  # outcome = pattern[within-visit iteration % len]
_K_CORR = 2  # outcome = table[history bits] ^ flip

_PMAX = 6  # CorrelatedBehavior input cap
_PAD = 1 << 62  # position padding: source index underflows far below 0

# Packed-record layouts (single int per event keeps the hot loop to one
# list append).  Runs: (site << 14) | (length << 13-bit) | value;
# visits: (prior << 26) | (region << 13) | iterations.
_RUN_BITS = 13
_RUN_MAX = (1 << _RUN_BITS) - 1
_REGION_BITS = 13

#: log(1/2^-53) — the largest value ``-log(1 - random())`` can take —
#: bounds boundary run lengths at ~36.74 * burst_length.
_EXPO_CEIL = 36.75

#: Cap on vectorized resolution waves before the compact scalar sweep
#: takes the (by then chain-dominated) correlated remainder.
_MAX_WAVES = 8


_formulas_ok: Optional[bool] = None


def _inline_formulas_match() -> bool:
    """Verify the inlined ``expovariate`` replication against the stdlib.

    The event pass inlines ``rng.expovariate(lambd)`` as
    ``-log(1 - rng.random()) / lambd`` (the CPython formula since 2.x).
    Checked bit-exactly once per process; a mismatch (some future
    stdlib rewrite) disables the fast path rather than corrupting
    traces.
    """
    global _formulas_ok
    if _formulas_ok is None:
        ref, mine = Random(0x5EED5), Random(0x5EED5)
        _formulas_ok = all(
            ref.expovariate(lambd) == -math.log(1.0 - mine.random()) / lambd
            for lambd in (1.0 / 16, 1.0 / 12, 1.0 / 3, 1.0, 2.5)
            for _ in range(8)
        )
    return _formulas_ok


class _RegionPlan:
    """Flattened draw/emit schedule of one region."""

    __slots__ = ("width", "gbase", "heap0", "perexec", "loop", "max_iter")

    def __init__(self, width, gbase, heap0, perexec, loop, max_iter):
        self.width = width
        self.gbase = gbase
        # Initial boundary heap: [(0, pos, (gid, rate, 1/burst, base))]
        # sorted by position (a sorted list is a valid min-heap).
        self.heap0 = heap0
        # [(pos, gid, p)] — sites drawing on every execution
        self.perexec = perexec
        # (gid, trip_count, jitter, resample_prob) or None
        self.loop = loop
        self.max_iter = max_iter


class _Plan:
    """Per-program static tables for both passes."""

    __slots__ = (
        "regions",
        "num_sites",
        "template",
        "widths",
        "gbase",
        "kind",
        "pat_base",
        "pat_len",
        "pattern_pool",
        "corr_row",
        "corr_flip",
        "posmat",
        "maxpos",
        "tab_base",
        "table_pool",
        "cl",
    )


def _prepare(program: Program) -> _Plan:
    """Compile the program into flat numpy-friendly tables.

    Raises :class:`UnsupportedProgram` on any behaviour that is not one
    of the four concrete component classes (exact type match: a
    subclass may override draw logic we cannot replay) or whose
    parameters overflow the packed-record layout.
    """
    if not _inline_formulas_match():  # pragma: no cover - stdlib-dependent
        raise UnsupportedProgram("stdlib expovariate formula diverged")
    if len(program.regions) >= (1 << _REGION_BITS):
        raise UnsupportedProgram(f"{len(program.regions)} regions overflow the fast path")

    plan = _Plan()
    region_plans: List[_RegionPlan] = []
    template: List[int] = []
    kind: List[int] = []
    pat_base: List[int] = []
    pat_len: List[int] = []
    pattern_pool: List[bool] = []
    corr_row: List[int] = []
    corr_flip: List[bool] = []
    posmat: List[List[int]] = []
    maxpos: List[int] = []
    tab_base: List[int] = []
    table_pool: List[bool] = []

    def add_site(address, k, pbase=0, plen=0, crow=-1, cflip=False):
        template.append(address)
        kind.append(k)
        pat_base.append(pbase)
        pat_len.append(plen)
        corr_row.append(crow)
        corr_flip.append(cflip)

    def check_burst(burst: int) -> None:
        if round(_EXPO_CEIL * burst) >= _RUN_MAX:
            raise UnsupportedProgram(
                f"burst_length {burst} overflows the packed run layout"
            )

    gid = 0
    for region in program.regions:
        if region.max_iterations > _RUN_MAX:
            raise UnsupportedProgram(
                f"max_iterations {region.max_iterations} overflows the fast path"
            )
        gbase = gid
        heap0: List[Tuple] = []
        perexec: List[Tuple] = []
        for pos, site in enumerate(region.body):
            beh = site.behavior
            cls = type(beh)
            if cls is BiasedBehavior:
                add_site(site.address, _K_RUN)
                if beh.burst_length == 1:
                    perexec.append((pos, (gid << 14) | 2, beh.p_taken))
                else:
                    check_burst(beh.burst_length)
                    tail = (
                        gid << 14,
                        min(beh.p_taken, 1.0 - beh.p_taken),
                        1.0 / beh.burst_length,
                        beh.p_taken >= 0.5,
                    )
                    heap0.append((0, pos, tail))
            elif cls is PatternBehavior:
                add_site(
                    site.address,
                    _K_PATTERN,
                    pbase=len(pattern_pool),
                    plen=len(beh.pattern),
                )
                pattern_pool.extend(beh.pattern)
            elif cls is CorrelatedBehavior:
                row = len(posmat)
                add_site(site.address, _K_CORR, crow=row, cflip=bool(beh.noise))
                posmat.append(
                    list(beh.positions) + [_PAD] * (_PMAX - len(beh.positions))
                )
                maxpos.append(beh.positions[-1])
                tab_base.append(len(table_pool))
                table_pool.extend(beh.table)
                if beh.noise:
                    if beh.burst_length == 1:
                        perexec.append((pos, (gid << 14) | 2, beh.noise))
                    else:
                        check_burst(beh.burst_length)
                        tail = (gid << 14, beh.noise, 1.0 / beh.burst_length, False)
                        heap0.append((0, pos, tail))
            else:
                raise UnsupportedProgram(
                    f"body site behaviour {cls.__name__} has no fast-path replay"
                )
            gid += 1
        loop_plan = None
        if region.loop is not None:
            lb = region.loop.behavior
            if type(lb) is not LoopBehavior:
                raise UnsupportedProgram(
                    f"loop site behaviour {type(lb).__name__} has no fast-path replay"
                )
            add_site(region.loop.address, _K_RUN)
            loop_plan = (gid << 14, lb.trip_count, lb.jitter, lb.resample_prob)
            gid += 1
        width = len(region.body) + (1 if region.loop is not None else 0)
        region_plans.append(
            _RegionPlan(width, gbase, heap0, perexec, loop_plan, region.max_iterations)
        )

    plan.regions = region_plans
    plan.num_sites = gid
    plan.template = np.asarray(template, dtype=np.int64)
    plan.widths = np.asarray([rp.width for rp in region_plans], dtype=np.int64)
    plan.gbase = np.asarray([rp.gbase for rp in region_plans], dtype=np.int64)
    plan.kind = np.asarray(kind, dtype=np.uint8)
    plan.pat_base = np.asarray(pat_base, dtype=np.int64)
    plan.pat_len = np.asarray(pat_len, dtype=np.int64)
    plan.pattern_pool = (
        np.asarray(pattern_pool, dtype=bool) if pattern_pool else np.zeros(1, dtype=bool)
    )
    plan.corr_row = np.asarray(corr_row, dtype=np.int64)
    plan.corr_flip = np.asarray(corr_flip, dtype=bool)
    plan.posmat = (
        np.asarray(posmat, dtype=np.int64)
        if posmat
        else np.zeros((1, _PMAX), dtype=np.int64)
    )
    plan.maxpos = np.asarray(maxpos or [0], dtype=np.int64)
    plan.tab_base = np.asarray(tab_base or [0], dtype=np.int64)
    plan.table_pool = (
        np.asarray(table_pool, dtype=bool) if table_pool else np.zeros(1, dtype=bool)
    )

    # Flat C layout for the compiled event driver (cheap; built even
    # when the driver is unavailable so dispatch stays branch-free).
    b_off, b_pos, b_g14, b_rate, b_lambd, b_base = [0], [], [], [], [], []
    p_off, p_pos, p_g142, p_p = [0], [], [], []
    loop_g14, loop_trip, loop_jit, loop_res = [], [], [], []
    for rp in region_plans:
        for _, bpos, (g14, rate, lambd, base) in rp.heap0:
            b_pos.append(bpos)
            b_g14.append(g14)
            b_rate.append(rate)
            b_lambd.append(lambd)
            b_base.append(base)
        b_off.append(len(b_pos))
        for ppos, g142, p in rp.perexec:
            p_pos.append(ppos)
            p_g142.append(g142)
            p_p.append(p)
        p_off.append(len(p_pos))
        if rp.loop is None:
            loop_g14.append(-1)
            loop_trip.append(0)
            loop_jit.append(0)
            loop_res.append(0.0)
        else:
            gl14, trip_count, jitter, resample_prob = rp.loop
            loop_g14.append(gl14)
            loop_trip.append(trip_count)
            loop_jit.append(jitter)
            loop_res.append(resample_prob)
    s_off, s_ent = [0], []
    for entries in program.schedule:
        s_ent.extend(entries)
        s_off.append(len(s_ent))
    plan.cl = SimpleNamespace(
        width=np.asarray([rp.width for rp in region_plans], dtype=np.int32),
        max_iter=np.asarray([rp.max_iter for rp in region_plans], dtype=np.int32),
        loop_g14=np.asarray(loop_g14, dtype=np.int64),
        loop_trip=np.asarray(loop_trip, dtype=np.int64),
        loop_jit=np.asarray(loop_jit, dtype=np.int32),
        loop_res=np.asarray(loop_res, dtype=np.float64),
        b_off=np.asarray(b_off, dtype=np.int64),
        b_pos=np.asarray(b_pos, dtype=np.int32),
        b_g14=np.asarray(b_g14, dtype=np.int64),
        b_rate=np.asarray(b_rate, dtype=np.float64),
        b_lambd=np.asarray(b_lambd, dtype=np.float64),
        b_base=np.asarray(b_base, dtype=np.uint8),
        p_off=np.asarray(p_off, dtype=np.int64),
        p_pos=np.asarray(p_pos, dtype=np.int32),
        p_g142=np.asarray(p_g142, dtype=np.int64),
        p_p=np.asarray(p_p, dtype=np.float64),
        s_off=np.asarray(s_off, dtype=np.int64),
        s_ent=np.asarray(s_ent, dtype=np.int32),
    )
    return plan


def _plan_of(program: Program) -> _Plan:
    # Plans are static per Program; cached on the instance so repeated
    # generation (sweeps, store materialization retries) compiles once.
    plan = getattr(program, "_fastgen_plan", None)
    if plan is None:
        plan = _prepare(program)
        try:
            program._fastgen_plan = plan
        except (AttributeError, TypeError):  # pragma: no cover - slots
            pass
    return plan


def supports(program: Program) -> bool:
    """Whether :func:`fast_run` can replay this program bit-exactly."""
    try:
        _plan_of(program)
    except UnsupportedProgram:
        return False
    return True


def fast_run(program: Program, length: int, seed: int = 0) -> BranchTrace:
    """Vectorized, bit-identical equivalent of ``Program.run``."""
    if length < 0:
        raise ValueError(f"length must be >= 0, got {length}")
    if length >= 1 << 34:
        raise UnsupportedProgram(f"length {length} overflows the packed visit layout")
    plan = _plan_of(program)
    program.reset()  # mirror Program.run's behaviour-state side effect

    rng = Random(seed)
    chooser = np.random.default_rng(seed ^ 0x5EED)
    jump_arr = chooser.choice(
        len(program.regions), size=max(64, length // 16 + 16), p=program.weights
    )

    # -- pass 1: event replay (compiled driver, else pure Python) --------------
    res = None
    if length and _cgen.available():
        res = _cgen.events(plan.cl, rng, jump_arr, program.jump_prob, length)
    if res is None:
        res = _events_py(plan, program, rng, jump_arr.tolist(), length)
    venc, renc = res
    return _assemble(plan, program, venc, renc, length)


def engine_name() -> str:
    """Which event-replay engine :func:`fast_run` currently uses."""
    return "fastgen-c" if _cgen.available() else "fastgen-py"


def _events_py(plan, program, rng, jump_targets, length):
    """The pure-Python event replay (same stream walk as the C driver)."""
    njump = len(jump_targets)
    jump_pos = 1
    current = jump_targets[0]
    jump_prob = program.jump_prob

    schedule = program.schedule
    num_regions = len(program.regions)
    pointers = [0] * num_regions

    plans = plan.regions
    heaps = [rp.heap0[:] for rp in plans]  # sorted-by-pos lists are valid heaps
    loop_rem: List[Optional[int]] = [None] * num_regions
    loop_trip: List[Optional[int]] = [None] * num_regions
    prior = [0] * num_regions  # cumulative iterations per region

    visits: List[int] = []  # (prior << 26) | (region << 13) | iterations
    runs: List[int] = []  # (site << 14) | (length << 1) | value

    rr = rng.random
    randint = rng.randint
    log = math.log
    replace = heapq.heapreplace
    runs_app = runs.append
    visits_app = visits.append

    emitted = 0
    while emitted < length:
        rp = plans[current]
        pr = prior[current]
        H = heaps[current]
        perexec = rp.perexec

        # iteration 0: body sites in position order
        if perexec:
            for pos, g142, p in perexec:
                while H and H[0][0] == pr and H[0][1] < pos:
                    head = H[0]
                    tail = head[2]
                    bg14, rate, lambd, base = tail
                    dev = rr() < rate
                    run = round(-log(1.0 - rr()) / lambd) or 1
                    runs_app(bg14 | (run << 1) | (base ^ dev))
                    replace(H, (pr + run, head[1], tail))
                runs_app(g142 | (rr() < p))
        while H and H[0][0] == pr:
            head = H[0]
            tail = head[2]
            bg14, rate, lambd, base = tail
            dev = rr() < rate
            run = round(-log(1.0 - rr()) / lambd) or 1
            runs_app(bg14 | (run << 1) | (base ^ dev))
            replace(H, (pr + run, head[1], tail))

        # loop back-edge of iteration 0 decides the visit's iteration count
        lp = rp.loop
        if lp is None:
            it = 1
        else:
            gl14, trip_count, jitter, resample_prob = lp
            rem = loop_rem[current]
            if rem is None:
                trip = loop_trip[current]
                if trip is None or (jitter and rr() < resample_prob):
                    trip = (
                        max(1, trip_count + randint(-jitter, jitter))
                        if jitter
                        else trip_count
                    )
                    loop_trip[current] = trip
                rem = trip
            if rem <= rp.max_iter:
                it = rem
                loop_rem[current] = None
                if it > 1:
                    runs_app(gl14 | ((it - 1) << 1) | 1)
                runs_app(gl14 | 2)
            else:
                it = rp.max_iter
                loop_rem[current] = rem - it
                runs_app(gl14 | (it << 1) | 1)

        # iterations 1..it-1: remaining boundary events in (iteration,
        # position) order; per-execution sites draw every iteration.
        if it > 1:
            end = pr + it
            if perexec:
                for t in range(pr + 1, end):
                    if H and H[0][0] == t:
                        for pos, g142, p in perexec:
                            while H and H[0][0] == t and H[0][1] < pos:
                                head = H[0]
                                tail = head[2]
                                bg14, rate, lambd, base = tail
                                dev = rr() < rate
                                run = round(-log(1.0 - rr()) / lambd) or 1
                                runs_app(bg14 | (run << 1) | (base ^ dev))
                                replace(H, (t + run, head[1], tail))
                            runs_app(g142 | (rr() < p))
                        while H and H[0][0] == t:
                            head = H[0]
                            tail = head[2]
                            bg14, rate, lambd, base = tail
                            dev = rr() < rate
                            run = round(-log(1.0 - rr()) / lambd) or 1
                            runs_app(bg14 | (run << 1) | (base ^ dev))
                            replace(H, (t + run, head[1], tail))
                    else:
                        for pos, g142, p in perexec:
                            runs_app(g142 | (rr() < p))
            else:
                while H and H[0][0] < end:
                    head = H[0]
                    t = head[0]
                    tail = head[2]
                    bg14, rate, lambd, base = tail
                    dev = rr() < rate
                    run = round(-log(1.0 - rr()) / lambd) or 1
                    runs_app(bg14 | (run << 1) | (base ^ dev))
                    replace(H, (t + run, head[1], tail))
        else:
            end = pr + 1

        visits_app((pr << 26) | (current << _RUN_BITS) | it)
        prior[current] = end
        emitted += rp.width * it
        if emitted >= length:
            break

        # dispatch: random Zipf jump, else the deterministic schedule
        if jump_prob and rr() < jump_prob:
            if jump_pos >= njump:
                jump_pos = 0
            current = jump_targets[jump_pos]
            jump_pos += 1
            continue
        entries = schedule[current]
        pointer = pointers[current]
        pointers[current] = pointer + 1 if pointer + 1 < len(entries) else 0
        current = entries[pointer]

    return (
        np.asarray(visits, dtype=np.int64),
        np.asarray(runs, dtype=np.int64),
    )


def _assemble(plan, program, venc, renc, length):
    """Pass 2: expand the visit/run event records into a trace (numpy)."""
    if not venc.size:
        return BranchTrace(
            pcs=np.empty(0, dtype=np.int64),
            outcomes=np.empty(0, dtype=bool),
            name=program.name,
            metadata=dict(program.metadata),
        )

    its_v = venc & _RUN_MAX
    regs_v = (venc >> _RUN_BITS) & ((1 << _REGION_BITS) - 1)
    priors_v = venc >> 26
    e_v = plan.widths[regs_v] * its_v
    starts_v = np.concatenate(([0], np.cumsum(e_v)))
    total = int(starts_v[-1])
    idt = np.int64 if total > 2**31 - 1 else np.int32

    w_i = np.repeat(plan.widths.astype(idt)[regs_v], e_v)
    k = np.arange(total, dtype=idt) - np.repeat(starts_v[:-1].astype(idt), e_v)
    q, pos = np.divmod(k, w_i)
    gi = np.repeat(plan.gbase.astype(idt)[regs_v], e_v) + pos
    exec_i = np.repeat(priors_v.astype(idt), e_v) + q
    del k, pos, w_i

    gi = gi[:length]
    q = q[:length]
    exec_i = exec_i[:length]
    pcs = plan.template[gi]

    # phase runs -> per-site outcome pools
    if renc.size:
        rg_a = renc >> 14
        rl_a = (renc >> 1) & _RUN_MAX
        rv_a = (renc & 1).astype(bool)
        order = np.argsort(rg_a.astype(np.int32), kind="stable")
        pool = np.repeat(rv_a[order], rl_a[order])
        site_tot = np.bincount(rg_a, weights=rl_a, minlength=plan.num_sites)
        pool_base = np.zeros(plan.num_sites, dtype=idt)
        np.cumsum(site_tot[:-1], out=site_tot[:-1])
        pool_base[1:] = site_tot[:-1].astype(idt)
    else:  # pragma: no cover - only patterns/noise-free correlations
        pool = np.zeros(1, dtype=bool)
        pool_base = np.zeros(plan.num_sites, dtype=idt)

    # gather run-pool values for every element (cheaper than a masked
    # scatter; pattern/correlated elements are overwritten below, their
    # bogus pool indices are clipped into range)
    pidx = pool_base[gi] + exec_i
    np.minimum(pidx, idt(pool.size - 1), out=pidx)
    out = pool[pidx]
    kin = plan.kind[gi]
    m_pat = kin == _K_PATTERN
    if m_pat.any():
        gp = gi[m_pat]
        out[m_pat] = plan.pattern_pool[plan.pat_base[gp] + q[m_pat] % plan.pat_len[gp]]

    ci = np.flatnonzero(kin == _K_CORR)
    if ci.size:
        out[ci] = False  # clipped-gather garbage must not leak into history
        _resolve_correlated(plan, out, ci, gi[ci], exec_i[ci], pool, pool_base)

    return BranchTrace(
        pcs=pcs,
        outcomes=out,
        name=program.name,
        metadata=dict(program.metadata),
    )


def _resolve_correlated(plan, out, ci, g_c, exec_c, pool, pool_base):
    """Fill correlated-site outcomes into ``out`` (in place).

    A correlated element reads history bits — outcomes of elements a
    few positions back — so correlated elements form a dependency DAG
    over the trace.  Each vectorized wave resolves every element whose
    source positions all point at already-resolved elements (sources
    are located in the still-unresolved sorted index set with one
    ``searchsorted``).  Waves keep running while they pay off; once the
    remainder is dominated by chains (each wave peels only the chain
    heads), the leftovers are finished by a compact scalar sweep in
    index order: resolved-source contributions are pre-folded into a
    per-element partial table index, so the loop touches only the
    unresolved corr→corr edges — it never materializes the full trace
    as a Python list.
    """
    row = plan.corr_row[g_c]
    tb = plan.tab_base[row]
    src = ci.astype(np.int64)[:, None] - 1 - plan.posmat[row]  # pads underflow < 0
    srcc = np.maximum(src, 0)  # pad-clipped gather indices
    valid = src >= 0
    has_flip = plan.corr_flip[g_c]
    fidx = np.where(has_flip, pool_base[g_c].astype(np.int64) + exec_c, 0)
    flips = np.where(has_flip, pool[fidx], False)
    bitw = 1 << np.arange(_PMAX, dtype=np.int64)
    table = plan.table_pool

    if _cgen.available():
        # Compiled chain sweep: fold every resolved source into a
        # partial table index, list the corr->corr edges, and let C
        # walk the elements in trace order — no waves needed.
        corr_mask = np.zeros(out.size, dtype=bool)
        corr_mask[ci] = True
        unres = corr_mask[srcc] & valid
        bits = out[srcc] & valid & ~unres
        part = (bits * bitw).sum(axis=1) + tb
        ej, eb = np.nonzero(unres)
        ek = np.searchsorted(ci, src[ej, eb])
        ew = np.left_shift(1, eb)
        vals = _cgen.corr_sweep(
            part,
            np.ascontiguousarray(flips).view(np.uint8),
            ej,
            ek,
            ew,
            table.view(np.uint8),
            ci.size,
        )
        if vals is not None:  # pragma: no branch - available() implies success
            out[ci] = vals.view(bool)
            return

    # O(1) unresolved-source test: a trace-length mask updated per wave
    unres_mask = np.zeros(out.size, dtype=bool)
    unres_mask[ci] = True
    pend = np.arange(ci.size)
    for _ in range(_MAX_WAVES):
        if not pend.size:
            break
        s = srcc[pend]
        ready = ~(unres_mask[s] & valid[pend]).any(axis=1)
        sel = pend[ready]
        if sel.size:
            bits = out[srcc[sel]] & valid[sel]
            index = (bits * bitw).sum(axis=1)
            tgt = ci[sel]
            out[tgt] = table[tb[sel] + index] ^ flips[sel]
            unres_mask[tgt] = False
            pend = pend[~ready]
        # chains resolve one link per wave; hand them to the sweep
        if sel.size * 4 < ready.size:
            break

    if pend.size:
        m = pend.size
        idx = ci[pend]
        s = src[pend]
        unres = unres_mask[srcc[pend]] & valid[pend]
        bits = out[srcc[pend]] & valid[pend] & ~unres
        part = (bits * bitw).sum(axis=1) + tb[pend]
        pos = np.searchsorted(idx, s)  # pend-local index of unresolved sources
        np.minimum(pos, m - 1, out=pos)
        ej, eb = np.nonzero(unres)
        ek = pos[ej, eb]
        ej_l = ej.tolist()
        ek_l = ek.tolist()
        ew_l = (1 << eb).tolist()
        part_l = part.tolist()
        flips_l = flips[pend].tolist()
        table_l = table.tolist()
        vals = [False] * m
        e = 0
        ne = len(ej_l)
        for j in range(m):
            acc = part_l[j]
            while e < ne and ej_l[e] == j:
                if vals[ek_l[e]]:
                    acc += ew_l[e]
                e += 1
            vals[j] = table_l[acc] ^ flips_l[j]
        out[idx] = vals
