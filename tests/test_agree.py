"""Unit tests for the agree predictor."""

import numpy as np
import pytest

from repro.predictors.agree import AgreePredictor
from repro.sim.engine import run, run_steps
from tests.conftest import make_toy_trace


class TestAgree:
    def test_bias_bit_set_on_first_outcome(self):
        p = AgreePredictor(index_bits=6)
        p.update(3, False)
        assert p.bias_valid[3]
        assert p.bias_bits[3] is False
        # later outcomes do not overwrite the bias
        p.update(3, True)
        assert p.bias_bits[3] is False

    def test_prediction_is_bias_xnor_agree(self):
        p = AgreePredictor(index_bits=6, history_bits=0)
        p.update(3, False)  # bias(3) = not-taken, counter trains "agree"
        assert p.predict(3) is False  # agree with a not-taken bias
        # drive the counter to disagree
        for _ in range(4):
            p.table.update(3, False)
        assert p.predict(3) is True

    def test_opposite_biases_aliasing_is_constructive(self):
        """The agree predictor's selling point: a taken-biased and a
        not-taken-biased branch sharing a PHT counter both train it
        toward 'agree'."""
        p = AgreePredictor(index_bits=4, history_bits=0, bias_index_bits=8)
        taken_pc = 0x13
        not_taken_pc = 0x23  # same PHT index (low 4 bits), distinct bias slots
        misses = 0
        for _ in range(100):
            misses += p.predict_and_update(taken_pc, True) is not True
            misses += p.predict_and_update(not_taken_pc, False) is not False
        assert misses <= 2

    def test_size_accounting_counts_counters_only(self):
        p = AgreePredictor(index_bits=10)
        assert p.size_bits() == 2048
        assert p.bias_storage_bits() == 2048  # valid + bias bit x 1024

    def test_reset_clears_bias_bits(self):
        p = AgreePredictor(index_bits=4)
        p.update(1, True)
        p.reset()
        assert not any(p.bias_valid)

    def test_batch_equals_step(self):
        trace = make_toy_trace(length=800)
        batch = run(AgreePredictor(8, 6), trace)
        steps = run_steps(AgreePredictor(8, 6), trace)
        assert np.array_equal(batch.predictions, steps.predictions)

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            AgreePredictor(index_bits=4, history_bits=5)
        with pytest.raises(ValueError):
            AgreePredictor(index_bits=-1)

    def test_name(self):
        assert AgreePredictor(8, 6, 7).name == "agree:index=8,hist=6,bias=2^7"
