"""Aliasing statistics — harmless vs destructive interference.

The paper's key claim is not that bi-mode removes aliasing — at equal
size its direction banks are *smaller* than gshare's table, so more
streams share each counter — but that it "separates the destructive
aliases while keeping the harmless aliases together" (Section 2.2).
This module quantifies exactly that, on top of the substream
decomposition of :mod:`repro.analysis.bias`:

* a counter is **aliased** when substreams of more than one static
  branch use it;
* an aliased counter is **destructive** when it hosts both ST and SNT
  substreams in material amounts (opposite strong biases fighting over
  the counter — the oscillation case of the paper's Section 4).  A
  *material* amount means the minority strong class supplies at least
  ``min_minority`` of the counter's accesses, so a single stray
  misrouted access does not mark a counter destructive;
* otherwise the aliasing is **harmless** (streams agree, or only WB
  noise is involved).

:func:`sharing_decomposition` additionally splits counter sharing into
a *capacity* part (inevitable: more live streams than counters, as in
[MichaudSeznecUhlig97]'s capacity aliasing) and a *conflict* part (the
index function bunching streams more than an ideal balanced placement
would).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.bias import SNT, ST, SubstreamAnalysis

__all__ = ["AliasingStats", "SharingDecomposition", "aliasing_stats", "sharing_decomposition"]


@dataclass(frozen=True)
class AliasingStats:
    """How a predictor's counters are shared, and how harmfully.

    All ``*_fraction`` fields are fractions of *dynamic accesses*.
    """

    counters_used: int
    aliased_counters: int
    destructive_counters: int
    aliased_access_fraction: float
    destructive_access_fraction: float
    mean_streams_per_counter: float

    @property
    def harmless_access_fraction(self) -> float:
        """Accesses to aliased but non-destructive counters."""
        return self.aliased_access_fraction - self.destructive_access_fraction


def aliasing_stats(
    analysis: SubstreamAnalysis, min_minority: float = 0.05
) -> AliasingStats:
    """Aliasing summary of one detailed simulation.

    ``min_minority`` is the minimum share of a counter's accesses the
    minority strong class must contribute for the collision to count as
    destructive.
    """
    if not 0.0 <= min_minority <= 0.5:
        raise ValueError(f"min_minority must be in [0, 0.5], got {min_minority}")
    num_counters = analysis.num_counters
    streams_per_counter = np.bincount(analysis.stream_counter, minlength=num_counters)

    # distinct static branches per counter: streams ARE the distinct
    # (counter, pc) pairs, so each counter's streams carry pairwise
    # distinct PCs and the stream count doubles as the branch count
    # (asserted against the recomputing reference implementation by the
    # equivalence suite)
    branches_per_counter = streams_per_counter

    accesses_per_counter = np.bincount(
        analysis.stream_counter,
        weights=analysis.stream_total.astype(np.float64),
        minlength=num_counters,
    )
    total_accesses = accesses_per_counter.sum()

    used = branches_per_counter > 0
    aliased = branches_per_counter > 1

    st_weight = np.bincount(
        analysis.stream_counter,
        weights=np.where(analysis.stream_class == ST, analysis.stream_total, 0).astype(
            np.float64
        ),
        minlength=num_counters,
    )
    snt_weight = np.bincount(
        analysis.stream_counter,
        weights=np.where(analysis.stream_class == SNT, analysis.stream_total, 0).astype(
            np.float64
        ),
        minlength=num_counters,
    )
    minority = np.minimum(st_weight, snt_weight)
    with np.errstate(invalid="ignore", divide="ignore"):
        minority_share = np.where(
            accesses_per_counter > 0, minority / np.maximum(accesses_per_counter, 1), 0.0
        )
    destructive = aliased & (minority > 0) & (minority_share >= min_minority)

    if total_accesses == 0:
        return AliasingStats(0, 0, 0, 0.0, 0.0, 0.0)
    return AliasingStats(
        counters_used=int(used.sum()),
        aliased_counters=int(aliased.sum()),
        destructive_counters=int(destructive.sum()),
        aliased_access_fraction=float(accesses_per_counter[aliased].sum() / total_accesses),
        destructive_access_fraction=float(
            accesses_per_counter[destructive].sum() / total_accesses
        ),
        mean_streams_per_counter=float(streams_per_counter[used].mean()),
    )


@dataclass(frozen=True)
class SharingDecomposition:
    """Capacity vs conflict decomposition of counter sharing.

    ``capacity_share`` is the sharing an ideally balanced placement of
    the same streams over the same counters would suffer
    (``max(0, 1 - counters/streams)`` of accesses, weighting streams
    equally); ``conflict_share`` is the measured extra.
    """

    streams: int
    counters: int
    measured_share: float  # fraction of accesses on counters with > 1 stream
    capacity_share: float

    @property
    def conflict_share(self) -> float:
        return max(0.0, self.measured_share - self.capacity_share)


def sharing_decomposition(analysis: SubstreamAnalysis) -> SharingDecomposition:
    """Split stream sharing into capacity and conflict components."""
    num_counters = analysis.num_counters
    streams_per_counter = np.bincount(analysis.stream_counter, minlength=num_counters)
    accesses_per_counter = np.bincount(
        analysis.stream_counter,
        weights=analysis.stream_total.astype(np.float64),
        minlength=num_counters,
    )
    total = accesses_per_counter.sum()
    if total == 0:
        return SharingDecomposition(0, num_counters, 0.0, 0.0)
    shared = streams_per_counter > 1
    measured = float(accesses_per_counter[shared].sum() / total)
    num_streams = analysis.num_streams
    # balanced placement of S streams over C counters (streams weighted
    # equally): S <= C shares nothing; S >= 2C shares everything; in
    # between, S - C counters hold two streams, so 2(S - C) of the S
    # streams sit on shared counters.
    if num_streams <= num_counters:
        capacity = 0.0
    elif num_streams >= 2 * num_counters:
        capacity = 1.0
    else:
        capacity = 2.0 * (num_streams - num_counters) / num_streams
    return SharingDecomposition(
        streams=num_streams,
        counters=num_counters,
        measured_share=measured,
        capacity_share=capacity,
    )
