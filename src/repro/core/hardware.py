"""Hardware cost accounting.

The paper measures predictor cost as "the number of bytes used in the
2-bit counters" (Section 3.3) and plots misprediction against that cost
(0.25 KB – 32 KB).  First-level history storage (the per-address history
registers of PAx schemes) is accounted separately so cost comparisons
can be made either way.

:class:`HardwareBudget` converts between the paper's size axis (KB of
counters) and table geometries.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "bits_to_bytes",
    "counters_to_bytes",
    "bytes_to_counters",
    "kb",
    "HardwareBudget",
    "PAPER_SIZE_POINTS_KB",
]

#: The x-axis of Figures 2–4: total predictor size in KB of 2-bit counters.
PAPER_SIZE_POINTS_KB = (0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0)


def bits_to_bytes(bits: int) -> float:
    """Exact storage size in bytes for ``bits`` bits of state."""
    if bits < 0:
        raise ValueError(f"bits must be >= 0, got {bits}")
    return bits / 8.0


def counters_to_bytes(num_counters: int, counter_bits: int = 2) -> float:
    """Bytes of counter storage for ``num_counters`` counters."""
    if num_counters < 0:
        raise ValueError(f"num_counters must be >= 0, got {num_counters}")
    return bits_to_bytes(num_counters * counter_bits)


def bytes_to_counters(nbytes: float, counter_bits: int = 2) -> int:
    """How many counters fit in ``nbytes`` bytes (must divide exactly)."""
    bits = nbytes * 8
    counters = bits / counter_bits
    if counters != int(counters):
        raise ValueError(f"{nbytes} bytes is not a whole number of {counter_bits}-bit counters")
    return int(counters)


def kb(nbytes: float) -> float:
    """Bytes to kilobytes (the paper's 1 KB = 1024 B)."""
    return nbytes / 1024.0


@dataclass(frozen=True)
class HardwareBudget:
    """A predictor size point on the paper's cost axis.

    Attributes
    ----------
    kbytes:
        Total budget in KB of 2-bit counters.
    """

    kbytes: float

    @property
    def nbytes(self) -> float:
        return self.kbytes * 1024.0

    @property
    def counters(self) -> int:
        """Total number of 2-bit counters the budget buys."""
        return bytes_to_counters(self.nbytes)

    @property
    def index_bits(self) -> int:
        """log2(counters) for a single table consuming the whole budget.

        Raises if the budget is not a power-of-two number of counters
        (table geometries need power-of-two sizes).
        """
        n = self.counters
        if n <= 0 or n & (n - 1):
            raise ValueError(f"{self.kbytes} KB is not a power-of-two counter budget")
        return n.bit_length() - 1

    def __str__(self) -> str:
        if self.kbytes >= 1 and float(self.kbytes).is_integer():
            return f"{int(self.kbytes)}KB"
        return f"{self.kbytes}KB"
