"""Unit tests for profile capture (fit a profile to an arbitrary trace)."""

import numpy as np
import pytest

from repro.traces.record import BranchTrace
from repro.workloads.capture import branch_populations, estimate_profile
from repro.workloads.generator import generate_trace
from repro.workloads.profiles import get_profile


def build(pc_streams: dict, name="t"):
    """Trace from {pc: [outcomes...]} interleaved round-robin."""
    pcs, outcomes = [], []
    streams = {pc: list(v) for pc, v in pc_streams.items()}
    while any(streams.values()):
        for pc, values in streams.items():
            if values:
                pcs.append(pc)
                outcomes.append(values.pop(0))
    return BranchTrace(pcs=np.array(pcs), outcomes=np.array(outcomes), name=name)


class TestBranchPopulations:
    def test_strongly_biased_detected(self):
        trace = build({4: [True] * 20, 8: [False] * 20})
        populations = branch_populations(trace)
        assert set(populations["biased"]) == {4, 8}

    def test_loop_detected(self):
        # taken runs of 4 with single not-taken exits: 80% taken
        stream = ([True] * 4 + [False]) * 10
        populations = branch_populations(build({4: stream}))
        assert populations["loop"] == [4]

    def test_pattern_detected(self):
        # perfect alternation: lag-1 autocorrelation -1
        stream = [True, False] * 30
        populations = branch_populations(build({4: stream}))
        assert populations["pattern"] == [4]

    def test_weak_detected(self):
        rng = np.random.default_rng(0)
        stream = (rng.random(200) < 0.5).tolist()
        populations = branch_populations(build({4: stream}))
        assert populations["weak"] == [4]

    def test_every_branch_classified_once(self):
        trace = generate_trace(get_profile("xlisp"), length=30_000)
        populations = branch_populations(trace)
        total = sum(len(v) for v in populations.values())
        assert total == trace.num_static


class TestEstimateProfile:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            estimate_profile(BranchTrace.empty())

    def test_static_count_preserved(self):
        trace = generate_trace(get_profile("xlisp"), length=30_000)
        profile = estimate_profile(trace)
        assert profile.static_branches == trace.num_static

    def test_name_defaults_to_trace(self):
        trace = generate_trace(get_profile("perl"), length=5_000)
        assert estimate_profile(trace).name == "perl-fit"

    def test_roundtrip_preserves_bias_structure(self):
        """Generate from an original profile, fit, regenerate: key
        statistics should land near the original's."""
        from repro.traces.stats import compute_stats
        from repro.workloads.generator import generate_trace as gen

        original = generate_trace(get_profile("vortex"), length=60_000)
        fitted_profile = estimate_profile(original)
        lookalike = gen(fitted_profile, length=60_000, seed=9)

        stats_a = compute_stats(original)
        stats_b = compute_stats(lookalike)
        assert abs(stats_a.taken_rate - stats_b.taken_rate) < 0.15
        assert (
            abs(stats_a.strongly_biased_fraction - stats_b.strongly_biased_fraction)
            < 0.25
        )

    def test_roundtrip_preserves_predictability_ordering(self):
        """A lookalike of an easy benchmark must stay easier than a
        lookalike of a hard one."""
        from repro.core.registry import make_predictor
        from repro.sim.engine import run
        from repro.workloads.generator import generate_trace as gen

        easy_fit = estimate_profile(generate_trace(get_profile("vortex"), length=50_000))
        hard_fit = estimate_profile(generate_trace(get_profile("go"), length=50_000))
        easy = gen(easy_fit, length=50_000, seed=2)
        hard = gen(hard_fit, length=50_000, seed=2)
        rate_easy = run(make_predictor("gshare:index=12,hist=12"), easy).misprediction_rate
        rate_hard = run(make_predictor("gshare:index=12,hist=12"), hard).misprediction_rate
        assert rate_easy < rate_hard
