"""Figure 4 — per-benchmark misprediction curves, IBS-Ultrix.

Eight panels (groff, gs, mpeg_play, nroff, real_gcc, sdet, verilog,
video_play), same scheme trio.  The IBS traces include kernel activity,
which the synthetic profiles model as kernel-address regions
interleaved by the dispatch walk.

Shape checks: bi-mode at or below gshare.1PHT on a strong majority of
cells; ``real_gcc`` (largest footprint) shows the biggest small-table
penalty; multi-PHT gshare.best beats 1PHT at small sizes on average.

Bi-mode cells route through the batched kernel
(:mod:`repro.sim.batch_bimode`), gshare cells through
:mod:`repro.sim.batch`; rates are bit-identical to the scalar engine.
"""

from __future__ import annotations

import pytest

from benchmarks.common import (
    bench_jobs,
    emit_table,
    load_bench_suite,
    result_cache,
    sweep_journal,
)
from repro.analysis.report import ascii_chart
from repro.analysis.sweep import paper_sweep
from repro.core.hardware import PAPER_SIZE_POINTS_KB


def _run():
    traces = load_bench_suite("ibs")
    series = paper_sweep(
        traces,
        kb_points=PAPER_SIZE_POINTS_KB,
        cache=result_cache(),
        jobs=bench_jobs(),
        journal=sweep_journal("fig4_ibs"),
    )
    return traces, series


@pytest.mark.benchmark(group="fig4")
def test_fig4_ibs_curves(benchmark):
    traces, series = benchmark.pedantic(_run, rounds=1, iterations=1)

    for name in traces:
        headers = ["scheme"] + [f"{kb:g}KB" for kb in PAPER_SIZE_POINTS_KB]
        rows = [
            [label] + [f"{100 * p.per_benchmark[name]:.2f}%" for p in sweep.points]
            for label, sweep in series.items()
        ]
        emit_table(f"fig4_{name}", f"Figure 4 — {name}", headers, rows)
        chart = {
            label: [(p.size_kb, p.per_benchmark[name]) for p in sweep.points]
            for label, sweep in series.items()
        }
        print(ascii_chart(chart, title=name, height=12))

    one_pht = series["gshare.1PHT"]
    best = series["gshare.best"]
    bimode = series["bi-mode"]

    cells = wins = 0
    for name in traces:
        for g, b in zip(one_pht.benchmark_rates(name), bimode.benchmark_rates(name)):
            cells += 1
            wins += b < g
    assert wins / cells > 0.7, f"bi-mode won only {wins}/{cells} cells vs 1PHT"

    # real_gcc shows the largest relative degradation from 32KB to 0.25KB
    def degradation(name):
        rates = one_pht.benchmark_rates(name)
        return rates[0] / max(rates[-1], 1e-9)

    degradations = {name: degradation(name) for name in traces}
    top_two = sorted(degradations, key=degradations.get, reverse=True)[:3]
    assert "real_gcc" in top_two, degradations

    # multi-PHT helps at the smallest size on average
    assert best.averages()[0] <= one_pht.averages()[0] + 1e-12
