"""History-length sweep — Section 4.4's prescription, measured.

The paper's go analysis concludes: "The prediction accuracy for
programs like the go benchmark will only improve if more global history
information is employed so that more strongly biased substreams can be
generated."  This bench sweeps the history length of a fixed-size
gshare (2^14 counters, so aliasing pressure stays constant) on one
WB-dominated benchmark (go) and one bias/correlation-dominated
benchmark (xlisp), measuring both the misprediction rate and the
WB share of the dynamic substreams.

Expected shapes:

* the WB substream share falls monotonically-ish with history length on
  both benchmarks (more history = more strongly-biased substreams);
* go's best operating point uses *more* history than xlisp's, and go
  keeps improving deeper into the sweep.
"""

from __future__ import annotations

import pytest

from benchmarks.common import detailed_summaries, emit_table, load_bench_trace

INDEX_BITS = 14
HISTORY_LENGTHS = (0, 2, 4, 6, 8, 10, 12, 14)
BENCHMARKS = ("go", "xlisp")


def _run():
    specs = [f"gshare:index={INDEX_BITS},hist={hist}" for hist in HISTORY_LENGTHS]
    traces = {name: load_bench_trace(name) for name in BENCHMARKS}
    summaries = detailed_summaries(specs, traces, stem="history_length")
    out = {}
    for name in BENCHMARKS:
        for hist, spec in zip(HISTORY_LENGTHS, specs):
            summary = summaries[spec][name]
            out[(name, hist)] = (
                summary["misprediction_rate"],
                summary["wb_dynamic_share"],
            )
    return out


@pytest.mark.benchmark(group="history-length")
def test_history_length_sweep(benchmark):
    table = benchmark.pedantic(_run, rounds=1, iterations=1)

    rows = []
    for name in BENCHMARKS:
        for hist in HISTORY_LENGTHS:
            rate, wb = table[(name, hist)]
            rows.append([name, hist, f"{100 * rate:.2f}%", f"{100 * wb:.2f}%"])
    emit_table(
        "history_length_sweep",
        f"gshare 2^{INDEX_BITS}: misprediction and WB substream share vs history",
        ["benchmark", "history bits", "misprediction", "WB substream share"],
        rows,
    )

    for name in BENCHMARKS:
        wb_shares = [table[(name, h)][1] for h in HISTORY_LENGTHS]
        # more history moves dynamic weight out of the WB class
        # (endpoint comparison; the middle may wiggle)
        assert wb_shares[-1] < wb_shares[0], name
        assert wb_shares[-1] < 0.6 * wb_shares[0], name

    # go needs deep history: its 14-bit point beats its 6-bit point by a
    # wide margin, while xlisp has mostly converged by 6 bits
    go_gain = table[("go", 6)][0] - table[("go", 14)][0]
    xlisp_gain = table[("xlisp", 6)][0] - table[("xlisp", 14)][0]
    assert go_gain > xlisp_gain, (go_gain, xlisp_gain)

    # go remains WB-heavy even at full history, xlisp does not
    assert table[("go", 14)][1] > 2 * table[("xlisp", 14)][1]
