"""Differential replay: oracle vs scalar engine vs batched kernels.

:func:`diff_spec` runs one spec over one trace through every available
implementation —

* the dict-based oracle (:mod:`repro.verify.oracle`),
* the predictor's step interface (``predict``/``update`` per branch),
* the predictor's batch ``simulate`` loop (what :func:`repro.sim.
  engine.run` uses),
* the gshare lane kernel or each available bi-mode kernel strategy,
  when the spec qualifies for one —

and reports whether all predictions agree, and if not, the index of
the first diverging branch together with each engine's prediction
there.  This is the debugging entry point when a kernel regresses: the
report names the branch to single-step, and the test-suite fuzzers
shrink their failing traces before producing it.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.registry import make_predictor
from repro.sim import _cstep
from repro.sim.batch import gshare_lane_predictions, lane_for_spec
from repro.sim.batch_bimode import bimode_lane_for_spec, bimode_lane_predictions
from repro.sim.engine import run, run_steps
from repro.traces.record import BranchTrace
from repro.verify.oracle import oracle_predictions

__all__ = ["EngineRun", "DifferentialReport", "diff_spec"]


@dataclass
class EngineRun:
    """One implementation's replay of the trace."""

    engine: str
    predictions: np.ndarray

    def rate(self, outcomes: np.ndarray) -> float:
        if len(outcomes) == 0:
            return 0.0
        return int(np.count_nonzero(self.predictions != outcomes)) / len(outcomes)


@dataclass
class DifferentialReport:
    """Outcome of replaying one (spec, trace) cell through every engine."""

    spec: str
    trace_name: str
    num_branches: int
    runs: List[EngineRun] = field(default_factory=list)
    first_divergence: Optional[int] = None
    divergence_detail: str = ""

    @property
    def agree(self) -> bool:
        return self.first_divergence is None

    def summary(self) -> str:
        engines = ", ".join(r.engine for r in self.runs)
        head = (
            f"spec {self.spec!r} on trace {self.trace_name!r} "
            f"({self.num_branches} branches; engines: {engines})"
        )
        if self.agree:
            return f"{head}: all engines agree"
        return f"{head}: {self.divergence_detail}"


def _bimode_strategies() -> List[str]:
    strategies = ["numpy", "python"]
    if _cstep.available():
        strategies.insert(0, "c")
    return strategies


def diff_spec(
    spec: str, trace: BranchTrace, include_kernels: bool = True
) -> DifferentialReport:
    """Replay ``spec`` over ``trace`` through every implementation.

    The oracle is always run and is the reference ordering: the report's
    ``first_divergence`` is the smallest branch index where *any* engine
    disagrees with any other (they either all match or the earliest
    mismatch is against the oracle, since agreement is transitive).
    """
    report = DifferentialReport(
        spec=spec, trace_name=trace.name or "anon", num_branches=len(trace)
    )
    report.runs.append(EngineRun("oracle", oracle_predictions(spec, trace)))
    report.runs.append(
        EngineRun("step", run_steps(make_predictor(spec), trace).predictions)
    )
    report.runs.append(
        EngineRun("scalar", run(make_predictor(spec), trace).predictions)
    )
    if include_kernels:
        glane = lane_for_spec(spec)
        if glane is not None:
            report.runs.append(
                EngineRun(
                    "batch:gshare", gshare_lane_predictions([glane], trace)[0]
                )
            )
        blane = bimode_lane_for_spec(spec)
        if blane is not None:
            saved = os.environ.get("REPRO_BIMODE_KERNEL")
            try:
                for strategy in _bimode_strategies():
                    os.environ["REPRO_BIMODE_KERNEL"] = strategy
                    report.runs.append(
                        EngineRun(
                            f"batch:bimode[{strategy}]",
                            bimode_lane_predictions([blane], trace)[0],
                        )
                    )
            finally:
                if saved is None:
                    os.environ.pop("REPRO_BIMODE_KERNEL", None)
                else:
                    os.environ["REPRO_BIMODE_KERNEL"] = saved

    reference = report.runs[0]
    first: Optional[int] = None
    for other in report.runs[1:]:
        diverging = np.flatnonzero(reference.predictions != other.predictions)
        if diverging.size and (first is None or diverging[0] < first):
            first = int(diverging[0])
    if first is not None:
        report.first_divergence = first
        pc = int(trace.pcs[first])
        outcome = bool(trace.outcomes[first])
        votes = ", ".join(
            f"{r.engine}={'T' if r.predictions[first] else 'NT'}"
            for r in report.runs
        )
        report.divergence_detail = (
            f"first divergence at branch {first} "
            f"(pc={pc:#x}, outcome={'taken' if outcome else 'not-taken'}): {votes}"
        )
    return report
