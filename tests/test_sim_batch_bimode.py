"""Equivalence suite for the lane-batched bi-mode kernel.

Every execution strategy of :mod:`repro.sim.batch_bimode` (compiled,
numpy-stepped with the saturated-choice fast path, pure-Python) must be
bit-for-bit identical to the scalar :class:`repro.core.bimode.
BiModePredictor` — same per-branch predictions, same integer miss
counts — across ablation knobs, degenerate table sizes, and degenerate
traces.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.registry import make_predictor
from repro.sim import _cstep
from repro.sim import batch_bimode as bb
from repro.sim.engine import run
from repro.traces.record import BranchTrace

from .conftest import make_toy_trace, scalar_predictions as _scalar_predictions

SPECS = [
    "bimode:dir=6,hist=4,choice=5",
    "bimode:dir=8,hist=8,choice=8",
    "bimode:dir=3,hist=0,choice=2",
    "bimode:dir=5,hist=5,choice=3,full_update=1",
    "bimode:dir=6,hist=6,choice=4,choice_hist=1",
    "bimode:dir=7,hist=3,choice=6,full_update=1,choice_hist=1",
]

DEGENERATE_SPECS = [
    "bimode:dir=0,hist=0,choice=0",  # 1-entry banks and 1-entry choice
    "bimode:dir=4,hist=2,choice=0",  # 1-entry choice table only
    "bimode:dir=0,hist=0,choice=3",  # 1-entry banks only
]

STRATEGIES = ["c", "numpy", "python"]


def _use(monkeypatch, strategy: str) -> None:
    if strategy == "c" and not _cstep.available():
        pytest.skip("no C compiler available")
    monkeypatch.setenv("REPRO_BIMODE_KERNEL", strategy)


@pytest.mark.parametrize("strategy", STRATEGIES)
class TestBitExactness:
    def test_rates_match_scalar_engine(self, monkeypatch, strategy, toy_trace):
        _use(monkeypatch, strategy)
        lanes = [bb.bimode_lane_for_spec(s) for s in SPECS]
        assert all(lane is not None for lane in lanes)
        rates = bb.bimode_lane_rates(lanes, toy_trace)
        for spec, rate in zip(SPECS, rates):
            expected = run(make_predictor(spec), toy_trace).misprediction_rate
            assert rate == expected, spec

    def test_predictions_match_scalar_predictor(self, monkeypatch, strategy):
        _use(monkeypatch, strategy)
        trace = make_toy_trace(length=1500, seed=11, num_branches=40)
        lanes = [bb.bimode_lane_for_spec(s) for s in SPECS]
        got = bb.bimode_lane_predictions(lanes, trace)
        for k, spec in enumerate(SPECS):
            expected = _scalar_predictions(spec, trace)
            diverging = np.flatnonzero(got[k] != expected)
            assert diverging.size == 0, (
                f"{spec}: first divergence at branch {diverging[:1]}"
            )

    def test_degenerate_table_sizes(self, monkeypatch, strategy):
        _use(monkeypatch, strategy)
        trace = make_toy_trace(length=800, seed=3, num_branches=12)
        lanes = [bb.bimode_lane_for_spec(s) for s in DEGENERATE_SPECS]
        assert all(lane is not None for lane in lanes)
        rates = bb.bimode_lane_rates(lanes, trace)
        for spec, rate in zip(DEGENERATE_SPECS, rates):
            assert rate == run(make_predictor(spec), trace).misprediction_rate

    def test_empty_trace(self, monkeypatch, strategy):
        _use(monkeypatch, strategy)
        empty = BranchTrace(
            pcs=np.empty(0, dtype=np.int64), outcomes=np.empty(0, dtype=bool)
        )
        lanes = [bb.bimode_lane_for_spec(s) for s in SPECS]
        assert bb.bimode_lane_rates(lanes, empty) == [0.0] * len(SPECS)
        assert bb.bimode_lane_predictions(lanes, empty).shape == (len(SPECS), 0)

    def test_single_branch_trace(self, monkeypatch, strategy):
        _use(monkeypatch, strategy)
        one = BranchTrace(
            pcs=np.array([24], dtype=np.int64), outcomes=np.array([True])
        )
        lanes = [bb.bimode_lane_for_spec(s) for s in SPECS]
        rates = bb.bimode_lane_rates(lanes, one)
        for spec, rate in zip(SPECS, rates):
            assert rate == run(make_predictor(spec), one).misprediction_rate
        # power-on state predicts taken (taken bank starts weakly taken)
        assert bb.bimode_lane_predictions(lanes, one).all()

    def test_matrix_rates_across_traces(self, monkeypatch, strategy):
        _use(monkeypatch, strategy)
        traces = [
            make_toy_trace(length=900, seed=5),
            make_toy_trace(length=1300, seed=6, num_branches=48),
            BranchTrace(
                pcs=np.empty(0, dtype=np.int64), outcomes=np.empty(0, dtype=bool)
            ),
        ]
        lanes = [bb.bimode_lane_for_spec(s) for s in SPECS[:3]]
        cells = [(lane, trace) for trace in traces for lane in lanes]
        rates = bb.bimode_matrix_rates(cells)
        for (lane, trace), rate in zip(cells, rates):
            if len(trace) == 0:
                assert rate == 0.0
            else:
                expected = run(make_predictor(lane.spec), trace).misprediction_rate
                assert rate == expected, lane.spec


class TestFastPath:
    def test_fast_path_fires_and_stays_exact(self, monkeypatch):
        """A heavily biased trace saturates choice counters; most chunks
        must take the counter-major replay and still match the scalar
        engine exactly."""
        monkeypatch.setenv("REPRO_BIMODE_KERNEL", "numpy")
        rng = np.random.default_rng(17)
        n = 40_000
        trace = BranchTrace(
            pcs=rng.integers(0, 8, size=n).astype(np.int64) * 4,
            outcomes=np.ones(n, dtype=bool),
        )
        lanes = [bb.bimode_lane_for_spec(s) for s in SPECS]
        bb.stats.reset()
        rates = bb.bimode_lane_rates(lanes, trace)
        assert bb.stats.fastpath_chunks > 0
        for spec, rate in zip(SPECS, rates):
            assert rate == run(make_predictor(spec), trace).misprediction_rate

    def test_fast_path_skipped_on_mixed_trace(self, monkeypatch):
        monkeypatch.setenv("REPRO_BIMODE_KERNEL", "numpy")
        trace = make_toy_trace(length=6000, seed=2)
        bb.stats.reset()
        bb.bimode_lane_rates([bb.bimode_lane_for_spec(SPECS[0])], trace)
        assert bb.stats.stepped_chunks > 0


class TestLaneParsing:
    def test_round_trip_spec(self):
        for spec in SPECS + DEGENERATE_SPECS:
            lane = bb.bimode_lane_for_spec(spec)
            assert lane is not None
            assert bb.bimode_lane_for_spec(lane.spec) == lane

    def test_defaults_follow_dir_bits(self):
        lane = bb.bimode_lane_for_spec("bimode:dir=9")
        assert lane == bb.BiModeLane(dir_bits=9, hist_bits=9, choice_bits=9)

    @pytest.mark.parametrize(
        "spec",
        [
            "gshare:index=10,hist=10",  # not bi-mode
            "bimode:hist=4",  # dir missing
            "bimode:dir=4,hist=6",  # hist > dir
            "bimode:dir=-1",  # negative
            "bimode:dir=4,meta=3",  # unknown knob
            "not a spec",
        ],
    )
    def test_rejects_non_kernel_specs(self, spec):
        assert bb.bimode_lane_for_spec(spec) is None

    def test_lane_validation(self):
        with pytest.raises(ValueError):
            bb.BiModeLane(dir_bits=4, hist_bits=6, choice_bits=4)
        with pytest.raises(ValueError):
            bb.BiModeLane(dir_bits=-1, hist_bits=0, choice_bits=0)


class TestDispatch:
    def test_forced_c_without_compiler_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_BIMODE_KERNEL", "c")
        monkeypatch.setattr(bb._cstep, "available", lambda: False)
        lane = bb.bimode_lane_for_spec(SPECS[0])
        with pytest.raises(RuntimeError, match="REPRO_BIMODE_KERNEL"):
            bb.bimode_lane_rates([lane], make_toy_trace(length=10))

    def test_unknown_mode_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_BIMODE_KERNEL", "turbo")
        lane = bb.bimode_lane_for_spec(SPECS[0])
        with pytest.raises(ValueError, match="turbo"):
            bb.bimode_lane_rates([lane], make_toy_trace(length=10))

    def test_auto_uses_stepped_for_wide_batches(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CC", "1")
        monkeypatch.setattr(bb._cstep, "available", lambda: False)
        monkeypatch.setenv("REPRO_BIMODE_STEP_MIN", "4")
        monkeypatch.delenv("REPRO_BIMODE_KERNEL", raising=False)
        trace = make_toy_trace(length=500, seed=1)
        lanes = [bb.bimode_lane_for_spec(s) for s in SPECS]
        bb.stats.reset()
        bb.bimode_lane_rates(lanes, trace)
        assert bb.stats.stepped_chunks > 0
        bb.stats.reset()
        bb.bimode_lane_rates(lanes[:2], trace)
        assert bb.stats.python_pairs == 2
