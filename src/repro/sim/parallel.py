"""Process-parallel sweep execution with supervised, fault-tolerant workers.

Design-space sweeps (specs x benchmarks) are embarrassingly parallel
across traces, so :func:`evaluate_matrix_parallel` ships one work item
per (trace, spec family) — the fused planner's grouping, after
deduplicating identical (spec, trace) cells across benchmarks — to a
``ProcessPoolExecutor``.  Work items carry a
:class:`TraceRecipe` — ``(name, length, seed)`` plus an optional trace
store root — rather than the trace arrays themselves: workers map the
published trace out of the zero-copy store
(:class:`repro.traces.store.TraceStore`, shared OS page cache across
the pool) and materialize it on first use, instead of paying
multi-megabyte pickles or a regeneration per task.  Cold-store
materialization itself fans out into the pool as first-class
supervised tasks (:func:`materialize_parallel`, or recipe-valued
``traces`` in :func:`evaluate_matrix_parallel`).

Every task is individually supervised (:class:`TaskPolicy`):

* a configurable per-task timeout (``$REPRO_TASK_TIMEOUT`` seconds) —
  an expired task's pool is abandoned and reseeded so stragglers cannot
  wedge the sweep;
* bounded retries with exponential backoff (``$REPRO_TASK_RETRIES``,
  ``$REPRO_TASK_BACKOFF``), including a reseeded pool after a
  ``BrokenProcessPool`` (a worker killed mid-task);
* completed results are always salvaged — one crashed worker never
  discards, or recomputes, a benchmark whose worker already finished;
* a task that exhausts its retries gets one final in-parent serial
  attempt, and if that also fails it is quarantined into a structured
  :class:`FailedCell` (exception type, message, traceback, attempt
  count) attached to the returned :class:`SweepResult` instead of
  poisoning the matrix.

Workers never touch the result cache.  The parent filters out cached
(and journalled — see :class:`repro.sim.journal.SweepJournal`) cells
before dispatch, merges each worker's rates *as it completes* — into
the matrix, the cache, and the journal — and the final matrix is
assembled in input order, deterministic regardless of completion order.
Inside a worker the cells route exactly as in the serial path, so
parallel and serial sweeps produce byte-identical tables.

Degradations (pool unavailable -> serial, worker retries, quarantined
cells) are reported through :mod:`repro.health`.

Detailed (Section-4) analysis sweeps are a first-class workload here
too: :func:`detailed_matrix` ships one supervised task per ``(trace,
spec family)`` — cells of one scheme share a fused attribution pass
(:func:`repro.sim.fused.family_detailed`) — workers reduce each
attribution simulation to a compact summary dict in-process (kilobytes
over the pipe, never the per-branch arrays), and completed cells
persist to a :class:`repro.sim.journal.PayloadJournal` for crash-safe
resume with bit-identical aggregates.

Parallelism is controlled by the ``$REPRO_JOBS`` environment knob (or an
explicit ``jobs`` argument).  ``REPRO_JOBS=1``, unset ``REPRO_JOBS``, an
unpicklable platform, or traces that carry no recipe all fall back to
the serial path, which computes bit-identical rates.
"""

from __future__ import annotations

import os
import time
import traceback as _tb
from collections import deque
from contextlib import contextmanager
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro import health
from repro.faults import fault_point
from repro.traces.record import BranchTrace

__all__ = [
    "TraceRecipe",
    "TaskPolicy",
    "FailedCell",
    "SweepResult",
    "recipe_of",
    "parallel_jobs",
    "effective_jobs",
    "materialize_parallel",
    "evaluate_matrix_parallel",
    "detailed_matrix",
]


@dataclass(frozen=True)
class TraceRecipe:
    """Everything a worker needs to materialize a benchmark trace.

    ``store_root`` (optional) pins the trace store the worker should
    materialize into/load from; ``None`` defers to the environment's
    default cache root, which pool workers inherit.
    """

    name: str
    length: int
    seed: int
    store_root: Optional[str] = None

    @property
    def tkey(self) -> str:
        """The same cache key :func:`repro.sim.runner.trace_key` derives
        from the materialized trace, computed without the arrays."""
        return f"{self.name}-n{self.length}-s{self.seed}"


def recipe_of(trace: BranchTrace) -> Optional[TraceRecipe]:
    """The trace's regeneration recipe, or ``None`` if it has none.

    Only generated workload traces (a registered profile name plus a
    ``profile_seed`` in metadata) can be rebuilt from a recipe; anything
    else must be evaluated in-process.
    """
    seed = trace.metadata.get("profile_seed")
    if seed is None or not trace.name:
        return None
    from repro.workloads.profiles import ALL_PROFILES

    if trace.name not in ALL_PROFILES:
        return None
    return TraceRecipe(name=trace.name, length=len(trace), seed=int(seed))


def parallel_jobs(default: int = 1) -> int:
    """Worker count from the ``$REPRO_JOBS`` knob.

    ``REPRO_JOBS=0`` (or ``auto``) means one worker per CPU; unset falls
    back to ``default`` (serial unless a caller opts in).
    """
    env = os.environ.get("REPRO_JOBS", "").strip()
    if not env:
        return max(1, default)
    if env.lower() == "auto":
        return os.cpu_count() or 1
    try:
        jobs = int(env)
    except ValueError:
        raise ValueError(f"REPRO_JOBS must be an integer or 'auto', got {env!r}")
    if jobs <= 0:
        return os.cpu_count() or 1
    return jobs


def effective_jobs(jobs: Optional[int]) -> int:
    """Resolve an explicit ``jobs`` argument against the env knob.

    ``None`` defers to ``$REPRO_JOBS``; ``0`` or negative means one
    worker per CPU, mirroring the knob's convention.
    """
    if jobs is None:
        return parallel_jobs()
    if jobs <= 0:
        return os.cpu_count() or 1
    return jobs


# -- supervision policy and fault reports -------------------------------------------


@dataclass(frozen=True)
class TaskPolicy:
    """Per-task supervision knobs for the worker pool.

    ``timeout`` is wall-clock seconds a task may run before its pool is
    abandoned and the task retried (``None`` disables); ``retries`` is
    how many *additional* pool attempts a failing task gets before the
    final in-parent serial attempt; ``backoff`` is the base of the
    exponential sleep between retries.
    """

    timeout: Optional[float] = None
    retries: int = 2
    backoff: float = 0.1

    @classmethod
    def from_env(cls) -> "TaskPolicy":
        """Policy from ``$REPRO_TASK_TIMEOUT`` / ``_RETRIES`` / ``_BACKOFF``."""

        def _number(name: str, default: float) -> float:
            raw = os.environ.get(name, "").strip()
            if not raw:
                return default
            try:
                return float(raw)
            except ValueError:
                raise ValueError(f"{name} must be a number, got {raw!r}")

        timeout = _number("REPRO_TASK_TIMEOUT", 0.0)
        retries = int(_number("REPRO_TASK_RETRIES", 2))
        backoff = _number("REPRO_TASK_BACKOFF", 0.1)
        return cls(
            timeout=timeout if timeout > 0 else None,
            retries=max(0, retries),
            backoff=max(0.0, backoff),
        )


@dataclass(frozen=True)
class FailedCell:
    """A quarantined (benchmark, specs) task that exhausted every retry."""

    bench: str
    specs: Tuple[str, ...]
    error_type: str
    message: str
    traceback: str
    attempts: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.bench} [{len(self.specs)} specs]: {self.error_type}: "
            f"{self.message} (after {self.attempts} attempts)"
        )


class SweepResult(Dict[str, Dict[str, float]]):
    """An ``evaluate_matrix`` result dict plus fault metadata.

    Equality, iteration, and indexing behave exactly like the plain
    ``{spec: {bench: rate}}`` dict, so existing callers are unaffected;
    ``failures`` lists the quarantined cells (empty on a clean sweep).
    """

    def __init__(self, data=None, failures: Optional[Sequence[FailedCell]] = None):
        super().__init__(data or {})
        self.failures: List[FailedCell] = list(failures or [])

    @property
    def quarantined_benches(self) -> List[str]:
        return sorted({cell.bench for cell in self.failures})


class _Task:
    """One supervised work item: evaluate a benchmark, run a detailed
    (Section-4) analysis cell, or materialize a trace into the store
    (``kind``)."""

    __slots__ = (
        "bench",
        "recipe",
        "missing",
        "kind",
        "opts",
        "attempts",
        "last_error",
        "last_tb",
    )

    def __init__(
        self,
        bench: str,
        recipe: TraceRecipe,
        missing: List[str],
        kind: str = "evaluate",
        opts: Optional[dict] = None,
    ):
        self.bench = bench
        self.recipe = recipe
        self.missing = list(missing)
        self.kind = kind
        self.opts = opts
        self.attempts = 0
        self.last_error: Optional[BaseException] = None
        self.last_tb = ""


def _recipe_store(recipe: TraceRecipe):
    if recipe.store_root is None:
        return None
    from pathlib import Path

    from repro.traces.store import TraceStore

    return TraceStore(Path(recipe.store_root))


def _load_recipe(recipe: TraceRecipe) -> BranchTrace:
    from repro.workloads.suite import load_benchmark

    return load_benchmark(
        recipe.name,
        length=recipe.length,
        seed=recipe.seed,
        store=_recipe_store(recipe),
    )


def _worker_evaluate(
    recipe: TraceRecipe, specs: Tuple[str, ...]
) -> Tuple[str, Dict[str, float]]:
    """Map (or materialize) one trace and evaluate every spec on it."""
    from repro.sim.runner import evaluate_specs

    fault_point("worker", bench=recipe.name)
    trace = _load_recipe(recipe)
    return recipe.name, evaluate_specs(tuple(specs), trace, cache=None)


def _detailed_cells(
    specs: Sequence[str], trace: BranchTrace, opts: dict
) -> Dict[str, dict]:
    """Run and summarize the detailed simulation of each spec on one trace.

    Cells evaluate family-wise through the fused detailed passes
    (:func:`repro.sim.fused.family_detailed`): specs sharing a scheme
    share one pass's precomputed streams, and each lane's
    ``(predictions, counter_ids)`` is bit-identical to the scalar
    ``run_detailed`` path.  The heavy per-access attribution arrays
    never leave this function — each cell is reduced to its compact
    Section-4 summary dict
    (:func:`repro.analysis.summary.summarize_detailed`), kilobytes
    instead of tens of megabytes, which is what makes detailed cells
    shippable across the process pool and journallable as JSON.
    """
    from repro.analysis.bias import pc_code_stream
    from repro.analysis.summary import summarize_detailed
    from repro.core.interfaces import DetailedSimulation, SimulationResult
    from repro.sim.fused import family_detailed, plan_families

    pc_codes = pc_code_stream(trace.pcs)  # per-trace, shared by every cell
    out: Dict[str, dict] = {}
    for family in plan_families(list(specs)):
        rows = family_detailed(family, trace)
        for spec in family.specs:
            fault_point("detailed", bench=trace.name or "anon", spec=spec)
            predictions, counter_ids, num_counters = rows[spec]
            detailed = DetailedSimulation(
                result=SimulationResult(
                    predictor_name=spec,
                    trace_name=trace.name,
                    predictions=predictions,
                    outcomes=trace.outcomes,
                ),
                counter_ids=counter_ids,
                num_counters=num_counters,
                pcs=trace.pcs,
            )
            out[spec] = summarize_detailed(
                detailed,
                threshold=opts["threshold"],
                include_bias_table=opts["include_bias_table"],
                pc_codes=pc_codes,
            )
    return out


def _worker_detailed(
    recipe: TraceRecipe, specs: Tuple[str, ...], opts: dict
) -> Tuple[str, Dict[str, dict]]:
    """Map (or materialize) one trace and run detailed cells on it."""
    fault_point("worker", bench=recipe.name)
    trace = _load_recipe(recipe)
    return recipe.name, _detailed_cells(specs, trace, opts)


def _worker_materialize(recipe: TraceRecipe) -> Tuple[str, None]:
    """Materialize one cold trace into the store (worker side).

    Returns no rates — the value of the task is the published trace.
    The store's single-flight lock makes overlapping materializers (a
    retried task, or an evaluate task racing ahead) generate at most
    once between them.
    """
    fault_point("worker", bench=recipe.name)
    _load_recipe(recipe)
    return recipe.name, None


def _abandon_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down without waiting on wedged or dying workers."""
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except TypeError:  # pragma: no cover - cancel_futures needs 3.9+
        pool.shutdown(wait=False)
    # Best effort: reclaim workers stuck in a timed-out task so they do
    # not linger until interpreter exit.  Internal attribute, so guarded.
    try:
        for proc in list(getattr(pool, "_processes", {}).values()):
            proc.terminate()
    except Exception:  # pragma: no cover - cleanup must never raise
        pass


def _run_supervised(
    tasks: Sequence[_Task],
    jobs: int,
    policy: TaskPolicy,
    on_done=None,
) -> Tuple[Dict[str, Dict[str, float]], List[_Task], List[_Task]]:
    """Drive every task through the pool under per-task supervision.

    Returns ``(done, exhausted, leftover)``: completed rates by
    benchmark, tasks that failed every pool attempt (candidates for the
    caller's serial salvage), and tasks never attempted because the pool
    itself could not be (re)created (the caller runs those through the
    ordinary serial path, no attempts charged).
    """
    done: Dict[str, Dict[str, float]] = {}
    exhausted: List[_Task] = []
    queue = deque(tasks)
    inflight: Dict[object, Tuple[_Task, float]] = {}
    pool: Optional[ProcessPoolExecutor] = None
    max_workers = max(1, min(jobs, len(tasks)))

    def _note_failure(task: _Task, exc: BaseException, kind: str) -> None:
        task.attempts += 1
        task.last_error = exc
        task.last_tb = "".join(
            _tb.format_exception(type(exc), exc, exc.__traceback__)
        )
        health.emit(
            "parallel-pool",
            "worker-ok",
            kind,
            reason=f"{task.bench}: {type(exc).__name__}: {exc}",
            severity="degraded",
            attempt=task.attempts,
        )
        if task.attempts > policy.retries:
            exhausted.append(task)
        else:
            if policy.backoff:
                time.sleep(policy.backoff * (2 ** max(0, task.attempts - 1)))
            queue.append(task)

    try:
        while queue or inflight:
            if pool is None:
                try:
                    pool = ProcessPoolExecutor(max_workers=max_workers)
                except (OSError, ValueError, RuntimeError) as exc:
                    # Pool unavailable (restricted platform, spawn
                    # failure): hand everything still outstanding back
                    # for serial execution.
                    health.emit(
                        "parallel-pool",
                        "pool",
                        "serial",
                        reason=f"{type(exc).__name__}: {exc}",
                        severity="degraded",
                        cells=len(queue) + len(inflight),
                    )
                    leftover = [task for task, _ in inflight.values()]
                    leftover.extend(queue)
                    return done, exhausted, leftover
            try:
                while queue:
                    task = queue.popleft()
                    if task.kind == "materialize":
                        future = pool.submit(_worker_materialize, task.recipe)
                    elif task.kind == "detailed":
                        future = pool.submit(
                            _worker_detailed,
                            task.recipe,
                            tuple(task.missing),
                            task.opts,
                        )
                    else:
                        future = pool.submit(
                            _worker_evaluate, task.recipe, tuple(task.missing)
                        )
                    inflight[future] = (task, time.monotonic())
            except (BrokenProcessPool, RuntimeError) as exc:
                queue.appendleft(task)
                for fut, (pending_task, _) in list(inflight.items()):
                    _note_failure(pending_task, exc, "pool-broken")
                inflight.clear()
                _abandon_pool(pool)
                pool = None
                continue

            tick = 0.05 if policy.timeout is not None else None
            ready, _ = wait(
                list(inflight), timeout=tick, return_when=FIRST_COMPLETED
            )
            broken: Optional[BaseException] = None
            for future in ready:
                task, _started = inflight.pop(future)
                try:
                    _, rates = future.result()
                except BrokenProcessPool as exc:
                    broken = exc
                    _note_failure(task, exc, "pool-broken")
                except Exception as exc:
                    _note_failure(task, exc, "worker-raised")
                else:
                    if rates is not None:
                        done[task.bench] = rates
                    if on_done is not None:
                        on_done(task, rates)
            if broken is not None:
                # The pool is poisoned: every other in-flight task is
                # charged one attempt (we cannot attribute the crash)
                # and retried on a fresh pool.
                for future, (task, _) in list(inflight.items()):
                    _note_failure(task, broken, "pool-broken")
                inflight.clear()
                _abandon_pool(pool)
                pool = None
                continue
            if policy.timeout is not None and inflight:
                now = time.monotonic()
                expired = [
                    future
                    for future, (_, started) in inflight.items()
                    if now - started > policy.timeout
                ]
                if expired:
                    for future in expired:
                        task, _ = inflight.pop(future)
                        future.cancel()
                        _note_failure(
                            task,
                            TimeoutError(
                                f"task exceeded REPRO_TASK_TIMEOUT={policy.timeout}s"
                            ),
                            "task-timeout",
                        )
                    # Innocent in-flight neighbours go back untouched:
                    # their pool is being abandoned, not their work.
                    for future, (task, _) in list(inflight.items()):
                        future.cancel()
                        queue.append(task)
                    inflight.clear()
                    _abandon_pool(pool)
                    pool = None
    finally:
        if pool is not None:
            pool.shutdown(wait=True)
    return done, exhausted, []


def _quarantine(task: _Task, exc: BaseException) -> FailedCell:
    cell = FailedCell(
        bench=task.bench,
        specs=tuple(task.missing),
        error_type=type(exc).__name__,
        message=str(exc),
        traceback="".join(_tb.format_exception(type(exc), exc, exc.__traceback__)),
        attempts=task.attempts,
    )
    health.emit(
        "sweep",
        "computed",
        "quarantined",
        reason=f"{cell.bench}: {cell.error_type}: {cell.message}",
        severity="error",
        cells=len(cell.specs),
        attempts=cell.attempts,
    )
    return cell


def materialize_parallel(
    names: Sequence[str],
    length=None,
    seed: int = 0,
    cache_dir=None,
    jobs: Optional[int] = None,
    policy: Optional[TaskPolicy] = None,
) -> None:
    """Materialize cold traces into the store over the worker pool.

    ``length`` is one length for every benchmark, a ``{name: length}``
    mapping, or ``None`` for each profile's default.  Each benchmark
    becomes one supervised materialize task (retries, pool reseeding,
    timeout — the full :class:`TaskPolicy` treatment).  Tasks that
    exhaust every retry are retried once serially in the parent; the
    store's single-flight lock guarantees that overlapping attempts
    generate each trace at most once between them.
    """
    from repro.workloads.profiles import get_profile
    from repro.workloads.suite import trace_store

    jobs = effective_jobs(jobs)
    if policy is None:
        policy = TaskPolicy.from_env()
    store_root = str(trace_store(cache_dir).root) if cache_dir is not None else None

    def _length(name: str) -> int:
        if isinstance(length, Mapping):
            return int(length[name])
        if length is not None:
            return int(length)
        return get_profile(name).default_length

    tasks = [
        _Task(
            name,
            TraceRecipe(
                name=name,
                length=_length(name),
                seed=seed,
                store_root=store_root,
            ),
            [],
            kind="materialize",
        )
        for name in names
    ]
    if not tasks:
        return
    if jobs <= 1:
        for task in tasks:
            _load_recipe(task.recipe)
        return
    _, exhausted, leftover = _run_supervised(tasks, jobs, policy)
    for task in exhausted + leftover:
        # Serial fallback in the parent; failures surface to the caller.
        _load_recipe(task.recipe)


def _is_recipe(value) -> bool:
    return isinstance(value, TraceRecipe)


def _resolve_trace(value) -> BranchTrace:
    """A real trace for serial evaluation (maps recipes via the store)."""
    return _load_recipe(value) if _is_recipe(value) else value


def evaluate_matrix_parallel(
    specs: Sequence[str],
    traces: Mapping[str, BranchTrace],
    cache=None,
    progress=None,
    jobs: Optional[int] = None,
    journal=None,
    policy: Optional[TaskPolicy] = None,
) -> SweepResult:
    """Parallel :func:`repro.sim.runner.evaluate_matrix`.

    Identical ``(spec, trace)`` cells are simulated exactly once: the
    matrix is planned per unique trace key — benchmarks sharing a trace
    (and repeated specs in the grid) collapse onto one set of cells,
    and every completed cell fans back out to each requesting benchmark
    key.  A trace's missing cells then ship as one supervised task per
    spec *family* (the fused planner's grouping, see
    :mod:`repro.sim.fused`) rather than per cell, while cache and
    journal entries stay per-cell — so resume, salvage, and quarantine
    granularity are unchanged.  Cells already recorded in ``cache`` or
    ``journal`` are never recomputed; each completed task is merged
    (matrix + cache + journal) as soon as it finishes, so a crash or
    interrupt loses at most the in-flight tasks.  Tasks that exhaust
    every retry and the final serial attempt are quarantined on
    ``SweepResult.failures`` — their cells are omitted from the matrix
    rather than poisoning it.

    ``traces`` values may be :class:`TraceRecipe` instead of loaded
    arrays: the sweep then fans cold-store materialization out into the
    pool as first-class supervised tasks ahead of the evaluate tasks,
    and workers map the published trace instead of regenerating it.
    """
    from repro.sim.fused import plan_families
    from repro.sim.runner import evaluate_specs, trace_key

    specs = list(specs)
    jobs = effective_jobs(jobs)
    if policy is None:
        policy = TaskPolicy.from_env()

    # Plan per unique trace key: which cells are not already
    # cached/journalled?  ``local`` holds trace keys (not benchmarks)
    # for the in-parent serial path.
    per_bench: Dict[str, Dict[str, float]] = {bench: {} for bench in traces}
    tasks: List[_Task] = []
    materialize: List[_Task] = []
    local: List[str] = []
    tkeys = {
        bench: value.tkey if _is_recipe(value) else trace_key(value)
        for bench, value in traces.items()
    }
    tkey_benches: Dict[str, List[str]] = {}
    tkey_value: Dict[str, object] = {}
    for bench, value in traces.items():
        tkey_benches.setdefault(tkeys[bench], []).append(bench)
        tkey_value.setdefault(tkeys[bench], value)

    for tkey, benches in tkey_benches.items():
        value = tkey_value[tkey]
        known: Dict[str, float] = {}
        missing: List[str] = []
        for spec in dict.fromkeys(specs):
            hit = cache.get(spec, tkey) if cache is not None else None
            if hit is None and journal is not None:
                hit = journal.lookup(tkey, spec)
                if hit is not None and cache is not None:
                    cache.put_many(tkey, {spec: hit})
            if hit is not None:
                known[spec] = hit
            else:
                missing.append(spec)
        for bench in benches:
            per_bench[bench].update(known)
        if not missing:
            continue
        rep = benches[0]
        recipe = value if _is_recipe(value) else recipe_of(value)
        if jobs > 1 and recipe is not None:
            if _is_recipe(value):
                store = _recipe_store(recipe)
                if store is None:
                    from repro.workloads.suite import trace_store

                    store = trace_store()
                if not store.has(recipe.name, recipe.length, recipe.seed):
                    materialize.append(_Task(rep, recipe, [], kind="materialize"))
            for family in plan_families(missing):
                tasks.append(_Task(rep, recipe, list(family.specs)))
        else:
            local.append(tkey)

    failures: List[FailedCell] = []

    def _merge(tkey: str, rates: Dict[str, float]) -> None:
        for bench in tkey_benches[tkey]:
            per_bench[bench].update(rates)
        if cache is not None:
            cache.put_many(tkey, rates)
        if journal is not None:
            journal.record_many(tkey, rates)

    def _on_done(task: _Task, rates) -> None:
        if rates is not None:
            _merge(tkeys[task.bench], rates)

    guard = journal.guard(cache) if journal is not None else _null()
    with guard:
        if tasks or materialize:
            # Materialize tasks go first so cold generation fans out
            # across the pool; an evaluate task reaching a still-cold
            # trace simply joins the store's single-flight wait.
            _, exhausted, leftover = _run_supervised(
                materialize + tasks,
                jobs,
                policy,
                on_done=_on_done,
            )
            local.extend(
                tkeys[task.bench] for task in leftover if task.kind == "evaluate"
            )
            # Final in-parent serial attempt, then quarantine.  A failed
            # materialize task is never quarantined: its bench's
            # evaluate task materializes on demand, so the sweep only
            # lost a head start.
            for task in exhausted:
                if task.kind == "materialize":
                    health.emit(
                        "trace-store",
                        "pool-materialize",
                        "deferred-to-evaluate",
                        reason=f"{task.bench}: {type(task.last_error).__name__}: "
                        f"{task.last_error}",
                        severity="degraded",
                    )
                    continue
                try:
                    rates = evaluate_specs(
                        task.missing, _resolve_trace(traces[task.bench]), cache=None
                    )
                except Exception as exc:
                    task.attempts += 1
                    failures.append(_quarantine(task, exc))
                else:
                    health.emit(
                        "parallel-pool",
                        "pool",
                        "serial-salvage",
                        reason=f"{task.bench} recovered after {task.attempts} failed attempts",
                        severity="degraded",
                        cells=len(task.missing),
                    )
                    _merge(tkeys[task.bench], rates)

        for tkey in dict.fromkeys(local):
            rep = tkey_benches[tkey][0]
            missing = [s for s in dict.fromkeys(specs) if s not in per_bench[rep]]
            if not missing:
                continue
            try:
                rates = evaluate_specs(
                    missing, _resolve_trace(tkey_value[tkey]), cache=None
                )
            except Exception as exc:
                value = tkey_value[tkey]
                task = _Task(
                    rep, value if _is_recipe(value) else recipe_of(value), missing
                )
                task.attempts = 1
                failures.append(_quarantine(task, exc))
            else:
                _merge(tkey, rates)

    if progress is not None:
        for bench in traces:
            for spec in specs:
                if spec in per_bench[bench]:
                    progress(spec, bench, per_bench[bench][spec])

    return SweepResult(
        {
            spec: {
                bench: per_bench[bench][spec]
                for bench in traces
                if spec in per_bench[bench]
            }
            for spec in specs
        },
        failures=failures,
    )


def detailed_matrix(
    specs: Sequence[str],
    traces: Mapping[str, BranchTrace],
    cache=None,
    progress=None,
    jobs: Optional[int] = None,
    journal=None,
    policy: Optional[TaskPolicy] = None,
    threshold: Optional[float] = None,
    include_bias_table: bool = False,
) -> SweepResult:
    """Parallel Section-4 analysis sweep: ``{spec: {bench: summary}}``.

    The detailed counterpart of :func:`evaluate_matrix_parallel`:
    every ``(spec, benchmark)`` cell runs a detailed (attribution)
    simulation and is reduced *in the worker* to the compact summary
    dict of :func:`repro.analysis.summary.summarize_detailed`.  The
    sweep ships one supervised task per ``(trace, spec family)`` — the
    fused planner's grouping, so cells of one scheme share a single
    fused attribution pass (:func:`repro.sim.fused.family_detailed`)
    while staying much finer-grained than whole benchmarks; tasks get
    the full :class:`TaskPolicy` treatment — retries, pool reseeding
    after a killed worker, timeouts, serial salvage, and quarantine
    into ``SweepResult.failures``.

    ``journal`` must be a :class:`repro.sim.journal.PayloadJournal`
    (cell values are summary dicts): journalled cells are never
    recomputed, and because summaries round-trip through JSON exactly,
    a resumed sweep's aggregates are bit-identical to an uninterrupted
    run.  When a rate ``cache`` is passed, each computed summary's
    ``misprediction_rate`` is fed into it as a byproduct, so later rate
    sweeps over the same cells hit for free.

    ``traces`` values may be :class:`TraceRecipe`; cold traces then
    materialize across the pool first, exactly as in
    :func:`evaluate_matrix_parallel`.
    """
    from repro.analysis.bias import BIAS_THRESHOLD
    from repro.sim.runner import trace_key

    if threshold is None:
        threshold = BIAS_THRESHOLD
    opts = {
        "threshold": float(threshold),
        "include_bias_table": bool(include_bias_table),
    }
    specs = list(specs)
    jobs = effective_jobs(jobs)
    if policy is None:
        policy = TaskPolicy.from_env()

    per_bench: Dict[str, Dict[str, dict]] = {}
    tasks: List[_Task] = []
    materialize: List[_Task] = []
    local: List[str] = []
    tkeys = {
        bench: value.tkey if _is_recipe(value) else trace_key(value)
        for bench, value in traces.items()
    }
    for bench, value in traces.items():
        tkey = tkeys[bench]
        known: Dict[str, dict] = {}
        missing: List[str] = []
        for spec in specs:
            hit = journal.lookup(tkey, spec) if journal is not None else None
            if hit is not None:
                known[spec] = hit
            else:
                missing.append(spec)
        per_bench[bench] = known
        if not missing:
            continue
        recipe = value if _is_recipe(value) else recipe_of(value)
        if jobs > 1 and recipe is not None:
            if _is_recipe(value):
                store = _recipe_store(recipe)
                if store is None:
                    from repro.workloads.suite import trace_store

                    store = trace_store()
                if not store.has(recipe.name, recipe.length, recipe.seed):
                    materialize.append(_Task(bench, recipe, [], kind="materialize"))
            # One task per (trace, family): specs of one scheme share a
            # fused detailed pass (precomputed streams, one C arena),
            # while the journal keeps its per-cell resume granularity.
            from repro.sim.fused import plan_families

            for family in plan_families(missing):
                tasks.append(
                    _Task(
                        bench,
                        recipe,
                        list(family.specs),
                        kind="detailed",
                        opts=opts,
                    )
                )
        else:
            local.append(bench)

    failures: List[FailedCell] = []

    def _merge(bench: str, summaries: Dict[str, dict]) -> None:
        per_bench[bench].update(summaries)
        if journal is not None:
            journal.record_many(tkeys[bench], summaries)
        if cache is not None:
            cache.put_many(
                tkeys[bench],
                {
                    spec: summary["misprediction_rate"]
                    for spec, summary in summaries.items()
                },
            )

    def _on_done(task: _Task, summaries) -> None:
        if summaries is not None:
            _merge(task.bench, summaries)

    guard = journal.guard(cache) if journal is not None else _null()
    with guard:
        if tasks or materialize:
            _, exhausted, leftover = _run_supervised(
                materialize + tasks,
                jobs,
                policy,
                on_done=_on_done,
            )
            local.extend(
                task.bench for task in leftover if task.kind == "detailed"
            )
            for task in exhausted:
                if task.kind == "materialize":
                    health.emit(
                        "trace-store",
                        "pool-materialize",
                        "deferred-to-evaluate",
                        reason=f"{task.bench}: {type(task.last_error).__name__}: "
                        f"{task.last_error}",
                        severity="degraded",
                    )
                    continue
                try:
                    summaries = _detailed_cells(
                        task.missing, _resolve_trace(traces[task.bench]), opts
                    )
                except Exception as exc:
                    task.attempts += 1
                    failures.append(_quarantine(task, exc))
                else:
                    health.emit(
                        "parallel-pool",
                        "pool",
                        "serial-salvage",
                        reason=f"{task.bench} recovered after {task.attempts} failed attempts",
                        severity="degraded",
                        cells=len(task.missing),
                    )
                    _merge(task.bench, summaries)

        for bench in dict.fromkeys(local):
            missing = [s for s in specs if s not in per_bench[bench]]
            if not missing:
                continue
            try:
                summaries = _detailed_cells(
                    missing, _resolve_trace(traces[bench]), opts
                )
            except Exception as exc:
                value = traces[bench]
                task = _Task(
                    bench,
                    value if _is_recipe(value) else recipe_of(value),
                    missing,
                    kind="detailed",
                    opts=opts,
                )
                task.attempts = 1
                failures.append(_quarantine(task, exc))
            else:
                _merge(bench, summaries)

    if progress is not None:
        for bench in traces:
            for spec in specs:
                if spec in per_bench[bench]:
                    progress(spec, bench, per_bench[bench][spec])

    return SweepResult(
        {
            spec: {
                bench: per_bench[bench][spec]
                for bench in traces
                if spec in per_bench[bench]
            }
            for spec in specs
        },
        failures=failures,
    )


@contextmanager
def _null():
    yield None
