"""Unit tests for bias-class change counting (Table 4 machinery)."""

import numpy as np
import pytest

from repro.analysis.bias import analyze_substreams
from repro.analysis.interference import ClassChangeCounts, count_class_changes
from repro.core.registry import make_predictor
from repro.sim.engine import run_detailed
from tests.test_analysis_bias import detailed_from


class TestCountClassChanges:
    def test_no_interference_no_changes(self):
        # a single stream on one counter: no role changes
        detailed = detailed_from([1] * 20, [0] * 20, [True] * 20)
        analysis = analyze_substreams(detailed)
        changes = count_class_changes(detailed, analysis)
        assert changes.total == 0

    def test_interleaved_opposite_streams(self):
        # ST stream (pc 1) interleaved with SNT stream (pc 2), same counter:
        # every consecutive pair changes roles
        pcs = [1, 2] * 10
        outcomes = [True, False] * 10
        detailed = detailed_from(pcs, [0] * 20, outcomes)
        analysis = analyze_substreams(detailed)
        changes = count_class_changes(detailed, analysis)
        assert changes.total == 19
        # dominance tie-breaks to ST (equal counts): pc1 dominant
        assert changes.dominant == 10  # dominant run interrupted 10 times
        assert changes.non_dominant == 9

    def test_separated_streams_change_once(self):
        # same two streams, but all of pc1 then all of pc2: one change
        pcs = [1] * 10 + [2] * 10
        outcomes = [True] * 10 + [False] * 10
        detailed = detailed_from(pcs, [0] * 20, outcomes)
        analysis = analyze_substreams(detailed)
        assert count_class_changes(detailed, analysis).total == 1

    def test_changes_counted_per_counter(self):
        # alternating streams on *different* counters: no interference
        pcs = [1, 2] * 10
        counters = [0, 1] * 10
        outcomes = [True, False] * 10
        detailed = detailed_from(pcs, counters, outcomes)
        analysis = analyze_substreams(detailed)
        assert count_class_changes(detailed, analysis).total == 0

    def test_wb_interruptions_attributed_to_wb(self):
        # WB stream interrupted by an ST access
        pcs = [1, 1, 2, 1, 1]
        outcomes = [True, False, True, True, False]
        detailed = detailed_from(pcs, [0] * 5, outcomes)
        analysis = analyze_substreams(detailed)
        changes = count_class_changes(detailed, analysis)
        assert changes.wb >= 1

    def test_short_traces(self):
        detailed = detailed_from([1], [0], [True])
        analysis = analyze_substreams(detailed)
        assert count_class_changes(detailed, analysis).total == 0

    def test_mismatched_analysis_rejected(self):
        d1 = detailed_from([1, 2], [0, 0], [True, False])
        d2 = detailed_from([1], [0], [True])
        analysis = analyze_substreams(d2)
        with pytest.raises(ValueError):
            count_class_changes(d1, analysis)

    def test_as_dict(self):
        c = ClassChangeCounts(dominant=3, non_dominant=2, wb=1)
        assert c.as_dict() == {"dominant": 3, "non_dominant": 2, "wb": 1}
        assert c.total == 6


class TestPaperTable4Property:
    def test_bimode_has_fewer_changes_than_history_indexed(self, aliasing_workload):
        """Table 4: bi-mode's ST and SNT substreams are less
        intermingled than history-indexed gshare's."""
        gshare = run_detailed(make_predictor("gshare:index=8,hist=8"), aliasing_workload)
        bimode = run_detailed(
            make_predictor("bimode:dir=7,hist=7,choice=7"), aliasing_workload
        )
        g_changes = count_class_changes(gshare, analyze_substreams(gshare))
        b_changes = count_class_changes(bimode, analyze_substreams(bimode))
        assert b_changes.total < g_changes.total
