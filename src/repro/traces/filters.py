"""Trace transformations.

Utilities for slicing and reshaping traces before simulation:
warm-up skipping, sampling, per-branch filtering, and the kernel/user
split that the IBS traces motivate (the workload generator tags kernel
activity in ``metadata`` via an address-space convention).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.traces.record import BranchTrace

__all__ = [
    "skip_warmup",
    "take_prefix",
    "filter_branches",
    "split_address_space",
    "interleave",
]


def skip_warmup(trace: BranchTrace, count: int) -> BranchTrace:
    """Drop the first ``count`` dynamic branches (cold-start region)."""
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    return trace[count:]


def take_prefix(trace: BranchTrace, count: int) -> BranchTrace:
    """Keep only the first ``count`` dynamic branches."""
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    return trace[:count]


def filter_branches(
    trace: BranchTrace, keep: Callable[[int], bool], name: str | None = None
) -> BranchTrace:
    """Keep only records whose PC satisfies ``keep`` (order preserved)."""
    mask = np.fromiter(
        (keep(pc) for pc in trace.pcs.tolist()), dtype=bool, count=len(trace)
    )
    return BranchTrace(
        pcs=trace.pcs[mask],
        outcomes=trace.outcomes[mask],
        name=trace.name if name is None else name,
        metadata=dict(trace.metadata),
    )


def split_address_space(trace: BranchTrace, boundary: int):
    """Split into (below, at-or-above ``boundary``) sub-traces.

    The workload generator places kernel regions at or above
    ``metadata["kernel_base"]``, so
    ``split_address_space(t, t.metadata["kernel_base"])`` recovers the
    user/kernel decomposition of an IBS-style trace.
    """
    below = filter_branches(trace, lambda pc: pc < boundary, name=f"{trace.name}.user")
    above = filter_branches(trace, lambda pc: pc >= boundary, name=f"{trace.name}.kernel")
    return below, above


def interleave(a: BranchTrace, b: BranchTrace, period: int, name: str = "") -> BranchTrace:
    """Alternate ``period``-length chunks of two traces (context-switch model).

    Used by failure-injection tests to measure how predictor state
    survives interleaved workloads.
    """
    if period < 1:
        raise ValueError(f"period must be >= 1, got {period}")
    pcs = []
    outcomes = []
    ia = ib = 0
    turn_a = True
    while ia < len(a) or ib < len(b):
        if turn_a and ia < len(a):
            pcs.append(a.pcs[ia : ia + period])
            outcomes.append(a.outcomes[ia : ia + period])
            ia += period
        elif not turn_a and ib < len(b):
            pcs.append(b.pcs[ib : ib + period])
            outcomes.append(b.outcomes[ib : ib + period])
            ib += period
        turn_a = not turn_a
    if not pcs:
        return BranchTrace.empty(name=name)
    return BranchTrace(
        pcs=np.concatenate(pcs), outcomes=np.concatenate(outcomes), name=name
    )
