"""The classic two-level adaptive predictor family [YehPatt91, YehPatt92].

A two-level predictor pairs a *first level* of branch history with a
*second level* of 2-bit-counter PHTs.  Yeh & Patt's taxonomy names the
variants ``{G,P}A{g,s,p}``:

* first letter — history: **G**\\ lobal register or **P**\\ er-address
  table;
* last letter — PHT organization: one **g**\\ lobal PHT, one PHT per
  address **s**\\ et, or one per **p**\\ er-address.

This module implements the family with one generic class using the
concatenation index (``pht_select_bits`` address bits above
``history_bits`` history bits):

=======  ===========================  ==========================
scheme   first level                  ``pht_select_bits``
=======  ===========================  ==========================
GAg      global register              0
GAs      global register              > 0
GAp      global register              enough to avoid set sharing
PAg      per-address history table    0
PAs      per-address history table    > 0
PAp      per-address history table    enough to avoid set sharing
=======  ===========================  ==========================

``GAs`` with the concatenation index is also exactly McFarling's
*gselect*; :class:`GSelectPredictor` is provided as the conventionally
named alias.

The "p" variants index the PHT with as many address bits as requested;
with finite tables they are "s" variants with a large set count, which
is how real hardware approximates them as well.
"""

from __future__ import annotations

import numpy as np

from repro.core.counters import WEAKLY_TAKEN, CounterTable
from repro.core.history import (
    GlobalHistoryRegister,
    PerAddressHistoryTable,
    global_history_stream,
)
from repro.core.indexing import concat_index, concat_index_stream, mask
from repro.core.interfaces import (
    BranchPredictor,
    DetailedSimulation,
    SimulationResult,
)
from repro.traces.record import BranchTrace

__all__ = [
    "TwoLevelPredictor",
    "GAgPredictor",
    "GAsPredictor",
    "GApPredictor",
    "PAgPredictor",
    "PAsPredictor",
    "PApPredictor",
    "GSelectPredictor",
]


class TwoLevelPredictor(BranchPredictor):
    """Generic two-level adaptive predictor.

    Parameters
    ----------
    history_bits:
        First-level history length (per register).
    pht_select_bits:
        Branch-address bits concatenated above the history bits to
        select among ``2**pht_select_bits`` PHTs.
    per_address:
        ``True`` for PAx (a table of per-branch history registers),
        ``False`` for GAx (one global register).
    bht_index_bits:
        log2 of the per-address history-table size; required iff
        ``per_address``.
    """

    scheme = "twolevel"

    def __init__(
        self,
        history_bits: int,
        pht_select_bits: int = 0,
        per_address: bool = False,
        bht_index_bits: int | None = None,
    ):
        if history_bits < 0:
            raise ValueError(f"history_bits must be >= 0, got {history_bits}")
        if pht_select_bits < 0:
            raise ValueError(f"pht_select_bits must be >= 0, got {pht_select_bits}")
        self.history_bits = history_bits
        self.pht_select_bits = pht_select_bits
        self.per_address = per_address
        self.index_bits = history_bits + pht_select_bits
        self.table = CounterTable(self.index_bits, init=WEAKLY_TAKEN)
        if per_address:
            if bht_index_bits is None:
                raise ValueError("per-address schemes require bht_index_bits")
            self.bht = PerAddressHistoryTable(bht_index_bits, history_bits)
            self.ghr = None
        else:
            if bht_index_bits is not None:
                raise ValueError("bht_index_bits only applies to per-address schemes")
            self.bht = None
            self.ghr = GlobalHistoryRegister(history_bits)

    @property
    def name(self) -> str:
        level1 = f"pa(2^{self.bht.index_bits})" if self.per_address else "g"
        return (
            f"twolevel:{level1},hist={self.history_bits},phts=2^{self.pht_select_bits}"
        )

    def size_bits(self) -> int:
        """Second-level counter storage (the paper's cost metric).

        First-level history bits are reported by :meth:`history_bits_cost`
        and excluded here, matching the paper's byte accounting which
        counts 2-bit-counter bytes only.
        """
        return self.table.size_bits()

    def history_bits_cost(self) -> int:
        """First-level storage in bits (GHR width or BHT total)."""
        if self.per_address:
            return self.bht.size_bits()
        return self.history_bits

    def reset(self) -> None:
        self.table.reset()
        if self.per_address:
            self.bht.reset()
        else:
            self.ghr.reset()

    # -- step interface ---------------------------------------------------------

    def _history(self, pc: int) -> int:
        if self.per_address:
            return self.bht.read(pc)
        return self.ghr.value

    def _index(self, pc: int) -> int:
        return concat_index(
            self._history(pc), self.history_bits, pc, self.pht_select_bits
        )

    def predict(self, pc: int) -> bool:
        return self.table.predict(self._index(pc))

    def update(self, pc: int, taken: bool) -> None:
        self.table.update(self._index(pc), taken)
        if self.per_address:
            self.bht.push(pc, taken)
        else:
            self.ghr.push(taken)

    # -- batch interface -----------------------------------------------------------

    def simulate(self, trace: BranchTrace) -> SimulationResult:
        predictions, _ = self._run(trace, want_counters=False)
        return SimulationResult(
            predictor_name=self.name,
            trace_name=trace.name,
            predictions=predictions,
            outcomes=trace.outcomes,
        )

    def simulate_detailed(self, trace: BranchTrace) -> DetailedSimulation:
        predictions, counter_ids = self._run(trace, want_counters=True)
        result = SimulationResult(
            predictor_name=self.name,
            trace_name=trace.name,
            predictions=predictions,
            outcomes=trace.outcomes,
        )
        return DetailedSimulation(
            result=result,
            counter_ids=counter_ids,
            num_counters=self.table.size,
            pcs=trace.pcs,
        )

    def _run(self, trace: BranchTrace, want_counters: bool):
        n = len(trace)
        predictions = np.empty(n, dtype=bool)
        outcomes = trace.outcomes.tolist()
        states = self.table.states

        if not self.per_address:
            histories = global_history_stream(
                trace.outcomes, self.history_bits, initial=self.ghr.value
            )
            idx_arr = concat_index_stream(
                histories, self.history_bits, trace.pcs, self.pht_select_bits
            )
            counter_ids = idx_arr.copy() if want_counters else None
            indices = idx_arr.tolist()
            for i in range(n):
                j = indices[i]
                state = states[j]
                predictions[i] = state >= 2
                if outcomes[i]:
                    if state < 3:
                        states[j] = state + 1
                elif state > 0:
                    states[j] = state - 1
            if n and self.history_bits:
                for taken in outcomes[-self.history_bits:]:
                    self.ghr.push(taken)
            return predictions, counter_ids

        # Per-address history: the registers evolve with the trace but
        # the evolution is still outcome-only, so one sequential pass
        # computes both the history and the counter updates.
        counter_ids = np.empty(n, dtype=np.int64) if want_counters else None
        pcs = trace.pcs.tolist()
        registers = self.bht.registers
        bht_mask = mask(self.bht.index_bits)
        hist_mask = mask(self.history_bits)
        select_mask = mask(self.pht_select_bits)
        hist_bits = self.history_bits
        for i in range(n):
            pc = pcs[i]
            reg_i = pc & bht_mask
            history = registers[reg_i]
            j = ((pc & select_mask) << hist_bits) | history
            state = states[j]
            predictions[i] = state >= 2
            if want_counters:
                counter_ids[i] = j
            taken = outcomes[i]
            if taken:
                if state < 3:
                    states[j] = state + 1
            elif state > 0:
                states[j] = state - 1
            registers[reg_i] = ((history << 1) | (1 if taken else 0)) & hist_mask
        return predictions, counter_ids


class GAgPredictor(TwoLevelPredictor):
    """GAg: global history register, a single PHT indexed by history only."""

    scheme = "gag"

    def __init__(self, history_bits: int):
        super().__init__(history_bits=history_bits, pht_select_bits=0)

    @property
    def name(self) -> str:
        return f"gag:hist={self.history_bits}"


class GAsPredictor(TwoLevelPredictor):
    """GAs: global history register, address-selected PHT sets."""

    scheme = "gas"

    def __init__(self, history_bits: int, pht_select_bits: int):
        if pht_select_bits < 1:
            raise ValueError("GAs needs at least one PHT-select bit (else use GAg)")
        super().__init__(history_bits=history_bits, pht_select_bits=pht_select_bits)

    @property
    def name(self) -> str:
        return f"gas:hist={self.history_bits},phts=2^{self.pht_select_bits}"


class GSelectPredictor(GAsPredictor):
    """McFarling's gselect — structurally GAs with the concatenation index."""

    scheme = "gselect"

    @property
    def name(self) -> str:
        return f"gselect:hist={self.history_bits},addr={self.pht_select_bits}"


class PAgPredictor(TwoLevelPredictor):
    """PAg: per-address history table, one global PHT."""

    scheme = "pag"

    def __init__(self, history_bits: int, bht_index_bits: int):
        super().__init__(
            history_bits=history_bits,
            pht_select_bits=0,
            per_address=True,
            bht_index_bits=bht_index_bits,
        )

    @property
    def name(self) -> str:
        return f"pag:hist={self.history_bits},bht=2^{self.bht.index_bits}"


class PAsPredictor(TwoLevelPredictor):
    """PAs: per-address history table, address-selected PHT sets."""

    scheme = "pas"

    def __init__(self, history_bits: int, pht_select_bits: int, bht_index_bits: int):
        if pht_select_bits < 1:
            raise ValueError("PAs needs at least one PHT-select bit (else use PAg)")
        super().__init__(
            history_bits=history_bits,
            pht_select_bits=pht_select_bits,
            per_address=True,
            bht_index_bits=bht_index_bits,
        )

    @property
    def name(self) -> str:
        return (
            f"pas:hist={self.history_bits},phts=2^{self.pht_select_bits},"
            f"bht=2^{self.bht.index_bits}"
        )


class GApPredictor(GAsPredictor):
    """GAp approximation: one PHT set per address bit pattern.

    True GAp gives every static branch a private PHT; with finite
    hardware it is a GAs with as many select bits as the budget allows,
    which is also how Yeh & Patt's implementation study sizes it.
    """

    scheme = "gap"

    def __init__(self, history_bits: int, address_bits: int = 8):
        super().__init__(history_bits=history_bits, pht_select_bits=address_bits)

    @property
    def name(self) -> str:
        return f"gap:hist={self.history_bits},addr={self.pht_select_bits}"


class PApPredictor(PAsPredictor):
    """PAp approximation: per-address history and per-address PHT sets."""

    scheme = "pap"

    def __init__(self, history_bits: int, address_bits: int, bht_index_bits: int):
        super().__init__(
            history_bits=history_bits,
            pht_select_bits=address_bits,
            bht_index_bits=bht_index_bits,
        )

    @property
    def name(self) -> str:
        return (
            f"pap:hist={self.history_bits},addr={self.pht_select_bits},"
            f"bht=2^{self.bht.index_bits}"
        )
