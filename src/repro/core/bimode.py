"""The bi-mode branch predictor (the paper's contribution, Section 2.2).

Structure (paper Figure 1):

* **Direction predictors** — the second-level table split into two
  banks of 2-bit counters, a *taken bank* and a *not-taken bank*.  Both
  banks are indexed with the gshare hash of the branch PC and the
  global history (``m`` history bits xor-ed into an ``n``-bit index,
  ``m <= n``).
* **Choice predictor** — a 2-bit counter table indexed by the branch
  address only.  Its prediction selects which bank supplies the final
  prediction: choice-taken selects the taken bank.

Update policy (the *partial update* of Section 2.2):

* only the **selected** direction counter is trained with the outcome;
  the counter in the unselected bank is untouched;
* the choice predictor is always trained with the outcome, **except**
  when its choice disagreed with the outcome but the selected direction
  counter still predicted correctly — then it is left alone.

Initialization follows the paper's footnote 2: choice counters start
weakly-taken, the taken bank weakly-taken and the not-taken bank
weakly-not-taken.

The intuition: the choice predictor captures each static branch's bias,
steering its history-indexed substreams into the bank that matches the
bias.  Branches of opposite bias that alias to the same direction-table
index therefore land in *different* banks — the destructive aliasing of
plain gshare becomes neutral or constructive aliasing, while history
correlation within a bias group is still exploited.

Two ablation knobs are provided beyond the paper's design (both default
to the paper's choices): ``full_update`` trains both banks instead of
the selected one, and ``choice_uses_history`` indexes the choice
predictor with the gshare hash instead of the address alone.
"""

from __future__ import annotations

import numpy as np

from repro.core.counters import WEAKLY_NOT_TAKEN, WEAKLY_TAKEN, CounterTable
from repro.core.history import GlobalHistoryRegister, global_history_stream
from repro.core.indexing import gshare_index, gshare_index_stream, mask
from repro.core.interfaces import (
    BranchPredictor,
    DetailedSimulation,
    SimulationResult,
)
from repro.traces.record import BranchTrace

__all__ = ["BiModePredictor"]


class BiModePredictor(BranchPredictor):
    """The bi-mode predictor of Lee, Chen & Mudge (MICRO-30, 1997).

    Parameters
    ----------
    direction_index_bits:
        log2 of the size of *each* direction bank (``n``).
    history_bits:
        Global history length xor-ed into the direction index
        (``m <= n``).  Defaults to ``direction_index_bits`` (all index
        bits hashed with history).
    choice_index_bits:
        log2 of the choice predictor size (``c``).  Defaults to
        ``direction_index_bits``, the configuration of the paper's
        Figure 6 (a 128-counter choice predictor with two 128-counter
        direction banks), making total cost 1.5x a gshare with one
        direction bank's worth of extra counters.
    full_update:
        Ablation: train the counter in *both* banks (the paper trains
        only the selected one).
    choice_uses_history:
        Ablation: index the choice predictor with ``pc ^ history``
        instead of the branch address alone.
    """

    scheme = "bimode"

    def __init__(
        self,
        direction_index_bits: int,
        history_bits: int | None = None,
        choice_index_bits: int | None = None,
        full_update: bool = False,
        choice_uses_history: bool = False,
    ):
        if direction_index_bits < 0:
            raise ValueError(f"direction_index_bits must be >= 0, got {direction_index_bits}")
        if history_bits is None:
            history_bits = direction_index_bits
        if not 0 <= history_bits <= direction_index_bits:
            raise ValueError(
                f"history_bits ({history_bits}) must be in [0, {direction_index_bits}]"
            )
        if choice_index_bits is None:
            choice_index_bits = direction_index_bits
        if choice_index_bits < 0:
            raise ValueError(f"choice_index_bits must be >= 0, got {choice_index_bits}")

        self.direction_index_bits = direction_index_bits
        self.history_bits = history_bits
        self.choice_index_bits = choice_index_bits
        self.full_update = full_update
        self.choice_uses_history = choice_uses_history

        self.not_taken_bank = CounterTable(direction_index_bits, init=WEAKLY_NOT_TAKEN)
        self.taken_bank = CounterTable(direction_index_bits, init=WEAKLY_TAKEN)
        self.choice = CounterTable(choice_index_bits, init=WEAKLY_TAKEN)
        self.ghr = GlobalHistoryRegister(history_bits)

    # -- configuration ----------------------------------------------------------

    @property
    def name(self) -> str:
        parts = [
            f"dir=2x2^{self.direction_index_bits}",
            f"hist={self.history_bits}",
            f"choice=2^{self.choice_index_bits}",
        ]
        if self.full_update:
            parts.append("full_update")
        if self.choice_uses_history:
            parts.append("choice_hist")
        return "bimode:" + ",".join(parts)

    def size_bits(self) -> int:
        return (
            self.not_taken_bank.size_bits()
            + self.taken_bank.size_bits()
            + self.choice.size_bits()
        )

    @property
    def bank_size(self) -> int:
        """Counters per direction bank."""
        return self.taken_bank.size

    def reset(self) -> None:
        self.not_taken_bank.reset()
        self.taken_bank.reset()
        self.choice.reset()
        self.ghr.reset()

    # -- internal helpers ---------------------------------------------------------

    def _choice_index(self, pc: int) -> int:
        if self.choice_uses_history:
            return gshare_index(pc, self.ghr.value, self.choice_index_bits, min(self.history_bits, self.choice_index_bits))
        return pc & mask(self.choice_index_bits)

    def _direction_index(self, pc: int) -> int:
        return gshare_index(pc, self.ghr.value, self.direction_index_bits, self.history_bits)

    # -- step interface -------------------------------------------------------------

    def predict(self, pc: int) -> bool:
        choice_taken = self.choice.predict(self._choice_index(pc))
        bank = self.taken_bank if choice_taken else self.not_taken_bank
        return bank.predict(self._direction_index(pc))

    def _counter_id(self, pc: int) -> int:
        """Counter attribution at the current state (taken bank offset
        by the bank size), for predictors that embed this one."""
        di = self._direction_index(pc)
        if self.choice.predict(self._choice_index(pc)):
            return di + self.bank_size
        return di

    def _num_detail_counters(self) -> int:
        return 2 * self.bank_size

    def update(self, pc: int, taken: bool) -> None:
        choice_index = self._choice_index(pc)
        direction_index = self._direction_index(pc)
        choice_taken = self.choice.predict(choice_index)
        selected = self.taken_bank if choice_taken else self.not_taken_bank
        final_prediction = selected.predict(direction_index)

        # Direction banks: partial update — only the selected counter.
        selected.update(direction_index, taken)
        if self.full_update:
            other = self.not_taken_bank if choice_taken else self.taken_bank
            other.update(direction_index, taken)

        # Choice predictor: always trained, except when it chose wrongly
        # but the selected counter still produced a correct prediction.
        if not (choice_taken != taken and final_prediction == taken):
            self.choice.update(choice_index, taken)

        self.ghr.push(taken)

    # -- batch interface --------------------------------------------------------------

    def simulate(self, trace: BranchTrace) -> SimulationResult:
        predictions, _ = self._run(trace, want_counters=False)
        return SimulationResult(
            predictor_name=self.name,
            trace_name=trace.name,
            predictions=predictions,
            outcomes=trace.outcomes,
        )

    def simulate_detailed(self, trace: BranchTrace) -> DetailedSimulation:
        predictions, counter_ids = self._run(trace, want_counters=True)
        result = SimulationResult(
            predictor_name=self.name,
            trace_name=trace.name,
            predictions=predictions,
            outcomes=trace.outcomes,
        )
        return DetailedSimulation(
            result=result,
            counter_ids=counter_ids,
            num_counters=2 * self.bank_size,
            pcs=trace.pcs,
        )

    def _run(self, trace: BranchTrace, want_counters: bool):
        """Tight simulation loop.

        The global history stream and both index streams depend only on
        trace outcomes, so they are precomputed vectorized; the loop
        handles only the sequential counter state.
        """
        n = len(trace)
        predictions = np.empty(n, dtype=bool)
        counter_ids = np.empty(n, dtype=np.int64) if want_counters else None

        histories = global_history_stream(
            trace.outcomes, self.history_bits, initial=self.ghr.value
        )
        direction_idx = gshare_index_stream(
            trace.pcs, histories, self.direction_index_bits, self.history_bits
        ).tolist()
        if self.choice_uses_history:
            choice_idx = gshare_index_stream(
                trace.pcs,
                histories,
                self.choice_index_bits,
                min(self.history_bits, self.choice_index_bits),
            ).tolist()
        else:
            choice_idx = (trace.pcs & mask(self.choice_index_bits)).tolist()
        outcomes = trace.outcomes.tolist()

        choice_states = self.choice.states
        taken_states = self.taken_bank.states
        not_taken_states = self.not_taken_bank.states
        full_update = self.full_update
        bank_size = self.bank_size
        pred_list = predictions  # numpy bool array supports int indexing assignment

        for i in range(n):
            ci = choice_idx[i]
            di = direction_idx[i]
            taken = outcomes[i]
            choice_state = choice_states[ci]
            choice_taken = choice_state >= 2

            if choice_taken:
                dir_state = taken_states[di]
            else:
                dir_state = not_taken_states[di]
            final = dir_state >= 2
            pred_list[i] = final
            if want_counters:
                counter_ids[i] = di + bank_size if choice_taken else di

            # train the selected direction counter
            if taken:
                if dir_state < 3:
                    dir_state += 1
            elif dir_state > 0:
                dir_state -= 1
            if choice_taken:
                taken_states[di] = dir_state
            else:
                not_taken_states[di] = dir_state

            if full_update:
                if choice_taken:
                    other_state = not_taken_states[di]
                else:
                    other_state = taken_states[di]
                if taken:
                    if other_state < 3:
                        other_state += 1
                elif other_state > 0:
                    other_state -= 1
                if choice_taken:
                    not_taken_states[di] = other_state
                else:
                    taken_states[di] = other_state

            # train the choice predictor (partial-update exception)
            if not (choice_taken != taken and final == taken):
                if taken:
                    if choice_state < 3:
                        choice_states[ci] = choice_state + 1
                elif choice_state > 0:
                    choice_states[ci] = choice_state - 1

        # bring the scalar GHR up to date so step/batch interleaving stays consistent
        if n and self.history_bits:
            for taken in outcomes[-self.history_bits:]:
                self.ghr.push(taken)
        return predictions, counter_ids
