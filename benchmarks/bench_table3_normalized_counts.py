"""Table 3 — the worked normalized-count example.

Reproduces the paper's Table 3 exactly: four static branches (0x001,
0x005, 0x100, 0x150) sharing one prediction counter, with the paper's
dynamic and taken counts, yielding normalized counts 24% (ST), 40%
(SNT), 16% (WB) and 20% (SNT), with SNT the dominant class.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.common import emit_table
from repro.analysis.bias import SNT, analyze_substreams, normalized_counts
from repro.core.interfaces import DetailedSimulation, SimulationResult

#: (address, dynamic count, taken count) — the paper's Table 3 rows.
TABLE3_BRANCHES = [
    (0x001, 12, 11),
    (0x005, 20, 1),
    (0x100, 8, 3),
    (0x150, 10, 1),
]
PAPER_ROWS = {
    0x001: (0.24, "ST"),
    0x005: (0.40, "SNT"),
    0x100: (0.16, "WB"),
    0x150: (0.20, "SNT"),
}


def _build_detailed() -> DetailedSimulation:
    pcs, outcomes = [], []
    for address, total, taken in TABLE3_BRANCHES:
        pcs.extend([address] * total)
        outcomes.extend([True] * taken + [False] * (total - taken))
    outcomes = np.array(outcomes)
    result = SimulationResult("example", "table3", np.zeros(len(pcs), bool), outcomes)
    return DetailedSimulation(
        result=result,
        counter_ids=np.zeros(len(pcs), dtype=np.int64),
        num_counters=1,
        pcs=np.array(pcs),
    )


@pytest.mark.benchmark(group="table3")
def test_table3_normalized_counts(benchmark):
    def compute():
        analysis = analyze_substreams(_build_detailed())
        return analysis, normalized_counts(analysis, 0)

    analysis, counts = benchmark.pedantic(compute, rounds=1, iterations=1)

    rows = []
    for address, total, taken in TABLE3_BRANCHES:
        normalized, cls = counts[address]
        paper_norm, paper_cls = PAPER_ROWS[address]
        rows.append(
            [f"0x{address:03x}", total, taken, cls,
             f"{100 * normalized:.0f}%", f"{100 * paper_norm:.0f}% ({paper_cls})"]
        )
    emit_table(
        "table3_normalized_counts",
        "Table 3 — normalized counts at counter c (measured vs paper)",
        ["branch", "dynamic", "taken", "class", "normalized", "paper"],
        rows,
    )

    for address, (paper_norm, paper_cls) in PAPER_ROWS.items():
        normalized, cls = counts[address]
        assert cls == paper_cls
        assert normalized == pytest.approx(paper_norm)
    assert analysis.counter_dominant[0] == SNT  # "SNT is the dominant class"
