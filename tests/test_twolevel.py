"""Unit tests for the GAx/PAx two-level family and gselect."""

import numpy as np
import pytest

from repro.predictors.twolevel import (
    GAgPredictor,
    GApPredictor,
    GAsPredictor,
    GSelectPredictor,
    PAgPredictor,
    PApPredictor,
    PAsPredictor,
    TwoLevelPredictor,
)
from repro.sim.engine import run, run_steps
from tests.conftest import make_toy_trace


class TestConstruction:
    def test_gag_has_single_pht(self):
        p = GAgPredictor(history_bits=8)
        assert p.pht_select_bits == 0
        assert p.table.size == 256

    def test_gas_table_size(self):
        p = GAsPredictor(history_bits=6, pht_select_bits=3)
        assert p.table.size == 512  # 8 PHTs of 64

    def test_gas_requires_select_bits(self):
        with pytest.raises(ValueError):
            GAsPredictor(history_bits=4, pht_select_bits=0)

    def test_pag_first_level_size(self):
        p = PAgPredictor(history_bits=6, bht_index_bits=5)
        assert len(p.bht) == 32
        assert p.history_bits_cost() == 32 * 6

    def test_gag_history_cost_is_register_width(self):
        assert GAgPredictor(history_bits=12).history_bits_cost() == 12

    def test_per_address_requires_bht(self):
        with pytest.raises(ValueError):
            TwoLevelPredictor(history_bits=4, per_address=True)

    def test_global_rejects_bht(self):
        with pytest.raises(ValueError):
            TwoLevelPredictor(history_bits=4, bht_index_bits=4)

    def test_gap_is_wide_gas(self):
        trace = make_toy_trace(length=600)
        gap = run(GApPredictor(history_bits=3, address_bits=5), trace)
        gas = run(GAsPredictor(history_bits=3, pht_select_bits=5), trace)
        assert np.array_equal(gap.predictions, gas.predictions)

    def test_pap_is_wide_pas(self):
        trace = make_toy_trace(length=600)
        pap = run(PApPredictor(history_bits=3, address_bits=4, bht_index_bits=4), trace)
        pas = run(
            PAsPredictor(history_bits=3, pht_select_bits=4, bht_index_bits=4), trace
        )
        assert np.array_equal(pap.predictions, pas.predictions)

    def test_gap_pap_names(self):
        assert GApPredictor(4).name == "gap:hist=4,addr=8"
        assert "pap:hist=3" in PApPredictor(3, 2, 4).name

    def test_gselect_is_gas(self):
        trace = make_toy_trace(length=800)
        gas = run(GAsPredictor(history_bits=4, pht_select_bits=3), trace)
        gsel = run(GSelectPredictor(history_bits=4, pht_select_bits=3), trace)
        assert np.array_equal(gas.predictions, gsel.predictions)

    def test_names(self):
        assert GAgPredictor(8).name == "gag:hist=8"
        assert "phts=2^3" in GAsPredictor(4, 3).name
        assert "bht=2^5" in PAgPredictor(4, 5).name


class TestGlobalSemantics:
    def test_gag_index_is_history_only(self):
        p = GAgPredictor(history_bits=4)
        # different branches with the same history share the counter
        p.ghr.push(True)  # history = 0b0001
        p.update(100, False)  # counter[1]: weakly-taken -> weakly-not-taken
        p.ghr.reset()
        p.ghr.push(True)
        assert p.predict(999) is False  # same history, any pc: same counter
        p.ghr.reset()
        assert p.predict(999) is True  # history 0: untouched counter

    def test_gas_separates_by_address_set(self):
        p = GAsPredictor(history_bits=2, pht_select_bits=2)
        for _ in range(4):
            p.ghr.reset()
            p.update(0, False)
        p.ghr.reset()
        assert p.predict(0) is False
        assert p.predict(1) is True  # different PHT


class TestPerAddressSemantics:
    def test_pag_captures_short_pattern(self):
        """TTN repeating: per-address history of 2+ disambiguates."""
        p = PAgPredictor(history_bits=3, bht_index_bits=4)
        pattern = [True, True, False] * 40
        misses = sum(p.predict_and_update(7, o) != o for o in pattern)
        assert misses <= 8

    def test_pag_immune_to_other_branches_history(self):
        p = PAgPredictor(history_bits=3, bht_index_bits=4)
        p.update(1, True)
        assert p.bht.read(2) == 0  # branch 2's register untouched

    def test_pas_batch_equals_step(self):
        trace = make_toy_trace(length=1000)
        batch = run(PAsPredictor(4, 3, bht_index_bits=5), trace)
        steps = run_steps(PAsPredictor(4, 3, bht_index_bits=5), trace)
        assert np.array_equal(batch.predictions, steps.predictions)

    def test_pag_batch_equals_step(self):
        trace = make_toy_trace(length=1000)
        batch = run(PAgPredictor(5, bht_index_bits=5), trace)
        steps = run_steps(PAgPredictor(5, bht_index_bits=5), trace)
        assert np.array_equal(batch.predictions, steps.predictions)

    def test_detailed_simulation(self):
        trace = make_toy_trace(length=400)
        detailed = PAsPredictor(3, 2, bht_index_bits=4).simulate_detailed(trace)
        assert detailed.num_counters == 32
        assert detailed.counter_ids.max() < 32


class TestReset:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: GAgPredictor(6),
            lambda: GAsPredictor(4, 2),
            lambda: PAgPredictor(4, 4),
            lambda: PAsPredictor(3, 2, bht_index_bits=4),
        ],
    )
    def test_reset_restores_determinism(self, factory):
        trace = make_toy_trace(length=600)
        p = factory()
        first = run(p, trace).predictions
        second = run(p, trace).predictions  # run() resets
        assert np.array_equal(first, second)
