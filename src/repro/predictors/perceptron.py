"""The perceptron branch predictor (Jiménez & Lin, HPCA 2001).

A lineage comparison point from *after* the paper: where the bi-mode
family fights the aliasing of 2-bit-counter tables, the perceptron
changes the second level entirely — one weight vector per branch (by PC
hash), predicting with the sign of a dot product against the global
history and learning by perceptron updates.  Its strengths and
weaknesses complement bi-mode's: it scales to much longer histories
(cost grows linearly, not exponentially, in history length) but can
only learn linearly separable history functions.

Implementation follows the original recipe:

* weights are ``weight_bits``-wide saturating signed integers;
* prediction: ``y = w0 + sum_i w_i * x_i`` with ``x_i = +1`` for a
  taken history bit and ``-1`` for not-taken; predict taken iff
  ``y >= 0``;
* training (on the resolved outcome ``t = +/-1``): only when the
  prediction was wrong or ``|y| <= theta``, update ``w_i += t * x_i``
  (and the bias weight by ``t``), with the paper's threshold
  ``theta = floor(1.93 * history_bits + 14)``.

Cost accounting counts the weight storage; note it is substantially
more bits per entry than a 2-bit counter, which is exactly the
trade-off the comparison bench exposes.
"""

from __future__ import annotations

import numpy as np

from repro.core.history import GlobalHistoryRegister
from repro.core.indexing import mask
from repro.core.interfaces import (
    BranchPredictor,
    DetailedSimulation,
    SimulationResult,
)
from repro.traces.record import BranchTrace

__all__ = ["PerceptronPredictor"]


class PerceptronPredictor(BranchPredictor):
    """Global-history perceptron predictor.

    Parameters
    ----------
    index_bits:
        log2 of the number of perceptrons (selected by low PC bits).
    history_bits:
        Global history length (= weights per perceptron, minus bias).
    weight_bits:
        Width of each signed weight (8 in the original paper).
    """

    scheme = "perceptron"

    def __init__(self, index_bits: int, history_bits: int = 12, weight_bits: int = 8):
        if index_bits < 0:
            raise ValueError(f"index_bits must be >= 0, got {index_bits}")
        if history_bits < 0:
            raise ValueError(f"history_bits must be >= 0, got {history_bits}")
        if weight_bits < 2:
            raise ValueError(f"weight_bits must be >= 2, got {weight_bits}")
        self.index_bits = index_bits
        self.history_bits = history_bits
        self.weight_bits = weight_bits
        self._mask = mask(index_bits)
        self._w_max = (1 << (weight_bits - 1)) - 1
        self._w_min = -(1 << (weight_bits - 1))
        self.theta = int(1.93 * history_bits + 14)
        # weights[i] = [bias, w_1 .. w_hist]
        self.weights = [
            [0] * (history_bits + 1) for _ in range(1 << index_bits)
        ]
        self.ghr = GlobalHistoryRegister(history_bits)

    @property
    def name(self) -> str:
        return (
            f"perceptron:index={self.index_bits},hist={self.history_bits},"
            f"w={self.weight_bits}"
        )

    def size_bits(self) -> int:
        return (1 << self.index_bits) * (self.history_bits + 1) * self.weight_bits

    def reset(self) -> None:
        self.weights = [
            [0] * (self.history_bits + 1) for _ in range(1 << self.index_bits)
        ]
        self.ghr.reset()

    # -- internals -------------------------------------------------------------

    def _output(self, pc: int):
        """(weight row, dot product) for the branch at ``pc``."""
        row = self.weights[pc & self._mask]
        y = row[0]
        history = self.ghr.value
        for i in range(1, self.history_bits + 1):
            if (history >> (i - 1)) & 1:
                y += row[i]
            else:
                y -= row[i]
        return row, y

    # -- step interface ----------------------------------------------------------

    def predict(self, pc: int) -> bool:
        _, y = self._output(pc)
        return y >= 0

    def update(self, pc: int, taken: bool) -> None:
        row, y = self._output(pc)
        prediction = y >= 0
        if prediction != taken or abs(y) <= self.theta:
            t = 1 if taken else -1
            w_max, w_min = self._w_max, self._w_min
            row[0] = min(w_max, max(w_min, row[0] + t))
            history = self.ghr.value
            for i in range(1, self.history_bits + 1):
                x = 1 if (history >> (i - 1)) & 1 else -1
                row[i] = min(w_max, max(w_min, row[i] + t * x))
        self.ghr.push(taken)

    # -- batch interface -----------------------------------------------------------

    def simulate(self, trace: BranchTrace) -> SimulationResult:
        """Tight loop; the dot product keeps this slower than the
        counter-table predictors (linear in history length)."""
        predictions = self._run(trace)
        return SimulationResult(
            predictor_name=self.name,
            trace_name=trace.name,
            predictions=predictions,
            outcomes=trace.outcomes,
        )

    def simulate_detailed(self, trace: BranchTrace) -> DetailedSimulation:
        """The "prediction counter" of a perceptron access is its weight
        row, selected by address alone: id = ``pc & mask(index_bits)``."""
        predictions = self._run(trace)
        result = SimulationResult(
            predictor_name=self.name,
            trace_name=trace.name,
            predictions=predictions,
            outcomes=trace.outcomes,
        )
        return DetailedSimulation(
            result=result,
            counter_ids=(trace.pcs & self._mask).astype(np.int64),
            num_counters=1 << self.index_bits,
            pcs=trace.pcs,
        )

    def _run(self, trace: BranchTrace) -> np.ndarray:
        n = len(trace)
        predictions = np.empty(n, dtype=bool)
        pcs = trace.pcs.tolist()
        outcomes = trace.outcomes.tolist()
        weights = self.weights
        pc_mask = self._mask
        hist_bits = self.history_bits
        theta = self.theta
        w_max, w_min = self._w_max, self._w_min
        history = self.ghr.value
        hist_mask = self.ghr.mask

        for i in range(n):
            row = weights[pcs[i] & pc_mask]
            y = row[0]
            for j in range(1, hist_bits + 1):
                if (history >> (j - 1)) & 1:
                    y += row[j]
                else:
                    y -= row[j]
            prediction = y >= 0
            predictions[i] = prediction
            taken = outcomes[i]
            if prediction != taken or (y if y >= 0 else -y) <= theta:
                t = 1 if taken else -1
                value = row[0] + t
                row[0] = w_max if value > w_max else (w_min if value < w_min else value)
                for j in range(1, hist_bits + 1):
                    x = t if (history >> (j - 1)) & 1 else -t
                    value = row[j] + x
                    row[j] = (
                        w_max if value > w_max else (w_min if value < w_min else value)
                    )
            history = ((history << 1) | taken) & hist_mask

        self.ghr.value = history
        return predictions
