"""Unit tests for history registers and the vectorized history stream."""

import numpy as np
import pytest

from repro.core.history import (
    GlobalHistoryRegister,
    PerAddressHistoryTable,
    global_history_stream,
)


class TestGlobalHistoryRegister:
    def test_starts_at_zero(self):
        assert GlobalHistoryRegister(8).value == 0

    def test_newest_outcome_in_lsb(self):
        ghr = GlobalHistoryRegister(4)
        ghr.push(True)
        ghr.push(False)
        assert ghr.value == 0b10

    def test_push_sequence(self):
        ghr = GlobalHistoryRegister(4)
        for taken in (True, True, False, True):
            ghr.push(taken)
        assert ghr.value == 0b1101

    def test_truncates_to_width(self):
        ghr = GlobalHistoryRegister(2)
        for _ in range(5):
            ghr.push(True)
        assert ghr.value == 0b11

    def test_zero_width_register_stays_zero(self):
        ghr = GlobalHistoryRegister(0)
        ghr.push(True)
        assert ghr.value == 0

    def test_reset(self):
        ghr = GlobalHistoryRegister(4, value=0b1010)
        ghr.reset()
        assert ghr.value == 0

    def test_initial_value_validated(self):
        with pytest.raises(ValueError):
            GlobalHistoryRegister(2, value=0b100)

    def test_rejects_negative_width(self):
        with pytest.raises(ValueError):
            GlobalHistoryRegister(-1)

    def test_mask(self):
        assert GlobalHistoryRegister(3).mask == 0b111


class TestPerAddressHistoryTable:
    def test_independent_registers(self):
        bht = PerAddressHistoryTable(index_bits=4, history_bits=4)
        bht.push(0, True)
        bht.push(1, False)
        assert bht.read(0) == 1
        assert bht.read(1) == 0

    def test_aliased_branches_share_a_register(self):
        bht = PerAddressHistoryTable(index_bits=2, history_bits=4)
        bht.push(1, True)
        assert bht.read(1 + 4) == 1  # pc 5 aliases pc 1 in a 4-entry table

    def test_history_truncation(self):
        bht = PerAddressHistoryTable(index_bits=1, history_bits=2)
        for _ in range(5):
            bht.push(0, True)
        assert bht.read(0) == 0b11

    def test_reset(self):
        bht = PerAddressHistoryTable(index_bits=2, history_bits=3)
        bht.push(2, True)
        bht.reset()
        assert bht.read(2) == 0

    def test_size_bits(self):
        assert PerAddressHistoryTable(index_bits=4, history_bits=6).size_bits() == 96

    def test_len(self):
        assert len(PerAddressHistoryTable(index_bits=3, history_bits=2)) == 8


class TestGlobalHistoryStream:
    def test_matches_register_semantics(self):
        outcomes = np.array([True, False, True, True, False, True, False])
        for bits in (0, 1, 3, 5, 16):
            stream = global_history_stream(outcomes, bits)
            ghr = GlobalHistoryRegister(bits)
            for t, taken in enumerate(outcomes):
                assert stream[t] == ghr.value, f"t={t}, bits={bits}"
                ghr.push(bool(taken))

    def test_first_entry_is_zero(self):
        stream = global_history_stream(np.array([True, True]), 8)
        assert stream[0] == 0

    def test_empty_trace(self):
        assert len(global_history_stream(np.array([], dtype=bool), 8)) == 0

    def test_zero_bits(self):
        stream = global_history_stream(np.array([True, False, True]), 0)
        assert np.array_equal(stream, np.zeros(3, dtype=np.int64))

    def test_accepts_int_outcomes(self):
        stream = global_history_stream(np.array([1, 0, 1, 1]), 2)
        assert stream.tolist() == [0, 1, 2, 1]

    def test_rejects_negative_bits(self):
        with pytest.raises(ValueError):
            global_history_stream(np.array([True]), -1)

    def test_values_fit_in_width(self):
        rng = np.random.default_rng(0)
        outcomes = rng.random(500) < 0.5
        stream = global_history_stream(outcomes, 6)
        assert stream.max() < 64
        assert stream.min() >= 0
