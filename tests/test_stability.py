"""Unit tests for the seed-stability analysis."""

import pytest

from repro.analysis.stability import SeedSpread, compare_across_seeds, seed_spread


class TestSeedSpread:
    def test_statistics(self):
        spread = SeedSpread(spec="s", benchmark="b", rates=(0.1, 0.2, 0.3))
        assert spread.mean == pytest.approx(0.2)
        assert spread.min == 0.1
        assert spread.max == 0.3
        assert spread.std == pytest.approx(0.1)

    def test_single_seed_zero_std(self):
        spread = SeedSpread(spec="s", benchmark="b", rates=(0.1,))
        assert spread.std == 0.0

    def test_str(self):
        text = str(SeedSpread(spec="s", benchmark="b", rates=(0.1, 0.1)))
        assert "s on b" in text and "n=2" in text

    def test_measured_spread_is_modest(self):
        """Regenerating the workload must not swing results wildly —
        the basis for trusting the figure benches' single-seed runs."""
        spread = seed_spread(
            "gshare:index=10,hist=10", "xlisp", seeds=(0, 1, 2), length=40_000
        )
        assert len(spread.rates) == 3
        assert all(0.0 < r < 0.5 for r in spread.rates)
        assert spread.std < 0.35 * spread.mean

    def test_requires_seeds(self):
        with pytest.raises(ValueError):
            seed_spread("bimodal:index=8", "xlisp", seeds=())


class TestCompareAcrossSeeds:
    def test_bimode_beats_gshare_on_every_seed(self):
        """The headline result must be seed-robust, not a lucky draw."""
        comparison = compare_across_seeds(
            "gshare:index=11,hist=11",
            "bimode:dir=10,hist=10,choice=10",
            "gcc",
            seeds=(0, 1, 2),
            length=50_000,
        )
        assert comparison["wins_b"] == 3.0
        assert comparison["mean_diff"] > 0  # spec_a (gshare) worse

    def test_identical_specs_tie(self):
        comparison = compare_across_seeds(
            "bimodal:index=8", "bimodal:index=8", "xlisp", seeds=(0, 1), length=20_000
        )
        assert comparison["mean_diff"] == 0.0
        assert comparison["wins_b"] == 0.0

    def test_requires_seeds(self):
        with pytest.raises(ValueError):
            compare_across_seeds("a", "b", "xlisp", seeds=())
