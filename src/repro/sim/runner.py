"""Multi-run orchestration with a persistent result cache.

The figure benchmarks evaluate hundreds of (predictor spec, benchmark)
pairs; a pair's misprediction rate is deterministic, so results are
memoized on disk as JSON keyed by ``(spec, trace key)``.  The cache
lives beside the trace cache (``repro.workloads.suite.default_cache_dir``)
and survives across processes, which makes re-running a figure bench
after the first time nearly free.

Plain gshare specs are evaluated through the batched lane kernel
(:mod:`repro.sim.batch`) and bi-mode specs through the lane-stepped
bi-mode kernel (:mod:`repro.sim.batch_bimode`); :func:`evaluate_specs`
groups every such configuration aimed at one trace into a single
batched call, and :func:`evaluate_matrix` additionally batches the
whole bi-mode portion of a sweep matrix — every uncached (spec, bench)
bi-mode cell — into one cross-trace kernel invocation, which is where
the stepped strategy gets its width.  All other schemes go through the
scalar engine.  Every path produces bit-identical rates (asserted by
the equivalence suites and the differential oracle in
:mod:`repro.verify`), so cache entries are interchangeable between
them.
"""

from __future__ import annotations

import hashlib
import json
import os
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set

from repro.core.registry import make_predictor
from repro.sim.batch import gshare_lane_rates, lane_for_spec
from repro.sim.batch_bimode import (
    bimode_lane_for_spec,
    bimode_lane_rates,
    bimode_matrix_rates,
)
from repro.sim.engine import run
from repro.traces.record import BranchTrace
from repro.workloads.suite import default_cache_dir

__all__ = [
    "trace_key",
    "ResultCache",
    "evaluate",
    "evaluate_specs",
    "evaluate_matrix",
]


def trace_key(trace: BranchTrace) -> str:
    """Stable identity of a trace for cache keying.

    Generated workload traces carry their ``profile_seed`` in metadata,
    which (with name and length) pins down their content.  Traces
    without one — hand-built arrays, recorded captures — fall back to a
    short content hash so two different anonymous traces of equal
    length can never collide on a cache cell.
    """
    seed = trace.metadata.get("profile_seed")
    if seed is None:
        digest = hashlib.sha1()
        digest.update(trace.pcs.tobytes())
        digest.update(trace.outcomes.tobytes())
        suffix = f"h{digest.hexdigest()[:12]}"
    else:
        suffix = f"s{seed}"
    return f"{trace.name or 'anon'}-n{len(trace)}-{suffix}"


class ResultCache:
    """Disk-backed ``(spec, trace) -> misprediction rate`` memo.

    One JSON file per trace key keeps files small and avoids rewrite
    contention across benchmarks.  Writes are atomic (temp file +
    ``os.replace``), so a reader — or a concurrent sweep worker's
    merge — can never observe a half-written table.  Batch producers
    should use :meth:`put_many` or the :meth:`deferred` context manager:
    ``put`` alone rewrites the trace's file on every cell, which is
    O(cells²) bytes over a sweep.
    """

    def __init__(self, root: Optional[Path] = None):
        self.root = (Path(root) if root is not None else default_cache_dir()) / "results"
        self._loaded: Dict[str, Dict[str, float]] = {}
        self._dirty: Set[str] = set()
        self._defer_writes = False

    def _path(self, tkey: str) -> Path:
        return self.root / f"{tkey}.json"

    def _table(self, tkey: str) -> Dict[str, float]:
        if tkey not in self._loaded:
            path = self._path(tkey)
            if path.exists():
                try:
                    self._loaded[tkey] = json.loads(path.read_text())
                except (json.JSONDecodeError, OSError):
                    self._loaded[tkey] = {}
            else:
                self._loaded[tkey] = {}
        return self._loaded[tkey]

    def get(self, spec: str, tkey: str) -> Optional[float]:
        return self._table(tkey).get(spec)

    def put(self, spec: str, tkey: str, rate: float) -> None:
        self.put_many(tkey, {spec: rate})

    def put_many(self, tkey: str, rates: Mapping[str, float]) -> None:
        """Record many cells of one trace, with a single file write."""
        if not rates:
            return
        self._table(tkey).update(rates)
        self._dirty.add(tkey)
        if not self._defer_writes:
            self.flush()

    def flush(self) -> None:
        """Write every dirty per-trace table atomically."""
        for tkey in sorted(self._dirty):
            path = self._path(tkey)
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_name(f"{path.name}.tmp{os.getpid()}")
            tmp.write_text(json.dumps(self._loaded[tkey], indent=0, sort_keys=True))
            os.replace(tmp, path)
        self._dirty.clear()

    @contextmanager
    def deferred(self):
        """Batch all writes inside the block into one flush per trace.

        Re-entrant: the outermost block flushes.
        """
        outermost = not self._defer_writes
        self._defer_writes = True
        try:
            yield self
        finally:
            if outermost:
                self._defer_writes = False
                self.flush()


def evaluate_specs(
    specs: Sequence[str],
    trace: BranchTrace,
    cache: Optional[ResultCache] = None,
    precomputed: Optional[Mapping[str, float]] = None,
) -> Dict[str, float]:
    """Misprediction rate of every spec on one trace, batched.

    Plain gshare configurations are simulated together through the
    batched lane kernel (one counting-sorted pass per lane, shared
    history streams) and bi-mode configurations through the batched
    bi-mode kernel; other schemes fall back to the scalar engine.
    ``precomputed`` rates (from a matrix-level prepass) are honoured
    like cache hits.  Results are memoized through ``cache`` with one
    write per trace.
    """
    tkey = trace_key(trace)
    rates: Dict[str, float] = {}
    missing: List[str] = []
    for spec in specs:
        if spec in rates or spec in missing:
            continue
        hit = precomputed.get(spec) if precomputed is not None else None
        if hit is None and cache is not None:
            hit = cache.get(spec, tkey)
        if hit is not None:
            rates[spec] = hit
        else:
            missing.append(spec)

    computed: Dict[str, float] = {}
    gshare_batch = []
    bimode_batch = []
    scalar: List[str] = []
    for spec in missing:
        glane = lane_for_spec(spec)
        if glane is not None:
            gshare_batch.append((spec, glane))
            continue
        blane = bimode_lane_for_spec(spec)
        if blane is not None:
            bimode_batch.append((spec, blane))
            continue
        scalar.append(spec)
    if gshare_batch:
        for (spec, _), rate in zip(
            gshare_batch,
            gshare_lane_rates([lane for _, lane in gshare_batch], trace),
        ):
            computed[spec] = rate
    if bimode_batch:
        for (spec, _), rate in zip(
            bimode_batch,
            bimode_lane_rates([lane for _, lane in bimode_batch], trace),
        ):
            computed[spec] = rate
    for spec in scalar:
        computed[spec] = run(make_predictor(spec), trace).misprediction_rate

    if cache is not None and computed:
        cache.put_many(tkey, computed)
    rates.update(computed)
    return {spec: rates[spec] for spec in specs}


def evaluate(
    spec: str,
    trace: BranchTrace,
    cache: Optional[ResultCache] = None,
) -> float:
    """Misprediction rate of the predictor ``spec`` on ``trace``.

    Builds the predictor from its spec string, simulates (through the
    batch kernel when the spec is a plain gshare), and memoizes through
    ``cache`` when given.
    """
    return evaluate_specs([spec], trace, cache=cache)[spec]


def evaluate_matrix(
    specs: Iterable[str],
    traces: Mapping[str, BranchTrace],
    cache: Optional[ResultCache] = None,
    progress=None,
    jobs: Optional[int] = None,
) -> Dict[str, Dict[str, float]]:
    """Rates for every (spec, benchmark) pair: ``result[spec][bench]``.

    ``progress`` (optional) is called with ``(spec, bench, rate)`` after
    each cell, for CLI feedback on long sweeps.  ``jobs`` selects the
    process-parallel executor (default: the ``$REPRO_JOBS`` knob, serial
    when unset); results are identical either way.
    """
    specs = list(specs)
    from repro.sim.parallel import effective_jobs, evaluate_matrix_parallel

    if effective_jobs(jobs) > 1:
        return evaluate_matrix_parallel(
            specs, traces, cache=cache, progress=progress, jobs=jobs
        )

    per_bench: Dict[str, Dict[str, float]] = {}
    maybe_deferred = cache.deferred() if cache is not None else _null_context()
    with maybe_deferred:
        pre = _bimode_matrix_prepass(specs, traces, cache)
        for bench, trace in traces.items():
            per_bench[bench] = evaluate_specs(
                specs, trace, cache=cache, precomputed=pre.get(bench)
            )
            if progress is not None:
                for spec in specs:
                    progress(spec, bench, per_bench[bench][spec])
    return {spec: {bench: per_bench[bench][spec] for bench in traces} for spec in specs}


def _bimode_matrix_prepass(
    specs: Sequence[str],
    traces: Mapping[str, BranchTrace],
    cache: Optional[ResultCache],
) -> Dict[str, Dict[str, float]]:
    """Batch every uncached bi-mode cell of a matrix into one kernel call.

    The lane-stepped bi-mode strategy gets faster per cell the more
    (configuration, benchmark) pairs it advances at once, so collecting
    the cells here — across *all* traces — rather than per-trace inside
    ``evaluate_specs`` is what gives sweeps their batch width.  Returns
    ``{bench: {spec: rate}}``, already written through ``cache``.
    """
    cells = []
    where = []
    for bench, trace in traces.items():
        tkey = trace_key(trace)
        for spec in dict.fromkeys(specs):
            lane = bimode_lane_for_spec(spec)
            if lane is None:
                continue
            if cache is not None and cache.get(spec, tkey) is not None:
                continue
            cells.append((lane, trace))
            where.append((bench, spec, tkey))
    if not cells:
        return {}
    pre: Dict[str, Dict[str, float]] = {}
    by_tkey: Dict[str, Dict[str, float]] = {}
    for (bench, spec, tkey), rate in zip(where, bimode_matrix_rates(cells)):
        pre.setdefault(bench, {})[spec] = rate
        by_tkey.setdefault(tkey, {})[spec] = rate
    if cache is not None:
        for tkey, found in by_tkey.items():
            cache.put_many(tkey, found)
    return pre


@contextmanager
def _null_context():
    yield None
