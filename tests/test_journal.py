"""Unit tests for the append-only sweep journal."""

import json
import os
import signal

import pytest

from repro.sim.journal import SweepJournal
from repro.sim.runner import ResultCache


@pytest.fixture()
def journal(tmp_path):
    return SweepJournal(tmp_path / "sweep.jsonl")


class TestRecordAndLookup:
    def test_round_trip(self, journal):
        assert journal.record("t1", "spec-a", 0.125) == 1
        assert journal.lookup("t1", "spec-a") == 0.125
        assert journal.lookup("t1", "spec-b") is None
        assert journal.lookup("t2", "spec-a") is None

    def test_float_repr_round_trips_exactly(self, journal):
        rate = 1 / 3
        journal.record("t1", "spec", rate)
        fresh = SweepJournal(journal.path)
        assert fresh.lookup("t1", "spec") == rate  # bit-identical

    def test_record_many_skips_already_journalled(self, journal):
        journal.record_many("t1", {"a": 0.1, "b": 0.2})
        appended = journal.record_many("t1", {"a": 0.9, "b": 0.9, "c": 0.3})
        assert appended == 1  # only "c" was fresh
        # first write wins: the journal is append-only, not last-write-wins
        assert journal.lookup("t1", "a") == 0.1
        assert journal.lookup("t1", "c") == 0.3

    def test_record_many_empty_writes_nothing(self, journal):
        assert journal.record_many("t1", {}) == 0
        assert not journal.path.exists()

    def test_completed_collects_one_trace(self, journal):
        journal.record_many("t1", {"a": 0.1, "b": 0.2})
        journal.record_many("t2", {"a": 0.5})
        assert journal.completed("t1") == {"a": 0.1, "b": 0.2}
        assert journal.completed("t2") == {"a": 0.5}
        assert journal.completed("t3") == {}

    def test_len_counts_cells(self, journal):
        assert len(journal) == 0
        journal.record_many("t1", {"a": 0.1, "b": 0.2})
        journal.record("t2", "a", 0.3)
        assert len(SweepJournal(journal.path)) == 3

    def test_one_line_per_cell_jsonl(self, journal):
        journal.record_many("t1", {"b": 0.2, "a": 0.1})
        lines = journal.path.read_text().splitlines()
        assert len(lines) == 2
        entries = [json.loads(line) for line in lines]
        assert entries[0] == {"tkey": "t1", "spec": "a", "rate": 0.1}
        assert entries[1] == {"tkey": "t1", "spec": "b", "rate": 0.2}


class TestResilience:
    def test_missing_file_is_empty(self, journal):
        assert len(journal) == 0
        assert journal.lookup("t", "s") is None

    def test_torn_final_line_skipped(self, journal):
        journal.record_many("t1", {"a": 0.1, "b": 0.2})
        with open(journal.path, "a") as fh:
            fh.write('{"tkey": "t1", "spec": "c", "ra')  # hard-kill torn write
        fresh = SweepJournal(journal.path)
        assert fresh.completed("t1") == {"a": 0.1, "b": 0.2}
        assert fresh.corrupt_lines == 1

    @pytest.mark.parametrize(
        "line",
        [
            "not json at all",
            '{"tkey": "t", "spec": "s"}',  # missing rate
            '{"tkey": "t", "spec": "s", "rate": 1.5}',  # out of range
            '{"tkey": "t", "spec": "s", "rate": "fast"}',  # not a number
            '{"tkey": "t", "spec": "s", "rate": true}',  # bool is not a rate
            '{"tkey": 3, "spec": "s", "rate": 0.5}',  # non-string key
            '[0.5]',  # not an object
        ],
    )
    def test_garbage_lines_ignored(self, journal, line):
        journal.record("t1", "good", 0.25)
        with open(journal.path, "a") as fh:
            fh.write(line + "\n")
        fresh = SweepJournal(journal.path)
        assert fresh.completed("t1") == {"good": 0.25}
        assert fresh.corrupt_lines == 1
        assert len(fresh) == 1

    def test_record_after_corrupt_line_still_appends(self, journal):
        journal.record("t1", "a", 0.1)
        with open(journal.path, "a") as fh:
            fh.write("garbage\n")
        fresh = SweepJournal(journal.path)
        fresh.record("t1", "b", 0.2)
        assert SweepJournal(journal.path).completed("t1") == {"a": 0.1, "b": 0.2}

    def test_discard(self, journal):
        journal.record("t1", "a", 0.1)
        journal.discard()
        assert not journal.path.exists()
        assert len(journal) == 0
        journal.discard()  # idempotent on a missing file


class TestForName:
    def test_sanitizes_name(self, tmp_path):
        journal = SweepJournal.for_name("fig2 cint95/scale 0.1!", root=tmp_path)
        assert journal.path.parent == tmp_path
        assert journal.path.name == "fig2_cint95_scale_0.1_.jsonl"

    def test_empty_name_falls_back(self, tmp_path):
        assert SweepJournal.for_name("  ", root=tmp_path).path.name.startswith("sweep")

    def test_default_root_under_cache_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        journal = SweepJournal.for_name("fig3")
        assert journal.path == tmp_path / "journal" / "fig3.jsonl"

    def test_resumed_cells_reported(self, tmp_path):
        journal = SweepJournal.for_name("x", root=tmp_path)
        journal.record_many("t", {"a": 0.1, "b": 0.2})
        fresh = SweepJournal.for_name("x", root=tmp_path)
        len(fresh)  # force the load
        assert fresh.resumed_cells == 2


class TestGuard:
    def test_sigint_flushes_cache_then_interrupts(self, journal, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        # Defer writes *without* the context manager, so the signal
        # handler installed by guard() is the only thing that can flush.
        cache._defer_writes = True
        with pytest.raises(KeyboardInterrupt):
            with journal.guard(cache):
                cache.put("spec", "tkey", 0.5)
                assert ResultCache(tmp_path / "cache").get("spec", "tkey") is None
                os.kill(os.getpid(), signal.SIGINT)
        # the handler flushed the deferred cache before interrupting
        assert ResultCache(tmp_path / "cache").get("spec", "tkey") == 0.5

    def test_sigterm_raises_systemexit(self, journal):
        with pytest.raises(SystemExit) as excinfo:
            with journal.guard():
                os.kill(os.getpid(), signal.SIGTERM)
        assert excinfo.value.code == 128 + signal.SIGTERM

    def test_handlers_restored(self, journal):
        before_int = signal.getsignal(signal.SIGINT)
        before_term = signal.getsignal(signal.SIGTERM)
        with journal.guard():
            assert signal.getsignal(signal.SIGINT) is not before_int
        assert signal.getsignal(signal.SIGINT) is before_int
        assert signal.getsignal(signal.SIGTERM) is before_term

    def test_noop_outside_main_thread(self, journal):
        import threading

        outcome = {}

        def _run():
            try:
                with journal.guard():
                    outcome["ok"] = True
            except Exception as exc:  # pragma: no cover - the failure mode
                outcome["error"] = exc

        thread = threading.Thread(target=_run)
        thread.start()
        thread.join()
        assert outcome == {"ok": True}
