"""Unit tests for prediction metrics."""

import numpy as np
import pytest

from repro.core.interfaces import SimulationResult
from repro.sim.metrics import (
    branch_penalty_cpi,
    misprediction_rate,
    per_branch_rates,
    steady_state_rate,
    wilson_interval,
)


def result(predictions, outcomes):
    return SimulationResult(
        predictor_name="p",
        trace_name="t",
        predictions=np.array(predictions, dtype=bool),
        outcomes=np.array(outcomes, dtype=bool),
    )


class TestSimulationResult:
    def test_misprediction_rate(self):
        r = result([True, True, False, False], [True, False, False, True])
        assert r.misprediction_rate == 0.5
        assert r.num_mispredictions == 2
        assert r.accuracy == 0.5

    def test_empty(self):
        r = result([], [])
        assert r.misprediction_rate == 0.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            result([True], [True, False])

    def test_misprediction_rate_helper(self):
        r = result([True], [False])
        assert misprediction_rate(r) == 1.0


class TestSteadyState:
    def test_excludes_warmup(self):
        # all misses in the first 10%, none after
        predictions = [False] * 10 + [True] * 90
        outcomes = [True] * 100
        r = result(predictions, outcomes)
        assert r.misprediction_rate == pytest.approx(0.1)
        assert steady_state_rate(r, skip_fraction=0.1) == 0.0

    def test_bad_fraction(self):
        with pytest.raises(ValueError):
            steady_state_rate(result([True], [True]), skip_fraction=1.0)

    def test_empty_tail(self):
        assert steady_state_rate(result([], []), skip_fraction=0.5) == 0.0


class TestPerBranchRates:
    def test_rates(self):
        r = result([True, True, False, True], [True, False, False, False])
        rates = per_branch_rates(r, np.array([4, 4, 8, 8]))
        assert rates[4] == 0.5
        assert rates[8] == 0.5

    def test_perfect_branch(self):
        r = result([True, True], [True, True])
        assert per_branch_rates(r, np.array([4, 4]))[4] == 0.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            per_branch_rates(result([True], [True]), np.array([1, 2]))


class TestWilsonInterval:
    def test_contains_point_estimate(self):
        lo, hi = wilson_interval(10, 100)
        assert lo < 0.1 < hi

    def test_zero_total(self):
        assert wilson_interval(0, 0) == (0.0, 0.0)

    def test_narrower_with_more_data(self):
        lo1, hi1 = wilson_interval(10, 100)
        lo2, hi2 = wilson_interval(100, 1000)
        assert (hi2 - lo2) < (hi1 - lo1)

    def test_bounds_clamped(self):
        lo, hi = wilson_interval(0, 5)
        assert lo == 0.0
        lo, hi = wilson_interval(5, 5)
        assert hi == 1.0

    def test_invalid_counts(self):
        with pytest.raises(ValueError):
            wilson_interval(5, 4)


class TestBranchPenaltyCpi:
    def test_scales_with_rate(self):
        r10 = result([True] * 90 + [False] * 10, [True] * 100)
        cpi = branch_penalty_cpi(r10, branch_fraction=0.2, misprediction_penalty=7)
        assert cpi == pytest.approx(0.1 * 0.2 * 7)

    def test_validation(self):
        r = result([True], [True])
        with pytest.raises(ValueError):
            branch_penalty_cpi(r, branch_fraction=0.0)
        with pytest.raises(ValueError):
            branch_penalty_cpi(r, misprediction_penalty=-1)
