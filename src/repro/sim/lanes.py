"""Lane kernels for the registry-ported predictor schemes.

The scheme-agnostic kernel registry (:mod:`repro.sim.kernels`) maps
every registered predictor spec onto the fastest bit-identical
execution strategy available.  This module supplies the per-scheme
*kernels* for the first ported wave — everything beyond the original
gshare/bi-mode fast paths of :mod:`repro.sim.batch` /
:mod:`repro.sim.batch_bimode`:

* **counter-major schemes** — bimodal (any counter width), the whole
  two-level family (GAg/GAs/GAp/gselect and PAg/PAs/PAp), agree,
  gskew with the *total* update policy, and the bimodal+gshare
  tournament.  None of these feed predictions back into their own index
  or training streams, so every per-access counter id and training
  delta is precomputable from ``(pcs, outcomes)`` alone and the
  remaining sequential work is exactly one saturating-counter automaton
  per table.  That automaton runs through the shared compiled loop
  (:func:`repro.sim._cstep.counter_lane`) or the counter-major
  segmented scan (:func:`repro.sim.batch.counter_scan`) — the same
  machinery, and the same bit-exactness argument, as the gshare kernel.
* **sequential schemes** — gskew's *enhanced* (e-gskew) policy,
  tri-mode, and YAGS.  Their partial updates feed predictor state back
  into which table trains (or which bank an access lands in), which
  defeats counter-major decomposition exactly like bi-mode's choice
  feedback; each gets a dedicated compiled per-pair loop in
  :mod:`repro.sim._cstep` over precomputed index streams.

Scheme-specific notes
---------------------
**Per-address histories (PAx).**  The branch-history table evolves from
outcomes only, so each register's contents are a pure function of the
earlier occurrences of the PCs mapping to it.  The kernel groups
accesses by BHT slot with the stable counting sort and assembles each
access's history word from the previous ``hist_bits`` outcomes *within
its group* — fully vectorized, one pass per history bit.

**Agree.**  The biasing bit of a slot is invalid until the slot's first
dynamic occurrence *updates*, and that first update sets it to the
branch outcome.  At prediction time access ``i`` therefore sees bias
``False`` if no earlier access touched its slot (including at the first
occurrence itself), else the outcome of the slot's first occurrence.
The counters train toward ``bias == outcome`` — at a first occurrence
that is ``True`` by construction, matching ``AgreePredictor.update``
which sets the bias before computing agreement.

**Tournament.**  Both components are feedback-free (bimodal + gshare),
so their prediction streams come from two counter scans; the meta table
then trains with deltas in ``{-1, 0, +1}`` (0 when the components
agree), which the generalized scan and the compiled loop both support.

Every kernel is asserted bit-identical to its scalar predictor and the
dict-based oracle by the registry-driven verification suite
(``tests/test_kernels.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.counters import WEAKLY_NOT_TAKEN, WEAKLY_TAKEN
from repro.core.grouping import stable_group_order
from repro.core.history import global_history_stream
from repro.core.indexing import concat_index_stream, gshare_index_stream, mask
from repro.core.registry import parse_spec
from repro.sim.batch import counter_scan
from repro.traces.record import BranchTrace

__all__ = [
    "BimodalLane",
    "TwoLevelLane",
    "AgreeLane",
    "GSkewLane",
    "TournamentLane",
    "TriModeLane",
    "YagsLane",
    "bimodal_lane_for_spec",
    "twolevel_lane_for_spec",
    "agree_lane_for_spec",
    "gskew_lane_for_spec",
    "tournament_lane_for_spec",
    "trimode_lane_for_spec",
    "yags_lane_for_spec",
    "bimodal_predictions",
    "twolevel_predictions",
    "agree_predictions",
    "gskew_predictions",
    "tournament_predictions",
    "trimode_predictions",
    "yags_predictions",
    "per_address_histories",
]

#: CounterTable's geometry ceiling; larger specs are rejected by the
#: scalar constructors, so the lane parsers reject them too (the spec
#: then falls to the scalar family and raises the original error).
_MAX_TABLE_BITS = 24


# -- lane descriptions ------------------------------------------------------------


@dataclass(frozen=True)
class BimodalLane:
    """One bimodal configuration (any counter width)."""

    index_bits: int
    counter_bits: int = 2

    @property
    def threshold(self) -> int:
        return 1 << (self.counter_bits - 1)

    @property
    def max_state(self) -> int:
        return (1 << self.counter_bits) - 1


@dataclass(frozen=True)
class TwoLevelLane:
    """One two-level configuration; ``bht_bits is None`` for GAx."""

    scheme: str
    hist_bits: int
    select_bits: int
    bht_bits: Optional[int] = None


@dataclass(frozen=True)
class AgreeLane:
    index_bits: int
    hist_bits: int
    bias_bits: int


@dataclass(frozen=True)
class GSkewLane:
    bank_bits: int
    hist_bits: int
    enhanced: bool = True


@dataclass(frozen=True)
class TournamentLane:
    """The spec-form pairing: bimodal(index) + gshare(index, index)."""

    index_bits: int
    meta_bits: int


@dataclass(frozen=True)
class TriModeLane:
    dir_bits: int
    hist_bits: int
    choice_bits: int


@dataclass(frozen=True)
class YagsLane:
    choice_bits: int
    cache_bits: int
    hist_bits: int
    tag_bits: int


# -- spec parsing -----------------------------------------------------------------


def _parse_int_spec(
    spec: str, scheme: str, allowed: frozenset, required: frozenset
) -> Optional[Dict[str, int]]:
    """Parse an all-integer spec, or ``None`` if it is not a ``scheme``
    configuration with exactly the allowed knobs."""
    try:
        name, kwargs = parse_spec(spec)
    except ValueError:
        return None
    if name != scheme or not set(kwargs) <= allowed or not required <= set(kwargs):
        return None
    out: Dict[str, int] = {}
    for key, value in kwargs.items():
        try:
            out[key] = int(value)
        except ValueError:
            return None
    return out


def bimodal_lane_for_spec(spec: str) -> Optional[BimodalLane]:
    kw = _parse_int_spec(spec, "bimodal", frozenset({"index", "bits"}), frozenset({"index"}))
    if kw is None:
        return None
    index, bits = kw["index"], kw.get("bits", 2)
    if not 0 <= index <= _MAX_TABLE_BITS or not 1 <= bits <= 7:
        return None
    return BimodalLane(index_bits=index, counter_bits=bits)


#: Spec-knob layout of the two-level family: required keys, plus how the
#: select width is spelled (``None`` = fixed 0) and whether a BHT exists.
_TWOLEVEL_FORMS = {
    "gag": (frozenset({"hist"}), None, False),
    "gas": (frozenset({"hist", "select"}), "select", False),
    "gselect": (frozenset({"hist", "addr"}), "addr", False),
    "gap": (frozenset({"hist"}), "addr", False),
    "pag": (frozenset({"hist", "bht"}), None, True),
    "pas": (frozenset({"hist", "select", "bht"}), "select", True),
    "pap": (frozenset({"hist", "addr", "bht"}), "addr", True),
}


def twolevel_lane_for_spec(spec: str) -> Optional[TwoLevelLane]:
    scheme = spec.split(":", 1)[0].strip()
    form = _TWOLEVEL_FORMS.get(scheme)
    if form is None:
        return None
    required, select_key, per_address = form
    allowed = set(required)
    if select_key:
        allowed.add(select_key)
    kw = _parse_int_spec(spec, scheme, frozenset(allowed), required)
    if kw is None:
        return None
    hist = kw["hist"]
    if select_key is None:
        select = 0
    elif scheme == "gap":
        select = kw.get("addr", 8)
    else:
        select = kw[select_key]
    bht = kw["bht"] if per_address else None
    if hist < 0 or select < 0 or hist + select > _MAX_TABLE_BITS:
        return None
    if scheme in ("gas", "gselect", "pas", "pap") and select < 1:
        return None
    if per_address and not 0 <= bht <= _MAX_TABLE_BITS:
        return None
    return TwoLevelLane(scheme=scheme, hist_bits=hist, select_bits=select, bht_bits=bht)


def agree_lane_for_spec(spec: str) -> Optional[AgreeLane]:
    kw = _parse_int_spec(
        spec, "agree", frozenset({"index", "hist", "bias"}), frozenset({"index"})
    )
    if kw is None:
        return None
    index = kw["index"]
    hist = kw.get("hist", index)
    bias = kw.get("bias", index)
    if not 0 <= index <= _MAX_TABLE_BITS or not 0 <= hist <= index:
        return None
    if not 0 <= bias <= _MAX_TABLE_BITS:
        return None
    return AgreeLane(index_bits=index, hist_bits=hist, bias_bits=bias)


def gskew_lane_for_spec(spec: str) -> Optional[GSkewLane]:
    try:
        name, kwargs = parse_spec(spec)
    except ValueError:
        return None
    if name != "gskew" or not set(kwargs) <= {"bank", "hist", "update"}:
        return None
    if "bank" not in kwargs:
        return None
    policy = kwargs.get("update", "enhanced")
    if policy not in ("enhanced", "total"):
        return None
    try:
        bank = int(kwargs["bank"])
        hist = int(kwargs.get("hist", bank))
    except ValueError:
        return None
    if not 0 <= bank <= _MAX_TABLE_BITS or hist < 0:
        return None
    return GSkewLane(bank_bits=bank, hist_bits=hist, enhanced=policy == "enhanced")


def tournament_lane_for_spec(spec: str) -> Optional[TournamentLane]:
    kw = _parse_int_spec(
        spec, "tournament", frozenset({"index", "meta"}), frozenset({"index"})
    )
    if kw is None:
        return None
    index = kw["index"]
    meta = kw.get("meta", index)
    if not 0 <= index <= _MAX_TABLE_BITS or not 0 <= meta <= _MAX_TABLE_BITS:
        return None
    return TournamentLane(index_bits=index, meta_bits=meta)


def trimode_lane_for_spec(spec: str) -> Optional[TriModeLane]:
    kw = _parse_int_spec(
        spec, "trimode", frozenset({"dir", "hist", "choice"}), frozenset({"dir"})
    )
    if kw is None:
        return None
    dir_bits = kw["dir"]
    hist = kw.get("hist", dir_bits)
    choice = kw.get("choice", dir_bits)
    if not 0 <= dir_bits <= _MAX_TABLE_BITS or not 0 <= hist <= dir_bits:
        return None
    if not 0 <= choice <= _MAX_TABLE_BITS:
        return None
    return TriModeLane(dir_bits=dir_bits, hist_bits=hist, choice_bits=choice)


def yags_lane_for_spec(spec: str) -> Optional[YagsLane]:
    kw = _parse_int_spec(
        spec,
        "yags",
        frozenset({"choice", "cache", "hist", "tag"}),
        frozenset({"choice", "cache"}),
    )
    if kw is None:
        return None
    choice, cache = kw["choice"], kw["cache"]
    hist = kw.get("hist", cache)
    tag = kw.get("tag", 6)
    if not 0 <= choice <= _MAX_TABLE_BITS or not 0 <= cache <= _MAX_TABLE_BITS:
        return None
    if not 0 <= hist <= cache or not 1 <= tag <= 30:
        return None
    return YagsLane(choice_bits=choice, cache_bits=cache, hist_bits=hist, tag_bits=tag)


# -- shared stream helpers --------------------------------------------------------


def _hist(trace: BranchTrace, bits: int, cache: Optional[Dict[int, np.ndarray]]) -> np.ndarray:
    if cache is None:
        return global_history_stream(trace.outcomes, bits)
    if bits not in cache:
        cache[bits] = global_history_stream(trace.outcomes, bits)
    return cache[bits]


def per_address_histories(
    pcs: np.ndarray, outcomes: np.ndarray, bht_bits: int, hist_bits: int
) -> np.ndarray:
    """Each access's BHT register contents at prediction time.

    Bit ``j`` of access ``i``'s word is the outcome of the
    ``(j+1)``-th most recent *earlier* access mapping to the same BHT
    slot (``pc & mask(bht_bits)``) — exactly the shift-register state
    ``PerAddressHistoryTable.read`` returns, vectorized per history bit
    over the stable per-slot grouping.
    """
    n = len(pcs)
    hist = np.zeros(n, dtype=np.int64)
    if n == 0 or hist_bits == 0:
        return hist
    slots = (pcs & mask(bht_bits)).astype(np.int32)
    order = stable_group_order(slots, 1 << bht_bits)
    grouped_slots = slots[order]
    grouped_out = outcomes[order].astype(np.int64)

    seg_start = np.empty(n, dtype=bool)
    seg_start[0] = True
    np.not_equal(grouped_slots[1:], grouped_slots[:-1], out=seg_start[1:])
    seg_first = np.flatnonzero(seg_start)
    seg_id = np.cumsum(seg_start, dtype=np.int64) - 1
    pos_in_seg = np.arange(n, dtype=np.int64) - seg_first[seg_id]

    grouped_hist = np.zeros(n, dtype=np.int64)
    for j in range(hist_bits):
        has_prior = np.flatnonzero(pos_in_seg >= j + 1)
        grouped_hist[has_prior] |= grouped_out[has_prior - (j + 1)] << j
    hist[order] = grouped_hist
    return hist


def _observed_states(
    keys: np.ndarray,
    deltas: np.ndarray,
    num_counters: int,
    init: int,
    max_state: int,
    engine: str,
) -> np.ndarray:
    """The state each access observes, via the compiled loop or the
    counter-major scan — the shared automaton of every counter-major
    scheme.  ``deltas`` are int-like in ``{-1, 0, +1}``."""
    if engine == "c":
        from repro.sim import _cstep

        table = np.full(num_counters, init, dtype=np.int8)
        return _cstep.counter_lane(
            np.ascontiguousarray(keys, dtype=np.int64),
            np.ascontiguousarray(deltas, dtype=np.int8),
            table,
            max_state,
        )
    if engine != "numpy":
        raise ValueError(f"unsupported counter engine {engine!r}")
    init_states = np.full(num_counters, init, dtype=np.int32)
    pre, _ = counter_scan(keys, deltas, init_states, num_counters, max_state=max_state)
    return pre


def _train_deltas(outcomes: np.ndarray) -> np.ndarray:
    return np.where(outcomes, 1, -1).astype(np.int8)


# -- counter-major kernels --------------------------------------------------------


def bimodal_predictions(
    lane: BimodalLane,
    trace: BranchTrace,
    engine: str,
    hist_cache: Optional[Dict[int, np.ndarray]] = None,
) -> np.ndarray:
    keys = (trace.pcs & mask(lane.index_bits)).astype(np.int64)
    pre = _observed_states(
        keys,
        _train_deltas(trace.outcomes),
        1 << lane.index_bits,
        lane.threshold,  # power-on init is weakly taken at any width
        lane.max_state,
        engine,
    )
    return pre >= lane.threshold


def twolevel_predictions(
    lane: TwoLevelLane,
    trace: BranchTrace,
    engine: str,
    hist_cache: Optional[Dict[int, np.ndarray]] = None,
) -> np.ndarray:
    if lane.bht_bits is None:
        histories = _hist(trace, lane.hist_bits, hist_cache)
    else:
        histories = per_address_histories(
            trace.pcs, trace.outcomes, lane.bht_bits, lane.hist_bits
        )
    keys = concat_index_stream(
        histories, lane.hist_bits, trace.pcs, lane.select_bits
    ).astype(np.int64)
    pre = _observed_states(
        keys,
        _train_deltas(trace.outcomes),
        1 << (lane.hist_bits + lane.select_bits),
        WEAKLY_TAKEN,
        3,
        engine,
    )
    return pre >= 2


def agree_predictions(
    lane: AgreeLane,
    trace: BranchTrace,
    engine: str,
    hist_cache: Optional[Dict[int, np.ndarray]] = None,
) -> np.ndarray:
    n = len(trace)
    outcomes = trace.outcomes
    histories = _hist(trace, lane.hist_bits, hist_cache)
    keys = gshare_index_stream(
        trace.pcs, histories, lane.index_bits, lane.hist_bits
    ).astype(np.int64)

    # First dynamic occurrence of each biasing slot; every later access
    # sees that occurrence's outcome as its bias, earlier (and the first
    # occurrence itself) the power-on False of an invalid slot.
    slots = (trace.pcs & mask(lane.bias_bits)).astype(np.int64)
    first = np.full(1 << lane.bias_bits, n, dtype=np.int64)
    np.minimum.at(first, slots, np.arange(n, dtype=np.int64))
    first_of_slot = first[slots]  # <= own position for every access
    bias_after_update = outcomes[first_of_slot]
    bias_at_predict = np.where(
        first_of_slot < np.arange(n, dtype=np.int64), bias_after_update, False
    )

    agreed = bias_after_update == outcomes  # True at first occurrences
    pre = _observed_states(
        keys, _train_deltas(agreed), 1 << lane.index_bits, WEAKLY_TAKEN, 3, engine
    )
    return (pre >= 2) == bias_at_predict


def _rotate_stream(values: np.ndarray, amount: int, bits: int) -> np.ndarray:
    """Vectorized ``gskew._rotate``: left-rotate within a bits-wide word."""
    if bits == 0:
        return np.zeros_like(values)
    amount %= bits
    m = mask(bits)
    values = values & m
    return ((values << amount) | (values >> (bits - amount))) & m


def _gskew_index_streams(
    lane: GSkewLane, trace: BranchTrace, hist_cache: Optional[Dict[int, np.ndarray]]
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    bits = lane.bank_bits
    pcs = trace.pcs.astype(np.int64, copy=False)
    if bits == 0:
        zero = np.zeros(len(trace), dtype=np.int64)
        return zero, zero, zero
    m = mask(bits)
    pc_lo = pcs & m
    pc_hi = (pcs >> bits) & m
    hist = _hist(trace, lane.hist_bits, hist_cache) & m
    i0 = pc_lo ^ hist
    i1 = _rotate_stream(pc_lo, 1, bits) ^ _rotate_stream(hist, bits // 2, bits) ^ pc_hi
    i2 = (
        _rotate_stream(pc_lo, 2, bits)
        ^ _rotate_stream(hist, (2 * bits) // 3, bits)
        ^ _rotate_stream(pc_hi, 1, bits)
    )
    return i0, i1, i2


def gskew_predictions(
    lane: GSkewLane,
    trace: BranchTrace,
    engine: str,
    hist_cache: Optional[Dict[int, np.ndarray]] = None,
) -> np.ndarray:
    if engine == "c":
        from repro.sim import _cstep

        banks = np.full((3, 1 << lane.bank_bits), WEAKLY_TAKEN, dtype=np.int8)
        preds = _cstep.gskew_lane(
            np.ascontiguousarray(trace.pcs, dtype=np.int64),
            np.ascontiguousarray(trace.outcomes).view(np.uint8),
            lane.bank_bits,
            lane.hist_bits,
            lane.enhanced,
            banks,
        )
        return preds.view(bool)
    if engine != "numpy" or lane.enhanced:
        # e-gskew's partial update feeds bank state back into which
        # banks train; no counter-major form exists.
        raise ValueError(f"unsupported gskew engine {engine!r} for {lane}")
    deltas = _train_deltas(trace.outcomes)
    size = 1 << lane.bank_bits
    votes = np.zeros(len(trace), dtype=np.int8)
    for keys in _gskew_index_streams(lane, trace, hist_cache):
        pre = _observed_states(keys, deltas, size, WEAKLY_TAKEN, 3, "numpy")
        votes += (pre >= 2).astype(np.int8)
    return votes >= 2


def tournament_predictions(
    lane: TournamentLane,
    trace: BranchTrace,
    engine: str,
    hist_cache: Optional[Dict[int, np.ndarray]] = None,
) -> np.ndarray:
    outcomes = trace.outcomes
    deltas = _train_deltas(outcomes)
    a_keys = (trace.pcs & mask(lane.index_bits)).astype(np.int64)
    histories = _hist(trace, lane.index_bits, hist_cache)
    b_keys = gshare_index_stream(
        trace.pcs, histories, lane.index_bits, lane.index_bits
    ).astype(np.int64)
    size = 1 << lane.index_bits
    pred_a = _observed_states(a_keys, deltas, size, WEAKLY_TAKEN, 3, engine) >= 2
    pred_b = _observed_states(b_keys, deltas, size, WEAKLY_TAKEN, 3, engine) >= 2

    # Meta trains toward "trust b" only on component disagreement.
    meta_keys = (trace.pcs & mask(lane.meta_bits)).astype(np.int64)
    meta_deltas = np.where(
        pred_a == pred_b, 0, np.where(pred_b == outcomes, 1, -1)
    ).astype(np.int8)
    pre_meta = _observed_states(
        meta_keys, meta_deltas, 1 << lane.meta_bits, WEAKLY_TAKEN, 3, engine
    )
    return np.where(pre_meta >= 2, pred_b, pred_a)


# -- sequential (compiled-loop) kernels -------------------------------------------


def trimode_predictions(
    lane: TriModeLane,
    trace: BranchTrace,
    engine: str,
    hist_cache: Optional[Dict[int, np.ndarray]] = None,
) -> np.ndarray:
    if engine != "c":
        raise ValueError(f"unsupported tri-mode engine {engine!r}")
    from repro.sim import _cstep

    histories = _hist(trace, lane.hist_bits, hist_cache)
    di = gshare_index_stream(
        trace.pcs, histories, lane.dir_bits, lane.hist_bits
    ).astype(np.int64)
    ci = (trace.pcs & mask(lane.choice_bits)).astype(np.int64)
    size = 1 << lane.dir_bits
    nt_bank = np.full(size, WEAKLY_NOT_TAKEN, dtype=np.int8)
    tk_bank = np.full(size, WEAKLY_TAKEN, dtype=np.int8)
    wk_bank = np.full(size, WEAKLY_TAKEN, dtype=np.int8)
    choice = np.full(1 << lane.choice_bits, WEAKLY_TAKEN, dtype=np.int8)
    preds = _cstep.trimode_lane(
        np.ascontiguousarray(ci),
        np.ascontiguousarray(di),
        np.ascontiguousarray(trace.outcomes).view(np.uint8),
        nt_bank,
        tk_bank,
        wk_bank,
        choice,
    )
    return preds.view(bool)


def yags_predictions(
    lane: YagsLane,
    trace: BranchTrace,
    engine: str,
    hist_cache: Optional[Dict[int, np.ndarray]] = None,
) -> np.ndarray:
    if engine != "c":
        raise ValueError(f"unsupported YAGS engine {engine!r}")
    from repro.sim import _cstep

    histories = _hist(trace, lane.hist_bits, hist_cache)
    ki = gshare_index_stream(
        trace.pcs, histories, lane.cache_bits, lane.hist_bits
    ).astype(np.int64)
    ci = (trace.pcs & mask(lane.choice_bits)).astype(np.int64)
    tags = ((trace.pcs >> lane.cache_bits) & mask(lane.tag_bits)).astype(np.int32)
    cache_size = 1 << lane.cache_bits
    choice = np.full(1 << lane.choice_bits, WEAKLY_TAKEN, dtype=np.int8)
    tk_tags = np.full(cache_size, -1, dtype=np.int32)
    tk_ctr = np.full(cache_size, WEAKLY_TAKEN, dtype=np.int8)
    nt_tags = np.full(cache_size, -1, dtype=np.int32)
    nt_ctr = np.full(cache_size, WEAKLY_NOT_TAKEN, dtype=np.int8)
    preds = _cstep.yags_lane(
        np.ascontiguousarray(ci),
        np.ascontiguousarray(ki),
        np.ascontiguousarray(tags),
        np.ascontiguousarray(trace.outcomes).view(np.uint8),
        choice,
        tk_tags,
        tk_ctr,
        nt_tags,
        nt_ctr,
    )
    return preds.view(bool)
