"""Pure-Python reference oracle for every registered predictor.

The oracle exists to catch bugs in the *fast* implementations — the
scalar predictors' batched ``simulate`` loops and the vectorized
kernels — so it deliberately shares no simulation machinery with them:
state lives in plain dicts and ints, every update is written as the
obvious transliteration of the scheme's published rule, and nothing is
vectorized.  Slow and boring is the point; if the oracle and an engine
disagree, believe the oracle first.

Geometry (table sizes, history lengths, default knob values) is read
off the predictor object the registry builds, so a spec string means
exactly the same configuration here as everywhere else; only the
*behaviour* is re-derived.

Per-scheme semantics are documented on each ``_O*`` class.  All 2-bit
counters move one step toward the outcome and saturate at 0 / 3;
``predict`` is ``state >= 2`` (``state >= 2**(bits-1)`` for the wider
ablation counters).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.core.registry import make_predictor
from repro.traces.record import BranchTrace

__all__ = [
    "oracle_predictions",
    "oracle_detailed",
    "oracle_rate",
    "oracle_supports",
    "oracle_supports_detailed",
]


def _mask(bits: int) -> int:
    return (1 << bits) - 1


def _train(state: int, taken: bool, maximum: int = 3) -> int:
    """One saturating-counter step toward the outcome."""
    if taken:
        return state + 1 if state < maximum else state
    return state - 1 if state > 0 else state


def _gshare(pc: int, history: int, index_bits: int, history_bits: int) -> int:
    """Address XOR history, both truncated to their widths."""
    return (pc & _mask(index_bits)) ^ (history & _mask(history_bits))


class _Ghr:
    """Global history shift register, newest outcome in the LSB."""

    def __init__(self, bits: int):
        self.bits = bits
        self.value = 0

    def push(self, taken: bool) -> None:
        self.value = ((self.value << 1) | (1 if taken else 0)) & _mask(self.bits)


class _OBimode:
    """Bi-mode (Lee/Chen/Mudge): choice-selected direction banks.

    Taken bank starts weakly taken, not-taken bank weakly not-taken,
    choice weakly taken.  Only the selected bank trains (both under the
    ``full_update`` ablation); the choice counter trains except when it
    picked the wrong bank but the selected counter was right anyway.
    """

    def __init__(self, p):
        self.dir_bits = p.direction_index_bits
        self.hist_bits = p.history_bits
        self.choice_bits = p.choice_index_bits
        self.full_update = p.full_update
        self.choice_uses_history = p.choice_uses_history
        self.nt: Dict[int, int] = {}
        self.tk: Dict[int, int] = {}
        self.choice: Dict[int, int] = {}
        self.ghr = _Ghr(self.hist_bits)

    def _indices(self, pc: int):
        di = _gshare(pc, self.ghr.value, self.dir_bits, self.hist_bits)
        if self.choice_uses_history:
            ci = _gshare(
                pc,
                self.ghr.value,
                self.choice_bits,
                min(self.hist_bits, self.choice_bits),
            )
        else:
            ci = pc & _mask(self.choice_bits)
        return ci, di

    def predict(self, pc: int) -> bool:
        ci, di = self._indices(pc)
        if self.choice.get(ci, 2) >= 2:
            return self.tk.get(di, 2) >= 2
        return self.nt.get(di, 1) >= 2

    def counter_id(self, pc: int) -> int:
        """The selected direction counter's global id (Section-4
        attribution): taken-bank entries occupy the upper half."""
        ci, di = self._indices(pc)
        if self.choice.get(ci, 2) >= 2:
            return di + (1 << self.dir_bits)
        return di

    def _num_counters(self) -> int:
        return 2 << self.dir_bits

    def update(self, pc: int, taken: bool) -> None:
        ci, di = self._indices(pc)
        cs = self.choice.get(ci, 2)
        choice_taken = cs >= 2
        bank, init = (self.tk, 2) if choice_taken else (self.nt, 1)
        ds = bank.get(di, init)
        final = ds >= 2
        bank[di] = _train(ds, taken)
        if self.full_update:
            other, other_init = (self.nt, 1) if choice_taken else (self.tk, 2)
            other[di] = _train(other.get(di, other_init), taken)
        if not (choice_taken != taken and final == taken):
            self.choice[ci] = _train(cs, taken)
        self.ghr.push(taken)


class _OGShare:
    """gshare [McFarling93]: one PHT indexed by pc XOR global history."""

    def __init__(self, p):
        self.index_bits = p.index_bits
        self.hist_bits = p.history_bits
        self.table: Dict[int, int] = {}
        self.ghr = _Ghr(self.hist_bits)

    def predict(self, pc: int) -> bool:
        return self.table.get(_gshare(pc, self.ghr.value, self.index_bits, self.hist_bits), 2) >= 2

    def counter_id(self, pc: int) -> int:
        """The accessed PHT slot (Section-4 attribution)."""
        return _gshare(pc, self.ghr.value, self.index_bits, self.hist_bits)

    def _num_counters(self) -> int:
        return 1 << self.index_bits

    def update(self, pc: int, taken: bool) -> None:
        index = _gshare(pc, self.ghr.value, self.index_bits, self.hist_bits)
        self.table[index] = _train(self.table.get(index, 2), taken)
        self.ghr.push(taken)


class _OBimodal:
    """Per-address counters [Smith81]; width-parameterized for ablations."""

    def __init__(self, p):
        self.index_bits = p.index_bits
        self.bits = p.table.bits
        self.init = 1 << (self.bits - 1)
        self.maximum = (1 << self.bits) - 1
        self.table: Dict[int, int] = {}

    def predict(self, pc: int) -> bool:
        return self.table.get(pc & _mask(self.index_bits), self.init) >= self.init

    def counter_id(self, pc: int) -> int:
        """The accessed per-address counter (Section-4 attribution)."""
        return pc & _mask(self.index_bits)

    def _num_counters(self) -> int:
        return 1 << self.index_bits

    def update(self, pc: int, taken: bool) -> None:
        slot = pc & _mask(self.index_bits)
        self.table[slot] = _train(self.table.get(slot, self.init), taken, self.maximum)


class _OTwoLevel:
    """The Yeh/Patt two-level family (GAg/GAs/GAp/PAg/PAs/PAp/gselect).

    PHT index = (pc's select bits) concatenated above the history; the
    history source is either one global register or a per-address table
    of registers.  History pushes *after* the counter update.
    """

    def __init__(self, p):
        self.hist_bits = p.history_bits
        self.select_bits = p.pht_select_bits
        self.per_address = p.per_address
        self.bht_index_bits = p.bht.index_bits if p.per_address else 0
        self.table: Dict[int, int] = {}
        self.ghr = _Ghr(self.hist_bits)
        self.bht: Dict[int, int] = {}

    def _history(self, pc: int) -> int:
        if self.per_address:
            return self.bht.get(pc & _mask(self.bht_index_bits), 0)
        return self.ghr.value

    def _index(self, pc: int) -> int:
        return ((pc & _mask(self.select_bits)) << self.hist_bits) | (
            self._history(pc) & _mask(self.hist_bits)
        )

    def predict(self, pc: int) -> bool:
        return self.table.get(self._index(pc), 2) >= 2

    def counter_id(self, pc: int) -> int:
        """The accessed PHT slot (Section-4 attribution)."""
        return self._index(pc)

    def update(self, pc: int, taken: bool) -> None:
        index = self._index(pc)
        self.table[index] = _train(self.table.get(index, 2), taken)
        if self.per_address:
            slot = pc & _mask(self.bht_index_bits)
            self.bht[slot] = ((self.bht.get(slot, 0) << 1) | (1 if taken else 0)) & _mask(
                self.hist_bits
            )
        else:
            self.ghr.push(taken)


class _OPerceptron:
    """Perceptron predictor [JimenezLin01]: signed dot product of history
    with per-branch weights; trains on mispredict or |y| <= theta."""

    def __init__(self, p):
        self.index_bits = p.index_bits
        self.hist_bits = p.history_bits
        self.theta = int(1.93 * self.hist_bits + 14)
        self.w_max = (1 << (p.weight_bits - 1)) - 1
        self.w_min = -(1 << (p.weight_bits - 1))
        self.weights: Dict[int, List[int]] = {}
        self.ghr = _Ghr(self.hist_bits)

    def _row(self, pc: int) -> List[int]:
        slot = pc & _mask(self.index_bits)
        if slot not in self.weights:
            self.weights[slot] = [0] * (self.hist_bits + 1)
        return self.weights[slot]

    def _output(self, pc: int):
        row = self._row(pc)
        y = row[0]
        for i in range(1, self.hist_bits + 1):
            if (self.ghr.value >> (i - 1)) & 1:
                y += row[i]
            else:
                y -= row[i]
        return row, y

    def predict(self, pc: int) -> bool:
        return self._output(pc)[1] >= 0

    def counter_id(self, pc: int) -> int:
        """The accessed weight row (Section-4 attribution)."""
        return pc & _mask(self.index_bits)

    def update(self, pc: int, taken: bool) -> None:
        row, y = self._output(pc)
        if (y >= 0) != taken or abs(y) <= self.theta:
            t = 1 if taken else -1
            row[0] = min(self.w_max, max(self.w_min, row[0] + t))
            for i in range(1, self.hist_bits + 1):
                x = 1 if (self.ghr.value >> (i - 1)) & 1 else -1
                row[i] = min(self.w_max, max(self.w_min, row[i] + t * x))
        self.ghr.push(taken)


class _OAgree:
    """Agree predictor [Sprangle+97]: PHT counters vote agree/disagree
    with a per-branch biasing bit set on first dynamic occurrence."""

    def __init__(self, p):
        self.index_bits = p.index_bits
        self.hist_bits = p.history_bits
        self.bias_bits_width = p.bias_index_bits
        self.table: Dict[int, int] = {}
        self.bias: Dict[int, bool] = {}
        self.ghr = _Ghr(self.hist_bits)

    def predict(self, pc: int) -> bool:
        index = _gshare(pc, self.ghr.value, self.index_bits, self.hist_bits)
        agree = self.table.get(index, 2) >= 2
        bias = self.bias.get(pc & _mask(self.bias_bits_width), False)
        return bias == agree

    def counter_id(self, pc: int) -> int:
        """The accessed agree-PHT slot (Section-4 attribution)."""
        return _gshare(pc, self.ghr.value, self.index_bits, self.hist_bits)

    def update(self, pc: int, taken: bool) -> None:
        slot = pc & _mask(self.bias_bits_width)
        if slot not in self.bias:
            self.bias[slot] = taken
        agreed = self.bias[slot] == taken
        index = _gshare(pc, self.ghr.value, self.index_bits, self.hist_bits)
        self.table[index] = _train(self.table.get(index, 2), agreed)
        self.ghr.push(taken)


class _OGSkew:
    """(Enhanced) gskew [MichaudSeznecUhlig97]: three banks under
    rotation-decorrelated hashes, majority vote, partial update."""

    def __init__(self, p):
        self.bank_bits = p.bank_index_bits
        self.hist_bits = p.history_bits
        self.enhanced = p.update_policy == "enhanced"
        self.banks: List[Dict[int, int]] = [{}, {}, {}]
        self.ghr = _Ghr(self.hist_bits)

    def _rotate(self, value: int, amount: int) -> int:
        bits = self.bank_bits
        if bits == 0:
            return 0
        amount %= bits
        value &= _mask(bits)
        return ((value << amount) | (value >> (bits - amount))) & _mask(bits)

    def _indices(self, pc: int):
        bits = self.bank_bits
        pc_lo = pc & _mask(bits)
        pc_hi = (pc >> bits) & _mask(bits)
        hist = self.ghr.value & _mask(bits) if bits else 0
        i0 = pc_lo ^ self._rotate(hist, 0)
        i1 = self._rotate(pc_lo, 1) ^ self._rotate(hist, bits // 2) ^ pc_hi
        i2 = (
            self._rotate(pc_lo, 2)
            ^ self._rotate(hist, (2 * bits) // 3)
            ^ self._rotate(pc_hi, 1)
        )
        return i0, i1, i2

    def predict(self, pc: int) -> bool:
        votes = sum(
            bank.get(index, 2) >= 2
            for bank, index in zip(self.banks, self._indices(pc))
        )
        return votes >= 2

    def counter_id(self, pc: int) -> int:
        """The first (lowest-numbered) bank whose vote equals the
        majority — the counter the prediction is attributed to; bank
        ``k`` occupies ids ``[k * bank_size, (k + 1) * bank_size)``."""
        indices = self._indices(pc)
        votes = [
            bank.get(index, 2) >= 2 for bank, index in zip(self.banks, indices)
        ]
        majority = sum(votes) >= 2
        for k, (voted, index) in enumerate(zip(votes, indices)):
            if voted == majority:
                return k * (1 << self.bank_bits) + index
        raise AssertionError("unreachable: majority always has a voter")

    def update(self, pc: int, taken: bool) -> None:
        indices = self._indices(pc)
        votes = [
            bank.get(index, 2) >= 2 for bank, index in zip(self.banks, indices)
        ]
        majority = sum(votes) >= 2
        for bank, index, voted in zip(self.banks, indices, votes):
            if not self.enhanced or majority != taken or voted == majority:
                bank[index] = _train(bank.get(index, 2), taken)
        self.ghr.push(taken)


class _OYags:
    """YAGS [EdenMudge98]: bimodal choice bias plus two tagged caches
    holding only the exceptions to the bias."""

    def __init__(self, p):
        self.choice_bits = p.choice_index_bits
        self.cache_bits = p.cache_index_bits
        self.hist_bits = p.history_bits
        self.tag_bits = p.tag_bits
        self.choice: Dict[int, int] = {}
        # each cache: index -> (tag, counter)
        self.taken_cache: Dict[int, tuple] = {}
        self.not_taken_cache: Dict[int, tuple] = {}
        self.ghr = _Ghr(self.hist_bits)

    def _probe(self, pc: int):
        bias = self.choice.get(pc & _mask(self.choice_bits), 2) >= 2
        cache = self.not_taken_cache if bias else self.taken_cache
        index = _gshare(pc, self.ghr.value, self.cache_bits, self.hist_bits)
        tag = (pc >> self.cache_bits) & _mask(self.tag_bits)
        entry = cache.get(index)
        hit = entry[1] if entry is not None and entry[0] == tag else None
        return bias, cache, index, tag, hit

    def predict(self, pc: int) -> bool:
        bias, _cache, _index, _tag, hit = self._probe(pc)
        return bias if hit is None else hit >= 2

    def counter_id(self, pc: int) -> int:
        """Layout: choice table, then the taken cache, then the
        not-taken cache.  Cache hit → the hitting entry; miss → the
        choice counter that supplied the bias."""
        bias, _cache, index, _tag, hit = self._probe(pc)
        if hit is None:
            return pc & _mask(self.choice_bits)
        offset = (1 << self.choice_bits) + ((1 << self.cache_bits) if bias else 0)
        return offset + index

    def update(self, pc: int, taken: bool) -> None:
        bias, cache, index, tag, hit = self._probe(pc)
        final = bias if hit is None else hit >= 2
        if taken != bias or hit is not None:
            if hit is None:
                cache[index] = (tag, 2 if taken else 1)
            else:
                cache[index] = (tag, _train(hit, taken))
        if not (bias != taken and final == taken):
            slot = pc & _mask(self.choice_bits)
            self.choice[slot] = _train(self.choice.get(slot, 2), taken)
        self.ghr.push(taken)


class _OTournament:
    """McFarling combining predictor: a per-address meta counter picks
    between two component predictors; the meta trains only when the
    components disagree, toward whichever was right."""

    def __init__(self, p):
        self.a = _oracle_for(p.component_a)
        self.b = _oracle_for(p.component_b)
        self.meta_bits = p.meta_index_bits
        self.meta: Dict[int, int] = {}

    def predict(self, pc: int) -> bool:
        if self.meta.get(pc & _mask(self.meta_bits), 2) >= 2:
            return self.b.predict(pc)
        return self.a.predict(pc)

    def counter_id(self, pc: int) -> int:
        """The *selected* component's counter; component-b ids are
        offset by component-a's counter count."""
        if self.meta.get(pc & _mask(self.meta_bits), 2) >= 2:
            return self.a._num_counters() + self.b.counter_id(pc)
        return self.a.counter_id(pc)

    def update(self, pc: int, taken: bool) -> None:
        prediction_a = self.a.predict(pc)
        prediction_b = self.b.predict(pc)
        if prediction_a != prediction_b:
            slot = pc & _mask(self.meta_bits)
            self.meta[slot] = _train(self.meta.get(slot, 2), prediction_b == taken)
        self.a.update(pc, taken)
        self.b.update(pc, taken)


class _OTriMode:
    """Tri-mode: bi-mode generalized to taken / not-taken / weak banks,
    selected by the choice counter's strong/weak classification."""

    def __init__(self, p):
        self.dir_bits = p.direction_index_bits
        self.hist_bits = p.history_bits
        self.choice_bits = p.choice_index_bits
        # bank id 0 = not-taken (init 1), 1 = taken (init 2), 2 = weak (init 2)
        self.banks: List[Dict[int, int]] = [{}, {}, {}]
        self.bank_init = [1, 2, 2]
        self.choice: Dict[int, int] = {}
        self.ghr = _Ghr(self.hist_bits)

    @staticmethod
    def _bank_of(choice_state: int) -> int:
        if choice_state == 3:
            return 1
        if choice_state == 0:
            return 0
        return 2

    def predict(self, pc: int) -> bool:
        cs = self.choice.get(pc & _mask(self.choice_bits), 2)
        bank_id = self._bank_of(cs)
        di = _gshare(pc, self.ghr.value, self.dir_bits, self.hist_bits)
        return self.banks[bank_id].get(di, self.bank_init[bank_id]) >= 2

    def counter_id(self, pc: int) -> int:
        """The selected direction counter: bank ``b`` occupies ids
        ``[b * bank_size, (b + 1) * bank_size)`` (not-taken, taken,
        weak)."""
        cs = self.choice.get(pc & _mask(self.choice_bits), 2)
        bank_id = self._bank_of(cs)
        di = _gshare(pc, self.ghr.value, self.dir_bits, self.hist_bits)
        return bank_id * (1 << self.dir_bits) + di

    def update(self, pc: int, taken: bool) -> None:
        ci = pc & _mask(self.choice_bits)
        di = _gshare(pc, self.ghr.value, self.dir_bits, self.hist_bits)
        cs = self.choice.get(ci, 2)
        bank_id = self._bank_of(cs)
        bank = self.banks[bank_id]
        ds = bank.get(di, self.bank_init[bank_id])
        final = ds >= 2
        bank[di] = _train(ds, taken)
        if not ((cs >= 2) != taken and final == taken):
            self.choice[ci] = _train(cs, taken)
        self.ghr.push(taken)


class _OBiasFilter:
    """Bias filter: per-address monotone-run detector; once a branch's
    run saturates the filter answers and the sub-predictor is bypassed
    (and not trained, so its history skips filtered branches too)."""

    def __init__(self, p):
        self.sub = _oracle_for(p.sub_predictor)
        self.filter_bits = p.filter_index_bits
        self.max_run = (1 << p.run_bits) - 1
        self.directions: Dict[int, bool] = {}
        self.runs: Dict[int, int] = {}

    def predict(self, pc: int) -> bool:
        slot = pc & _mask(self.filter_bits)
        if self.runs.get(slot, 0) >= self.max_run:
            return self.directions.get(slot, False)
        return self.sub.predict(pc)

    def counter_id(self, pc: int) -> int:
        """Filter slots first, then the sub-predictor's counters offset
        by the filter size."""
        slot = pc & _mask(self.filter_bits)
        if self.runs.get(slot, 0) >= self.max_run:
            return slot
        return (1 << self.filter_bits) + self.sub.counter_id(pc)

    def update(self, pc: int, taken: bool) -> None:
        slot = pc & _mask(self.filter_bits)
        run = self.runs.get(slot, 0)
        if run < self.max_run:
            self.sub.update(pc, taken)
        if run == 0 or self.directions.get(slot, False) != taken:
            self.directions[slot] = taken
            self.runs[slot] = 1
        elif run < self.max_run:
            self.runs[slot] = run + 1


class _OStatic:
    """always-taken / always-not-taken / btfnt (odd word address =
    backward loop edge by the workload generator's convention)."""

    def __init__(self, scheme: str):
        self.scheme = scheme

    def predict(self, pc: int) -> bool:
        if self.scheme == "btfnt":
            return bool(pc & 1)
        return self.scheme == "always-taken"

    def counter_id(self, pc: int) -> int:
        """btfnt: 0 = forward rule, 1 = backward rule; the fixed
        predictors have a single virtual counter."""
        if self.scheme == "btfnt":
            return int(pc & 1)
        return 0

    def update(self, pc: int, taken: bool) -> None:
        pass


def _oracle_for(predictor):
    """Oracle instance mirroring an already-built predictor object."""
    name = type(predictor).__name__
    if name == "BiModePredictor":
        return _OBimode(predictor)
    if name == "GSharePredictor":
        return _OGShare(predictor)
    if name == "BimodalPredictor":
        return _OBimodal(predictor)
    if name in (
        "GAgPredictor",
        "GAsPredictor",
        "GApPredictor",
        "GSelectPredictor",
        "PAgPredictor",
        "PAsPredictor",
        "PApPredictor",
        "TwoLevelPredictor",
    ):
        return _OTwoLevel(predictor)
    if name == "PerceptronPredictor":
        return _OPerceptron(predictor)
    if name == "AgreePredictor":
        return _OAgree(predictor)
    if name == "GSkewPredictor":
        return _OGSkew(predictor)
    if name == "YagsPredictor":
        return _OYags(predictor)
    if name == "TournamentPredictor":
        return _OTournament(predictor)
    if name == "TriModePredictor":
        return _OTriMode(predictor)
    if name == "BiasFilterPredictor":
        return _OBiasFilter(predictor)
    if name == "AlwaysTakenPredictor":
        return _OStatic("always-taken")
    if name == "AlwaysNotTakenPredictor":
        return _OStatic("always-not-taken")
    if name == "BTFNTPredictor":
        return _OStatic("btfnt")
    raise NotImplementedError(f"no oracle for predictor type {name}")


def oracle_supports(spec: str) -> bool:
    """Whether the oracle models this spec's scheme."""
    try:
        _oracle_for(make_predictor(spec))
    except NotImplementedError:
        return False
    return True


def oracle_predictions(spec: str, trace: BranchTrace) -> np.ndarray:
    """Per-branch predictions of ``spec`` from power-on state, slowly."""
    oracle = _oracle_for(make_predictor(spec))
    predictions = np.empty(len(trace), dtype=bool)
    for i, (pc, taken) in enumerate(
        zip(trace.pcs.tolist(), trace.outcomes.tolist())
    ):
        predictions[i] = oracle.predict(int(pc))
        oracle.update(int(pc), bool(taken))
    return predictions


def oracle_supports_detailed(spec: str) -> bool:
    """Whether the oracle can also attribute accesses to counter ids."""
    try:
        oracle = _oracle_for(make_predictor(spec))
    except NotImplementedError:
        return False
    return hasattr(oracle, "counter_id")


def oracle_detailed(spec: str, trace: BranchTrace):
    """Per-branch ``(predictions, counter_ids)`` of ``spec``, slowly.

    The counter-id convention matches the fast implementations'
    ``simulate_detailed``: for gshare the accessed PHT slot, for bi-mode
    the selected direction counter with taken-bank ids offset by the
    bank size.  Only schemes whose oracle exposes ``counter_id`` are
    supported (see :func:`oracle_supports_detailed`).
    """
    oracle = _oracle_for(make_predictor(spec))
    if not hasattr(oracle, "counter_id"):
        raise NotImplementedError(
            f"oracle for {spec!r} does not attribute counter ids"
        )
    n = len(trace)
    predictions = np.empty(n, dtype=bool)
    counter_ids = np.empty(n, dtype=np.int64)
    for i, (pc, taken) in enumerate(
        zip(trace.pcs.tolist(), trace.outcomes.tolist())
    ):
        counter_ids[i] = oracle.counter_id(int(pc))
        predictions[i] = oracle.predict(int(pc))
        oracle.update(int(pc), bool(taken))
    return predictions, counter_ids


def oracle_rate(spec: str, trace: BranchTrace) -> float:
    """Misprediction rate of ``spec`` on ``trace`` per the oracle."""
    if len(trace) == 0:
        return 0.0
    predictions = oracle_predictions(spec, trace)
    return int(np.count_nonzero(predictions != trace.outcomes)) / len(trace)
