"""Content-addressed, memory-mapped trace store.

Generated traces used to persist as compressed ``.npz``: every reader
paid a full decompress-and-copy, and every pool worker held its own
private copy of the arrays.  The store keeps each trace as a directory
of two *uncompressed* ``.npy`` files plus a small ``meta.json``::

    <root>/<name>-n<length>-s<seed>-g<version>/
        pcs.npy        int64[length]
        outcomes.npy   bool[length]
        meta.json      {"name", "length", "seed", "generator", "metadata"}

and opens them with ``np.load(mmap_mode="r")``, so every reader — and
every worker process on the same host, through the OS page cache — maps
the same physical bytes.  Loading a warm trace costs two ``open(2)``
calls and a header parse, regardless of length; nothing is decompressed
and nothing is copied.

Keys are content addresses: workload generation is deterministic in
``(profile name, length, seed)`` and the generator version is part of
the key, so a key can never silently alias two different byte
sequences.  Bump :data:`GENERATOR_VERSION` whenever trace-generation
*semantics* change (the fast path in :mod:`repro.workloads.fastgen` is
bit-identical to ``Program.run``, so engine choice does not affect the
key).

Concurrency follows the repo's cache discipline:

* **atomic publish** — arrays are written to a sibling temp directory
  and moved into place with ``os.replace``; readers can never observe a
  half-written trace;
* **single-flight** — a pid-stamped lock file makes concurrent cold
  opens generate exactly once: one process wins the lock and
  materializes, the rest wait for the publish (a lock whose owner died
  is stolen, so a worker killed mid-generation never wedges the store);
* **quarantine** — a directory that fails validation is renamed to
  ``<key>.corrupt-<pid>`` (preserved for inspection, out of the way)
  and the trace is regenerated, mirroring ``ResultCache``.
"""

from __future__ import annotations

import json
import os
import shutil
import time
from pathlib import Path
from typing import Optional

import numpy as np

from repro.faults import fault_point
from repro.traces.record import BranchTrace

__all__ = ["GENERATOR_VERSION", "TraceStore", "default_store"]

#: Version of the trace-generation semantics baked into store keys.
GENERATOR_VERSION = 1

#: Seconds between lock polls while waiting on another materializer.
_POLL_S = 0.05

#: Give up waiting on a lock after this long and raise — a generation
#: that takes 10 minutes is a hang, not a workload.
_LOCK_TIMEOUT_S = 600.0


class TraceStoreTimeout(RuntimeError):
    """Waited too long for another process to materialize a trace."""


class TraceStore:
    """Memory-mapped, single-flight trace store rooted at a directory."""

    def __init__(self, root: Optional[os.PathLike] = None):
        if root is None:
            from repro.workloads.suite import default_cache_dir

            root = default_cache_dir() / "store"
        self.root = Path(root)

    # -- keys and paths --------------------------------------------------------

    @staticmethod
    def key(name: str, length: int, seed: int) -> str:
        """The content-address of one generated trace."""
        return f"{name}-n{length}-s{seed}-g{GENERATOR_VERSION}"

    def path(self, name: str, length: int, seed: int) -> Path:
        return self.root / self.key(name, length, seed)

    def has(self, name: str, length: int, seed: int) -> bool:
        """Whether the trace is published (cheap, no validation)."""
        return (self.path(name, length, seed) / "meta.json").exists()

    # -- reading ---------------------------------------------------------------

    def open(self, name: str, length: int, seed: int) -> Optional[BranchTrace]:
        """Map a published trace, or ``None`` if absent (or quarantined).

        The returned arrays are read-only memory maps; writes to them
        raise rather than corrupting the store.
        """
        path = self.path(name, length, seed)
        if not path.is_dir():
            return None
        try:
            meta = json.loads((path / "meta.json").read_text())
            if not isinstance(meta, dict):
                raise ValueError("meta.json is not an object")
            if int(meta["length"]) != length or meta["name"] != name:
                raise ValueError("meta.json does not match its key")
            pcs = np.load(path / "pcs.npy", mmap_mode="r", allow_pickle=False)
            outcomes = np.load(
                path / "outcomes.npy", mmap_mode="r", allow_pickle=False
            )
            if pcs.dtype != np.int64 or outcomes.dtype != bool:
                raise ValueError(
                    f"unexpected dtypes {pcs.dtype}/{outcomes.dtype}"
                )
            if pcs.ndim != 1 or pcs.shape != outcomes.shape or len(pcs) != length:
                raise ValueError(
                    f"unexpected shapes {pcs.shape}/{outcomes.shape}"
                )
        except (OSError, ValueError, KeyError, json.JSONDecodeError) as exc:
            self._quarantine(path, exc)
            return None
        return BranchTrace.trusted(
            pcs=pcs,
            outcomes=outcomes,
            name=str(meta.get("name", name)),
            metadata=dict(meta.get("metadata", {})),
        )

    def _quarantine(self, path: Path, exc: Exception) -> None:
        from repro import health

        target = path.with_name(f"{path.name}.corrupt-{os.getpid()}")
        try:
            os.replace(path, target)
            where = target.name
        except OSError:
            where = "<unmovable>"
        health.emit(
            "trace-store",
            "open",
            "quarantined",
            reason=f"{path.name}: {type(exc).__name__}: {exc}",
            severity="degraded",
            moved_to=where,
        )

    # -- writing ---------------------------------------------------------------

    def put(self, trace: BranchTrace, seed: int) -> BranchTrace:
        """Publish a trace atomically; returns the mapped copy.

        Publishing is last-writer-loses: if the key is already
        published (a concurrent materializer won), the existing bytes
        are kept — keys are content addresses, so both writers hold
        identical data.
        """
        if not trace.name:
            raise ValueError("only named traces can be stored")
        length = len(trace)
        final = self.path(trace.name, length, seed)
        tmp = final.with_name(f".tmp-{final.name}-{os.getpid()}")
        self.root.mkdir(parents=True, exist_ok=True)
        if tmp.exists():
            shutil.rmtree(tmp)
        tmp.mkdir()
        try:
            np.save(tmp / "pcs.npy", np.ascontiguousarray(trace.pcs, dtype=np.int64))
            np.save(
                tmp / "outcomes.npy",
                np.ascontiguousarray(trace.outcomes, dtype=bool),
            )
            meta = {
                "name": trace.name,
                "length": length,
                "seed": seed,
                "generator": GENERATOR_VERSION,
                "metadata": trace.metadata,
            }
            (tmp / "meta.json").write_text(json.dumps(meta))
            try:
                os.replace(tmp, final)
            except OSError:
                if not (final / "meta.json").exists():
                    raise
                # lost the publish race; identical bytes already live there
                shutil.rmtree(tmp, ignore_errors=True)
        except BaseException:
            shutil.rmtree(tmp, ignore_errors=True)
            raise
        opened = self.open(trace.name, length, seed)
        if opened is None:  # pragma: no cover - disk failure between write+read
            raise OSError(f"trace {final.name} unreadable immediately after publish")
        return opened

    # -- single-flight materialization ----------------------------------------

    def materialize(
        self,
        name: str,
        length: int,
        seed: int,
        generate=None,
        legacy_npz: Optional[os.PathLike] = None,
    ) -> BranchTrace:
        """Open the trace, generating and publishing it first if cold.

        ``generate`` defaults to the profile generator
        (:func:`repro.workloads.generator.generate_trace`); tests may
        substitute their own ``() -> BranchTrace``.  ``legacy_npz``
        (optional) names a pre-store compressed trace to import instead
        of regenerating, migrating old caches in place.

        Exactly one process generates a cold trace: concurrent callers
        block on the single-flight lock and map the published bytes.
        """
        trace = self.open(name, length, seed)
        if trace is not None:
            return trace
        deadline = time.monotonic() + _LOCK_TIMEOUT_S
        lock = self.root / f"{self.key(name, length, seed)}.lock"
        while True:
            if self._acquire(lock):
                try:
                    # Re-check under the lock: the previous holder may
                    # have published while we were acquiring.
                    trace = self.open(name, length, seed)
                    if trace is not None:
                        return trace
                    trace = self._generate(
                        name, length, seed, generate, legacy_npz
                    )
                    return self.put(trace, seed)
                finally:
                    lock.unlink(missing_ok=True)
            # Another process holds the lock; wait for its publish.
            time.sleep(_POLL_S)
            trace = self.open(name, length, seed)
            if trace is not None:
                return trace
            if time.monotonic() > deadline:
                raise TraceStoreTimeout(
                    f"gave up waiting for {lock.name} after {_LOCK_TIMEOUT_S:g}s"
                )

    def _acquire(self, lock: Path) -> bool:
        """Try to take the single-flight lock; steal it if its owner died."""
        self.root.mkdir(parents=True, exist_ok=True)
        try:
            fd = os.open(lock, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
        except FileExistsError:
            dead_pid = self._dead_holder(lock)
            if dead_pid is not None:
                # Unlink-then-retry keeps the steal race-safe: of any
                # number of stealers, exactly one wins the next O_EXCL.
                # The steal is loud — a dead materializer means a trace
                # generation was lost and is being redone, which sweeps
                # should be able to account for after the fact.
                from repro import health

                health.emit(
                    "trace-store",
                    "lock-held",
                    "lock-stolen",
                    reason=f"{lock.name}: holder pid {dead_pid} is dead",
                    severity="degraded",
                    pid=dead_pid,
                    key=lock.name[: -len(".lock")],
                )
                lock.unlink(missing_ok=True)
            return False
        try:
            os.write(fd, str(os.getpid()).encode())
        finally:
            os.close(fd)
        return True

    @staticmethod
    def _dead_holder(lock: Path) -> Optional[int]:
        """The lock holder's pid if that process is dead, else ``None``."""
        try:
            pid = int(lock.read_text().strip() or "0")
        except (OSError, ValueError):
            return None  # mid-write or already gone; let the poll retry
        if pid <= 0:
            return None
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return pid
        except PermissionError:  # pragma: no cover - alive, other user
            return None
        except OSError:  # pragma: no cover - conservative on odd errnos
            return None
        return None

    @classmethod
    def _holder_dead(cls, lock: Path) -> bool:
        """Whether the lock's holder is dead (see :meth:`_dead_holder`)."""
        return cls._dead_holder(lock) is not None

    def _generate(
        self, name: str, length: int, seed: int, generate, legacy_npz
    ) -> BranchTrace:
        if legacy_npz is not None and Path(legacy_npz).exists():
            from repro.traces.io import load_npz

            try:
                trace = load_npz(legacy_npz)
            except (OSError, ValueError, KeyError) as exc:
                from repro import health

                health.emit(
                    "trace-store",
                    "import-npz",
                    "regenerated",
                    reason=f"{Path(legacy_npz).name}: {exc}",
                    severity="degraded",
                )
            else:
                if len(trace) == length and trace.name == name:
                    return trace
        # The fault point sits in the lock-winner's generation path
        # only, so cross-process trace counts measure how many times a
        # trace was *actually* generated — waiters never hit it.
        fault_point("materialize", bench=name)
        if generate is not None:
            return generate()
        from repro.workloads.generator import generate_trace
        from repro.workloads.profiles import get_profile

        return generate_trace(get_profile(name), length=length, seed=seed)

    # -- npz interchange -------------------------------------------------------

    def import_npz(self, path: os.PathLike, seed: int) -> BranchTrace:
        """Publish an external ``.npz`` trace under its content key."""
        from repro.traces.io import load_npz

        return self.put(load_npz(path), seed)

    def export_npz(self, name: str, length: int, seed: int, path: os.PathLike) -> Path:
        """Write a stored trace back out as portable compressed ``.npz``."""
        from repro.traces.io import save_npz

        trace = self.open(name, length, seed)
        if trace is None:
            raise FileNotFoundError(
                f"trace {self.key(name, length, seed)} is not in the store"
            )
        return save_npz(trace, path)


def default_store() -> TraceStore:
    """The store under the shared cache root (``$REPRO_CACHE_DIR``)."""
    return TraceStore()
