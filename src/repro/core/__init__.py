"""Core predictor framework and the bi-mode predictor itself."""

from repro.core.bimode import BiModePredictor
from repro.core.checkpoint import (
    load_checkpoint,
    predictor_state,
    restore_state,
    save_checkpoint,
)
from repro.core.counters import (
    STRONGLY_NOT_TAKEN,
    STRONGLY_TAKEN,
    WEAKLY_NOT_TAKEN,
    WEAKLY_TAKEN,
    CounterTable,
    SaturatingCounter,
)
from repro.core.hardware import PAPER_SIZE_POINTS_KB, HardwareBudget
from repro.core.history import (
    GlobalHistoryRegister,
    PerAddressHistoryTable,
    global_history_stream,
)
from repro.core.interfaces import (
    BranchPredictor,
    DetailedSimulation,
    SimulationResult,
)
from repro.core.registry import (
    available_schemes,
    bimode_at_kb,
    gshare_at_kb,
    make_predictor,
    parse_spec,
)

__all__ = [
    "BiModePredictor",
    "BranchPredictor",
    "CounterTable",
    "DetailedSimulation",
    "GlobalHistoryRegister",
    "HardwareBudget",
    "PAPER_SIZE_POINTS_KB",
    "PerAddressHistoryTable",
    "SaturatingCounter",
    "SimulationResult",
    "STRONGLY_NOT_TAKEN",
    "STRONGLY_TAKEN",
    "WEAKLY_NOT_TAKEN",
    "WEAKLY_TAKEN",
    "available_schemes",
    "bimode_at_kb",
    "load_checkpoint",
    "predictor_state",
    "restore_state",
    "save_checkpoint",
    "global_history_stream",
    "gshare_at_kb",
    "make_predictor",
    "parse_spec",
]
