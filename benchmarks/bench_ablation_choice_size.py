"""Ablation — choice predictor sizing.

The paper uses a choice predictor equal to one direction bank (Figure 6)
or half the second-level table (Figure 7), noting it "typically can
provide 80% or better prediction accuracy with relatively modest cost".
This ablation sweeps the choice table from a quarter-bank to double-bank
size at fixed direction geometry, asking how much choice capacity the
scheme actually needs.

Expected shape: accuracy improves with choice size but with strongly
diminishing returns — the bank-sized choice (paper default) captures
most of the achievable benefit over the quarter-sized one.
"""

from __future__ import annotations

import pytest

from benchmarks.common import emit_table, load_bench_suite, result_cache
from repro.sim.runner import evaluate

DIRECTION_BITS = 11
CHOICE_BITS = [DIRECTION_BITS - 2, DIRECTION_BITS - 1, DIRECTION_BITS, DIRECTION_BITS + 1]


def _run():
    traces = load_bench_suite("cint95")
    cache = result_cache()
    out = {}
    for choice_bits in CHOICE_BITS:
        spec = f"bimode:dir={DIRECTION_BITS},hist={DIRECTION_BITS},choice={choice_bits}"
        rates = [evaluate(spec, t, cache=cache) for t in traces.values()]
        out[choice_bits] = sum(rates) / len(rates)
    return out


@pytest.mark.benchmark(group="ablation")
def test_ablation_choice_size(benchmark):
    table = benchmark.pedantic(_run, rounds=1, iterations=1)

    rows = [
        [
            f"2^{bits}",
            f"{(1 << bits) / (1 << DIRECTION_BITS):g}x bank",
            f"{100 * table[bits]:.2f}%",
        ]
        for bits in CHOICE_BITS
    ]
    emit_table(
        "ablation_choice_size",
        f"Ablation — choice predictor size (direction banks 2x2^{DIRECTION_BITS}, CINT95 avg)",
        ["choice entries", "relative size", "misprediction"],
        rows,
    )

    quarter, half, full, double = (table[b] for b in CHOICE_BITS)
    # more choice capacity never hurts much...
    assert full <= quarter + 1e-3
    # ...but returns diminish: growing bank->2x bank gains less than
    # quarter->bank
    assert (quarter - full) >= (full - double) - 1e-4
