"""Multi-run orchestration with a persistent result cache.

The figure benchmarks evaluate hundreds of (predictor spec, benchmark)
pairs; a pair's misprediction rate is deterministic, so results are
memoized on disk as JSON keyed by ``(spec, trace key)``.  The cache
lives beside the trace cache (``repro.workloads.suite.default_cache_dir``)
and survives across processes, which makes re-running a figure bench
after the first time nearly free.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, Mapping, Optional

from repro.core.registry import make_predictor
from repro.sim.engine import run
from repro.traces.record import BranchTrace
from repro.workloads.suite import default_cache_dir

__all__ = ["trace_key", "ResultCache", "evaluate", "evaluate_matrix"]


def trace_key(trace: BranchTrace) -> str:
    """Stable identity of a generated trace for cache keying."""
    seed = trace.metadata.get("profile_seed", "x")
    return f"{trace.name or 'anon'}-n{len(trace)}-s{seed}"


class ResultCache:
    """Disk-backed ``(spec, trace) -> misprediction rate`` memo.

    One JSON file per trace key keeps files small and avoids rewrite
    contention across benchmarks.
    """

    def __init__(self, root: Optional[Path] = None):
        self.root = (Path(root) if root is not None else default_cache_dir()) / "results"
        self._loaded: Dict[str, Dict[str, float]] = {}

    def _path(self, tkey: str) -> Path:
        return self.root / f"{tkey}.json"

    def _table(self, tkey: str) -> Dict[str, float]:
        if tkey not in self._loaded:
            path = self._path(tkey)
            if path.exists():
                try:
                    self._loaded[tkey] = json.loads(path.read_text())
                except (json.JSONDecodeError, OSError):
                    self._loaded[tkey] = {}
            else:
                self._loaded[tkey] = {}
        return self._loaded[tkey]

    def get(self, spec: str, tkey: str) -> Optional[float]:
        return self._table(tkey).get(spec)

    def put(self, spec: str, tkey: str, rate: float) -> None:
        table = self._table(tkey)
        table[spec] = rate
        path = self._path(tkey)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(table, indent=0, sort_keys=True))


def evaluate(
    spec: str,
    trace: BranchTrace,
    cache: Optional[ResultCache] = None,
) -> float:
    """Misprediction rate of the predictor ``spec`` on ``trace``.

    Builds the predictor from its spec string, simulates, and memoizes
    through ``cache`` when given.
    """
    tkey = trace_key(trace)
    if cache is not None:
        hit = cache.get(spec, tkey)
        if hit is not None:
            return hit
    predictor = make_predictor(spec)
    rate = run(predictor, trace).misprediction_rate
    if cache is not None:
        cache.put(spec, tkey, rate)
    return rate


def evaluate_matrix(
    specs: Iterable[str],
    traces: Mapping[str, BranchTrace],
    cache: Optional[ResultCache] = None,
    progress=None,
) -> Dict[str, Dict[str, float]]:
    """Rates for every (spec, benchmark) pair: ``result[spec][bench]``.

    ``progress`` (optional) is called with ``(spec, bench, rate)`` after
    each cell, for CLI feedback on long sweeps.
    """
    matrix: Dict[str, Dict[str, float]] = {}
    for spec in specs:
        row: Dict[str, float] = {}
        for bench, trace in traces.items():
            rate = evaluate(spec, trace, cache=cache)
            if progress is not None:
                progress(spec, bench, rate)
            row[bench] = rate
        matrix[spec] = row
    return matrix
