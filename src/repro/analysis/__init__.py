"""Section-4 analysis framework: bias classes, breakdowns, sweeps, reports."""

from repro.analysis.aliasing import (
    AliasingStats,
    SharingDecomposition,
    aliasing_stats,
    sharing_decomposition,
)
from repro.analysis.bias import (
    BIAS_THRESHOLD,
    CLASS_NAMES,
    SNT,
    ST,
    WB,
    SubstreamAnalysis,
    analyze_substreams,
    classify_rate,
    counter_bias_table,
    normalized_counts,
)
from repro.analysis.breakdown import MispredictionBreakdown, misprediction_breakdown
from repro.analysis.interference import ClassChangeCounts, count_class_changes
from repro.analysis.report import ascii_chart, ascii_table, format_rate, write_csv
from repro.analysis.stability import (
    SeedSpread,
    compare_across_seeds,
    seed_spread,
)
from repro.analysis.sweep import (
    SweepPoint,
    SweepSeries,
    best_gshare_at_size,
    bimode_spec,
    gshare_1pht_spec,
    gshare_spec,
    paper_sweep,
    sweep_series,
)

__all__ = [
    "AliasingStats",
    "BIAS_THRESHOLD",
    "CLASS_NAMES",
    "ClassChangeCounts",
    "MispredictionBreakdown",
    "SNT",
    "ST",
    "SubstreamAnalysis",
    "SweepPoint",
    "SeedSpread",
    "SweepSeries",
    "WB",
    "SharingDecomposition",
    "aliasing_stats",
    "analyze_substreams",
    "ascii_chart",
    "ascii_table",
    "best_gshare_at_size",
    "bimode_spec",
    "classify_rate",
    "count_class_changes",
    "counter_bias_table",
    "format_rate",
    "gshare_1pht_spec",
    "gshare_spec",
    "misprediction_breakdown",
    "normalized_counts",
    "paper_sweep",
    "sharing_decomposition",
    "compare_across_seeds",
    "seed_spread",
    "sweep_series",
    "write_csv",
]
