"""Trace-driven simulation engine.

Thin orchestration over the predictor batch interface: reset, run,
(optionally) warm-up split.  All heavy lifting lives in the predictors'
``simulate`` fast paths; the engine guarantees the contract around them
(fresh state, consistent result packaging).

Detailed (Section-4) simulation additionally dispatches through the
batch attribution kernels of :mod:`repro.sim.batch` /
:mod:`repro.sim.batch_bimode` when the predictor has one:
``REPRO_DETAILED_KERNEL`` pins the choice to ``batch`` or ``scalar``
(default ``auto``), and every fallback is reported through
:mod:`repro.health`, mirroring ``REPRO_BIMODE_KERNEL``.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.core.interfaces import BranchPredictor, DetailedSimulation, SimulationResult
from repro.traces.record import BranchTrace

__all__ = ["run", "run_detailed", "run_steps"]


def run(
    predictor: BranchPredictor,
    trace: BranchTrace,
    reset: bool = True,
    warmup: int = 0,
) -> SimulationResult:
    """Simulate ``predictor`` over ``trace``.

    Parameters
    ----------
    reset:
        Restore power-on state first (default).  Pass ``False`` to
        continue from existing state (e.g. across trace chunks).
    warmup:
        If non-zero, the first ``warmup`` branches still train the
        predictor but are excluded from the returned result (the paper
        reports whole-trace rates, so the default is 0).
    """
    if warmup < 0:
        raise ValueError(f"warmup must be >= 0, got {warmup}")
    if warmup > len(trace):
        raise ValueError(f"warmup ({warmup}) exceeds trace length ({len(trace)})")
    if reset:
        predictor.reset()
    result = predictor.simulate(trace)
    if warmup:
        result = SimulationResult(
            predictor_name=result.predictor_name,
            trace_name=result.trace_name,
            predictions=result.predictions[warmup:],
            outcomes=result.outcomes[warmup:],
        )
    return result


def _detailed_kernel_mode() -> str:
    mode = os.environ.get("REPRO_DETAILED_KERNEL", "auto").strip().lower() or "auto"
    if mode not in ("auto", "batch", "scalar"):
        raise ValueError(
            f"REPRO_DETAILED_KERNEL must be auto/batch/scalar, got {mode!r}"
        )
    return mode


def _run_detailed_batch(
    predictor: BranchPredictor, trace: BranchTrace, mode: str
) -> Optional[DetailedSimulation]:
    """The batch attribution kernel's detailed simulation, or ``None``.

    ``None`` means the caller should fall back to the scalar
    ``simulate_detailed`` path (no kernel covers this predictor, or the
    kernel raised); the fallback is recorded as a health event.  The
    batch path never touches the predictor's own tables — callers under
    ``reset=True`` semantics observe power-on state either way.
    """
    from repro import health
    from repro.core.bimode import BiModePredictor
    from repro.predictors.gshare import GSharePredictor
    from repro.sim.batch import gshare_lane_detailed, lane_for_spec
    from repro.sim.batch_bimode import BiModeLane, bimode_lane_detailed

    try:
        if isinstance(predictor, GSharePredictor):
            lane = lane_for_spec(predictor.name)
            if lane is None:  # pragma: no cover - name always parses
                raise ValueError(f"unbatchable gshare spec {predictor.name!r}")
            predictions, counter_ids = gshare_lane_detailed(lane, trace)
            num_counters = lane.table_size
        elif isinstance(predictor, BiModePredictor):
            lane = BiModeLane(
                dir_bits=predictor.direction_index_bits,
                hist_bits=predictor.history_bits,
                choice_bits=predictor.choice_index_bits,
                full_update=predictor.full_update,
                choice_uses_history=predictor.choice_uses_history,
            )
            predictions, counter_ids = bimode_lane_detailed(lane, trace)
            num_counters = 2 * lane.bank_size
        else:
            health.engine_used(
                "detailed-kernel",
                "scalar",
                expected="batch" if mode == "batch" else "scalar",
                reason=f"no batch attribution kernel for {predictor.name}",
            )
            return None
    except Exception as exc:  # fall back rather than lose the analysis
        health.emit(
            "detailed-kernel",
            expected="batch",
            actual="scalar",
            reason=f"batch kernel failed: {exc}",
            severity="degraded",
        )
        return None
    health.engine_used("detailed-kernel", "batch", expected="batch")
    result = SimulationResult(
        predictor_name=predictor.name,
        trace_name=trace.name,
        predictions=predictions,
        outcomes=trace.outcomes,
    )
    return DetailedSimulation(
        result=result,
        counter_ids=counter_ids,
        num_counters=num_counters,
        pcs=trace.pcs,
    )


def run_detailed(
    predictor: BranchPredictor,
    trace: BranchTrace,
    reset: bool = True,
    warmup: int = 0,
) -> DetailedSimulation:
    """Simulate with per-access counter attribution (Section-4 analysis).

    Parameters mirror :func:`run`: ``warmup`` branches still train the
    predictor but are excluded from the returned result (and from the
    attribution arrays).  With ``reset=True`` (the default) the
    simulation dispatches through the batch attribution kernels when
    ``$REPRO_DETAILED_KERNEL`` allows (``auto``/``batch``; ``scalar``
    forces the per-branch loop); results are bit-identical either way.
    """
    if warmup < 0:
        raise ValueError(f"warmup must be >= 0, got {warmup}")
    if warmup > len(trace):
        raise ValueError(f"warmup ({warmup}) exceeds trace length ({len(trace)})")
    mode = _detailed_kernel_mode()
    detailed = None
    if mode != "scalar" and reset:
        detailed = _run_detailed_batch(predictor, trace, mode)
    if detailed is None:
        if reset:
            predictor.reset()
        detailed = predictor.simulate_detailed(trace)
    if warmup:
        result = detailed.result
        sliced = SimulationResult(
            predictor_name=result.predictor_name,
            trace_name=result.trace_name,
            predictions=result.predictions[warmup:],
            outcomes=result.outcomes[warmup:],
        )
        detailed = DetailedSimulation(
            result=sliced,
            counter_ids=detailed.counter_ids[warmup:],
            num_counters=detailed.num_counters,
            pcs=None if detailed.pcs is None else detailed.pcs[warmup:],
        )
    return detailed


def run_steps(
    predictor: BranchPredictor, trace: BranchTrace, reset: bool = True
) -> SimulationResult:
    """Simulate via the scalar step interface (reference semantics).

    Exists so tests can assert batch/step equivalence; production code
    should use :func:`run`.
    """
    if reset:
        predictor.reset()
    return BranchPredictor.simulate(predictor, trace)
