"""Unit tests for structured degradation-event reporting."""

import pytest

from repro import health
from repro.health import DegradationEvent


@pytest.fixture(autouse=True)
def clean_log():
    health.clear()
    yield
    health.clear()


class TestDegradationEvent:
    def test_severity_validated(self):
        with pytest.raises(ValueError, match="severity"):
            DegradationEvent("c", "a", "b", severity="catastrophic")

    def test_degraded_property(self):
        assert not DegradationEvent("c", "x", "x", severity="info").degraded
        assert DegradationEvent("c", "x", "y", severity="degraded").degraded
        assert DegradationEvent("c", "x", "y", severity="error").degraded

    def test_ctx_round_trips(self):
        event = health.emit("c", "a", "b", cells=7, attempt=2)
        assert event.ctx == {"cells": 7, "attempt": 2}


class TestRecording:
    def test_emit_records(self):
        health.emit("pool", "worker-ok", "worker-raised", reason="boom")
        (event,) = health.events()
        assert event.component == "pool"
        assert event.actual == "worker-raised"
        assert event.severity == "degraded"

    def test_events_filters(self):
        health.emit("a", "x", "y", severity="degraded")
        health.emit("b", "x", "x", severity="info")
        health.emit("a", "x", "z", severity="error")
        assert len(health.events()) == 3
        assert len(health.events(component="a")) == 2
        assert len(health.events(severity="error")) == 1
        assert health.events(component="a", severity="error")[0].actual == "z"

    def test_clear(self):
        health.emit("a", "x", "y")
        health.clear()
        assert health.events() == []

    def test_bounded_buffer_counts_dropped(self, monkeypatch):
        monkeypatch.setattr(health, "_MAX_EVENTS", 5)
        for i in range(8):
            health.emit("a", "x", "y", severity="info", cells=1)
        assert len(health.events()) == 5
        assert "+3 older events dropped" in health.summary()


class TestEngineUsed:
    def test_expected_engine_is_info(self):
        event = health.engine_used("bimode-kernel", "c", expected="c", cells=10)
        assert event.severity == "info"

    def test_fallback_is_degraded(self):
        event = health.engine_used(
            "bimode-kernel", "numpy", expected="c", reason="no compiler"
        )
        assert event.severity == "degraded"
        assert event.expected == "c"
        assert event.actual == "numpy"

    def test_no_expectation_is_info(self):
        assert health.engine_used("gshare-kernel", "numpy").severity == "info"


class TestSummary:
    def test_coalesces_identical_events(self):
        for _ in range(3):
            health.engine_used("bimode-kernel", "c", expected="c", cells=4)
        summary = health.summary()
        assert summary.count("\n") == 0
        assert "x3" in summary
        assert "[12 cells]" in summary

    def test_degraded_only_hides_info(self):
        health.engine_used("gshare-kernel", "numpy", cells=2)
        assert health.summary(degraded_only=True) == ""
        health.emit("pool", "pool", "serial", reason="no fork")
        summary = health.summary(degraded_only=True)
        assert "pool -> serial" in summary
        assert "gshare-kernel" not in summary

    def test_empty_log_empty_summary(self):
        assert health.summary() == ""


class TestJsonMode:
    def test_off_by_default(self, monkeypatch, capsys):
        monkeypatch.delenv("REPRO_HEALTH_JSON", raising=False)
        health.emit("pool", "ok", "broken", reason="boom")
        assert capsys.readouterr().err == ""

    def test_zero_means_off(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_HEALTH_JSON", "0")
        health.emit("pool", "ok", "broken")
        assert capsys.readouterr().err == ""

    def test_one_json_object_per_event_on_stderr(self, monkeypatch, capsys):
        import json

        monkeypatch.setenv("REPRO_HEALTH_JSON", "1")
        health.emit("pool", "worker-ok", "worker-raised", reason="boom", cells=3)
        health.emit("cache", "write", "lost", severity="error")
        lines = capsys.readouterr().err.strip().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first == {
            "severity": "degraded",
            "component": "pool",
            "expected": "worker-ok",
            "actual": "worker-raised",
            "reason": "boom",
            "context": {"cells": 3},
        }
        assert json.loads(lines[1])["severity"] == "error"

    def test_json_event_is_single_line_stable_order(self):
        event = health.emit("c", "a", "b", zebra=1, alpha=2)
        encoded = health.json_event(event)
        assert "\n" not in encoded
        # sort_keys: deterministic output for log processors
        assert encoded.index('"actual"') < encoded.index('"context"') < encoded.index('"severity"')

    def test_non_json_context_stringified(self):
        import json

        event = health.emit("c", "a", "b", path=__import__("pathlib").Path("/x"))
        assert json.loads(health.json_event(event))["context"]["path"] == "/x"


class TestListeners:
    def test_listener_sees_every_event(self):
        seen = []
        health.add_listener(seen.append)
        try:
            health.emit("a", "x", "y")
            health.emit("b", "x", "z", severity="error")
        finally:
            health.remove_listener(seen.append)
        assert [e.component for e in seen] == ["a", "b"]

    def test_removed_listener_stops_receiving(self):
        seen = []
        health.add_listener(seen.append)
        health.emit("a", "x", "y")
        health.remove_listener(seen.append)
        health.emit("b", "x", "y")
        assert [e.component for e in seen] == ["a"]

    def test_remove_unknown_listener_is_noop(self):
        health.remove_listener(lambda e: None)

    def test_raising_listener_never_breaks_recording(self):
        def bad(event):
            raise RuntimeError("listener bug")

        health.add_listener(bad)
        try:
            event = health.emit("a", "x", "y")
        finally:
            health.remove_listener(bad)
        assert event in health.events()


class TestProductionHooks:
    """The kernels actually report what ran."""

    def test_bimode_dispatch_reports_engine(self):
        from repro.sim.batch_bimode import bimode_lane_for_spec, bimode_lane_rates
        from tests.conftest import make_toy_trace

        lane = bimode_lane_for_spec("bimode:dir=4,hist=4,choice=4")
        bimode_lane_rates([lane], make_toy_trace(length=200))
        events = health.events(component="bimode-kernel")
        assert len(events) == 1
        assert events[0].actual in ("c", "numpy", "python")

    def test_gshare_batch_reports_engine(self):
        from repro.sim.batch import gshare_lane_rates, lane_for_spec
        from tests.conftest import make_toy_trace

        lane = lane_for_spec("gshare:index=4,hist=4")
        gshare_lane_rates([lane], make_toy_trace(length=200))
        events = health.events(component="gshare-kernel")
        assert len(events) == 1
        assert events[0].actual == "numpy"
        assert events[0].severity == "info"
