"""Measure the sweep speedup of the batched kernel paths.

Two cold-cache measurements, both asserted bit-identical to the scalar
engine, printed and recorded in ``results/sweep_speedup.csv``:

* **Figure-3 sweep** — the full CINT95 paper sweep (every gshare.best
  candidate, the 1PHT points and bi-mode at all eight paper sizes),
  scalar per-cell baseline vs the production ``paper_sweep`` path
  (gshare cells through :mod:`repro.sim.batch`, bi-mode cells through
  :mod:`repro.sim.batch_bimode`).
* **Figure-2 bi-mode portion** — just the bi-mode specs of the sweep,
  across the *combined* CINT95 + IBS suite of both Figure-2 panels,
  scalar per-cell baseline vs one batched ``evaluate_matrix`` call
  (which hands every bi-mode cell to the kernel in a single
  cross-trace batch).  This isolates what the bi-mode kernel itself
  buys; the acceptance bar is >= 2x.

Not a pytest file on purpose — timing cold sweeps back-to-back is an
explicit measurement run::

    PYTHONPATH=src:. REPRO_BENCH_SCALE=0.1 python benchmarks/measure_sweep_speedup.py
"""

from __future__ import annotations

import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.common import bench_scale, emit_table, load_bench_suite
from repro.analysis.sweep import (
    _candidate_specs,
    bimode_spec,
    gshare_1pht_spec,
    paper_sweep,
)
from repro.core.hardware import PAPER_SIZE_POINTS_KB
from repro.core.registry import make_predictor
from repro.sim.engine import run
from repro.sim.runner import ResultCache, evaluate_matrix


def sweep_spec_set():
    """Every unique spec the paper sweep evaluates, in sweep order."""
    specs = []
    for kbytes in PAPER_SIZE_POINTS_KB:
        specs.append(gshare_1pht_spec(kbytes))
        specs.extend(_candidate_specs(kbytes, None))
        specs.append(bimode_spec(kbytes))
    return list(dict.fromkeys(specs))


def series_cells(series):
    """Flatten a paper_sweep result into {(spec, bench): rate}."""
    cells = {}
    for sweep in series.values():
        for point in sweep.points:
            for bench, rate in point.per_benchmark.items():
                cells[(point.spec, bench)] = rate
    return cells


def measure_bimode_portion():
    """Scalar vs batched wall-clock for the Figure-2 bi-mode cells.

    Returns ``(baseline_s, batched_s, num_cells, mismatches)``.
    """
    specs = list(dict.fromkeys(bimode_spec(kb) for kb in PAPER_SIZE_POINTS_KB))
    traces = load_bench_suite("all")  # both Figure-2 panels: CINT95 + IBS

    with tempfile.TemporaryDirectory() as tmp:
        t0 = time.perf_counter()
        batched = evaluate_matrix(specs, traces, cache=ResultCache(Path(tmp)))
        batched_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    scalar = {
        (spec, bench): run(make_predictor(spec), trace).misprediction_rate
        for spec in specs
        for bench, trace in traces.items()
    }
    baseline_s = time.perf_counter() - t0

    mismatches = 0
    for spec in specs:
        for bench in traces:
            if batched[spec][bench] != scalar[(spec, bench)]:
                mismatches += 1
                print(f"MISMATCH {spec} on {bench}: "
                      f"batched={batched[spec][bench]} scalar={scalar[(spec, bench)]}")
    return baseline_s, batched_s, len(specs) * len(traces), mismatches


def main() -> int:
    suite = "cint95"
    traces = load_bench_suite(suite)
    specs = sweep_spec_set()
    print(f"suite={suite}  scale={bench_scale():g}  specs={len(specs)}  "
          f"lengths={{{', '.join(f'{k}:{len(v)}' for k, v in traces.items())}}}")

    with tempfile.TemporaryDirectory() as tmp:
        t0 = time.perf_counter()
        series = paper_sweep(
            traces, kb_points=PAPER_SIZE_POINTS_KB, cache=ResultCache(Path(tmp))
        )
        batched_s = time.perf_counter() - t0
    cells = len(specs) * len(traces)
    print(f"batched path: {batched_s:.2f}s ({cells} cells)")

    t0 = time.perf_counter()
    scalar = {
        (spec, bench): run(make_predictor(spec), trace).misprediction_rate
        for spec in specs
        for bench, trace in traces.items()
    }
    baseline_s = time.perf_counter() - t0
    print(f"scalar baseline: {baseline_s:.2f}s (same {cells} cells)")

    mismatches = 0
    for (spec, bench), rate in series_cells(series).items():
        if scalar[(spec, bench)] != rate:
            mismatches += 1
            print(f"MISMATCH {spec} on {bench}: "
                  f"batched={rate} scalar={scalar[(spec, bench)]}")

    speedup = baseline_s / batched_s if batched_s else float("inf")
    verdict = "identical" if mismatches == 0 else "DIVERGED"

    print("\nFigure-2 bi-mode portion (CINT95 + IBS, cold cache):")
    bm_base_s, bm_batch_s, bm_cells, bm_mismatches = measure_bimode_portion()
    bm_speedup = bm_base_s / bm_batch_s if bm_batch_s else float("inf")
    bm_verdict = "identical" if bm_mismatches == 0 else "DIVERGED"
    print(f"scalar {bm_base_s:.2f}s vs batched {bm_batch_s:.2f}s over {bm_cells} "
          f"cells -> {bm_speedup:.2f}x")

    emit_table(
        "sweep_speedup",
        f"Sweep wall-clock, cold cache, scale={bench_scale():g}; "
        f"fig3 = {len(specs)} specs x {len(traces)} CINT95 benchmarks, "
        f"fig2-bimode = {bm_cells} bi-mode cells over CINT95+IBS",
        ["path", "seconds", "speedup", "rates"],
        [
            ["fig3 scalar engine (per-cell)", f"{baseline_s:.2f}", "1.00x", verdict],
            ["fig3 batched kernel (paper_sweep)", f"{batched_s:.2f}", f"{speedup:.2f}x", verdict],
            ["fig2 bi-mode scalar engine (per-cell)", f"{bm_base_s:.2f}", "1.00x", bm_verdict],
            ["fig2 bi-mode batched kernel (evaluate_matrix)", f"{bm_batch_s:.2f}", f"{bm_speedup:.2f}x", bm_verdict],
        ],
    )
    print(f"\nfig3 speedup: {speedup:.2f}x (target >= 3x)  "
          f"fig2 bi-mode speedup: {bm_speedup:.2f}x (target >= 2x)  "
          f"mismatches={mismatches + bm_mismatches}")
    if mismatches or bm_mismatches:
        return 1
    if speedup < 3.0 or bm_speedup < 2.0:
        print("WARNING: below target on this machine")
        return 2
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
