"""Reference Section-4 analysis — the naive sort-based implementations.

The production analysis path (:mod:`repro.analysis.bias`,
:mod:`repro.analysis.interference`, :mod:`repro.analysis.aliasing`)
groups accesses into substreams with O(n) stable counting sorts
(:mod:`repro.core.grouping`).  This module keeps the original
``np.unique`` / ``np.lexsort`` formulations — one obviously-correct
transcription of the paper's definitions per aggregate — for two jobs:

* **differential oracle**: the equivalence tests and
  :mod:`repro.verify` assert the optimized paths reproduce these
  bit-for-bit on every golden trace;
* **timing baseline**: ``benchmarks/measure_sweep_speedup.py`` measures
  the detailed-kernel pipeline against ``scalar simulation + reference
  analysis``, which is exactly what the Section-4 benches executed
  before the batched pipeline existed.

Nothing here is exported through the package's public analysis API;
import it explicitly.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.aliasing import AliasingStats, sharing_decomposition
from repro.analysis.bias import (
    BIAS_THRESHOLD,
    SNT,
    ST,
    THRESHOLD_EPS,
    WB,
    SubstreamAnalysis,
    counter_bias_table,
)
from repro.analysis.interference import ClassChangeCounts
from repro.core.interfaces import DetailedSimulation

__all__ = [
    "analyze_substreams_reference",
    "count_class_changes_reference",
    "aliasing_stats_reference",
    "summarize_detailed_reference",
]


def analyze_substreams_reference(
    detailed: DetailedSimulation, threshold: float = BIAS_THRESHOLD
) -> SubstreamAnalysis:
    """Substream decomposition via ``np.unique`` over composite keys."""
    if detailed.pcs is None:
        raise ValueError("detailed simulation lacks per-access PCs")
    if not 0.5 < threshold <= 1.0:
        raise ValueError(f"threshold must be in (0.5, 1.0], got {threshold}")
    counter_ids = detailed.counter_ids
    outcomes = detailed.result.outcomes
    mispredicted = detailed.result.mispredicted

    unique_pcs, pc_dense = np.unique(detailed.pcs, return_inverse=True)
    num_pcs = len(unique_pcs)
    key = counter_ids * num_pcs + pc_dense
    unique_keys, access_stream = np.unique(key, return_inverse=True)

    stream_total = np.bincount(access_stream, minlength=len(unique_keys))
    stream_taken = np.bincount(
        access_stream, weights=outcomes.astype(np.float64), minlength=len(unique_keys)
    ).astype(np.int64)
    stream_mispredicted = np.bincount(
        access_stream,
        weights=mispredicted.astype(np.float64),
        minlength=len(unique_keys),
    ).astype(np.int64)
    stream_counter = (unique_keys // num_pcs).astype(np.int64)
    stream_pc = unique_pcs[(unique_keys % num_pcs).astype(np.int64)]

    rates = stream_taken / stream_total
    stream_class = np.full(len(unique_keys), WB, dtype=np.int8)
    stream_class[rates >= threshold - THRESHOLD_EPS] = ST
    stream_class[rates <= (1.0 - threshold) + THRESHOLD_EPS] = SNT

    # dominant strong class per counter, by summed dynamic counts
    num_counters = detailed.num_counters
    st_weight = np.bincount(
        stream_counter,
        weights=np.where(stream_class == ST, stream_total, 0).astype(np.float64),
        minlength=num_counters,
    )
    snt_weight = np.bincount(
        stream_counter,
        weights=np.where(stream_class == SNT, stream_total, 0).astype(np.float64),
        minlength=num_counters,
    )
    accessed = (
        np.bincount(
            stream_counter,
            weights=stream_total.astype(np.float64),
            minlength=num_counters,
        )
        > 0
    )
    counter_dominant = np.full(num_counters, -1, dtype=np.int8)
    counter_dominant[accessed] = np.where(
        st_weight[accessed] >= snt_weight[accessed], ST, SNT
    )

    return SubstreamAnalysis(
        stream_counter=stream_counter,
        stream_pc=stream_pc,
        stream_total=stream_total,
        stream_taken=stream_taken,
        stream_mispredicted=stream_mispredicted,
        stream_class=stream_class,
        access_stream=access_stream,
        counter_dominant=counter_dominant,
        num_counters=num_counters,
    )


def count_class_changes_reference(
    detailed: DetailedSimulation, analysis: SubstreamAnalysis
) -> ClassChangeCounts:
    """Table-4 interference counting via ``np.lexsort``."""
    n = detailed.result.num_branches
    if n != len(analysis.access_stream):
        raise ValueError("analysis does not match the detailed simulation")
    if n < 2:
        return ClassChangeCounts(dominant=0, non_dominant=0, wb=0)

    counter_ids = detailed.counter_ids
    roles = analysis.access_role()
    # group accesses by counter, keeping time order within each group
    order = np.lexsort((np.arange(n), counter_ids))
    sorted_counters = counter_ids[order]
    sorted_roles = roles[order]
    same_counter = sorted_counters[1:] == sorted_counters[:-1]
    role_change = sorted_roles[1:] != sorted_roles[:-1]
    interrupted = sorted_roles[:-1][same_counter & role_change]
    counts = np.bincount(interrupted, minlength=3)
    return ClassChangeCounts(
        dominant=int(counts[0]), non_dominant=int(counts[1]), wb=int(counts[2])
    )


def aliasing_stats_reference(
    analysis: SubstreamAnalysis, min_minority: float = 0.05
) -> AliasingStats:
    """Aliasing summary recomputing branch sharing from scratch."""
    if not 0.0 <= min_minority <= 0.5:
        raise ValueError(f"min_minority must be in [0, 0.5], got {min_minority}")
    num_counters = analysis.num_counters
    streams_per_counter = np.bincount(analysis.stream_counter, minlength=num_counters)

    # distinct static branches per counter, derived independently of the
    # streams-are-unique-pairs invariant the fast path leans on
    pairs = np.stack([analysis.stream_counter, analysis.stream_pc], axis=1)
    unique_pairs = np.unique(pairs, axis=0)
    branches_per_counter = np.bincount(unique_pairs[:, 0], minlength=num_counters)

    accesses_per_counter = np.bincount(
        analysis.stream_counter,
        weights=analysis.stream_total.astype(np.float64),
        minlength=num_counters,
    )
    total_accesses = accesses_per_counter.sum()

    used = branches_per_counter > 0
    aliased = branches_per_counter > 1

    st_weight = np.bincount(
        analysis.stream_counter,
        weights=np.where(analysis.stream_class == ST, analysis.stream_total, 0).astype(
            np.float64
        ),
        minlength=num_counters,
    )
    snt_weight = np.bincount(
        analysis.stream_counter,
        weights=np.where(analysis.stream_class == SNT, analysis.stream_total, 0).astype(
            np.float64
        ),
        minlength=num_counters,
    )
    minority = np.minimum(st_weight, snt_weight)
    with np.errstate(invalid="ignore", divide="ignore"):
        minority_share = np.where(
            accesses_per_counter > 0, minority / np.maximum(accesses_per_counter, 1), 0.0
        )
    destructive = aliased & (minority > 0) & (minority_share >= min_minority)

    if total_accesses == 0:
        return AliasingStats(0, 0, 0, 0.0, 0.0, 0.0)
    return AliasingStats(
        counters_used=int(used.sum()),
        aliased_counters=int(aliased.sum()),
        destructive_counters=int(destructive.sum()),
        aliased_access_fraction=float(accesses_per_counter[aliased].sum() / total_accesses),
        destructive_access_fraction=float(
            accesses_per_counter[destructive].sum() / total_accesses
        ),
        mean_streams_per_counter=float(streams_per_counter[used].mean()),
    )


def summarize_detailed_reference(
    detailed: DetailedSimulation,
    threshold: float = BIAS_THRESHOLD,
    include_bias_table: bool = False,
) -> dict:
    """The full Section-4 summary computed through the reference paths.

    Returns the identical payload to
    :func:`repro.analysis.summary.summarize_detailed` — the equivalence
    suite asserts it — but every aggregate flows through the naive
    implementations above, making this the honest pre-optimization
    baseline for the detailed-kernel timing comparison.
    """
    from repro.analysis.summary import build_summary

    analysis = analyze_substreams_reference(detailed, threshold=threshold)
    return build_summary(
        detailed,
        analysis,
        table=counter_bias_table(analysis),
        alias=aliasing_stats_reference(analysis),
        sharing=sharing_decomposition(analysis),
        changes=count_class_changes_reference(detailed, analysis),
        include_bias_table=include_bias_table,
    )
