"""Benchmark-suite builders backed by the memory-mapped trace store.

Generated traces are materialized once into the
:class:`repro.traces.store.TraceStore` under a cache directory (default
``~/.cache/repro-bimode`` or ``$REPRO_CACHE_DIR``), keyed by
``(benchmark, length, seed)`` plus the generator version, and every
subsequent load is an ``np.load(mmap_mode="r")`` — two file opens, no
decompression, no copy, shared page cache across worker processes.

The store's atomic publish and single-flight lock make concurrent
``load_benchmark`` calls safe: exactly one process generates a cold
trace, everyone else maps the published bytes.  (The pre-store layout —
compressed ``.npz`` written non-atomically — could tear under
concurrent writers; those legacy files are still read, once, and
migrated into the store.)

``load_suite(jobs=...)`` fans cold materialization out over the
supervised worker pool of :mod:`repro.sim.parallel`, so generating a
whole suite scales with ``$REPRO_JOBS`` and inherits the pool's
retry/quarantine machinery.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, Iterable, List, Optional

from repro.traces.record import BranchTrace
from repro.traces.store import TraceStore
from repro.workloads.generator import generate_trace
from repro.workloads.profiles import (
    ALL_PROFILES,
    CINT95_PROFILES,
    IBS_PROFILES,
    get_profile,
)

__all__ = [
    "default_cache_dir",
    "trace_store",
    "load_benchmark",
    "load_suite",
    "cint95_suite",
    "ibs_suite",
    "suite_names",
]


def default_cache_dir() -> Path:
    """Trace/result cache root (override with ``$REPRO_CACHE_DIR``)."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-bimode"


def trace_store(cache_dir: Optional[Path] = None) -> TraceStore:
    """The trace store under ``cache_dir`` (default: the shared root)."""
    root = Path(cache_dir) if cache_dir is not None else default_cache_dir()
    return TraceStore(root / "store")


def _legacy_npz(cache_dir: Path, name: str, length: int, seed: int) -> Path:
    """Pre-store compressed cache location, still honoured for migration."""
    return cache_dir / "traces" / f"{name}-n{length}-s{seed}.npz"


def load_benchmark(
    name: str,
    length: int | None = None,
    seed: int = 0,
    cache_dir: Path | None = None,
    use_cache: bool = True,
    store: Optional[TraceStore] = None,
) -> BranchTrace:
    """Generate (or map the stored) trace for one benchmark.

    With caching enabled the trace comes back memory-mapped read-only
    from the store — materialized on first use, a pair of file opens
    ever after.
    """
    profile = get_profile(name)
    if length is None:
        length = profile.default_length
    if not use_cache:
        return generate_trace(profile, length=length, seed=seed)
    cache_dir = Path(cache_dir) if cache_dir is not None else default_cache_dir()
    if store is None:
        store = trace_store(cache_dir)
    return store.materialize(
        name,
        length,
        seed,
        legacy_npz=_legacy_npz(cache_dir, name, length, seed),
    )


def load_suite(
    names: Iterable[str],
    length: int | None = None,
    seed: int = 0,
    cache_dir: Path | None = None,
    use_cache: bool = True,
    jobs: int | None = None,
) -> Dict[str, BranchTrace]:
    """Traces for several benchmarks, keyed by name.

    ``jobs`` (default: the ``$REPRO_JOBS`` knob) fans cold-store
    materialization out over the supervised worker pool; traces already
    in the store are simply mapped.  Serial and parallel loads produce
    identical traces.
    """
    names = list(names)
    if use_cache:
        from repro.sim.parallel import effective_jobs, materialize_parallel

        if effective_jobs(jobs) > 1:
            store = trace_store(cache_dir)
            cold = [
                name
                for name in names
                if not store.has(
                    name, length or get_profile(name).default_length, seed
                )
            ]
            if len(cold) > 1:
                materialize_parallel(
                    cold, length=length, seed=seed, cache_dir=cache_dir, jobs=jobs
                )
    return {
        name: load_benchmark(
            name, length=length, seed=seed, cache_dir=cache_dir, use_cache=use_cache
        )
        for name in names
    }


def cint95_suite(**kwargs) -> Dict[str, BranchTrace]:
    """The six SPEC CINT95 benchmark traces (paper Figure 3)."""
    return load_suite(CINT95_PROFILES, **kwargs)


def ibs_suite(**kwargs) -> Dict[str, BranchTrace]:
    """The eight IBS-Ultrix benchmark traces (paper Figure 4)."""
    return load_suite(IBS_PROFILES, **kwargs)


def suite_names(suite: str) -> List[str]:
    """Benchmark names in a suite (``"cint95"``, ``"ibs"`` or ``"all"``)."""
    if suite == "cint95":
        return list(CINT95_PROFILES)
    if suite == "ibs":
        return list(IBS_PROFILES)
    if suite == "all":
        return list(ALL_PROFILES)
    raise ValueError(f"unknown suite {suite!r}")
