"""The always-on sweep daemon: socket front-end over the scheduler.

``repro-bimode serve`` runs one :class:`SweepServer` per host.  The
server is deliberately thin: every connection is one JSON-line request
(:mod:`repro.service.protocol`), handled on its own thread, and all
actual scheduling lives in :class:`repro.service.scheduler.
SweepScheduler`.  What the server owns is the *lifecycle*:

* on startup it recovers every job a previous daemon left unfinished
  (their journals replay completed cells — a ``kill -9`` mid-sweep
  costs only the cells that were in flight);
* while running it streams job progress and coalesced health events to
  subscribed clients (a repeated identical degradation streams once and
  is counted, not re-sent);
* on ``SIGTERM`` (or a ``drain`` request) it stops admitting, lets
  in-flight tasks finish, persists every unfinished job as ``queued``,
  and exits cleanly.

Fault sites: ``service.accept`` fires as each request is parsed,
``service.dispatch`` as the scheduler hands a task to the pool, and
``service.persist`` on every manifest write — so CI can kill or fail
the daemon deterministically at each lifecycle stage.
"""

from __future__ import annotations

import os
import queue
import signal
import socket
import socketserver
import threading
from typing import Dict, Optional, Tuple

from repro import health
from repro.faults import fault_point
from repro.service.jobs import BenchmarkRef, JobStore, ServiceJob
from repro.service.protocol import (
    Address,
    ProtocolError,
    parse_address,
    read_message,
    write_message,
)
from repro.service.scheduler import QueueFull, SchedulerStopped, SweepScheduler

__all__ = ["SweepServer", "serve"]


def _resolve_benchmarks(raw, default_seed: int = 0):
    """Normalize submit-payload benchmarks to :class:`BenchmarkRef`."""
    from repro.workloads.profiles import get_profile

    refs = []
    for item in raw:
        if isinstance(item, str):
            item = {"name": item}
        if not isinstance(item, dict) or "name" not in item:
            raise ValueError(f"benchmark must be a name or an object, got {item!r}")
        name = str(item["name"])
        length = item.get("length")
        if length is None:
            length = get_profile(name).default_length
        refs.append(
            BenchmarkRef(
                name=name, length=int(length), seed=int(item.get("seed", default_seed))
            )
        )
    return tuple(refs)


class _HealthCoalescer:
    """Per-connection health stream: first occurrence flows, repeats count."""

    def __init__(self, sink):
        self._sink = sink
        self._mu = threading.Lock()
        self._counts: Dict[Tuple[str, str, str, str, str], int] = {}

    def __call__(self, event) -> None:
        key = (event.severity, event.component, event.expected, event.actual, event.reason)
        with self._mu:
            self._counts[key] = self._counts.get(key, 0) + 1
            first = self._counts[key] == 1
        if first:
            self._sink(
                {
                    "event": "health",
                    "severity": event.severity,
                    "component": event.component,
                    "expected": event.expected,
                    "actual": event.actual,
                    "reason": event.reason,
                }
            )

    def totals(self):
        with self._mu:
            return [
                {
                    "severity": severity,
                    "component": component,
                    "expected": expected,
                    "actual": actual,
                    "reason": reason,
                    "count": count,
                }
                for (severity, component, expected, actual, reason), count in self._counts.items()
            ]


class SweepServer:
    """One long-running daemon: socket accept loop + shared scheduler."""

    def __init__(
        self,
        address: Optional[Address] = None,
        store: Optional[JobStore] = None,
        jobs: Optional[int] = None,
        policy=None,
        queue_max: Optional[int] = None,
        default_timeout: Optional[float] = None,
    ):
        self.store = store if store is not None else JobStore()
        if address is None:
            from repro.service.protocol import default_socket_path

            address = str(default_socket_path(self.store.root))
        self.family, self.target = parse_address(address)
        self.address = address
        self.scheduler = SweepScheduler(
            store=self.store,
            jobs=jobs,
            policy=policy,
            queue_max=queue_max,
            default_timeout=default_timeout,
        )
        self._server: Optional[socketserver.BaseServer] = None
        self._draining = threading.Event()
        self._served = threading.Event()

    # -- lifecycle -----------------------------------------------------------

    def _make_server(self) -> socketserver.BaseServer:
        outer = self

        class Handler(socketserver.StreamRequestHandler):
            def handle(self) -> None:  # pragma: no cover - thin shim
                outer._handle(self)

        class ThreadingUnixServer(
            socketserver.ThreadingMixIn, socketserver.UnixStreamServer
        ):
            daemon_threads = True
            allow_reuse_address = True

        class ThreadingTCPServer(socketserver.ThreadingMixIn, socketserver.TCPServer):
            daemon_threads = True
            allow_reuse_address = True

        if self.family == "unix":
            path = str(self.target)
            os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
            # A pid file decides socket ownership.  Probing the socket
            # by connecting is NOT reliable: a kill -9'd daemon's forked
            # pool workers inherit the listening fd, so a connect lands
            # in a backlog nobody will ever accept.  If the recorded
            # owner is dead (or unrecorded), the stale socket file is
            # taken over, exactly like the trace store's lock steal.
            pid_path = path + ".pid"
            if os.path.exists(path):
                owner = self._owner_pid(pid_path)
                if owner is not None and self._alive(owner):
                    raise OSError(
                        f"another daemon (pid {owner}) is already serving on {path}"
                    )
                health.emit(
                    "sweep-service",
                    "fresh-socket",
                    "stale-socket-taken-over",
                    reason=f"{path}: previous daemon"
                    + (f" (pid {owner})" if owner else "")
                    + " is dead",
                    severity="degraded",
                )
                os.unlink(path)
            server = ThreadingUnixServer(path, Handler)
            with open(pid_path, "w") as fh:
                fh.write(str(os.getpid()))
            return server
        return ThreadingTCPServer(self.target, Handler)

    @staticmethod
    def _owner_pid(pid_path: str) -> Optional[int]:
        try:
            with open(pid_path) as fh:
                return int(fh.read().strip() or "0") or None
        except (OSError, ValueError):
            return None

    @staticmethod
    def _alive(pid: int) -> bool:
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return False
        except OSError:  # pragma: no cover - conservative on odd errnos
            return True
        return True

    def serve_forever(self, install_signals: bool = True) -> None:
        """Run until drained: recover, accept, schedule, stream."""
        self.scheduler.start()
        resumed = self.scheduler.recover()
        self._server = self._make_server()
        if install_signals:
            try:
                signal.signal(signal.SIGTERM, self._on_sigterm)
            except (ValueError, OSError):  # not the main thread
                pass
        if resumed:
            print(f"[serve] resumed {len(resumed)} unfinished job(s)", flush=True)
        print(f"[serve] listening on {self.address} (pid {os.getpid()})", flush=True)
        self._served.set()
        try:
            self._server.serve_forever(poll_interval=0.1)
        finally:
            self._server.server_close()
            if self.family == "unix":
                try:
                    os.unlink(str(self.target))
                except OSError:
                    pass

    def wait_until_serving(self, timeout: float = 10.0) -> bool:
        return self._served.wait(timeout)

    def _on_sigterm(self, signum, frame) -> None:
        # serve_forever owns this thread; drain from a helper so the
        # accept loop can keep spinning until shutdown() stops it.
        threading.Thread(target=self.drain, name="serve-drain", daemon=True).start()

    def drain(self) -> None:
        """Graceful shutdown: finish in-flight work, persist, stop."""
        if self._draining.is_set():
            return
        self._draining.set()
        health.emit(
            "sweep-service",
            "serving",
            "draining",
            reason="SIGTERM or drain request",
            severity="info",
        )
        self.scheduler.drain(timeout=600.0)
        if self._server is not None:
            self._server.shutdown()

    # -- request handling -----------------------------------------------------

    def _handle(self, handler: socketserver.StreamRequestHandler) -> None:
        try:
            request = read_message(handler.rfile)
        except ProtocolError as exc:
            write_message(handler.wfile, {"ok": False, "error": str(exc)})
            return
        if request is None:
            return
        op = str(request.get("op", ""))
        fault_point("service.accept", op=op or "unknown")
        try:
            if op == "ping":
                write_message(
                    handler.wfile,
                    {"ok": True, "pong": True, "pid": os.getpid(),
                     "pending_cells": self.scheduler.pending_cells},
                )
            elif op == "submit":
                self._op_submit(handler, request)
            elif op == "status":
                jobs = self.scheduler.status(request.get("job_id"))
                write_message(handler.wfile, {"ok": True, "jobs": jobs})
            elif op == "result":
                job = self.scheduler.result(str(request.get("job_id", "")))
                if job is None:
                    write_message(
                        handler.wfile,
                        {"ok": False, "error": "job unknown or not finished"},
                    )
                else:
                    write_message(handler.wfile, {"ok": True, "job": job})
            elif op == "wait":
                self._op_wait(handler, request)
            elif op == "health":
                write_message(
                    handler.wfile,
                    {"ok": True, "summary": health.summary(degraded_only=True),
                     "events": [health.json_event(e) for e in health.events(severity="error")]},
                )
            elif op == "drain":
                write_message(handler.wfile, {"ok": True, "draining": True})
                threading.Thread(target=self.drain, daemon=True).start()
            else:
                write_message(
                    handler.wfile, {"ok": False, "error": f"unknown op {op!r}"}
                )
        except (BrokenPipeError, ConnectionResetError):  # client went away
            pass

    def _op_submit(self, handler, request: dict) -> None:
        if self._draining.is_set():
            write_message(
                handler.wfile,
                {"ok": False, "error": "daemon is draining", "retryable": True},
            )
            return
        try:
            job = ServiceJob(
                job_id=self.store.new_job_id(),
                client=str(request.get("client", "anonymous")),
                kind=str(request.get("kind", "rates")),
                specs=tuple(str(s) for s in request.get("specs", ())),
                benchmarks=_resolve_benchmarks(
                    request.get("benchmarks", ()),
                    default_seed=int(request.get("seed", 0)),
                ),
                priority=int(request.get("priority", 0)),
                timeout=(
                    float(request["timeout"]) if request.get("timeout") else None
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            write_message(handler.wfile, {"ok": False, "error": f"bad submit: {exc}"})
            return
        streaming = bool(request.get("wait"))
        events: "queue.Queue[dict]" = queue.Queue()
        coalescer = _HealthCoalescer(events.put) if streaming else None
        if coalescer is not None:
            health.add_listener(coalescer)
        try:
            try:
                job = self.scheduler.submit(job)
            except QueueFull as exc:
                write_message(
                    handler.wfile,
                    {"ok": False, "error": str(exc), "retryable": True},
                )
                return
            except SchedulerStopped as exc:
                write_message(
                    handler.wfile,
                    {"ok": False, "error": str(exc), "retryable": True},
                )
                return
            except Exception as exc:
                write_message(
                    handler.wfile, {"ok": False, "error": f"submit failed: {exc}"}
                )
                return
            write_message(
                handler.wfile,
                {
                    "ok": True,
                    "job_id": job.job_id,
                    "total_cells": job.total_cells,
                    "resumed_cells": job.completed_cells,
                },
            )
            if streaming:
                self._stream(handler, job.job_id, events, coalescer)
        finally:
            if coalescer is not None:
                health.remove_listener(coalescer)

    def _op_wait(self, handler, request: dict) -> None:
        job_id = str(request.get("job_id", ""))
        events: "queue.Queue[dict]" = queue.Queue()
        coalescer = _HealthCoalescer(events.put)
        health.add_listener(coalescer)
        try:
            write_message(handler.wfile, {"ok": True, "job_id": job_id})
            self._stream(handler, job_id, events, coalescer)
        finally:
            health.remove_listener(coalescer)

    def _stream(self, handler, job_id: str, events, coalescer) -> None:
        """Forward scheduler + health events until the job finishes."""
        snapshot = self.scheduler.subscribe(job_id, events.put)
        if snapshot is not None:
            write_message(handler.wfile, snapshot)
            return
        while True:
            try:
                event = events.get(timeout=1.0)
            except queue.Empty:
                # Heartbeat doubles as a disconnect probe: a dead client
                # raises here, unsubscribing via the callback error path.
                write_message(handler.wfile, {"event": "heartbeat"})
                continue
            if event.get("event") == "done":
                event = dict(event)
                event["health"] = coalescer.totals()
                write_message(handler.wfile, event)
                return
            write_message(handler.wfile, event)


def serve(
    address: Optional[Address] = None,
    jobs: Optional[int] = None,
    queue_max: Optional[int] = None,
    default_timeout: Optional[float] = None,
    install_signals: bool = True,
) -> int:
    """Entry point for ``repro-bimode serve``."""
    server = SweepServer(
        address=address,
        jobs=jobs,
        queue_max=queue_max,
        default_timeout=default_timeout,
    )
    server.serve_forever(install_signals=install_signals)
    print("[serve] drained; exiting", flush=True)
    return 0
