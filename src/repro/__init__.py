"""repro — a reproduction of "The Bi-Mode Branch Predictor"
(Lee, Chen & Mudge, MICRO-30, 1997).

The package provides:

* :mod:`repro.core` — the bi-mode predictor and the predictor framework
  (counters, history registers, index functions, cost accounting,
  registry);
* :mod:`repro.predictors` — gshare (single- and multi-PHT), the
  two-level GAx/PAx family, static/bimodal floors, and the agree /
  gskew / YAGS / tournament comparators;
* :mod:`repro.traces` — branch-trace containers, persistence and
  statistics;
* :mod:`repro.workloads` — synthetic SPEC CINT95 and IBS-Ultrix
  workload profiles standing in for the paper's traces;
* :mod:`repro.sim` — the trace-driven simulation engine with cached
  multi-run orchestration;
* :mod:`repro.analysis` — the paper's Section-4 bias-class framework
  (substream classification, misprediction breakdowns, interference
  counts) and the size-sweep / gshare.best machinery behind Figures 2–4.

Quickstart::

    from repro import BiModePredictor, GSharePredictor, load_benchmark, run

    trace = load_benchmark("gcc")
    bimode = BiModePredictor(direction_index_bits=11)
    gshare = GSharePredictor(index_bits=12)
    print(run(bimode, trace).misprediction_rate)
    print(run(gshare, trace).misprediction_rate)
"""

from repro._version import __version__
from repro.core import (
    BiModePredictor,
    BranchPredictor,
    CounterTable,
    GlobalHistoryRegister,
    HardwareBudget,
    PAPER_SIZE_POINTS_KB,
    SaturatingCounter,
    SimulationResult,
    available_schemes,
    bimode_at_kb,
    gshare_at_kb,
    make_predictor,
)
from repro.predictors import (
    AgreePredictor,
    BimodalPredictor,
    GSharePredictor,
    GSkewPredictor,
    TournamentPredictor,
    YagsPredictor,
)
from repro.sim import evaluate, evaluate_matrix, run, run_detailed
from repro.traces import BranchTrace, compute_stats
from repro.workloads import (
    cint95_suite,
    generate_trace,
    get_profile,
    ibs_suite,
    load_benchmark,
)

__all__ = [
    "AgreePredictor",
    "BiModePredictor",
    "BimodalPredictor",
    "BranchPredictor",
    "BranchTrace",
    "CounterTable",
    "GSharePredictor",
    "GSkewPredictor",
    "GlobalHistoryRegister",
    "HardwareBudget",
    "PAPER_SIZE_POINTS_KB",
    "SaturatingCounter",
    "SimulationResult",
    "TournamentPredictor",
    "YagsPredictor",
    "__version__",
    "available_schemes",
    "bimode_at_kb",
    "cint95_suite",
    "compute_stats",
    "evaluate",
    "evaluate_matrix",
    "generate_trace",
    "get_profile",
    "gshare_at_kb",
    "ibs_suite",
    "load_benchmark",
    "make_predictor",
    "run",
    "run_detailed",
]
