"""Profile capture — fit a synthetic profile to an arbitrary trace.

A downstream user with their own branch trace (imported via
:func:`repro.traces.io.load_text`) can estimate a
:class:`~repro.workloads.profiles.BenchmarkProfile` from it and then
generate arbitrarily many *lookalike* traces — same static footprint,
bias mix, taken split and approximate predictability structure — for
predictor studies that need more or longer traces than were captured.

What is estimated, and how:

* **static footprint** — distinct PCs in the trace (used exactly);
* **taken bias split** — fraction of strongly-biased statics biased
  toward taken;
* **behaviour mix** — per-static-branch populations:
  strongly biased (>= 90% one way), *loop-like* (bias between 60% and
  90% taken with short not-taken runs — counted toward loops rather
  than the site mix), *pattern-like* (strong lag-k autocorrelation of
  its own outcome stream), weakly biased, with the remainder assigned
  to the correlated family (per-address statistics cannot distinguish
  "correlated with neighbours" from "random" — correlation is exactly
  the structure a per-address view misses, so we attribute the
  middle ground to it and let ``correlated_noise`` carry the residual
  unpredictability);
* **loop trip count** — mean taken-run length of the loop-like
  population.

The inverse problem is underdetermined — many programs share these
statistics — so :func:`estimate_profile` documents a *family*
resemblance, not a clone; its docstring fields note the approximations.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.traces.record import BranchTrace
from repro.workloads.profiles import BehaviorMix, BenchmarkProfile

__all__ = ["estimate_profile", "branch_populations"]


def _runs_of(values: np.ndarray, value: bool) -> List[int]:
    """Lengths of consecutive runs of ``value``."""
    runs: List[int] = []
    count = 0
    for v in values.tolist():
        if v == value:
            count += 1
        elif count:
            runs.append(count)
            count = 0
    if count:
        runs.append(count)
    return runs


def _lag_autocorr(values: np.ndarray, lag: int) -> float:
    """Autocorrelation of a boolean outcome stream at ``lag``."""
    if len(values) <= lag + 1:
        return 0.0
    x = values.astype(np.float64)
    a = x[:-lag]
    b = x[lag:]
    va = a.std()
    vb = b.std()
    if va == 0 or vb == 0:
        return 0.0
    return float(((a - a.mean()) * (b - b.mean())).mean() / (va * vb))


def branch_populations(
    trace: BranchTrace, bias_threshold: float = 0.9
) -> Dict[str, List[int]]:
    """Classify each static branch into a behaviour population.

    Returns ``{"biased": [...pcs], "loop": [...], "pattern": [...],
    "weak": [...], "correlated": [...]}``.
    """
    populations: Dict[str, List[int]] = {
        "biased": [], "loop": [], "pattern": [], "weak": [], "correlated": []
    }
    pcs = trace.pcs
    outcomes = trace.outcomes
    order = np.argsort(pcs, kind="stable")
    sorted_pcs = pcs[order]
    sorted_outcomes = outcomes[order]
    boundaries = np.flatnonzero(np.diff(sorted_pcs)) + 1
    starts = np.concatenate([[0], boundaries])
    ends = np.concatenate([boundaries, [len(pcs)]])

    for start, end in zip(starts.tolist(), ends.tolist()):
        pc = int(sorted_pcs[start])
        stream = sorted_outcomes[start:end]
        total = len(stream)
        taken = int(stream.sum())
        rate = taken / total
        if rate >= bias_threshold or rate <= 1.0 - bias_threshold:
            populations["biased"].append(pc)
            continue
        # loop back-edges: mostly taken, exits as isolated not-takens
        if 0.6 <= rate < bias_threshold:
            not_taken_runs = _runs_of(stream, False)
            if not_taken_runs and np.mean(not_taken_runs) <= 1.5:
                populations["loop"].append(pc)
                continue
        # short local patterns: strong own-stream autocorrelation
        best = max(abs(_lag_autocorr(stream, lag)) for lag in (1, 2, 3))
        if best >= 0.5:
            populations["pattern"].append(pc)
            continue
        if 0.4 <= rate <= 0.6:
            populations["weak"].append(pc)
            continue
        populations["correlated"].append(pc)
    return populations


def estimate_profile(
    trace: BranchTrace, name: str | None = None, suite: str = "cint95"
) -> BenchmarkProfile:
    """Fit a :class:`BenchmarkProfile` to an arbitrary trace.

    The returned profile, fed to
    :func:`repro.workloads.generator.generate_trace`, produces traces
    with the same static footprint and a matching behaviour mix; the
    correlation *structure* (which branch correlates with which) is
    resynthesized, not copied.
    """
    if len(trace) == 0:
        raise ValueError("cannot estimate a profile from an empty trace")
    populations = branch_populations(trace)
    num_static = trace.num_static
    loop_pcs = populations["loop"]

    # loop fraction is per region in the generator (one back-edge per
    # loop region of ~region_size sites); invert that relationship
    region_size = 8
    loop_fraction = min(0.9, len(loop_pcs) * region_size / max(1, num_static))

    non_loop = max(1, num_static - len(loop_pcs))
    mix = BehaviorMix(
        biased=len(populations["biased"]) / non_loop,
        correlated=len(populations["correlated"]) / non_loop,
        pattern=len(populations["pattern"]) / non_loop,
    )

    # taken split among the strongly biased
    biased_set = set(populations["biased"])
    taken_biased = 0
    from repro.traces.stats import per_branch_bias

    bias = per_branch_bias(trace)
    for pc in biased_set:
        count, taken = bias[pc]
        if taken / count >= 0.5:
            taken_biased += 1
    taken_bias_fraction = taken_biased / max(1, len(biased_set))

    # loop trip: mean taken-run length + 1 over the loop population
    trips: List[float] = []
    if loop_pcs:
        loop_set = set(loop_pcs)
        pcs = trace.pcs
        outcomes = trace.outcomes
        for pc in list(loop_set)[:64]:  # cap the estimation work
            stream = outcomes[pcs == pc]
            taken_runs = _runs_of(stream, True)
            if taken_runs:
                trips.append(float(np.mean(taken_runs)) + 1.0)
    loop_trip = int(round(np.mean(trips))) if trips else 6

    return BenchmarkProfile(
        name=name or f"{trace.name or 'captured'}-fit",
        suite=suite,
        paper_static=num_static,
        paper_dynamic=max(len(trace), 200_000 * 40),
        mix=mix,
        taken_bias_fraction=min(1.0, max(0.0, taken_bias_fraction)),
        loop_fraction=loop_fraction,
        loop_trip=max(2, min(64, loop_trip)),
        region_size=region_size,
    )
