"""Optional compiled driver for the trace-generation event pass.

:mod:`repro.workloads.fastgen` reduces trace generation to a sparse
event replay (phase-boundary draws, loop draws, jump checks) plus numpy
assembly.  The replay is inherently sequential — every draw comes from
one shared Mersenne-Twister stream — so its cost is pure Python
interpreter overhead, ~1 µs per event.  This module compiles that loop
with the system C compiler, exactly like :mod:`repro.sim._cstep` does
for the bi-mode automaton: no build system, no new dependency, shared
object cached under the repro cache directory and loaded via ctypes.

Bit-identity with the Python replay (and therefore with
``Program.run``) rests on three pillars:

* the Mersenne-Twister state is handed over from
  ``random.Random.getstate()`` — seeding semantics never leave CPython;
* the C side replicates the exact CPython derivations on that stream:
  ``random()`` as ``((a >> 5) * 2^26 + (b >> 6)) / 2^53``,
  ``randint`` via ``_randbelow_with_getrandbits`` rejection sampling,
  ``round`` via CPython's half-to-even correction formula, and
  ``expovariate`` as ``-log(1 - random()) / lambd`` against the same
  libm;
* a load-time self-test draws doubles, randints and expovariate run
  lengths from both implementations and refuses the driver on any
  mismatch, so a platform where the replication does not hold silently
  degrades to the pure-Python replay instead of corrupting traces.

``REPRO_NO_CC=1`` disables the driver (tests use it to pin the Python
path); any compile/load failure is remembered and surfaced through
:func:`unavailable_reason` for the health report.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path
from random import Random
from typing import Optional, Tuple

import numpy as np

__all__ = [
    "available",
    "unavailable_reason",
    "events",
    "corr_sweep",
]

_C_SOURCE = r"""
#include <stdint.h>
#include <math.h>
#include <string.h>

/* ---- CPython-compatible Mersenne Twister -------------------------- */

typedef struct { uint32_t mt[624]; int pos; } MT;

static uint32_t genrand(MT *s)
{
    if (s->pos >= 624) {
        uint32_t *mt = s->mt;
        for (int i = 0; i < 624; i++) {
            uint32_t y = (mt[i] & 0x80000000u) | (mt[(i + 1) % 624] & 0x7fffffffu);
            mt[i] = mt[(i + 397) % 624] ^ (y >> 1) ^ ((y & 1u) ? 0x9908b0dfu : 0u);
        }
        s->pos = 0;
    }
    uint32_t y = s->mt[s->pos++];
    y ^= y >> 11;
    y ^= (y << 7) & 0x9d2c5680u;
    y ^= (y << 15) & 0xefc60000u;
    y ^= y >> 18;
    return y;
}

/* random_random(): 53-bit double, exactly CPython's formula */
static double mt_random(MT *s)
{
    uint32_t a = genrand(s) >> 5, b = genrand(s) >> 6;
    return (a * 67108864.0 + b) * (1.0 / 9007199254740992.0);
}

/* Random._randbelow_with_getrandbits(n): k = n.bit_length();
 * draw getrandbits(k) (= genrand() >> (32-k) for k <= 32) until < n. */
static int64_t mt_randbelow(MT *s, int64_t n)
{
    int k = 0;
    for (int64_t m = n; m > 0; m >>= 1) k++;
    uint32_t r = genrand(s) >> (32 - k);
    while ((int64_t)r >= n) r = genrand(s) >> (32 - k);
    return (int64_t)r;
}

/* float.__round__ with no digits: CPython rounds half-to-even by
 * correcting C round()'s half-away-from-zero result. */
static double py_round(double x)
{
    double r = round(x);
    if (fabs(x - r) == 0.5)
        r = 2.0 * round(x / 2.0);
    return r;
}

/* ---- load-time self-test ------------------------------------------ */

void mt_selftest(const uint32_t *mt, int64_t pos,
                 double *outd, int64_t nd,
                 int64_t *outi, int64_t ni,
                 int64_t *outr, int64_t nrv)
{
    MT s;
    memcpy(s.mt, mt, sizeof(s.mt));
    s.pos = (int)pos;
    for (int64_t i = 0; i < nd; i++) outd[i] = mt_random(&s);
    for (int64_t i = 0; i < ni; i++) outi[i] = -3 + mt_randbelow(&s, 7);
    for (int64_t i = 0; i < nrv; i++) {
        double u = mt_random(&s);
        outr[i] = (int64_t)py_round(-log(1.0 - u) / (1.0 / 12.0));
    }
}

/* ---- event replay -------------------------------------------------- */

/* Replace the heap root's time with nt (same site, same position) and
 * restore the (t, pos) min-heap invariant. */
static void heap_sift(int64_t *ht, int32_t *hp, int32_t *hs, int64_t n, int64_t nt)
{
    int64_t t0 = nt;
    int32_t p0 = hp[0], s0 = hs[0];
    int64_t i = 0;
    for (;;) {
        int64_t l = 2 * i + 1;
        if (l >= n) break;
        int64_t c = l, r = l + 1;
        if (r < n && (ht[r] < ht[l] || (ht[r] == ht[l] && hp[r] < hp[l]))) c = r;
        if (ht[c] < t0 || (ht[c] == t0 && hp[c] < p0)) {
            ht[i] = ht[c]; hp[i] = hp[c]; hs[i] = hs[c];
            i = c;
        } else break;
    }
    ht[i] = t0; hp[i] = p0; hs[i] = s0;
}

#define APP_RUN(v) do { if (nr >= runs_cap) return -1; runs[nr++] = (v); } while (0)

#define FIRE(T) do { \
    int32_t si = hs[0]; \
    int dev = mt_random(&s) < b_rate[si]; \
    double u = mt_random(&s); \
    int64_t run = (int64_t)py_round(-log(1.0 - u) / b_lambd[si]); \
    if (run == 0) run = 1; \
    APP_RUN(b_g14[si] | (run << 1) | (int64_t)(b_base[si] ^ dev)); \
    heap_sift(ht, hp, hs, hn, (T) + run); \
} while (0)

int64_t fastgen_events(
    const uint32_t *mt_init, int64_t mt_pos,
    int64_t R,
    const int32_t *width, const int32_t *max_iter,
    const int64_t *loop_g14, const int64_t *loop_trip, const int32_t *loop_jit,
    const double *loop_res,
    const int64_t *b_off, const int32_t *b_pos, const int64_t *b_g14,
    const double *b_rate, const double *b_lambd, const uint8_t *b_base,
    const int64_t *p_off, const int32_t *p_pos, const int64_t *p_g142,
    const double *p_p,
    const int64_t *s_off, const int32_t *s_ent,
    const int32_t *jt, int64_t njump, double jump_prob,
    int64_t length,
    int64_t *heap_t, int32_t *heap_pos, int32_t *heap_site,
    int64_t *prior, int64_t *lrem, int64_t *ltrip, int64_t *pointers,
    int64_t *runs, int64_t runs_cap,
    int64_t *visits, int64_t visits_cap,
    int64_t *counts)
{
    MT s;
    memcpy(s.mt, mt_init, sizeof(s.mt));
    s.pos = (int)mt_pos;

    for (int64_t r = 0; r < R; r++) {
        prior[r] = 0; lrem[r] = -1; ltrip[r] = -1; pointers[r] = 0;
        for (int64_t i = b_off[r]; i < b_off[r + 1]; i++) {
            heap_t[i] = 0;              /* in position order: a valid heap */
            heap_pos[i] = b_pos[i];
            heap_site[i] = (int32_t)i;
        }
    }

    int64_t nr = 0, nv = 0, emitted = 0, jpos = 1;
    int32_t cur = jt[0];
    while (emitted < length) {
        int64_t pr = prior[cur];
        int64_t hb = b_off[cur];
        int64_t hn = b_off[cur + 1] - hb;
        int64_t *ht = heap_t + hb;
        int32_t *hp = heap_pos + hb;
        int32_t *hs = heap_site + hb;
        int64_t pb = p_off[cur], pe = p_off[cur + 1];

        /* iteration 0: body sites in position order */
        if (pe > pb) {
            for (int64_t pi = pb; pi < pe; pi++) {
                int32_t pp = p_pos[pi];
                while (hn && ht[0] == pr && hp[0] < pp) FIRE(pr);
                APP_RUN(p_g142[pi] | (int64_t)(mt_random(&s) < p_p[pi]));
            }
        }
        while (hn && ht[0] == pr) FIRE(pr);

        /* loop back-edge decides the iteration count */
        int64_t it;
        int64_t lg = loop_g14[cur];
        if (lg < 0) it = 1;
        else {
            int64_t rem = lrem[cur];
            if (rem < 0) {
                int64_t trip = ltrip[cur];
                int32_t jit = loop_jit[cur];
                if (trip < 0 || (jit && mt_random(&s) < loop_res[cur])) {
                    if (jit) {
                        trip = loop_trip[cur] - jit + mt_randbelow(&s, 2 * (int64_t)jit + 1);
                        if (trip < 1) trip = 1;
                    } else trip = loop_trip[cur];
                    ltrip[cur] = trip;
                }
                rem = trip;
            }
            int64_t mi = max_iter[cur];
            if (rem <= mi) {
                it = rem; lrem[cur] = -1;
                if (it > 1) APP_RUN(lg | ((it - 1) << 1) | 1);
                APP_RUN(lg | 2);
            } else {
                it = mi; lrem[cur] = rem - mi;
                APP_RUN(lg | (mi << 1) | 1);
            }
        }

        /* iterations 1..it-1 */
        int64_t end;
        if (it > 1) {
            end = pr + it;
            if (pe > pb) {
                for (int64_t t = pr + 1; t < end; t++) {
                    if (hn && ht[0] == t) {
                        for (int64_t pi = pb; pi < pe; pi++) {
                            int32_t pp = p_pos[pi];
                            while (hn && ht[0] == t && hp[0] < pp) FIRE(t);
                            APP_RUN(p_g142[pi] | (int64_t)(mt_random(&s) < p_p[pi]));
                        }
                        while (hn && ht[0] == t) FIRE(t);
                    } else {
                        for (int64_t pi = pb; pi < pe; pi++)
                            APP_RUN(p_g142[pi] | (int64_t)(mt_random(&s) < p_p[pi]));
                    }
                }
            } else {
                while (hn && ht[0] < end) { int64_t t = ht[0]; FIRE(t); }
            }
        } else end = pr + 1;

        if (nv >= visits_cap) return -2;
        visits[nv++] = (pr << 26) | ((int64_t)cur << 13) | it;
        prior[cur] = end;
        emitted += (int64_t)width[cur] * it;
        if (emitted >= length) break;

        /* dispatch: random Zipf jump, else the deterministic schedule */
        if (jump_prob != 0.0 && mt_random(&s) < jump_prob) {
            if (jpos >= njump) jpos = 0;
            cur = jt[jpos++];
            continue;
        }
        int64_t so = s_off[cur];
        int64_t n_ent = s_off[cur + 1] - so;
        int64_t p = pointers[cur];
        pointers[cur] = (p + 1 < n_ent) ? p + 1 : 0;
        cur = s_ent[so + p];
    }
    counts[0] = nr;
    counts[1] = nv;
    return 0;
}

/* ---- correlated-site chain sweep ----------------------------------- */

/* Resolve correlated elements in trace order.  part[] already folds
 * the resolved-source history bits and the table base; edges
 * (ej, ek, ew) list the corr->corr dependencies, grouped by target j
 * in ascending order with ek[e] < j. */
void corr_sweep(const int64_t *part, const uint8_t *flip,
                const int64_t *ej, const int64_t *ek, const int64_t *ew,
                int64_t ne, const uint8_t *table, uint8_t *vals, int64_t m)
{
    int64_t e = 0;
    for (int64_t j = 0; j < m; j++) {
        int64_t acc = part[j];
        while (e < ne && ej[e] == j) {
            if (vals[ek[e]]) acc += ew[e];
            e++;
        }
        vals[j] = table[acc] ^ flip[j];
    }
}
"""

_lib: Optional[ctypes.CDLL] = None
_load_attempted = False
_failure: Optional[str] = None


def _source_digest() -> str:
    return hashlib.sha1(_C_SOURCE.encode()).hexdigest()[:16]


def _build_dir() -> Path:
    from repro.workloads.suite import default_cache_dir

    return default_cache_dir() / "ckernel"


def _compile(so_path: Path) -> bool:
    """Build the shared object atomically; False on any failure."""
    compiler = next((c for c in ("cc", "gcc", "clang") if shutil.which(c)), None)
    if compiler is None:
        return False
    so_path.parent.mkdir(parents=True, exist_ok=True)
    src = so_path.with_suffix(".c")
    src.write_text(_C_SOURCE)
    with tempfile.NamedTemporaryFile(
        dir=so_path.parent, suffix=".so.tmp", delete=False
    ) as tmp:
        tmp_path = Path(tmp.name)
    try:
        proc = subprocess.run(
            [
                compiler,
                "-O2",
                "-shared",
                "-fPIC",
                "-o",
                str(tmp_path),
                str(src),
                "-lm",
            ],
            capture_output=True,
            timeout=120,
        )
        if proc.returncode != 0:
            return False
        os.replace(tmp_path, so_path)
        return True
    except (OSError, subprocess.SubprocessError):
        return False
    finally:
        tmp_path.unlink(missing_ok=True)


def _mt_state(rng: Random) -> Tuple[np.ndarray, int]:
    """Extract (624 MT words, cursor) from a ``random.Random``."""
    state = rng.getstate()[1]
    return np.asarray(state[:624], dtype=np.uint32), int(state[624])


def _selftest(lib: ctypes.CDLL) -> bool:
    """Draw from both implementations and require exact agreement."""
    rng = Random(0xC0FFEE)
    words, pos = _mt_state(rng)
    nd, ni, nrv = 512, 256, 256
    outd = np.empty(nd, dtype=np.float64)
    outi = np.empty(ni, dtype=np.int64)
    outr = np.empty(nrv, dtype=np.int64)
    lib.mt_selftest(
        words.ctypes.data_as(ctypes.c_void_p),
        ctypes.c_int64(pos),
        outd.ctypes.data_as(ctypes.c_void_p),
        ctypes.c_int64(nd),
        outi.ctypes.data_as(ctypes.c_void_p),
        ctypes.c_int64(ni),
        outr.ctypes.data_as(ctypes.c_void_p),
        ctypes.c_int64(nrv),
    )
    if any(outd[i] != rng.random() for i in range(nd)):
        return False
    if any(outi[i] != rng.randint(-3, 3) for i in range(ni)):
        return False
    lambd = 1.0 / 12.0
    return all(outr[i] == round(rng.expovariate(lambd)) for i in range(nrv))


def _load() -> Optional[ctypes.CDLL]:
    global _lib, _load_attempted, _failure
    if os.environ.get("REPRO_NO_CC", "").strip() not in ("", "0"):
        return None
    if _load_attempted:
        return _lib
    _load_attempted = True
    try:
        so_path = _build_dir() / f"fastgen-{_source_digest()}.so"
        if not so_path.exists() and not _compile(so_path):
            _failure = (
                "no C compiler on PATH"
                if not any(shutil.which(c) for c in ("cc", "gcc", "clang"))
                else "compiler invocation failed"
            )
            return None
        lib = ctypes.CDLL(str(so_path))
        lib.fastgen_events.restype = ctypes.c_int64
        lib.corr_sweep.restype = None
        lib.mt_selftest.restype = None
        if not _selftest(lib):  # pragma: no cover - platform-dependent
            _failure = "MT19937 replication self-test failed"
            _lib = None
            return None
        _lib = lib
    except OSError as exc:  # pragma: no cover - environment-dependent
        _failure = f"shared object failed to load: {exc}"
        _lib = None
    return _lib


def available() -> bool:
    """Whether the compiled event-pass driver can be used."""
    return _load() is not None


def unavailable_reason() -> Optional[str]:
    """Why the compiled driver cannot run, or ``None`` if it can."""
    if os.environ.get("REPRO_NO_CC", "").strip() not in ("", "0"):
        return "REPRO_NO_CC is set"
    if _load() is not None:
        return None
    return _failure or "compiled driver unavailable"


def _ptr(array: np.ndarray) -> ctypes.c_void_p:
    return ctypes.c_void_p(array.ctypes.data)


def events(
    cl,
    rng: Random,
    jump_targets: np.ndarray,
    jump_prob: float,
    length: int,
) -> Optional[Tuple[np.ndarray, np.ndarray]]:
    """Run the event pass in C; ``(visits, runs)`` or ``None`` on failure.

    ``cl`` is the flat C layout built by ``fastgen._prepare``; ``rng``
    is the *fresh* ``random.Random`` whose stream the replay consumes
    (its state is copied out, the object itself is not advanced — the
    caller must not reuse it either way).
    """
    lib = _load()
    if lib is None:
        return None
    words, pos = _mt_state(rng)
    R = int(cl.width.size)
    nb = int(cl.b_pos.size)
    heap_t = np.empty(nb, dtype=np.int64)
    heap_pos = np.empty(nb, dtype=np.int32)
    heap_site = np.empty(nb, dtype=np.int32)
    prior = np.empty(R, dtype=np.int64)
    lrem = np.empty(R, dtype=np.int64)
    ltrip = np.empty(R, dtype=np.int64)
    pointers = np.empty(R, dtype=np.int64)
    jt = np.ascontiguousarray(jump_targets, dtype=np.int32)
    counts = np.zeros(2, dtype=np.int64)

    runs_cap = length // 2 + 65536 + 8 * nb
    visits_cap = length // 8 + 4096
    for _ in range(4):
        runs = np.empty(runs_cap, dtype=np.int64)
        visits = np.empty(visits_cap, dtype=np.int64)
        rc = lib.fastgen_events(
            _ptr(words),
            ctypes.c_int64(pos),
            ctypes.c_int64(R),
            _ptr(cl.width),
            _ptr(cl.max_iter),
            _ptr(cl.loop_g14),
            _ptr(cl.loop_trip),
            _ptr(cl.loop_jit),
            _ptr(cl.loop_res),
            _ptr(cl.b_off),
            _ptr(cl.b_pos),
            _ptr(cl.b_g14),
            _ptr(cl.b_rate),
            _ptr(cl.b_lambd),
            _ptr(cl.b_base),
            _ptr(cl.p_off),
            _ptr(cl.p_pos),
            _ptr(cl.p_g142),
            _ptr(cl.p_p),
            _ptr(cl.s_off),
            _ptr(cl.s_ent),
            _ptr(jt),
            ctypes.c_int64(len(jt)),
            ctypes.c_double(jump_prob),
            ctypes.c_int64(length),
            _ptr(heap_t),
            _ptr(heap_pos),
            _ptr(heap_site),
            _ptr(prior),
            _ptr(lrem),
            _ptr(ltrip),
            _ptr(pointers),
            _ptr(runs),
            ctypes.c_int64(runs_cap),
            _ptr(visits),
            ctypes.c_int64(visits_cap),
            _ptr(counts),
        )
        if rc == 0:
            return visits[: counts[1]].copy(), runs[: counts[0]].copy()
        if rc == -1:
            runs_cap = runs_cap * 4 + length
        elif rc == -2:
            visits_cap = visits_cap * 4 + length
        else:  # pragma: no cover - unknown return code
            return None
    return None  # pragma: no cover - caps kept overflowing


def corr_sweep(
    part: np.ndarray,
    flips: np.ndarray,
    ej: np.ndarray,
    ek: np.ndarray,
    ew: np.ndarray,
    table: np.ndarray,
    m: int,
) -> Optional[np.ndarray]:
    """Resolve ``m`` correlated elements in C; uint8 values or ``None``."""
    lib = _load()
    if lib is None:
        return None
    # The C loop walks raw pointers with unit stride; np.nonzero on a 2-D
    # mask hands back strided views, so force contiguity before crossing.
    part = np.ascontiguousarray(part, dtype=np.int64)
    flips = np.ascontiguousarray(flips, dtype=np.uint8)
    ej = np.ascontiguousarray(ej, dtype=np.int64)
    ek = np.ascontiguousarray(ek, dtype=np.int64)
    ew = np.ascontiguousarray(ew, dtype=np.int64)
    table = np.ascontiguousarray(table, dtype=np.uint8)
    vals = np.empty(m, dtype=np.uint8)
    lib.corr_sweep(
        _ptr(part),
        _ptr(flips),
        _ptr(ej),
        _ptr(ek),
        _ptr(ew),
        ctypes.c_int64(len(ej)),
        _ptr(table),
        _ptr(vals),
        ctypes.c_int64(m),
    )
    return vals
