"""Measure the Figure-3 sweep speedup of the batched kernel path.

Runs the full CINT95 paper sweep (Figure 3's workload: every gshare.best
candidate, the 1PHT points and bi-mode at all eight paper sizes) twice
from a cold result cache:

* **baseline** — every (spec, benchmark) cell of the full candidate
  matrix through the scalar engine, one trace pass per cell (the
  pre-batching execution model of ``best_gshare_at_size``);
* **batched** — the production path: gshare cells through the multi-lane
  kernel of :mod:`repro.sim.batch`, assembled by ``paper_sweep``.

Asserts the two paths produce bit-identical rates, prints the wall-clock
comparison and writes ``results/sweep_speedup.csv``.

Not a pytest file on purpose — timing two cold sweeps back-to-back is an
explicit measurement run::

    PYTHONPATH=src:. REPRO_BENCH_SCALE=0.1 python benchmarks/measure_sweep_speedup.py
"""

from __future__ import annotations

import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.common import bench_scale, emit_table, load_bench_suite
from repro.analysis.sweep import (
    _candidate_specs,
    bimode_spec,
    gshare_1pht_spec,
    paper_sweep,
)
from repro.core.hardware import PAPER_SIZE_POINTS_KB
from repro.core.registry import make_predictor
from repro.sim.engine import run
from repro.sim.runner import ResultCache


def sweep_spec_set():
    """Every unique spec the paper sweep evaluates, in sweep order."""
    specs = []
    for kbytes in PAPER_SIZE_POINTS_KB:
        specs.append(gshare_1pht_spec(kbytes))
        specs.extend(_candidate_specs(kbytes, None))
        specs.append(bimode_spec(kbytes))
    return list(dict.fromkeys(specs))


def series_cells(series):
    """Flatten a paper_sweep result into {(spec, bench): rate}."""
    cells = {}
    for sweep in series.values():
        for point in sweep.points:
            for bench, rate in point.per_benchmark.items():
                cells[(point.spec, bench)] = rate
    return cells


def main() -> int:
    suite = "cint95"
    traces = load_bench_suite(suite)
    specs = sweep_spec_set()
    print(f"suite={suite}  scale={bench_scale():g}  specs={len(specs)}  "
          f"lengths={{{', '.join(f'{k}:{len(v)}' for k, v in traces.items())}}}")

    with tempfile.TemporaryDirectory() as tmp:
        t0 = time.perf_counter()
        series = paper_sweep(
            traces, kb_points=PAPER_SIZE_POINTS_KB, cache=ResultCache(Path(tmp))
        )
        batched_s = time.perf_counter() - t0
    cells = len(specs) * len(traces)
    print(f"batched path: {batched_s:.2f}s ({cells} cells)")

    t0 = time.perf_counter()
    scalar = {
        (spec, bench): run(make_predictor(spec), trace).misprediction_rate
        for spec in specs
        for bench, trace in traces.items()
    }
    baseline_s = time.perf_counter() - t0
    print(f"scalar baseline: {baseline_s:.2f}s (same {cells} cells)")

    mismatches = 0
    for (spec, bench), rate in series_cells(series).items():
        if scalar[(spec, bench)] != rate:
            mismatches += 1
            print(f"MISMATCH {spec} on {bench}: "
                  f"batched={rate} scalar={scalar[(spec, bench)]}")

    speedup = baseline_s / batched_s if batched_s else float("inf")
    verdict = "identical" if mismatches == 0 else "DIVERGED"
    emit_table(
        "sweep_speedup",
        f"Figure-3 sweep wall-clock, cold cache, scale={bench_scale():g}, "
        f"{len(specs)} specs x {len(traces)} benchmarks",
        ["path", "seconds", "speedup", "rates"],
        [
            ["scalar engine (per-cell)", f"{baseline_s:.2f}", "1.00x", verdict],
            ["batched kernel (paper_sweep)", f"{batched_s:.2f}", f"{speedup:.2f}x", verdict],
        ],
    )
    print(f"\nspeedup: {speedup:.2f}x  (target >= 3x)  mismatches={mismatches}")
    if mismatches:
        return 1
    if speedup < 3.0:
        print("WARNING: below the 3x target on this machine")
        return 2
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
