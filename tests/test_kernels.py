"""Registry-driven verification of every scheme's batch kernel.

This suite is *generated from the registry*: the parametrizations come
from :func:`repro.sim.kernels.registered_schemes` and the shared
``PORTED_GRID`` spec matrix, so a scheme that registers in
``core/registry.py`` without declaring a kernel tier, an oracle
implementation, and a golden fixture row fails here **by name** — no
kernel lands without a bit-exact cross-check, and no scheme lands
without a kernel story.

Layers:

* **completeness** — the registry/oracle/golden coverage meta-tests;
* **resolution** — ``kernel_for_spec`` routing, including rejection of
  malformed knobs back to the scalar family;
* **equivalence** — every ported spec, on two trace shapes, under both
  the ``auto`` and ``numpy`` pins, against the scalar engine, the
  step interface and the dict-based oracle;
* **dispatch** — the ``REPRO_KERNEL`` pin semantics (scalar planner
  routing, forced-c failure, numpy degradations, inheritance by
  ``REPRO_BIMODE_KERNEL``), all health-reported;
* **fuzz** — hypothesis differential replay of random traces through
  :func:`repro.verify.differential.diff_spec`, which runs every
  engine the spec qualifies for;
* **kill drill** — a mid-sweep hard worker kill on a ported family,
  asserting the supervised sweep still lands on the serial answer.
"""

from __future__ import annotations

from fractions import Fraction
from functools import lru_cache

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import faults, health
from repro.core.registry import available_schemes, make_predictor
from repro.sim import _cstep, kernels
from repro.sim.engine import run
from repro.sim.fused import plan_families
from repro.verify.differential import diff_spec
from repro.verify.oracle import (
    oracle_detailed,
    oracle_rate,
    oracle_supports,
    oracle_supports_detailed,
)
from tests.conftest import (
    ALL_SPECS,
    PORTED_GRID,
    make_toy_trace,
    scalar_predictions,
)

#: scheme -> kernel kind for every PORTED_GRID spec, resolved once.
GRID_KINDS = {spec: kernels.kernel_for_spec(spec)[0] for spec in PORTED_GRID}


@pytest.fixture(autouse=True)
def clean_health():
    health.clear()
    yield
    health.clear()


@lru_cache(maxsize=None)
def _trace(kind: str):
    if kind == "toy":
        return make_toy_trace()
    return make_toy_trace(length=1500, seed=13, num_branches=96)


@lru_cache(maxsize=None)
def _scalar_rate(spec: str, trace_kind: str) -> float:
    trace = _trace(trace_kind)
    return run(make_predictor(spec), trace).misprediction_rate


class TestRegistryCompleteness:
    """Satellite: a future scheme cannot register silently.

    Each assertion fails with the offending scheme's name, so the
    remediation ("declare a tier / write an oracle / freeze a golden
    row") is readable from the failure alone.
    """

    def test_every_registered_scheme_declares_a_kernel_tier(self):
        tiers = kernels.registered_schemes()
        for scheme in available_schemes():
            assert scheme in tiers, (
                f"scheme {scheme!r} is registered in core/registry.py but "
                "declares no kernel tier in sim/kernels.py — port it (PORTED); "
                "the SCALAR_ONLY escape hatch is retired and must stay empty"
            )

    def test_registry_declares_no_phantom_schemes(self):
        registered = set(available_schemes())
        for scheme in kernels.registered_schemes():
            assert scheme in registered, (
                f"sim/kernels.py declares {scheme!r} but core/registry.py "
                "does not register it"
            )

    def test_every_registered_scheme_has_an_oracle(self):
        from tests.test_golden import GOLDEN_SPECS

        example = {spec.split(":", 1)[0]: spec for spec in GOLDEN_SPECS}
        for scheme in available_schemes():
            spec = example.get(scheme)
            assert spec is not None, f"no example spec for scheme {scheme!r}"
            assert oracle_supports(spec), (
                f"scheme {scheme!r} has no oracle implementation in "
                "verify/oracle.py"
            )

    def test_every_registered_scheme_has_a_golden_row(self):
        import json

        from tests.test_golden import GOLDEN_PATH

        rates = json.loads(GOLDEN_PATH.read_text())["rates"]
        frozen = {spec.split(":", 1)[0] for spec in rates}
        for scheme in available_schemes():
            assert scheme in frozen, (
                f"scheme {scheme!r} has no golden fixture row — add a spec "
                "to tests/test_golden.py GOLDEN_SPECS and regenerate"
            )

    def test_scalar_allowlist_is_explicit_and_disjoint(self):
        tiers = kernels.registered_schemes()
        scalar = {s for s, tier in tiers.items() if tier == "scalar"}
        assert scalar == set(kernels.SCALAR_ONLY)
        assert not (set(kernels.PORTED) & kernels.SCALAR_ONLY)

    def test_scalar_only_tier_is_retired(self):
        """ISSUE 9 acceptance: every registered scheme has a batch
        kernel; nothing is allowed to hide behind the scalar tier."""
        assert kernels.SCALAR_ONLY == frozenset()
        assert set(kernels.PORTED) | {"gshare", "bimode"} == set(
            available_schemes()
        )
        for scheme, tier in kernels.registered_schemes().items():
            assert tier != "scalar", scheme

    def test_tiers_are_known_values(self):
        for scheme, tier in kernels.registered_schemes().items():
            assert tier in ("fused", "lane", "cloop", "scalar"), (scheme, tier)

    def test_at_least_seven_newly_ported_schemes(self):
        """ISSUE acceptance: >= 7 schemes beyond gshare/bimode run
        through lane-batched kernels."""
        ported = [s for s, t in kernels.registered_schemes().items() if t in ("lane", "cloop")]
        assert len(ported) >= 7, ported

    def test_every_registered_scheme_has_a_detailed_tier(self):
        """ISSUE 10 acceptance: every scheme's Section-4 pipeline runs
        batched — no registered scheme may hide behind the scalar
        ``simulate_detailed`` loop."""
        tiers = kernels.registered_detailed_tiers()
        for scheme in available_schemes():
            assert scheme in tiers, (
                f"scheme {scheme!r} reports no detailed tier — register it "
                "in sim/kernels.py"
            )
            assert tiers[scheme] != "scalar", (
                f"scheme {scheme!r} has no batch attribution kernel — wire "
                "a `detailed` callable into its PORTED entry in "
                "sim/kernels.py (lane kernel in sim/lanes.py, compiled "
                "loop in sim/_cstep.py)"
            )
        for scheme, entry in kernels.PORTED.items():
            assert entry.detailed is not None, (
                f"PORTED entry for {scheme!r} declares no detailed kernel"
            )

    def test_every_registered_scheme_has_detailed_oracle_coverage(self):
        """The dict-based oracle must attribute counter ids for every
        scheme, or the detailed kernels have nothing to answer to."""
        from tests.test_golden import GOLDEN_SPECS

        example = {spec.split(":", 1)[0]: spec for spec in GOLDEN_SPECS}
        for scheme in available_schemes():
            spec = example.get(scheme)
            assert spec is not None, f"no example spec for scheme {scheme!r}"
            assert oracle_supports_detailed(spec), (
                f"scheme {scheme!r} has no counter-id attribution in "
                "verify/oracle.py — add a `counter_id` method to its oracle"
            )

    def test_every_detailed_kernel_has_a_golden_row(self):
        """Each distinct detailed kernel implementation (the two-level
        family and the statics share one each) must answer to a frozen
        Section-4 summary in tests/golden/detailed.json."""
        from tests.test_golden import DETAILED_SPECS

        frozen_kernels = {
            kernels.PORTED[scheme].detailed
            for scheme in {spec.split(":", 1)[0] for spec in DETAILED_SPECS}
            if scheme in kernels.PORTED
        }
        for scheme, entry in kernels.PORTED.items():
            assert entry.detailed in frozen_kernels, (
                f"the detailed kernel behind {scheme!r} has no frozen "
                "Section-4 summary — add a spec to tests/test_golden.py "
                "DETAILED_SPECS and regenerate tests/golden/detailed.json"
            )

    def test_family_order_spans_every_kind(self):
        order = kernels.family_order()
        assert order[0] == "gshare"
        assert order[-1] == "scalar"
        assert set(order) == {"gshare", "bimode", "scalar", *kernels.PORTED}

    def test_ported_grid_covers_every_ported_scheme_twice(self):
        for scheme, entry in kernels.PORTED.items():
            sizes = [s for s in PORTED_GRID if s.split(":", 1)[0] == scheme]
            # the knob-less statics (direct-rate schemes) admit exactly
            # one spec spelling; everything else needs >= 2 geometries
            want = 1 if entry.rates is not None else 2
            assert len(sizes) >= want, (
                f"PORTED_GRID needs >= {want} size(s) of {scheme!r}"
            )


class TestKernelForSpec:
    @pytest.mark.parametrize("spec", PORTED_GRID)
    def test_grid_specs_resolve_to_their_scheme(self, spec):
        kind, lane = kernels.kernel_for_spec(spec)
        assert kind == spec.split(":", 1)[0]
        assert lane is not None

    def test_fused_families_keep_their_kind(self):
        assert kernels.kernel_for_spec("gshare:index=8,hist=4")[0] == "gshare"
        assert kernels.kernel_for_spec("bimode:dir=6,hist=6,choice=6")[0] == "bimode"

    @pytest.mark.parametrize(
        "spec",
        [
            "perceptron:index=6,hist=8,w=1",  # weights need >= 2 bits
            "biasfilter:table=8,run=2,sub=bimode,sub_index=6",  # no kernel lane for the sub
            "btfnt:mode=odd",  # statics take no knobs
            "agree:index=8,flavor=mild",  # unknown knob -> scalar raises it
            "bimodal:index=30",  # out-of-range geometry
            "gskew:bank=7,update=sideways",
            "not a spec",
        ],
    )
    def test_unported_and_malformed_specs_fall_to_scalar(self, spec):
        assert kernels.kernel_for_spec(spec) == ("scalar", None)

    def test_lane_parsers_mirror_scalar_defaults(self):
        """Defaulted and explicit spellings of the same configuration
        must resolve to the same lane."""
        assert kernels.kernel_for_spec("agree:index=8") == kernels.kernel_for_spec(
            "agree:index=8,hist=8,bias=8"
        )
        assert kernels.kernel_for_spec("yags:choice=6,cache=5") == (
            kernels.kernel_for_spec("yags:choice=6,cache=5,hist=5,tag=6")
        )
        assert kernels.kernel_for_spec("gskew:bank=6") == kernels.kernel_for_spec(
            "gskew:bank=6,hist=6,update=enhanced"
        )
        assert kernels.kernel_for_spec("tournament:index=7") == (
            kernels.kernel_for_spec("tournament:index=7,meta=7")
        )
        assert kernels.kernel_for_spec("perceptron:index=6") == (
            kernels.kernel_for_spec("perceptron:index=6,hist=12,w=8")
        )
        assert kernels.kernel_for_spec("biasfilter:sub_index=8") == (
            kernels.kernel_for_spec(
                "biasfilter:table=12,run=3,sub=gshare,sub_index=8,sub_hist=8"
            )
        )


class TestEquivalence:
    """Every ported spec x {auto, numpy} x two trace shapes, against
    the scalar engine and the dict-based oracle — the PR's bit-exactness
    acceptance criterion."""

    @pytest.mark.parametrize("trace_kind", ["toy", "aliasing"])
    @pytest.mark.parametrize("mode", ["auto", "numpy"])
    def test_grid_rates_match_scalar_and_oracle(self, mode, trace_kind):
        trace = _trace(trace_kind)
        drifted = []
        for family in plan_families(PORTED_GRID):
            assert family.kind != "scalar", family.specs
            rates = kernels.family_rates(
                family.kind, family.specs, family.lanes, trace, mode=mode
            )
            for spec, rate in zip(family.specs, rates):
                want = _scalar_rate(spec, trace_kind)
                if rate != want or rate != oracle_rate(spec, trace):
                    drifted.append(f"{spec} [{mode}/{trace_kind}]")
        assert not drifted, drifted

    @pytest.mark.parametrize("spec", PORTED_GRID)
    def test_predictions_match_step_interface(self, spec):
        """Per-branch bit-identity (not just equal rates) under the
        default auto dispatch."""
        trace = _trace("toy")
        kind, lane = kernels.kernel_for_spec(spec)
        (preds,) = kernels.family_predictions(kind, [spec], [lane], trace)
        expected = scalar_predictions(spec, trace)
        diverging = np.flatnonzero(preds != expected)
        assert diverging.size == 0, (
            f"{spec}: first divergence at branch {diverging[:1]}"
        )

    def test_rates_are_exact_rationals(self):
        """Registry rates are miss/length in float — the same division
        the scalar engine performs, so equality above is exact."""
        trace = _trace("toy")
        kind, lane = kernels.kernel_for_spec("agree:index=8,hist=8")
        (rate,) = kernels.family_rates(kind, ["agree:index=8,hist=8"], [lane], trace)
        frac = Fraction(rate).limit_denominator(len(trace))
        assert frac.denominator == len(trace) or rate == 0.0

    def test_empty_trace(self):
        from tests.conftest import make_trace

        empty = make_trace([], [])
        for spec in ("agree:index=6", "trimode:dir=5", "pag:hist=4,bht=4"):
            kind, lane = kernels.kernel_for_spec(spec)
            assert kernels.family_rates(kind, [spec], [lane], empty) == [0.0]


@lru_cache(maxsize=None)
def _scalar_detailed_cell(spec: str, trace_kind: str):
    detailed = make_predictor(spec).simulate_detailed(_trace(trace_kind))
    return (
        detailed.result.predictions,
        detailed.counter_ids,
        detailed.num_counters,
    )


class TestDetailedEquivalence:
    """Every ported spec's Section-4 attribution, under both the
    ``auto`` and ``numpy`` pins, on two trace shapes, against the
    scalar ``simulate_detailed`` loop and the dict-based oracle —
    predictions AND per-access counter ids, bit for bit."""

    @pytest.mark.parametrize("trace_kind", ["toy", "aliasing"])
    @pytest.mark.parametrize("mode", ["auto", "numpy"])
    def test_grid_attribution_matches_scalar(self, mode, trace_kind):
        trace = _trace(trace_kind)
        drifted = []
        for family in plan_families(PORTED_GRID):
            assert family.kind != "scalar", family.specs
            rows = kernels.family_detailed(
                family.kind, family.specs, family.lanes, trace, mode=mode
            )
            for spec, (preds, cids, num) in zip(family.specs, rows):
                want_p, want_c, want_n = _scalar_detailed_cell(spec, trace_kind)
                if (
                    num != want_n
                    or not np.array_equal(preds, want_p)
                    or not np.array_equal(cids, want_c)
                ):
                    drifted.append(f"{spec} [{mode}/{trace_kind}]")
        assert not drifted, drifted

    @pytest.mark.parametrize("spec", PORTED_GRID)
    def test_counter_ids_match_oracle(self, spec):
        """The oracle attributes independently of the lane kernels; a
        kernel that predicts right but charges the wrong counter is
        caught here by spec name."""
        trace = _trace("toy")
        assert oracle_supports_detailed(spec), spec
        o_preds, o_ids = oracle_detailed(spec, trace)
        kind, lane = kernels.kernel_for_spec(spec)
        ((preds, cids, _),) = kernels.family_detailed(kind, [spec], [lane], trace)
        assert np.array_equal(preds, o_preds), spec
        assert np.array_equal(cids, o_ids), spec

    def test_detailed_shares_family_history_pass(self):
        """Several lanes of one family resolve in one call, sharing the
        precomputed history streams; per-lane answers stay per-cell."""
        specs = ["agree:index=6,hist=6", "agree:index=8,hist=4,bias=6"]
        trace = _trace("toy")
        lanes = [kernels.kernel_for_spec(s)[1] for s in specs]
        rows = kernels.family_detailed("agree", specs, lanes, trace)
        assert len(rows) == 2
        for spec, (preds, cids, num) in zip(specs, rows):
            want_p, want_c, want_n = _scalar_detailed_cell(spec, "toy")
            assert num == want_n, spec
            assert np.array_equal(preds, want_p), spec
            assert np.array_equal(cids, want_c), spec

    def test_empty_trace(self):
        from tests.conftest import make_trace

        empty = make_trace([], [])
        for spec in ("agree:index=6", "trimode:dir=5", "btfnt"):
            kind, lane = kernels.kernel_for_spec(spec)
            ((preds, cids, num),) = kernels.family_detailed(
                kind, [spec], [lane], empty
            )
            assert len(preds) == 0 and len(cids) == 0
            assert num > 0


class TestDispatch:
    def test_invalid_pin_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "sideways")
        with pytest.raises(ValueError, match="REPRO_KERNEL"):
            kernels.kernel_mode()

    def test_default_is_auto(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        assert kernels.kernel_mode() == "auto"

    def test_scalar_pin_routes_whole_planner(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "scalar")
        (family,) = plan_families(ALL_SPECS)
        assert family.kind == "scalar"
        assert family.lanes == tuple(None for _ in family.specs)

    def test_scalar_pin_names_itself_in_degradation(self, monkeypatch):
        from repro.sim.fused import family_rates as fused_rates

        monkeypatch.setenv("REPRO_KERNEL", "scalar")
        (family,) = plan_families(["agree:index=5,hist=5"])
        fused_rates(family, _trace("toy"))
        (event,) = health.events(component="sweep-planner")
        assert "REPRO_KERNEL=scalar pin" in event.reason

    def test_forced_c_without_compiler_raises(self, monkeypatch):
        kind, lane = kernels.kernel_for_spec("agree:index=6")
        with faults.deny_compiler():
            with pytest.raises(RuntimeError, match="REPRO_KERNEL=c"):
                kernels.family_rates(
                    kind, ["agree:index=6"], [lane], _trace("toy"), mode="c"
                )

    def test_numpy_pin_degrades_cloop_schemes_to_scalar(self):
        spec = "trimode:dir=5,hist=3,choice=5"
        kind, lane = kernels.kernel_for_spec(spec)
        rates = kernels.family_rates(kind, [spec], [lane], _trace("toy"), mode="numpy")
        (event,) = health.events(component="trimode-kernel")
        assert event.actual == "scalar"
        assert event.severity == "degraded"
        assert "no numpy kernel" in event.reason
        assert rates == [_scalar_rate(spec, "toy")]

    def test_numpy_pin_keeps_counter_major_on_numpy(self):
        spec = "tournament:index=6,meta=5"
        kind, lane = kernels.kernel_for_spec(spec)
        kernels.family_rates(kind, [spec], [lane], _trace("toy"), mode="numpy")
        (event,) = health.events(component="tournament-kernel")
        assert event.actual == "numpy"
        assert event.severity == "info"

    def test_numpy_pin_degrades_perceptron_to_scalar(self):
        """Perceptron training feeds back into training — cloop tier,
        so a numpy pin must degrade it (health-reported), bit-exact."""
        spec = "perceptron:index=5,hist=6"
        kind, lane = kernels.kernel_for_spec(spec)
        rates = kernels.family_rates(kind, [spec], [lane], _trace("toy"), mode="numpy")
        (event,) = health.events(component="perceptron-kernel")
        assert event.actual == "scalar"
        assert event.severity == "degraded"
        assert "no numpy kernel" in event.reason
        assert rates == [_scalar_rate(spec, "toy")]

    def test_numpy_pin_keeps_biasfilter_on_numpy(self):
        spec = "biasfilter:table=6,run=2,sub_index=6,sub_hist=4"
        kind, lane = kernels.kernel_for_spec(spec)
        rates = kernels.family_rates(kind, [spec], [lane], _trace("toy"), mode="numpy")
        (event,) = health.events(component="biasfilter-kernel")
        assert event.actual == "numpy"
        assert event.severity == "info"
        assert rates == [_scalar_rate(spec, "toy")]

    def test_unsupported_biasfilter_sub_is_vetoed_by_name(self, monkeypatch):
        """A bias-filter spec whose sub-predictor has no kernel lane
        routes scalar, and the planner names the veto in a health event
        rather than hiding it behind the generic unfusable reason."""
        from repro.sim.fused import family_rates as fused_rates

        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        spec = "biasfilter:table=5,run=2,sub=bimode,sub_index=5,sub_hist=3"
        (family,) = plan_families([spec])
        assert family.kind == "scalar"
        rates = fused_rates(family, _trace("toy"))
        (event,) = health.events(component="biasfilter-kernel")
        assert event.actual == "scalar"
        assert event.severity == "degraded"
        assert "'bimode'" in event.reason and "gshare" in event.reason
        assert rates == {spec: _scalar_rate(spec, "toy")}

    @pytest.mark.parametrize("spec", ["always-taken", "always-not-taken", "btfnt"])
    def test_static_direct_rates_match_prediction_path(self, spec):
        """The statics' O(1) direct-rate hook must equal the rate the
        prediction lane computes, and family_rates must use it."""
        trace = _trace("toy")
        kind, lane = kernels.kernel_for_spec(spec)
        entry = kernels.PORTED[kind]
        assert entry.rates is not None
        direct = entry.rates(lane, trace)
        (preds,) = kernels.family_predictions(kind, [spec], [lane], trace)
        assert direct == np.count_nonzero(preds != trace.outcomes) / len(trace)
        health.clear()
        assert kernels.family_rates(kind, [spec], [lane], trace) == [direct]
        (event,) = health.events(component=f"{kind}-kernel")
        assert event.severity == "info"

    def test_auto_without_compiler_degrades_with_reason(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        spec = "agree:index=6,hist=6"
        kind, lane = kernels.kernel_for_spec(spec)
        baseline = kernels.family_rates(kind, [spec], [lane], _trace("toy"))
        health.clear()
        with faults.deny_compiler():
            denied = kernels.family_rates(kind, [spec], [lane], _trace("toy"))
            (event,) = health.events(component="agree-kernel")
            assert event.expected == "c"
            assert event.actual == "numpy"
            assert event.severity == "degraded"
            assert "REPRO_NO_CC" in event.reason
        assert denied == baseline

    @pytest.mark.skipif(not _cstep.available(), reason="no C compiler")
    def test_auto_with_compiler_runs_compiled(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        spec = "yags:choice=6,cache=5"
        kind, lane = kernels.kernel_for_spec(spec)
        kernels.family_rates(kind, [spec], [lane], _trace("toy"))
        (event,) = health.events(component="yags-kernel")
        assert event.actual == "c"
        assert event.severity == "info"

    def test_bimode_kernel_inherits_registry_pin(self, monkeypatch):
        from repro.sim.batch_bimode import _kernel_mode

        monkeypatch.delenv("REPRO_BIMODE_KERNEL", raising=False)
        monkeypatch.setenv("REPRO_KERNEL", "numpy")
        assert _kernel_mode() == "numpy"
        # the scheme-specific pin wins over the registry-wide one
        monkeypatch.setenv("REPRO_BIMODE_KERNEL", "python")
        assert _kernel_mode() == "python"
        # scalar pin maps to auto here: the planner already routed
        # scalar-pinned specs away from the bimode module
        monkeypatch.delenv("REPRO_BIMODE_KERNEL", raising=False)
        monkeypatch.setenv("REPRO_KERNEL", "scalar")
        assert _kernel_mode() == "auto"

    def test_registry_numpy_pin_is_end_to_end_identical(self, monkeypatch):
        """The whole ALL_SPECS grid lands on the same numbers under
        REPRO_KERNEL=numpy as under the default dispatch."""
        from repro.sim.fused import family_rates as fused_rates

        def grid():
            out = {}
            for family in plan_families(ALL_SPECS):
                out.update(fused_rates(family, _trace("toy")))
            return out

        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        baseline = grid()
        monkeypatch.setenv("REPRO_KERNEL", "numpy")
        assert grid() == baseline


class TestDifferentialFuzz:
    """Hypothesis differential replay: random traces through every
    engine each ported spec qualifies for (scalar step loop, batch
    simulate, oracle, each lane engine) via ``diff_spec``."""

    @given(
        spec=st.sampled_from(PORTED_GRID),
        data=st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_all_engines_agree_on_random_traces(self, spec, data):
        n = data.draw(st.integers(min_value=0, max_value=120), label="length")
        pcs = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=2**20 - 1),
                min_size=n,
                max_size=n,
            ),
            label="pcs",
        )
        outcomes = data.draw(
            st.lists(st.booleans(), min_size=n, max_size=n), label="outcomes"
        )
        from tests.conftest import make_trace

        report = diff_spec(spec, make_trace(pcs, outcomes, name="fuzz"))
        assert report.agree, report.summary()


class TestKillDrillPortedFamily:
    """Mid-sweep kill drill on newly-ported families: a hard worker
    kill must not change any ported-scheme cell or lose the sweep."""

    SPECS = [
        "tournament:index=6,meta=6",
        "tournament:index=7,meta=7",
        "agree:index=7,hist=7",
        "yags:choice=6,cache=5,hist=3,tag=4",
    ]

    def test_hard_killed_worker_still_lands_on_serial_answer(
        self, monkeypatch, tmp_path
    ):
        from repro.sim.parallel import TaskPolicy, evaluate_matrix_parallel
        from repro.sim.runner import evaluate_matrix
        from repro.workloads.generator import generate_trace
        from repro.workloads.profiles import get_profile

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        traces = {
            name: generate_trace(get_profile(name), length=4_000, seed=7)
            for name in ("gcc", "xlisp")
        }
        serial = evaluate_matrix(self.SPECS, traces, jobs=1)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache2"))
        with faults.inject("worker:exit:bench=gcc"):
            result = evaluate_matrix_parallel(
                self.SPECS,
                traces,
                jobs=2,
                policy=TaskPolicy(retries=2, backoff=0.0),
            )
        assert result == serial
        assert result.failures == []


class TestKillDrillSecondWave(TestKillDrillPortedFamily):
    """The perceptron/biasfilter/static drill: same hard worker kill,
    on the second-wave families — journal resume must be bit-identical
    (sequential C-loop state never leaks across the retry boundary)."""

    SPECS = [
        "perceptron:index=5,hist=8",
        "perceptron:index=6,hist=6,w=4",
        "biasfilter:table=6,run=2,sub_index=7,sub_hist=5",
        "btfnt",
    ]
