"""Unit tests for the bursty-deviation behaviour extensions."""

from random import Random

import pytest

from repro.workloads.components import (
    BiasedBehavior,
    CorrelatedBehavior,
    LoopBehavior,
)


class TestBurstyBiased:
    def test_deviation_rate_preserved(self):
        rng = Random(1)
        b = BiasedBehavior(0.95, burst_length=12)
        outcomes = [b.next_outcome(0, rng) for _ in range(40_000)]
        rate = sum(outcomes) / len(outcomes)
        assert rate == pytest.approx(0.95, abs=0.02)

    def test_deviations_are_bursty(self):
        """Deviant outcomes must cluster: far fewer deviation runs than
        deviations, compared to the iid variant."""
        rng = Random(2)
        bursty = BiasedBehavior(0.9, burst_length=16)
        outcomes = [bursty.next_outcome(0, rng) for _ in range(30_000)]

        def runs(values):
            return sum(
                1
                for i, v in enumerate(values)
                if not v and (i == 0 or values[i - 1])
            )

        deviations = outcomes.count(False)
        assert deviations > 0
        assert runs(outcomes) < deviations / 4  # mean run length > 4

    def test_iid_default_unchanged(self):
        rng = Random(3)
        b = BiasedBehavior(0.5)
        outcomes = [b.next_outcome(0, rng) for _ in range(2000)]
        assert 0.45 < sum(outcomes) / 2000 < 0.55

    def test_not_taken_dominant(self):
        rng = Random(4)
        b = BiasedBehavior(0.05, burst_length=8)
        rate = sum(b.next_outcome(0, rng) for _ in range(20_000)) / 20_000
        assert rate == pytest.approx(0.05, abs=0.02)

    def test_reset_clears_phase(self):
        rng = Random(5)
        b = BiasedBehavior(0.9, burst_length=8)
        for _ in range(100):
            b.next_outcome(0, rng)
        b.reset()
        assert b._remaining == 0 and b._deviant is False

    def test_validation(self):
        with pytest.raises(ValueError):
            BiasedBehavior(0.5, burst_length=0)


class TestBurstyCorrelated:
    def test_deviation_rate_preserved(self):
        rng = Random(6)
        b = CorrelatedBehavior(positions=[0], table=[True, True], noise=0.1,
                               burst_length=16)
        outcomes = [b.next_outcome(0, rng) for _ in range(40_000)]
        deviation = outcomes.count(False) / len(outcomes)
        assert deviation == pytest.approx(0.1, abs=0.03)

    def test_zero_noise_ignores_burst_machinery(self):
        rng = Random(7)
        b = CorrelatedBehavior(positions=[0], table=[False, True], burst_length=16)
        assert b.next_outcome(1, rng) is True
        assert b.next_outcome(0, rng) is False

    def test_deviant_phase_inverts_table(self):
        rng = Random(8)
        b = CorrelatedBehavior(positions=[0], table=[False, True], noise=1.0,
                               burst_length=4)
        # noise=1.0: always deviant, so the table is always inverted
        assert b.next_outcome(1, rng) is False
        assert b.next_outcome(0, rng) is True

    def test_validation(self):
        with pytest.raises(ValueError):
            CorrelatedBehavior(positions=[0], table=[0, 1], burst_length=0)


class TestStickyLoopTrips:
    def test_resample_zero_keeps_first_trip(self):
        rng = Random(9)
        loop = LoopBehavior(trip_count=6, jitter=2, resample_prob=0.0)
        trips = []
        count = 0
        for _ in range(600):
            if loop.next_outcome(0, rng):
                count += 1
            else:
                trips.append(count + 1)
                count = 0
        assert len(set(trips)) == 1  # never re-drawn

    def test_small_resample_changes_occasionally(self):
        rng = Random(10)
        loop = LoopBehavior(trip_count=6, jitter=2, resample_prob=0.05)
        trips = []
        count = 0
        for _ in range(60_000):
            if loop.next_outcome(0, rng):
                count += 1
            else:
                trips.append(count + 1)
                count = 0
        changes = sum(1 for a, b in zip(trips, trips[1:]) if a != b)
        assert 0 < changes < len(trips) / 5

    def test_default_resamples_every_visit(self):
        rng = Random(11)
        loop = LoopBehavior(trip_count=6, jitter=2)  # resample_prob=1.0
        trips = []
        count = 0
        for _ in range(3000):
            if loop.next_outcome(0, rng):
                count += 1
            else:
                trips.append(count + 1)
                count = 0
        assert len(set(trips)) > 1

    def test_validation(self):
        with pytest.raises(ValueError):
            LoopBehavior(trip_count=3, resample_prob=1.5)
