"""Table 4 — numbers of changes between bias classes.

The paper compares the history-indexed gshare scheme against bi-mode on
gcc, counting how often each counter's access stream changes dominance
role (dominant / non-dominant / WB); bi-mode has fewer changes in every
column, showing its ST and SNT substreams are less intermingled.

Geometry follows the paper's Section 4 setup scaled to the synthetic
traces: a gshare with full history against a bi-mode of comparable
second-level size.
"""

from __future__ import annotations

import pytest

from benchmarks.common import detailed_summaries, emit_table, load_detailed_trace

INDEX_BITS = 12
SCHEMES = [
    ("history-indexed", f"gshare:index={INDEX_BITS},hist={INDEX_BITS}"),
    ("bi-mode", f"bimode:dir={INDEX_BITS - 1},hist={INDEX_BITS - 1},choice={INDEX_BITS - 1}"),
]


@pytest.mark.benchmark(group="table4")
def test_table4_class_changes(benchmark):
    trace = load_detailed_trace("gcc")

    def compute():
        summaries = detailed_summaries(
            [spec for _, spec in SCHEMES], {"gcc": trace}, stem="table4_gcc"
        )
        return {label: summaries[spec]["gcc"]["class_changes"] for label, spec in SCHEMES}

    changes = benchmark.pedantic(compute, rounds=1, iterations=1)

    rows = [
        [label, c["dominant"], c["non_dominant"], c["wb"], c["total"]]
        for label, c in changes.items()
    ]
    emit_table(
        "table4_class_changes",
        f"Table 4 — bias-class changes on gcc ({len(trace)} branches)",
        ["scheme", "dominant", "non-dominant", "WB", "total"],
        rows,
    )

    bimode = changes["bi-mode"]
    gshare = changes["history-indexed"]
    # the paper's Table 4: bi-mode has fewer changes overall, and in the
    # interference-critical non-dominant column
    assert bimode["total"] < gshare["total"]
    assert bimode["non_dominant"] < gshare["non_dominant"]
