"""Measure the kernel-registry speedup on the ported-scheme sweeps.

Two measurement waves, each a cold-cache scalar-pin vs registry
comparison over its slice of the shared ``PORTED_GRID`` matrix and the
CINT95 suite:

* **wave 1** (the PR-7 gate) — bimodal, the whole two-level family,
  agree, gskew, tournament, tri-mode and YAGS at 2-3 sizes each;
  acceptance bar >= 3x, recorded in
  ``results/BENCH_kernel_registry.json``;
* **wave 2** (the SCALAR_ONLY retirement gate) — perceptron, the bias
  filter over its gshare/bimodal sub-predictors, and the three static
  schemes; acceptance bar >= 5x, recorded in
  ``results/BENCH_kernel_registry2.json``.

Engines per wave:

* **scalar** — ``REPRO_KERNEL=scalar``: every cell through the scalar
  per-branch engine, the only path these schemes had before their
  kernels landed;
* **registry** — ``REPRO_KERNEL=auto``: the fused planner groups the
  grid into per-scheme families and each family runs its lane kernel
  (compiled counter/step loops when a C compiler exists, numpy lanes
  otherwise).

Rates are asserted bit-identical cell by cell, and every cell is
additionally checked against the differential oracle *and* the scalar
engine on a power-on prefix of its trace (``$REPRO_KERNEL_ORACLE_N``
branches, default 20 000).  Rows are appended to
``results/sweep_speedup.csv`` under a per-wave prefix.

Not a pytest file on purpose — timing cold sweeps back-to-back is an
explicit measurement run::

    PYTHONPATH=src:. REPRO_BENCH_SCALE=0.1 python benchmarks/measure_kernel_registry.py --wave 2
"""

from __future__ import annotations

import argparse
import csv
import json
import os
import sys
import tempfile
import time
from contextlib import contextmanager
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.common import ascii_table, bench_scale, load_bench_suite, results_dir
from repro.core.registry import make_predictor
from repro.sim.engine import run
from repro.sim.fused import plan_families
from repro.sim.runner import ResultCache, evaluate_matrix, evaluate_specs
from repro.verify.oracle import oracle_rate
from tests.conftest import PORTED_GRID

SPEEDUP_GATE = 3.0
SPEEDUP_GATE2 = 5.0

#: The second measurement wave: the schemes that retired SCALAR_ONLY.
SECOND_WAVE_SCHEMES = frozenset(
    {"perceptron", "biasfilter", "always-taken", "always-not-taken", "btfnt"}
)

WAVES = {
    "1": {
        "specs": [
            s for s in PORTED_GRID
            if s.split(":", 1)[0] not in SECOND_WAVE_SCHEMES
        ],
        "gate": SPEEDUP_GATE,
        "prefix": "ported-scheme grid",
        "json": "BENCH_kernel_registry.json",
        "what": "ported-scheme grid (bimodal/two-level/agree/gskew/"
                "tournament/trimode/yags, 2-3 sizes each) x CINT95 "
                "suite, cold cache: scalar engine vs kernel registry",
    },
    "2": {
        "specs": [
            s for s in PORTED_GRID
            if s.split(":", 1)[0] in SECOND_WAVE_SCHEMES
        ],
        "gate": SPEEDUP_GATE2,
        "prefix": "second-wave grid",
        "json": "BENCH_kernel_registry2.json",
        "what": "second-wave grid (perceptron/biasfilter/statics — the "
                "retired SCALAR_ONLY tier) x CINT95 suite, cold cache: "
                "scalar engine vs kernel registry",
    },
}


@contextmanager
def _env(**overrides):
    """Temporarily set (or unset, via ``None``) environment variables."""
    saved = {key: os.environ.get(key) for key in overrides}
    try:
        for key, value in overrides.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
        yield
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


def measure_registry_sweep(wave: str = "1"):
    """Scalar-pin vs registry dispatch over one wave's grid.

    Returns ``(rows, summary, mismatches)`` in the shape of the other
    measurement scripts: CSV rows for ``sweep_speedup.csv``, the
    ``BENCH_kernel_registry*.json`` payload, and the total count of
    diverging cells (0 required).
    """
    config = WAVES[wave]
    specs = list(config["specs"])
    gate = config["gate"]
    traces = load_bench_suite("cint95")
    families = plan_families(specs)

    # Warm pass: one tiny registry evaluation pays the one-time C
    # driver build and imports outside the timed sweeps.
    warm = next(iter(traces.values()))[:2_000]
    with _env(REPRO_KERNEL=None):
        evaluate_specs([specs[0], specs[-1]], warm)

    with tempfile.TemporaryDirectory() as tmp, _env(REPRO_KERNEL="scalar"):
        t0 = time.perf_counter()
        scalar = evaluate_matrix(specs, traces, cache=ResultCache(Path(tmp)))
        scalar_s = time.perf_counter() - t0

    with tempfile.TemporaryDirectory() as tmp, _env(REPRO_KERNEL=None):
        t0 = time.perf_counter()
        registry = evaluate_matrix(specs, traces, cache=ResultCache(Path(tmp)))
        registry_s = time.perf_counter() - t0

    mismatches = 0
    for spec in specs:
        for bench in traces:
            if registry[spec][bench] != scalar[spec][bench]:
                mismatches += 1
                print(f"MISMATCH {spec} on {bench}: "
                      f"registry={registry[spec][bench]} "
                      f"scalar={scalar[spec][bench]}")

    # Differential oracle + scalar engine, every cell, power-on prefix.
    oracle_n = int(os.environ.get("REPRO_KERNEL_ORACLE_N", "20000"))
    oracle_cells = oracle_mismatches = 0
    for bench, trace in traces.items():
        prefix = trace[:oracle_n]
        with _env(REPRO_KERNEL=None):
            registry_prefix = evaluate_specs(specs, prefix)
        for spec in specs:
            scalar_rate = run(make_predictor(spec), prefix).misprediction_rate
            oracle = oracle_rate(spec, prefix)
            oracle_cells += 1
            if not (registry_prefix[spec] == scalar_rate == oracle):
                oracle_mismatches += 1
                print(f"MISMATCH oracle {spec} on {bench} (n={len(prefix)}): "
                      f"registry={registry_prefix[spec]} scalar={scalar_rate} "
                      f"oracle={oracle}")

    speedup = scalar_s / registry_s if registry_s else float("inf")
    verdict = "identical" if mismatches + oracle_mismatches == 0 else "DIVERGED"
    summary = {
        "what": config["what"],
        "suite": "cint95",
        "scale": bench_scale(),
        "specs": len(specs),
        "benches": len(traces),
        "cells": len(specs) * len(traces),
        "families": [
            {"kind": family.kind, "specs": len(family)} for family in families
        ],
        "scalar_s": round(scalar_s, 3),
        "registry_s": round(registry_s, 3),
        "speedup": round(speedup, 2),
        "gate": f">= {gate}x, rates bit-identical per cell",
        "rates_identical": mismatches == 0,
        "oracle": {
            "prefix_branches": oracle_n,
            "cells_checked": oracle_cells,
            "registry_scalar_oracle_identical": oracle_mismatches == 0,
        },
    }
    rows = [
        [f"{config['prefix']} scalar engine (REPRO_KERNEL=scalar)",
         f"{scalar_s:.2f}", "1.00x", verdict],
        [f"{config['prefix']} kernel registry (REPRO_KERNEL=auto)",
         f"{registry_s:.2f}", f"{speedup:.2f}x", verdict],
    ]
    return rows, summary, mismatches + oracle_mismatches


def _append_speedup_rows(rows, prefix: str) -> Path:
    """Append rows to the shared ``sweep_speedup.csv`` artifact,
    replacing any previous rows carrying this wave's ``prefix``."""
    path = results_dir() / "sweep_speedup.csv"
    headers = ["path", "seconds", "speedup", "rates"]
    existing = []
    if path.exists():
        with path.open() as fh:
            reader = csv.reader(fh)
            next(reader, None)
            existing = [
                row for row in reader
                if row and not row[0].startswith(prefix)
            ]
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(headers)
        writer.writerows(existing)
        writer.writerows(rows)
    return path


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--wave", choices=sorted(WAVES), default="1",
        help="which grid slice to measure (default: 1, the PR-7 grid)",
    )
    args = parser.parse_args(argv)
    config = WAVES[args.wave]
    rows, summary, mismatches = measure_registry_sweep(args.wave)
    print()
    print(ascii_table(
        ["path", "seconds", "speedup", "rates"],
        rows,
        title=f"kernel registry: {config['prefix']} sweep",
    ))
    path = _append_speedup_rows(rows, config["prefix"])
    print(f"[appended to {path}]")
    bench_path = results_dir() / config["json"]
    bench_path.write_text(json.dumps(summary, indent=2) + "\n")
    print(f"[written {bench_path}]")
    if mismatches:
        print(f"FAILED: {mismatches} diverging cell(s)")
        return 1
    if summary["speedup"] < config["gate"]:
        print(f"BELOW TARGET: {summary['speedup']}x < {config['gate']}x")
        return 2
    print(f"OK: {summary['speedup']}x >= {config['gate']}x, all cells identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())
