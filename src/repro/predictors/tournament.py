"""McFarling's combining (tournament) predictor [McFarling93].

Two component predictors run side by side; a *meta* table of 2-bit
counters indexed by the branch address learns, per branch, which
component to trust.  The meta counter trains only when the components
disagree, toward the component that was right (the 21264 policy).

This is the combining half of the technical note that also introduced
gshare, and a useful upper-ish baseline for the comparison benches: a
bimodal + gshare tournament captures per-address bias and global
correlation with dedicated structures, at the cost of three tables.
"""

from __future__ import annotations

import numpy as np

from repro.core.counters import WEAKLY_TAKEN, CounterTable
from repro.core.indexing import mask
from repro.core.interfaces import (
    BranchPredictor,
    DetailedSimulation,
    SimulationResult,
)
from repro.traces.record import BranchTrace

__all__ = ["TournamentPredictor"]


class TournamentPredictor(BranchPredictor):
    """Meta-selected pair of component predictors.

    Parameters
    ----------
    component_a, component_b:
        Any two :class:`~repro.core.interfaces.BranchPredictor` objects.
        Meta state ``>= 2`` ("taken") selects ``component_b``.
    meta_index_bits:
        log2 of the meta table size (indexed by branch address).
    """

    scheme = "tournament"

    def __init__(
        self,
        component_a: BranchPredictor,
        component_b: BranchPredictor,
        meta_index_bits: int,
    ):
        if meta_index_bits < 0:
            raise ValueError(f"meta_index_bits must be >= 0, got {meta_index_bits}")
        self.component_a = component_a
        self.component_b = component_b
        self.meta = CounterTable(meta_index_bits, init=WEAKLY_TAKEN)
        self.meta_index_bits = meta_index_bits
        self._meta_mask = mask(meta_index_bits)

    @property
    def name(self) -> str:
        return (
            f"tournament:[{self.component_a.name}|{self.component_b.name}],"
            f"meta=2^{self.meta_index_bits}"
        )

    def size_bits(self) -> int:
        return (
            self.component_a.size_bits()
            + self.component_b.size_bits()
            + self.meta.size_bits()
        )

    def reset(self) -> None:
        self.component_a.reset()
        self.component_b.reset()
        self.meta.reset()

    def predict(self, pc: int) -> bool:
        if self.meta.predict(pc & self._meta_mask):
            return self.component_b.predict(pc)
        return self.component_a.predict(pc)

    def update(self, pc: int, taken: bool) -> None:
        prediction_a = self.component_a.predict(pc)
        prediction_b = self.component_b.predict(pc)
        # meta trains toward the correct component only on disagreement
        if prediction_a != prediction_b:
            self.meta.update(pc & self._meta_mask, prediction_b == taken)
        self.component_a.update(pc, taken)
        self.component_b.update(pc, taken)

    # -- batch interface -----------------------------------------------------------

    def simulate_detailed(self, trace: BranchTrace) -> DetailedSimulation:
        """The prediction counter is the *selected* component's counter:
        component-a ids come first, component-b ids are offset by
        component-a's counter count.  Requires both components to expose
        the ``_counter_id`` attribution hook (the spec-form bimodal +
        gshare pairing does)."""
        a, b = self.component_a, self.component_b
        try:
            size_a = a._num_detail_counters()
            size_b = b._num_detail_counters()
        except AttributeError:
            raise NotImplementedError(
                f"tournament components [{a.name}|{b.name}] do not expose "
                "counter attribution"
            ) from None
        n = len(trace)
        predictions = np.empty(n, dtype=bool)
        counter_ids = np.empty(n, dtype=np.int64)
        meta = self.meta
        meta_mask = self._meta_mask

        for i, (pc, taken) in enumerate(
            zip(trace.pcs.tolist(), trace.outcomes.tolist())
        ):
            if meta.predict(pc & meta_mask):
                counter_ids[i] = size_a + b._counter_id(pc)
                predictions[i] = b.predict(pc)
            else:
                counter_ids[i] = a._counter_id(pc)
                predictions[i] = a.predict(pc)
            self.update(pc, taken)

        result = SimulationResult(
            predictor_name=self.name,
            trace_name=trace.name,
            predictions=predictions,
            outcomes=trace.outcomes,
        )
        return DetailedSimulation(
            result=result,
            counter_ids=counter_ids,
            num_counters=size_a + size_b,
            pcs=trace.pcs,
        )
