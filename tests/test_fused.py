"""Fused sweep planner and family evaluation (:mod:`repro.sim.fused`).

Covers the PR's equivalence contract end to end: the planner's family
grouping and dedupe, ``REPRO_FUSED`` dispatch (including the compiler-
denied fallbacks, all health-reported), bit-identity of the fused
passes against the per-cell scalar engine *and* the differential
oracle over Figure-2/3/4 spec grids, hypothesis fuzzing of random
grids, the parallel planner's (spec, trace) dedupe with fan-out, and
per-cell journal resume under per-family tasks.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import faults, health
from repro.core.registry import make_predictor
from repro.sim.engine import run
from repro.sim.fused import (
    SpecFamily,
    family_rates,
    fused_active,
    fused_mode,
    plan_families,
)
from repro.sim.journal import SweepJournal
from repro.sim.runner import evaluate_specs, trace_key
from repro.traces.record import BranchTrace
from repro.verify.oracle import oracle_rate
from repro.workloads.generator import generate_trace
from repro.workloads.profiles import get_profile
from tests.conftest import figure_grid


@pytest.fixture(autouse=True)
def clean_health():
    health.clear()
    yield
    health.clear()


class TestPlanner:
    def test_partitions_by_kind_in_fixed_order(self):
        scalar_spec = "biasfilter:table=5,run=2,sub=bimode,sub_index=5,sub_hist=3"
        families = plan_families(
            [
                "bimode:dir=5,hist=5,choice=5",
                "always-taken",
                scalar_spec,
                "gshare:index=6,hist=3",
                "gshare:index=6,hist=6",
                "bimodal:index=5",
            ]
        )
        assert [f.kind for f in families] == [
            "gshare",
            "bimode",
            "bimodal",
            "always-taken",
            "scalar",
        ]
        by_kind = {f.kind: f for f in families}
        assert by_kind["gshare"].specs == (
            "gshare:index=6,hist=3",
            "gshare:index=6,hist=6",
        )
        assert by_kind["bimode"].specs == ("bimode:dir=5,hist=5,choice=5",)
        assert by_kind["bimodal"].specs == ("bimodal:index=5",)
        assert by_kind["bimodal"].lanes[0] is not None
        assert by_kind["always-taken"].specs == ("always-taken",)
        assert by_kind["always-taken"].lanes[0] is not None
        assert by_kind["scalar"].specs == (scalar_spec,)
        assert by_kind["scalar"].lanes == (None,)

    def test_empty_families_are_omitted(self):
        (only,) = plan_families(["gshare:index=5,hist=2"])
        assert only.kind == "gshare"
        assert len(only) == 1

    def test_duplicate_specs_collapse_to_one_lane(self):
        (family,) = plan_families(
            ["gshare:index=6,hist=4", "gshare:index=6,hist=4"]
        )
        assert family.specs == ("gshare:index=6,hist=4",)
        assert len(family.lanes) == 1

    def test_bimode_ablation_variants_stay_in_one_family(self):
        (family,) = plan_families(
            [
                "bimode:dir=5,hist=5,choice=5",
                "bimode:dir=5,hist=5,choice=5,full_update=1",
                "bimode:dir=5,hist=5,choice=5,choice_hist=1",
            ]
        )
        assert family.kind == "bimode"
        assert len(family) == 3

    def test_spec_family_validates(self):
        with pytest.raises(ValueError):
            SpecFamily(kind="exotic", specs=("a",), lanes=(None,))
        with pytest.raises(ValueError):
            SpecFamily(kind="scalar", specs=("a", "b"), lanes=(None,))


class TestDispatch:
    def test_mode_default_and_values(self, monkeypatch):
        monkeypatch.delenv("REPRO_FUSED", raising=False)
        assert fused_mode() == "auto"
        monkeypatch.setenv("REPRO_FUSED", "ON")
        assert fused_mode() == "on"
        monkeypatch.setenv("REPRO_FUSED", "off")
        assert fused_mode() == "off"
        monkeypatch.setenv("REPRO_FUSED", "sideways")
        with pytest.raises(ValueError):
            fused_mode()

    def test_pinned_modes(self):
        assert fused_active("off") is False
        assert fused_active("on") is True

    def test_auto_without_compiler_degrades_with_event(self):
        with faults.deny_compiler():
            health.clear()
            assert fused_active("auto") is False
            (event,) = health.events(component="fused-planner")
            assert event.expected == "fused"
            assert event.actual == "batched"
            assert event.severity == "degraded"

    def test_scalar_family_reports_degradation(self, small_workload):
        health.clear()
        scalar_spec = "biasfilter:table=5,run=2,sub=bimode,sub_index=5,sub_hist=3"
        rates = evaluate_specs([scalar_spec, "gshare:index=6,hist=6"], small_workload)
        assert set(rates) == {scalar_spec, "gshare:index=6,hist=6"}
        (event,) = health.events(component="sweep-planner")
        assert event.actual == "scalar"
        assert event.severity == "degraded"
        assert "biasfilter" in event.reason


class TestFamilyDetailed:
    """The per-family Section-4 path (what ``detailed_matrix`` workers
    run): bit-identity against the per-predictor scalar loop, scalar
    family degradations, and the ``REPRO_DETAILED_KERNEL`` pin at
    family granularity."""

    MIXED_GRID = [
        "gshare:index=7,hist=5",
        "bimode:dir=6,hist=6,choice=5",
        "agree:index=6,hist=6",
        "perceptron:index=5,hist=6",
        "btfnt",
    ]

    @pytest.fixture(scope="class")
    def trace(self):
        from tests.conftest import make_toy_trace

        return make_toy_trace(length=1200, seed=29)

    def test_families_match_scalar_loop(self, trace):
        from repro.sim.fused import family_detailed

        rows = {}
        for family in plan_families(self.MIXED_GRID):
            rows.update(family_detailed(family, trace))
        assert set(rows) == set(self.MIXED_GRID)
        for spec, (preds, cids, num) in rows.items():
            detailed = make_predictor(spec).simulate_detailed(trace)
            assert np.array_equal(preds, detailed.result.predictions), spec
            assert np.array_equal(cids, detailed.counter_ids), spec
            assert num == detailed.num_counters, spec

    def test_scalar_family_reports_detailed_degradation(self, trace):
        from repro.sim.fused import family_detailed

        scalar_spec = "biasfilter:table=5,run=2,sub=bimode,sub_index=5,sub_hist=3"
        (family,) = plan_families([scalar_spec])
        assert family.kind == "scalar"
        health.clear()
        rows = family_detailed(family, trace)
        detailed = make_predictor(scalar_spec).simulate_detailed(trace)
        preds, cids, num = rows[scalar_spec]
        assert np.array_equal(preds, detailed.result.predictions)
        assert np.array_equal(cids, detailed.counter_ids)
        assert num == detailed.num_counters
        (event,) = [
            e
            for e in health.events(component="detailed-kernel")
            if e.actual == "scalar"
        ]
        assert event.severity == "degraded"

    def test_batch_pin_refuses_scalar_family(self, trace, monkeypatch):
        from repro.sim.fused import family_detailed

        scalar_spec = "biasfilter:table=5,run=2,sub=bimode,sub_index=5,sub_hist=3"
        (family,) = plan_families([scalar_spec])
        monkeypatch.setenv("REPRO_DETAILED_KERNEL", "batch")
        with pytest.raises(RuntimeError, match="biasfilter"):
            family_detailed(family, trace)

    def test_batch_pin_refuses_sequential_scheme_without_compiler(
        self, trace, monkeypatch
    ):
        """A cloop-tier family (no numpy kernel) under the batch pin
        must refuse when the compiler is denied rather than quietly run
        the scalar loop."""
        from repro.sim.fused import family_detailed

        (family,) = plan_families(["perceptron:index=5,hist=6"])
        monkeypatch.setenv("REPRO_DETAILED_KERNEL", "batch")
        with faults.deny_compiler():
            with pytest.raises(RuntimeError, match="perceptron"):
                family_detailed(family, trace)

    def test_scalar_pin_is_bit_identical(self, trace, monkeypatch):
        from repro.sim.fused import family_detailed

        def grid():
            rows = {}
            for family in plan_families(self.MIXED_GRID):
                rows.update(family_detailed(family, trace))
            return rows

        monkeypatch.delenv("REPRO_DETAILED_KERNEL", raising=False)
        baseline = grid()
        monkeypatch.setenv("REPRO_DETAILED_KERNEL", "scalar")
        pinned = grid()
        for spec in self.MIXED_GRID:
            assert np.array_equal(baseline[spec][0], pinned[spec][0]), spec
            assert np.array_equal(baseline[spec][1], pinned[spec][1]), spec
            assert baseline[spec][2] == pinned[spec][2], spec


class TestFigureGridEquivalence:
    """Fused == per-cell scalar engine == differential oracle, for the
    Figure-2/3/4 grid shape, across every dispatch mode."""

    @pytest.fixture(scope="class")
    def grid(self):
        return figure_grid()

    @pytest.fixture(scope="class")
    def reference(self, grid, small_workload):
        return {
            spec: run(make_predictor(spec), small_workload).misprediction_rate
            for spec in grid
        }

    def test_reference_matches_oracle(self, grid, reference, small_workload):
        for spec in grid:
            assert reference[spec] == oracle_rate(spec, small_workload), spec

    @pytest.mark.parametrize("mode", ["on", "off", "auto"])
    def test_modes_are_bit_identical(
        self, grid, reference, small_workload, monkeypatch, mode
    ):
        monkeypatch.setenv("REPRO_FUSED", mode)
        assert evaluate_specs(grid, small_workload) == reference

    @pytest.mark.parametrize("mode", ["on", "auto"])
    def test_compiler_denied_is_bit_identical(
        self, grid, reference, small_workload, monkeypatch, mode
    ):
        monkeypatch.setenv("REPRO_FUSED", mode)
        with faults.deny_compiler():
            assert evaluate_specs(grid, small_workload) == reference

    def test_family_rates_directly(self, grid, reference, small_workload):
        for family in plan_families(grid):
            for fused in (True, False):
                rates = family_rates(family, small_workload, fused=fused)
                assert rates == {spec: reference[spec] for spec in family.specs}


def _traces(min_size=1, max_size=120):
    @st.composite
    def build(draw):
        n = draw(st.integers(min_size, max_size))
        pcs = draw(st.lists(st.integers(0, 63), min_size=n, max_size=n))
        outcomes = draw(st.lists(st.booleans(), min_size=n, max_size=n))
        return BranchTrace(
            pcs=np.array(pcs), outcomes=np.array(outcomes), name="hyp"
        )

    return build()


def _gshare_specs():
    return st.builds(
        lambda i, h: f"gshare:index={i},hist={min(h, i)}",
        st.integers(2, 8),
        st.integers(0, 8),
    )


def _bimode_specs():
    return st.builds(
        lambda d, h, c, full, chist: (
            f"bimode:dir={d},hist={min(h, d)},choice={c}"
            + (",full_update=1" if full else "")
            + (",choice_hist=1" if chist else "")
        ),
        st.integers(2, 7),
        st.integers(0, 7),
        st.integers(2, 7),
        st.booleans(),
        st.booleans(),
    )


def _grids():
    return st.lists(
        st.one_of(
            _gshare_specs(),
            _bimode_specs(),
            st.sampled_from(["always-taken", "btfnt", "bimodal:index=5"]),
        ),
        min_size=1,
        max_size=10,
    )


class TestPlannerFuzzing:
    """Random spec grids on random traces: the fused family passes, the
    per-cell scalar engine, and the differential oracle must agree bit
    for bit on every cell, and the planner must cover the grid exactly."""

    @given(grid=_grids(), trace=_traces())
    @settings(max_examples=25, deadline=None)
    def test_fused_equals_percell_equals_oracle(self, grid, trace):
        families = plan_families(grid)
        covered = [spec for family in families for spec in family.specs]
        assert sorted(covered) == sorted(set(grid))

        fused = {}
        for family in families:
            fused.update(family_rates(family, trace, fused=True))
        for spec in set(grid):
            scalar = run(make_predictor(spec), trace).misprediction_rate
            assert fused[spec] == scalar, spec
            assert fused[spec] == oracle_rate(spec, trace), spec

    @given(grid=_grids(), trace=_traces(min_size=0, max_size=30))
    @settings(max_examples=15, deadline=None)
    def test_fused_numpy_fallbacks_agree_on_tiny_traces(self, grid, trace):
        with faults.deny_compiler():
            fused = {}
            for family in plan_families(grid):
                fused.update(family_rates(family, trace, fused=True))
        for spec in set(grid):
            assert fused[spec] == run(
                make_predictor(spec), trace
            ).misprediction_rate, spec


SPECS = [
    "gshare:index=8,hist=8",
    "gshare:index=8,hist=2",
    "bimode:dir=6,hist=6,choice=6",
]
FAMILIES = 2  # one gshare family + one bi-mode family


@pytest.fixture()
def bench_traces(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    return {
        name: generate_trace(get_profile(name), length=6_000, seed=11)
        for name in ("gcc", "xlisp")
    }


class TestParallelDedupe:
    """Satellite: identical (spec, trace) cells are simulated once and
    the rates fanned out to every requesting bench key."""

    def test_shared_trace_simulated_once(self, bench_traces, tmp_path):
        from repro.sim.parallel import TaskPolicy, evaluate_matrix_parallel

        shared = bench_traces["gcc"]
        traces = {"run-a": shared, "run-b": shared, "xlisp": bench_traces["xlisp"]}
        with faults.traced(tmp_path / "trace"):
            result = evaluate_matrix_parallel(
                SPECS, traces, jobs=2, policy=TaskPolicy(retries=0, backoff=0.0)
            )

        counts = faults.trace_counts(tmp_path / "trace", site="evaluate")
        # the shared trace's family tasks ran once, not once per bench key
        assert counts[("evaluate", "gcc")] == FAMILIES
        assert counts[("evaluate", "xlisp")] == FAMILIES
        for spec in SPECS:
            assert result[spec]["run-a"] == result[spec]["run-b"]
            assert result[spec]["run-a"] == run(
                make_predictor(spec), shared
            ).misprediction_rate

    def test_duplicate_specs_do_not_add_work(self, bench_traces, tmp_path):
        from repro.sim.parallel import TaskPolicy, evaluate_matrix_parallel

        with faults.traced(tmp_path / "trace"):
            result = evaluate_matrix_parallel(
                SPECS + SPECS,
                {"gcc": bench_traces["gcc"]},
                jobs=2,
                policy=TaskPolicy(retries=0, backoff=0.0),
            )
        counts = faults.trace_counts(tmp_path / "trace", site="evaluate")
        assert counts[("evaluate", "gcc")] == FAMILIES
        for spec in SPECS:
            assert result[spec]["gcc"] == run(
                make_predictor(spec), bench_traces["gcc"]
            ).misprediction_rate


class TestJournalResumeWithFamilies:
    """Satellite: tasks ship per family, but the journal stays per-cell
    — a partially journalled family resumes cell by cell."""

    def test_journalled_cells_survive_family_tasks(self, bench_traces, tmp_path):
        from repro.sim.parallel import TaskPolicy, evaluate_matrix_parallel

        trace = bench_traces["gcc"]
        tkey = trace_key(trace)
        sentinel = 0.123456789  # provably from the journal, not simulation
        journal = SweepJournal(tmp_path / "fused.jsonl")
        journal.record(tkey, SPECS[0], sentinel)

        result = evaluate_matrix_parallel(
            SPECS,
            {"gcc": trace},
            jobs=2,
            journal=journal,
            policy=TaskPolicy(retries=0, backoff=0.0),
        )
        assert result[SPECS[0]]["gcc"] == sentinel
        for spec in SPECS[1:]:
            assert result[spec]["gcc"] == run(
                make_predictor(spec), trace
            ).misprediction_rate

        # every freshly computed cell was journalled for the next resume
        replay = SweepJournal(journal.path)
        assert replay.completed(tkey) == {
            spec: result[spec]["gcc"] for spec in SPECS
        }

    def test_interrupted_family_sweep_resumes_bit_identically(
        self, bench_traces, tmp_path
    ):
        from repro.sim.parallel import TaskPolicy, evaluate_matrix_parallel

        reference = evaluate_matrix_parallel(
            SPECS, bench_traces, jobs=2, policy=TaskPolicy(retries=0, backoff=0.0)
        )

        journal = SweepJournal(tmp_path / "resume.jsonl")
        with faults.inject("evaluate:sigint:nth=2"):
            with pytest.raises(KeyboardInterrupt):
                evaluate_matrix_parallel(
                    SPECS,
                    bench_traces,
                    jobs=1,  # serial: the injected SIGINT hits in-process
                    journal=journal,
                    policy=TaskPolicy(retries=0, backoff=0.0),
                )
        assert len(SweepJournal(journal.path)) > 0

        resumed_journal = SweepJournal(journal.path)
        resumed = evaluate_matrix_parallel(
            SPECS,
            bench_traces,
            jobs=2,
            journal=resumed_journal,
            policy=TaskPolicy(retries=0, backoff=0.0),
        )
        assert resumed == reference
        assert resumed_journal.resumed_cells > 0
