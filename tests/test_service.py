"""In-process tests for the always-on sweep service.

Covers the job model, the wire protocol, the multi-tenant scheduler
(single-flight, fairness, admission control, crash recovery, fault
supervision), the socket server, and the CLI verbs.  The subprocess
kill -9 drill lives in ``test_service_daemon.py``; everything here runs
the daemon machinery inside the test process so coverage sees it.
"""

import json
import io
import os
import socket
import threading
import time

import pytest

from repro import faults, health
from repro.service import (
    BenchmarkRef,
    JobStore,
    QueueFull,
    SchedulerStopped,
    ServiceBusy,
    ServiceClient,
    ServiceError,
    ServiceJob,
    SweepScheduler,
    SweepServer,
)
from repro.service import protocol as proto
from repro.service.jobs import DONE, FAILED, QUEUED
from repro.service.scheduler import queue_max_from_env, service_timeout_from_env
from repro.sim.parallel import TaskPolicy

BENCH = "xlisp"
LENGTH = 4000
SPECS = [
    "gshare:index=8,hist=6",
    "bimode:dir=6,hist=6,choice=6",
    "bimodal:index=6",
]

FAST = TaskPolicy(timeout=None, retries=1, backoff=0.0)


@pytest.fixture(autouse=True)
def isolated_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.setenv("REPRO_JOBS", "2")
    for var in (
        "REPRO_FAULTS",
        "REPRO_FAULT_TRACE",
        "REPRO_SERVICE_QUEUE_MAX",
        "REPRO_SERVICE_TIMEOUT",
        "REPRO_HEALTH_JSON",
    ):
        monkeypatch.delenv(var, raising=False)
    health.clear()
    yield
    health.clear()


def make_job(store, specs=None, benches=(BENCH,), kind="rates", client="cli",
             priority=0, timeout=None, length=LENGTH, job_id=None):
    return ServiceJob(
        job_id=job_id or store.new_job_id(),
        client=client,
        kind=kind,
        specs=tuple(specs if specs is not None else SPECS),
        benchmarks=tuple(BenchmarkRef(b, length) for b in benches),
        priority=priority,
        timeout=timeout,
    )


def run_jobs(scheduler, jobs, timeout=180):
    """Submit every job, subscribe, start, and wait for all done events.

    Submitting before ``start()`` makes overlapping-grid planning
    deterministic (single-flight dedup happens at admission).
    """
    finals = {}
    flags = {}
    for job in jobs:
        scheduler.submit(job)
    for job in jobs:
        events = []
        flag = threading.Event()

        def callback(event, _events=events, _flag=flag):
            _events.append(event)
            if event.get("event") == "done":
                _flag.set()

        snapshot = scheduler.subscribe(job.job_id, callback)
        if snapshot is not None:
            events.append(snapshot)
            flag.set()
        flags[job.job_id] = (flag, events)
    scheduler.start()
    for job in jobs:
        flag, events = flags[job.job_id]
        assert flag.wait(timeout), f"{job.job_id} never finished"
        done = [e for e in events if e.get("event") == "done"][-1]
        finals[job.job_id] = (done["job"], events)
    return finals


def serial_rates(specs, bench=BENCH, length=LENGTH):
    """Reference rates via the one-shot (non-service) evaluation path."""
    from repro.sim.runner import evaluate_specs
    from repro.workloads.suite import load_benchmark

    trace = load_benchmark(bench, length=length, seed=0)
    return evaluate_specs(list(dict.fromkeys(specs)), trace, cache=None)


def evaluated_cells(root):
    """Total rate cells simulated, from the fault-trace evaluate site."""
    total = 0
    root = os.fspath(root)
    if not os.path.isdir(root):
        return 0
    for name in sorted(os.listdir(root)):
        with open(os.path.join(root, name)) as fh:
            for line in fh:
                fields = line.split()
                if fields and fields[0] == "evaluate":
                    for field in fields[1:]:
                        if field.startswith("cells="):
                            total += int(field[len("cells="):])
    return total


class TestEnvKnobs:
    def test_queue_max_default(self):
        assert queue_max_from_env() == 100_000

    def test_queue_max_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVICE_QUEUE_MAX", "7")
        assert queue_max_from_env() == 7

    @pytest.mark.parametrize("raw", ["0", "-3"])
    def test_queue_max_nonpositive_means_default(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_SERVICE_QUEUE_MAX", raw)
        assert queue_max_from_env() == 100_000

    def test_queue_max_invalid(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVICE_QUEUE_MAX", "lots")
        with pytest.raises(ValueError, match="REPRO_SERVICE_QUEUE_MAX"):
            queue_max_from_env()

    def test_timeout_unset_means_none(self):
        assert service_timeout_from_env() is None

    def test_timeout_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVICE_TIMEOUT", "2.5")
        assert service_timeout_from_env() == 2.5

    def test_timeout_nonpositive_means_none(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVICE_TIMEOUT", "0")
        assert service_timeout_from_env() is None

    def test_timeout_invalid(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVICE_TIMEOUT", "soon")
        with pytest.raises(ValueError, match="REPRO_SERVICE_TIMEOUT"):
            service_timeout_from_env()


class TestJobModel:
    def test_benchmark_ref_tkey(self):
        assert BenchmarkRef("gcc", 663015).tkey == "gcc-n663015-s0"
        assert BenchmarkRef("go", 100, seed=3).tkey == "go-n100-s3"

    def test_round_trip(self):
        job = ServiceJob(
            job_id="job-1",
            client="alice",
            kind="rates",
            specs=("a", "b"),
            benchmarks=(BenchmarkRef("gcc", 100), BenchmarkRef("go", 200, seed=1)),
            priority=2,
            timeout=30.0,
        )
        job.results = {"a": {"gcc": 0.125}}
        job.failures = [{"tkey": "go-n200-s1", "spec": "b", "error": "boom"}]
        back = ServiceJob.from_dict(job.to_dict())
        assert back == job

    def test_zero_timeout_loads_as_none(self):
        job = make_job(JobStore(root="/tmp/unused"))
        data = job.to_dict()
        data["timeout"] = 0
        assert ServiceJob.from_dict(data).timeout is None

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            (dict(kind="sideways"), "kind"),
            (dict(specs=()), "no specs"),
            (dict(benchmarks=()), "no benchmarks"),
        ],
    )
    def test_validation(self, kwargs, match):
        base = dict(
            job_id="j", client="c", kind="rates", specs=("s",),
            benchmarks=(BenchmarkRef("gcc", 10),),
        )
        base.update(kwargs)
        with pytest.raises(ValueError, match=match):
            ServiceJob(**base)

    def test_store_save_load_list_forget(self, tmp_path):
        store = JobStore(tmp_path / "svc")
        job = make_job(store)
        job.submitted_at = 5.0
        store.save(job)
        assert store.load(job.job_id) == job
        assert [j.job_id for j in store.list()] == [job.job_id]
        assert [j.job_id for j in store.incomplete()] == [job.job_id]
        job.state = DONE
        store.save(job)
        assert store.incomplete() == []
        store.forget(job.job_id)
        assert store.load(job.job_id) is None
        assert store.list() == []

    def test_load_corrupt_manifest_returns_none(self, tmp_path):
        store = JobStore(tmp_path / "svc")
        store.jobs_dir.mkdir(parents=True)
        (store.jobs_dir / "job-x.json").write_text("{not json")
        assert store.load("job-x") is None
        assert store.list() == []

    def test_new_job_ids_unique(self, tmp_path):
        store = JobStore(tmp_path / "svc")
        ids = {store.new_job_id() for _ in range(50)}
        assert len(ids) == 50

    def test_journal_kind_matches_job(self, tmp_path):
        from repro.sim.journal import PayloadJournal, SweepJournal

        store = JobStore(tmp_path / "svc")
        rates = make_job(store)
        detailed = make_job(store, kind="detailed")
        assert type(store.journal_for(rates)) is SweepJournal
        assert type(store.journal_for(detailed)) is PayloadJournal


class TestProtocol:
    def test_parse_unix_path(self, tmp_path):
        family, target = proto.parse_address(str(tmp_path / "x.sock"))
        assert family == "unix"
        assert target.endswith("x.sock")

    def test_parse_default_is_unix_under_cache(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", "/tmp/rsvc-cache")
        family, target = proto.parse_address(None)
        assert family == "unix"
        assert target == "/tmp/rsvc-cache/service/serve.sock"

    def test_parse_tcp_string_and_tuple(self):
        assert proto.parse_address("tcp:127.0.0.1:9000") == ("tcp", ("127.0.0.1", 9000))
        assert proto.parse_address("tcp::9000") == ("tcp", ("127.0.0.1", 9000))
        assert proto.parse_address(("localhost", 80)) == ("tcp", ("localhost", 80))

    def test_parse_tcp_bad_port(self):
        with pytest.raises(proto.ProtocolError, match="host:port"):
            proto.parse_address("tcp:localhost:soon")

    def test_parse_unix_path_too_long(self):
        with pytest.raises(proto.ProtocolError, match="too long"):
            proto.parse_address("/tmp/" + "x" * 200)

    def test_message_round_trip(self):
        buf = io.BytesIO()
        proto.write_message(buf, {"op": "ping", "n": 1})
        buf.seek(0)
        assert proto.read_message(buf) == {"op": "ping", "n": 1}
        assert proto.read_message(buf) is None  # EOF

    @pytest.mark.parametrize("raw", [b"junk\n", b"[1, 2]\n"])
    def test_malformed_messages(self, raw):
        with pytest.raises(proto.ProtocolError):
            proto.read_message(io.BytesIO(raw))


class TestScheduler:
    def test_job_completes_bit_identical(self, tmp_path):
        store = JobStore(tmp_path / "svc")
        scheduler = SweepScheduler(store=store, jobs=2, policy=FAST)
        try:
            job = make_job(store, benches=("xlisp", "compress"))
            finals = run_jobs(scheduler, [job])
        finally:
            scheduler.stop()
        final, events = finals[job.job_id]
        assert final["state"] == DONE
        assert final["completed_cells"] == final["total_cells"] == len(SPECS) * 2
        assert final["error"] == ""
        for bench in ("xlisp", "compress"):
            ref = serial_rates(SPECS, bench)
            for spec in SPECS:
                assert final["results"][spec][bench] == ref[spec]
        progress = [e for e in events if e.get("event") == "progress"]
        assert progress
        assert progress[-1]["completed"] == final["total_cells"]

    def test_overlapping_jobs_single_flight(self, tmp_path):
        """Satellite: two clients, overlapping grids, each shared cell
        simulated exactly once (proved via the fault trace)."""
        specs_b = [SPECS[0], SPECS[1], "gshare:index=9,hist=5"]
        store = JobStore(tmp_path / "svc")
        scheduler = SweepScheduler(store=store, jobs=2, policy=FAST)
        trace_root = tmp_path / "ftrace"
        with faults.traced(trace_root):
            try:
                job_a = make_job(store, client="alice")
                job_b = make_job(store, specs=specs_b, client="bob")
                finals = run_jobs(scheduler, [job_a, job_b])
            finally:
                scheduler.stop()
        final_a, _ = finals[job_a.job_id]
        final_b, _ = finals[job_b.job_id]
        assert final_a["state"] == DONE and final_b["state"] == DONE
        union = list(dict.fromkeys(SPECS + specs_b))
        # exactly-once: evaluate-site cell counts cover the union once
        assert evaluated_cells(trace_root) == len(union)
        # overlapping cells are literally the same value in both jobs
        for spec in (SPECS[0], SPECS[1]):
            assert final_a["results"][spec][BENCH] == final_b["results"][spec][BENCH]
        ref = serial_rates(union)
        for final, specs in ((final_a, SPECS), (final_b, specs_b)):
            for spec in specs:
                assert final["results"][spec][BENCH] == ref[spec]

    def test_cached_resubmission_completes_inline(self, tmp_path):
        store = JobStore(tmp_path / "svc")
        scheduler = SweepScheduler(store=store, jobs=2, policy=FAST)
        try:
            first = make_job(store)
            finals = run_jobs(scheduler, [first])
        finally:
            scheduler.stop()
        assert finals[first.job_id][0]["state"] == DONE

        fresh = SweepScheduler(store=store, jobs=2, policy=FAST)  # never started
        again = make_job(store)
        trace_root = tmp_path / "ftrace"
        with faults.traced(trace_root):
            fresh.submit(again)
        assert again.state == DONE
        assert evaluated_cells(trace_root) == 0  # pure cache hits
        snapshot = fresh.subscribe(again.job_id, lambda e: None)
        assert snapshot is not None and snapshot["event"] == "done"
        assert snapshot["job"]["results"] == finals[first.job_id][0]["results"]

        rows = fresh.status()
        assert {r["job_id"] for r in rows} >= {first.job_id, again.job_id}
        assert all("results" not in r for r in rows)
        assert fresh.status(again.job_id)[0]["state"] == DONE
        assert fresh.status("job-missing") == []
        assert fresh.result(again.job_id)["results"]
        assert fresh.result("job-missing") is None
        unknown = fresh.subscribe("job-missing", lambda e: None)
        assert unknown["event"] == "error"
        fresh.stop()

    def test_recover_skips_journalled_cells(self, tmp_path):
        store = JobStore(tmp_path / "svc")
        ref = serial_rates(SPECS)
        job = make_job(store, job_id="job-resume-1")
        tkey = job.benchmarks[0].tkey
        store.journal_for(job).record(tkey, SPECS[0], ref[SPECS[0]])
        store.save(job)  # state: queued -> a dead daemon's leftovers

        scheduler = SweepScheduler(store=store, jobs=2, policy=FAST)
        trace_root = tmp_path / "ftrace"
        with faults.traced(trace_root):
            try:
                assert scheduler.recover() == [job.job_id]
                events = []
                flag = threading.Event()

                def callback(event):
                    events.append(event)
                    if event.get("event") == "done":
                        flag.set()

                assert scheduler.subscribe(job.job_id, callback) is None
                scheduler.start()
                assert flag.wait(120)
            finally:
                scheduler.stop()
        final = [e for e in events if e.get("event") == "done"][-1]["job"]
        assert final["state"] == DONE
        # the journalled cell was not re-simulated
        assert evaluated_cells(trace_root) == len(SPECS) - 1
        for spec in SPECS:
            assert final["results"][spec][BENCH] == ref[spec]
        assert any(e.actual == "recovered" for e in health.events(component="sweep-service"))

    def test_queue_full_backpressure(self, tmp_path):
        store = JobStore(tmp_path / "svc")
        scheduler = SweepScheduler(store=store, jobs=1, policy=FAST, queue_max=2)
        try:
            scheduler.submit(make_job(store, specs=SPECS[:2]))  # fills the queue
            assert scheduler.pending_cells == 2
            with pytest.raises(QueueFull, match="queue is full"):
                scheduler.submit(make_job(store, specs=["gshare:index=9,hist=4"]))
            assert any(
                e.actual == "rejected" for e in health.events(component="sweep-service")
            )
        finally:
            scheduler.stop()

    def test_duplicate_submit_is_idempotent(self, tmp_path):
        store = JobStore(tmp_path / "svc")
        scheduler = SweepScheduler(store=store, jobs=1, policy=FAST)
        try:
            job = make_job(store)
            scheduler.submit(job)
            before = scheduler.pending_cells
            assert scheduler.submit(job) is job
            assert scheduler.pending_cells == before
        finally:
            scheduler.stop()

    def test_priority_orders_within_client(self, tmp_path):
        store = JobStore(tmp_path / "svc")
        scheduler = SweepScheduler(store=store, jobs=1, policy=FAST)
        low = make_job(store, specs=["gshare:index=6,hist=4"], client="carol")
        high = make_job(store, specs=["gshare:index=7,hist=4"], client="carol",
                        priority=5)
        scheduler.submit(low)
        scheduler.submit(high)
        first = scheduler._next_task()
        second = scheduler._next_task()
        assert first.priority == 5 and first.specs == high.specs
        assert second.priority == 0 and second.specs == low.specs
        assert scheduler._next_task() is None
        scheduler.stop()

    def test_round_robin_across_clients(self, tmp_path):
        store = JobStore(tmp_path / "svc")
        scheduler = SweepScheduler(store=store, jobs=1, policy=FAST)
        # two batch families each -> two tasks per client
        scheduler.submit(make_job(
            store, specs=["gshare:index=6,hist=4", "bimodal:index=6"], client="alice"))
        scheduler.submit(make_job(
            store, specs=["gshare:index=7,hist=4", "bimodal:index=7"], client="bob"))
        order = []
        while True:
            task = scheduler._next_task()
            if task is None:
                break
            order.append(task.client)
        assert order == ["alice", "bob", "alice", "bob"]
        scheduler.stop()

    def test_job_timeout_fails_with_resume_hint(self, tmp_path):
        store = JobStore(tmp_path / "svc")
        scheduler = SweepScheduler(store=store, jobs=1,
                                   policy=TaskPolicy(timeout=None, retries=0, backoff=0.0))
        with faults.inject("worker:sleep:seconds=0.6,where=worker"):
            try:
                job = make_job(store, specs=SPECS[:1], benches=("xlisp", "compress"),
                               timeout=0.3)
                finals = run_jobs(scheduler, [job], timeout=60)
            finally:
                scheduler.stop()
        final, _ = finals[job.job_id]
        assert final["state"] == FAILED
        assert "timed out" in final["error"]
        assert "resubmit to resume" in final["error"]
        assert any(e.actual == "abandoned" for e in health.events(severity="error"))

    def test_default_timeout_applies_to_jobs(self, tmp_path):
        store = JobStore(tmp_path / "svc")
        scheduler = SweepScheduler(store=store, jobs=1, policy=FAST,
                                   default_timeout=123.0)
        try:
            job = make_job(store)
            scheduler.submit(job)
            assert job.timeout == 123.0
        finally:
            scheduler.stop()

    def test_bad_spec_quarantined_others_survive(self, tmp_path):
        store = JobStore(tmp_path / "svc")
        scheduler = SweepScheduler(store=store, jobs=1,
                                   policy=TaskPolicy(timeout=None, retries=0, backoff=0.0))
        good = "gshare:index=6,hist=4"
        bad = "bimode:dir=6,meta=6"  # bimode has no "meta" option
        try:
            job = make_job(store, specs=[good, bad])
            finals = run_jobs(scheduler, [job], timeout=120)
        finally:
            scheduler.stop()
        final, _ = finals[job.job_id]
        assert final["state"] == FAILED
        assert "quarantined" in final["error"]
        assert [f["spec"] for f in final["failures"]] == [bad]
        assert final["results"][good][BENCH] == serial_rates([good])[good]
        assert any(e.actual == "quarantined" for e in health.events(severity="error"))

    def test_dispatch_fault_retried(self, tmp_path):
        store = JobStore(tmp_path / "svc")
        scheduler = SweepScheduler(store=store, jobs=1, policy=FAST)
        with faults.inject("service.dispatch:raise:nth=1"):
            try:
                job = make_job(store, specs=SPECS[:1])
                finals = run_jobs(scheduler, [job], timeout=120)
            finally:
                scheduler.stop()
        final, _ = finals[job.job_id]
        assert final["state"] == DONE
        assert any(
            e.actual == "dispatch-fault"
            for e in health.events(component="sweep-service")
        )

    def test_dead_worker_salvaged_serially(self, tmp_path):
        store = JobStore(tmp_path / "svc")
        scheduler = SweepScheduler(store=store, jobs=1, policy=FAST)
        with faults.inject("worker:exit:where=worker"):
            try:
                job = make_job(store, specs=SPECS[:1])
                finals = run_jobs(scheduler, [job], timeout=120)
            finally:
                scheduler.stop()
        final, _ = finals[job.job_id]
        assert final["state"] == DONE
        assert final["results"][SPECS[0]][BENCH] == serial_rates(SPECS[:1])[SPECS[0]]
        actuals = {e.actual for e in health.events(component="sweep-service")}
        assert "pool-broken" in actuals
        assert "serial-salvage" in actuals

    def test_pool_unavailable_runs_serial(self, tmp_path, monkeypatch):
        from repro.service import scheduler as scheduler_module

        class NoFork:
            def __init__(self, *args, **kwargs):
                raise OSError("no fork for you")

        monkeypatch.setattr(scheduler_module, "ProcessPoolExecutor", NoFork)
        store = JobStore(tmp_path / "svc")
        scheduler = SweepScheduler(store=store, jobs=2, policy=FAST)
        try:
            job = make_job(store)
            finals = run_jobs(scheduler, [job], timeout=120)
        finally:
            scheduler.stop()
        final, _ = finals[job.job_id]
        assert final["state"] == DONE
        ref = serial_rates(SPECS)
        for spec in SPECS:
            assert final["results"][spec][BENCH] == ref[spec]
        assert any(
            e.actual == "serial" for e in health.events(component="sweep-service")
        )

    def test_straggler_abandoned_and_salvaged(self, tmp_path):
        store = JobStore(tmp_path / "svc")
        scheduler = SweepScheduler(store=store, jobs=1,
                                   policy=TaskPolicy(timeout=0.25, retries=0, backoff=0.0))
        with faults.inject("worker:sleep:seconds=3,where=worker"):
            try:
                job = make_job(store, specs=SPECS[:1])
                finals = run_jobs(scheduler, [job], timeout=120)
            finally:
                scheduler.stop()
        final, _ = finals[job.job_id]
        assert final["state"] == DONE
        assert any(
            e.actual == "task-timeout"
            for e in health.events(component="sweep-service")
        )

    def test_drain_persists_and_restart_completes(self, tmp_path):
        store = JobStore(tmp_path / "svc")
        benches = ("xlisp", "compress", "go")
        with faults.inject("worker:sleep:seconds=0.4,where=worker"):
            first = SweepScheduler(store=store, jobs=1, policy=FAST)
            job = make_job(store, benches=benches)
            first.submit(job)
            progressed = threading.Event()
            first.subscribe(
                job.job_id,
                lambda e: progressed.set() if e.get("event") == "progress" else None,
            )
            first.start()
            assert progressed.wait(60)
            assert first.drain(timeout=60)
            with pytest.raises(SchedulerStopped):
                first.submit(make_job(store, specs=["gshare:index=9,hist=2"]))

        saved = store.load(job.job_id)
        assert saved.state == QUEUED
        assert 0 < saved.completed_cells < saved.total_cells

        second = SweepScheduler(store=store, jobs=2, policy=FAST)
        trace_root = tmp_path / "ftrace"
        with faults.traced(trace_root):
            try:
                assert second.recover() == [job.job_id]
                events = []
                flag = threading.Event()

                def callback(event):
                    events.append(event)
                    if event.get("event") == "done":
                        flag.set()

                assert second.subscribe(job.job_id, callback) is None
                second.start()
                assert flag.wait(180)
            finally:
                second.stop()
        final = [e for e in events if e.get("event") == "done"][-1]["job"]
        assert final["state"] == DONE
        # restart resumed from the journal: only the unfinished cells ran
        assert evaluated_cells(trace_root) == saved.total_cells - saved.completed_cells
        for bench in benches:
            ref = serial_rates(SPECS, bench)
            for spec in SPECS:
                assert final["results"][spec][bench] == ref[spec]

    def test_detailed_job_returns_summaries(self, tmp_path):
        store = JobStore(tmp_path / "svc")
        scheduler = SweepScheduler(store=store, jobs=2, policy=FAST)
        spec = "bimode:dir=6,hist=6,choice=6"
        try:
            job = make_job(store, specs=[spec], kind="detailed")
            finals = run_jobs(scheduler, [job], timeout=180)
        finally:
            scheduler.stop()
        final, _ = finals[job.job_id]
        assert final["state"] == DONE
        summary = final["results"][spec][BENCH]
        assert isinstance(summary, dict)
        assert summary["misprediction_rate"] == serial_rates([spec])[spec]


def start_server(tmp_path, name="s.sock", **kwargs):
    sock = str(tmp_path / name)
    server = SweepServer(
        address=sock,
        store=JobStore(tmp_path / "svc"),
        jobs=2,
        policy=FAST,
        **kwargs,
    )
    thread = threading.Thread(
        target=server.serve_forever, kwargs={"install_signals": False}, daemon=True
    )
    thread.start()
    assert server.wait_until_serving(30)
    return server, thread, sock


@pytest.fixture()
def service(tmp_path, isolated_env):
    server, thread, sock = start_server(tmp_path)
    yield server, sock
    server.drain()
    thread.join(30)
    assert not thread.is_alive()


class TestServer:
    def test_ping(self, service):
        _, sock = service
        response = ServiceClient(sock).ping()
        assert response["pong"] is True
        assert response["pid"] == os.getpid()
        assert response["pending_cells"] == 0

    def test_submit_and_wait_bit_identical(self, service):
        _, sock = service
        client = ServiceClient(sock, client_id="alice")
        events = []
        final = client.submit_and_wait(
            SPECS, [{"name": BENCH, "length": LENGTH}],
            on_event=events.append, timeout=180,
        )
        assert final["state"] == DONE
        ref = serial_rates(SPECS)
        for spec in SPECS:
            assert final["results"][spec][BENCH] == ref[spec]
        assert any(e.get("event") == "progress" for e in events)
        done = [e for e in events if e.get("event") == "done"][-1]
        assert isinstance(done.get("health"), list)

    def test_status_result_and_unknowns(self, service):
        _, sock = service
        client = ServiceClient(sock, client_id="bob")
        final = client.submit_and_wait(SPECS[:1], [{"name": BENCH, "length": LENGTH}],
                                       timeout=180)
        job_id = final["job_id"]
        assert any(j["job_id"] == job_id for j in client.status())
        (row,) = client.status(job_id)
        assert row["state"] == DONE and "results" not in row
        assert client.status("job-missing") == []
        assert client.result(job_id)["results"]
        assert client.result("job-missing") is None

    def test_resubmit_resumes_from_cache(self, service):
        _, sock = service
        client = ServiceClient(sock, client_id="carol")
        client.submit_and_wait(SPECS, [{"name": BENCH, "length": LENGTH}], timeout=180)
        response = client._request({
            "op": "submit", "client": "carol", "kind": "rates",
            "specs": SPECS, "benchmarks": [{"name": BENCH, "length": LENGTH}],
        })
        assert response["ok"]
        assert response["resumed_cells"] == response["total_cells"] == len(SPECS)

    def test_unknown_op_rejected(self, service):
        _, sock = service
        with pytest.raises(ServiceError, match="unknown op"):
            ServiceClient(sock)._check(ServiceClient(sock)._request({"op": "frobnicate"}))

    def test_protocol_junk_rejected(self, service):
        _, sock = service
        conn = proto.connect(sock, timeout=10)
        try:
            conn.sendall(b"this is not json\n")
            response = proto.read_message(conn.makefile("rb"))
        finally:
            conn.close()
        assert response["ok"] is False
        assert "malformed" in response["error"]

    def test_bad_submit_rejected(self, service):
        _, sock = service
        with pytest.raises(ServiceError, match="bad submit"):
            ServiceClient(sock, submit_retries=0).submit([], [BENCH])

    def test_wait_unknown_job(self, service):
        _, sock = service
        with pytest.raises(ServiceError, match="unknown job"):
            ServiceClient(sock).wait("job-missing", timeout=10)

    def test_submit_while_draining_is_retryable(self, service):
        server, sock = service
        server._draining.set()
        try:
            with pytest.raises(ServiceBusy, match="draining"):
                ServiceClient(sock, submit_retries=1, backoff=0.01).submit(
                    SPECS[:1], [{"name": BENCH, "length": LENGTH}]
                )
        finally:
            server._draining.clear()

    def test_health_op_reports_degradations(self, service):
        _, sock = service
        health.emit("pool", "worker-ok", "worker-raised", reason="boom")
        health.emit("cache", "write", "lost", severity="error", reason="disk")
        response = ServiceClient(sock)._check(ServiceClient(sock)._request({"op": "health"}))
        assert "worker-raised" in response["summary"]
        assert any("lost" in line for line in response["events"])

    def test_streaming_submit_heartbeats_and_health(self, service):
        _, sock = service
        with faults.inject("worker:sleep:seconds=1.3,where=worker"):
            conn = proto.connect(sock, timeout=30)
            try:
                wfile = conn.makefile("wb")
                rfile = conn.makefile("rb")
                proto.write_message(wfile, {
                    "op": "submit", "client": "raw", "kind": "rates",
                    "specs": SPECS[:1],
                    "benchmarks": [{"name": BENCH, "length": LENGTH}],
                    "wait": True,
                })
                ack = proto.read_message(rfile)
                assert ack["ok"] and ack["total_cells"] == 1
                conn.settimeout(60)
                names = []
                while True:
                    event = proto.read_message(rfile)
                    names.append(event["event"])
                    if event["event"] == "done":
                        break
            finally:
                conn.close()
        assert "heartbeat" in names  # worker slept past the 1s beat
        assert event["job"]["state"] == DONE
        assert isinstance(event["health"], list)

    def test_drain_request_stops_server(self, tmp_path):
        server, thread, sock = start_server(tmp_path, name="d.sock")
        client = ServiceClient(sock)
        final = client.submit_and_wait(SPECS[:1], [{"name": BENCH, "length": LENGTH}],
                                       timeout=180)
        assert final["state"] == DONE
        client.drain()
        thread.join(60)
        assert not thread.is_alive()
        assert not os.path.exists(sock)  # socket cleaned up on exit


class TestSocketOwnership:
    def test_owner_pid_parsing(self, tmp_path):
        pid_path = tmp_path / "s.pid"
        assert SweepServer._owner_pid(str(pid_path)) is None  # missing
        pid_path.write_text("garbage")
        assert SweepServer._owner_pid(str(pid_path)) is None
        pid_path.write_text("0")
        assert SweepServer._owner_pid(str(pid_path)) is None
        pid_path.write_text(" 123 ")
        assert SweepServer._owner_pid(str(pid_path)) == 123

    def test_alive(self):
        import multiprocessing

        assert SweepServer._alive(os.getpid()) is True
        proc = multiprocessing.Process(target=lambda: None)
        proc.start()
        proc.join()
        assert SweepServer._alive(proc.pid) is False

    def test_dead_owner_socket_taken_over(self, tmp_path):
        import multiprocessing

        sock_path = tmp_path / "s.sock"
        leftover = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        leftover.bind(str(sock_path))
        leftover.listen(1)
        leftover.close()  # dead daemon: file remains, nobody accepts
        proc = multiprocessing.Process(target=lambda: None)
        proc.start()
        proc.join()
        (tmp_path / "s.sock.pid").write_text(str(proc.pid))

        server, thread, sock = start_server(tmp_path)
        try:
            assert ServiceClient(sock).ping()["pong"]
            events = [
                e for e in health.events(component="sweep-service")
                if e.actual == "stale-socket-taken-over"
            ]
            assert len(events) == 1
            assert str(proc.pid) in events[0].reason
        finally:
            server.drain()
            thread.join(30)

    def test_live_owner_refused(self, tmp_path):
        sock_path = tmp_path / "s.sock"
        sock_path.touch()
        (tmp_path / "s.sock.pid").write_text(str(os.getpid()))
        server = SweepServer(address=str(sock_path), store=JobStore(tmp_path / "svc"))
        with pytest.raises(OSError, match="already serving"):
            server._make_server()
        assert sock_path.exists()  # the live owner's socket is untouched


class TestServiceCli:
    def test_submit_and_status(self, tmp_path, capsys):
        from repro.cli import main

        server, thread, sock = start_server(tmp_path)
        try:
            rc = main([
                "--length", str(LENGTH), "submit", SPECS[0],
                "--benchmarks", BENCH, "--socket", sock, "--client", "cli-test",
            ])
            out = capsys.readouterr().out
            assert rc == 0
            assert "submitted" in out
            assert "done" in out
            assert BENCH in out  # the rates table rendered

            assert main(["status", "--socket", sock]) == 0
            out = capsys.readouterr().out
            assert "cli-test" in out

            assert main(["status", "job-missing", "--socket", sock]) == 1
            assert "unknown job" in capsys.readouterr().out
        finally:
            server.drain()
            thread.join(30)

    def test_submit_no_wait(self, tmp_path, capsys):
        from repro.cli import main

        server, thread, sock = start_server(tmp_path)
        try:
            rc = main([
                "--length", str(LENGTH), "submit", SPECS[0],
                "--benchmarks", BENCH, "--socket", sock, "--no-wait",
            ])
            assert rc == 0
            assert "submitted" in capsys.readouterr().out
        finally:
            server.drain()
            thread.join(30)

    def test_journal_compact_cli(self, tmp_path, capsys):
        from repro.cli import main
        from repro.sim.journal import SweepJournal

        root = tmp_path / "journals"
        journal = SweepJournal.for_name("fig2", root=root)
        journal.record_many("t1", {"a": 0.1, "b": 0.2})
        with open(journal.path, "a") as fh:
            fh.write("garbage\n")
        assert main(["journal", "compact", "--root", str(root)]) == 0
        out = capsys.readouterr().out
        assert "fig2.jsonl: 2 cells, dropped 1 line(s)" in out
        assert SweepJournal.for_name("fig2", root=root).corrupt_lines == 0

    def test_journal_compact_empty_root(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["journal", "compact", "--root", str(tmp_path / "none")]) == 0
        assert "no journals" in capsys.readouterr().out

    def test_journal_compact_named_missing(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["journal", "compact", "ghost", "--root", str(tmp_path)]) == 0
        assert "ghost.jsonl: missing" in capsys.readouterr().out

    def test_serve_runs_and_drains(self, tmp_path):
        from repro.cli import main

        sock = str(tmp_path / "cli.sock")
        outcome = {}

        def run():
            outcome["rc"] = main(["serve", "--socket", sock, "--queue-max", "10"])

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        client = ServiceClient(sock)
        deadline = time.monotonic() + 30
        while True:
            try:
                client.ping()
                break
            except OSError:
                assert time.monotonic() < deadline, "serve CLI never came up"
                time.sleep(0.05)
        client.drain()
        thread.join(60)
        assert outcome.get("rc") == 0
