"""Property-based tests (hypothesis) on core data structures and
predictor invariants, plus differential fuzzing of every registered
predictor against the dict-based oracle (:mod:`repro.verify`)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.counters import CounterTable, SaturatingCounter
from repro.core.history import GlobalHistoryRegister, global_history_stream
from repro.core.indexing import gshare_index, mask
from repro.core.interfaces import SimulationResult
from repro.core.registry import available_schemes, make_predictor, parse_spec
from repro.sim.engine import run, run_steps
from repro.traces.record import BranchTrace
from repro.verify import diff_spec
from tests.conftest import FUZZ_BUDGET

outcome_lists = st.lists(st.booleans(), min_size=0, max_size=300)


class TestCounterProperties:
    @given(outcomes=outcome_lists, bits=st.integers(1, 4), init=st.integers(0, 15))
    def test_state_always_in_range(self, outcomes, bits, init):
        c = SaturatingCounter(bits=bits, init=init % (1 << bits))
        for taken in outcomes:
            c.update(taken)
            assert 0 <= c.state <= (1 << bits) - 1

    @given(outcomes=outcome_lists)
    def test_monotone_training_saturates(self, outcomes):
        """After >=3 consecutive identical outcomes the prediction must
        match that outcome (2-bit counter saturation)."""
        c = SaturatingCounter()
        for taken in outcomes:
            c.update(taken)
        for _ in range(3):
            c.update(True)
        assert c.prediction is True

    @given(
        updates=st.lists(
            st.tuples(st.integers(0, 15), st.booleans()), min_size=0, max_size=200
        )
    )
    def test_table_matches_independent_counters(self, updates):
        table = CounterTable(4)
        reference = [SaturatingCounter() for _ in range(16)]
        for index, taken in updates:
            assert table.predict_and_update(index, taken) == reference[
                index
            ].predict_and_update(taken)
        assert table.states == [c.state for c in reference]


class TestHistoryProperties:
    @given(outcomes=outcome_lists, bits=st.integers(0, 20))
    def test_stream_matches_register(self, outcomes, bits):
        stream = global_history_stream(np.array(outcomes, dtype=bool), bits)
        ghr = GlobalHistoryRegister(bits)
        for t, taken in enumerate(outcomes):
            assert stream[t] == ghr.value
            ghr.push(taken)

    @given(outcomes=outcome_lists, bits=st.integers(0, 16))
    def test_register_value_bounded(self, outcomes, bits):
        ghr = GlobalHistoryRegister(bits)
        for taken in outcomes:
            ghr.push(taken)
            assert 0 <= ghr.value <= mask(bits)


class TestIndexProperties:
    @given(
        pc=st.integers(0, 1 << 30),
        hist=st.integers(0, 1 << 30),
        index_bits=st.integers(0, 20),
        extra=st.integers(0, 20),
    )
    def test_gshare_index_in_table_range(self, pc, hist, index_bits, extra):
        history_bits = max(0, index_bits - extra)
        index = gshare_index(pc, hist, index_bits, history_bits)
        assert 0 <= index < (1 << index_bits) or index_bits == 0 and index == 0

    @given(pc=st.integers(0, 1 << 20), index_bits=st.integers(1, 16))
    def test_gshare_index_is_history_bijective(self, pc, index_bits):
        """For a fixed pc, distinct full-width histories map to distinct
        indices (xor with a constant is a bijection)."""
        indices = {
            gshare_index(pc, h, index_bits, index_bits)
            for h in range(min(1 << index_bits, 256))
        }
        assert len(indices) == min(1 << index_bits, 256)


def traces(min_size=1, max_size=120):
    @st.composite
    def build(draw):
        n = draw(st.integers(min_size, max_size))
        pcs = draw(
            st.lists(st.integers(0, 63), min_size=n, max_size=n)
        )
        outcomes = draw(st.lists(st.booleans(), min_size=n, max_size=n))
        return BranchTrace(
            pcs=np.array(pcs), outcomes=np.array(outcomes), name="hyp"
        )

    return build()


PROPERTY_SPECS = [
    "gshare:index=6,hist=6",
    "gshare:index=6,hist=2",
    "bimode:dir=5,hist=5,choice=5",
    "bimodal:index=5",
    "pag:hist=4,bht=4",
    "agree:index=6",
    "gskew:bank=5",
    "yags:choice=6,cache=4",
]


class TestPredictorProperties:
    @given(trace=traces())
    @settings(max_examples=25, deadline=None)
    def test_batch_step_equivalence_on_arbitrary_traces(self, trace):
        for spec in PROPERTY_SPECS:
            batch = run(make_predictor(spec), trace).predictions
            steps = run_steps(make_predictor(spec), trace).predictions
            assert np.array_equal(batch, steps), spec

    @given(trace=traces())
    @settings(max_examples=25, deadline=None)
    def test_constant_outcome_traces_converge(self, trace):
        """On an all-taken trace every adaptive predictor must stop
        mispredicting after the counters saturate (<= 2 misses/branch)."""
        constant = BranchTrace(
            pcs=trace.pcs, outcomes=np.ones(len(trace), dtype=bool), name="c"
        )
        for spec in ("gshare:index=6,hist=0", "bimodal:index=6"):
            result = run(make_predictor(spec), constant)
            num_static = constant.num_static
            assert result.num_mispredictions <= 2 * num_static, spec

    @given(trace=traces())
    @settings(max_examples=20, deadline=None)
    def test_misprediction_rate_bounds(self, trace):
        for spec in ("bimode:dir=5,hist=5,choice=5", "gskew:bank=5"):
            rate = run(make_predictor(spec), trace).misprediction_rate
            assert 0.0 <= rate <= 1.0


# One small configuration per registered scheme; the coverage test
# below fails when a new scheme registers without a differential entry.
DIFFERENTIAL_SPECS = [
    "bimode:dir=5,hist=3,choice=4",
    "bimode:dir=4,hist=4,choice=3,full_update=1,choice_hist=1",
    "gshare:index=6,hist=4",
    "bimodal:index=5",
    "gag:hist=5",
    "gas:hist=4,select=2",
    "gap:hist=4,addr=2",
    "gselect:hist=3,addr=3",
    "pag:hist=4,bht=4",
    "pas:hist=3,select=2,bht=4",
    "pap:hist=3,addr=2,bht=4",
    "perceptron:index=4,hist=6",
    "agree:index=6,hist=4,bias=6",
    "gskew:bank=5,hist=5",
    "gskew:bank=4,hist=4,update=total",
    "yags:choice=6,cache=4,hist=4,tag=4",
    "tournament:index=6,meta=5",
    "trimode:dir=5,hist=3,choice=4",
    "biasfilter:table=5,run=2,sub_index=6,sub_hist=4",
    "biasfilter:table=4,run=2,sub=bimodal,sub_index=5",
    "always-taken",
    "always-not-taken",
    "btfnt",
]


def _fuzz_tier(scheme: str) -> str:
    """Light tier for the stateless schemes (the statics carry a direct
    ``rates`` hook), heavy for everything with a real automaton.  The
    SCALAR_ONLY tier that used to define "light" is retired and empty."""
    from repro.sim import kernels

    entry = kernels.PORTED.get(scheme)
    return "light" if entry is not None and entry.rates is not None else "heavy"


LIGHT_DIFFERENTIAL_SPECS = [
    spec for spec in DIFFERENTIAL_SPECS if _fuzz_tier(parse_spec(spec)[0]) == "light"
]
HEAVY_DIFFERENTIAL_SPECS = [
    spec for spec in DIFFERENTIAL_SPECS if _fuzz_tier(parse_spec(spec)[0]) == "heavy"
]


class TestDifferentialFuzzing:
    """Random traces through oracle == step loop == batch simulate ==
    batched kernels (where the spec qualifies for one), for every
    registered predictor.  A failure message carries the first
    diverging branch index; hypothesis shrinks the trace around it."""

    def test_every_registered_scheme_is_fuzzed(self):
        fuzzed = {parse_spec(spec)[0] for spec in DIFFERENTIAL_SPECS}
        assert fuzzed == set(available_schemes())

    def test_every_scheme_lands_in_exactly_one_budget_tier(self):
        light = {parse_spec(s)[0] for s in LIGHT_DIFFERENTIAL_SPECS}
        heavy = {parse_spec(s)[0] for s in HEAVY_DIFFERENTIAL_SPECS}
        assert not light & heavy
        assert light | heavy == set(available_schemes())

    @given(trace=traces())
    @settings(deadline=None, **FUZZ_BUDGET["light"])
    def test_light_tier_engines_agree_on_arbitrary_traces(self, trace):
        for spec in LIGHT_DIFFERENTIAL_SPECS:
            report = diff_spec(spec, trace)
            assert report.agree, report.summary()

    @given(trace=traces())
    @settings(deadline=None, **FUZZ_BUDGET["heavy"])
    def test_kernel_ported_engines_agree_on_arbitrary_traces(self, trace):
        for spec in HEAVY_DIFFERENTIAL_SPECS:
            report = diff_spec(spec, trace)
            assert report.agree, report.summary()

    @given(trace=traces(min_size=0, max_size=40))
    @settings(max_examples=10, deadline=None)
    def test_agreement_holds_on_tiny_and_empty_traces(self, trace):
        for spec in ("bimode:dir=3,hist=2,choice=2", "yags:choice=4,cache=3"):
            report = diff_spec(spec, trace)
            assert report.agree, report.summary()


class TestSimulationResultProperties:
    @given(outcomes=st.lists(st.booleans(), min_size=0, max_size=100))
    def test_perfect_predictions_have_zero_rate(self, outcomes):
        arr = np.array(outcomes, dtype=bool)
        r = SimulationResult("p", "t", arr.copy(), arr)
        assert r.misprediction_rate == 0.0

    @given(outcomes=st.lists(st.booleans(), min_size=1, max_size=100))
    def test_inverted_predictions_have_rate_one(self, outcomes):
        arr = np.array(outcomes, dtype=bool)
        r = SimulationResult("p", "t", ~arr, arr)
        assert r.misprediction_rate == 1.0


class TestWarmStartProperties:
    @given(
        outcomes=st.lists(st.booleans(), min_size=1, max_size=150),
        bits=st.integers(1, 12),
        initial=st.integers(0, (1 << 12) - 1),
    )
    def test_history_stream_with_initial_matches_register(
        self, outcomes, bits, initial
    ):
        initial &= (1 << bits) - 1
        stream = global_history_stream(
            np.array(outcomes, dtype=bool), bits, initial=initial
        )
        ghr = GlobalHistoryRegister(bits, value=initial)
        for t, taken in enumerate(outcomes):
            assert stream[t] == ghr.value
            ghr.push(taken)

    @given(trace=traces(min_size=2), split=st.floats(0.1, 0.9))
    @settings(max_examples=20, deadline=None)
    def test_split_simulation_equals_full(self, trace, split):
        point = max(1, min(len(trace) - 1, int(len(trace) * split)))
        for spec in ("gshare:index=6,hist=6", "bimode:dir=5,hist=5,choice=5"):
            full = run(make_predictor(spec), trace).predictions
            p = make_predictor(spec)
            a = run(p, trace[:point]).predictions
            b = run(p, trace[point:], reset=False).predictions
            assert np.array_equal(np.concatenate([a, b]), full), spec


class TestCheckpointProperties:
    @given(trace=traces(min_size=1))
    @settings(max_examples=15, deadline=None)
    def test_state_roundtrip_is_identity(self, trace):
        import json

        from repro.core.checkpoint import predictor_state, restore_state

        for spec in ("gshare:index=6,hist=6", "yags:choice=6,cache=4"):
            p = make_predictor(spec)
            run(p, trace)
            snapshot = json.loads(json.dumps(predictor_state(p)))
            q = make_predictor(spec)
            restore_state(q, snapshot)
            assert predictor_state(q) == predictor_state(p), spec
