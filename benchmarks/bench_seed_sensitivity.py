"""Seed sensitivity — how stable are the figures under workload regeneration?

Every result in this reproduction is computed on one draw of a
synthetic workload.  This bench regenerates three benchmarks with three
seeds each and reports the spread of the headline comparison (gshare vs
bi-mode at 1 KB-class geometry), establishing that the figure benches'
single-seed conclusions are not sampling luck.

Expected shapes: per-seed standard deviation well under the
gshare-to-bi-mode gap, and bi-mode winning on every (benchmark, seed)
pair.
"""

from __future__ import annotations

import pytest

from benchmarks.common import emit_table
from repro.analysis.stability import compare_across_seeds, seed_spread

BENCHMARKS = ("xlisp", "gcc", "go")
SEEDS = (0, 1, 2)
LENGTH = 120_000
GSHARE = "gshare:index=12,hist=12"
BIMODE = "bimode:dir=11,hist=11,choice=11"


def _run():
    out = {}
    for name in BENCHMARKS:
        out[name] = (
            seed_spread(GSHARE, name, seeds=SEEDS, length=LENGTH),
            seed_spread(BIMODE, name, seeds=SEEDS, length=LENGTH),
            compare_across_seeds(GSHARE, BIMODE, name, seeds=SEEDS, length=LENGTH),
        )
    return out


@pytest.mark.benchmark(group="stability")
def test_seed_sensitivity(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)

    rows = []
    for name, (gshare, bimode, comparison) in results.items():
        rows.append(
            [
                name,
                f"{100 * gshare.mean:.2f}% +/- {100 * gshare.std:.2f}",
                f"{100 * bimode.mean:.2f}% +/- {100 * bimode.std:.2f}",
                f"{100 * comparison['mean_diff']:.2f} +/- {100 * comparison['std_diff']:.2f}",
                f"{int(comparison['wins_b'])}/{len(SEEDS)}",
            ]
        )
    emit_table(
        "seed_sensitivity",
        f"Seed sensitivity over seeds {SEEDS} ({LENGTH} branches each)",
        ["benchmark", "gshare", "bi-mode", "gap (pts)", "bi-mode wins"],
        rows,
    )

    for name, (gshare, bimode, comparison) in results.items():
        # bi-mode wins on every seed
        assert comparison["wins_b"] == len(SEEDS), name
        # the gap dwarfs the seed noise
        assert comparison["mean_diff"] > 2 * comparison["std_diff"], name
        # regeneration noise is modest relative to the rates themselves
        assert gshare.std < 0.35 * gshare.mean, name
