"""Unit tests for the PHT index functions."""

import numpy as np
import pytest

from repro.core.indexing import (
    concat_index,
    concat_index_stream,
    gselect_index,
    gshare_index,
    gshare_index_stream,
    mask,
    num_phts,
)


class TestMask:
    def test_values(self):
        assert mask(0) == 0
        assert mask(1) == 1
        assert mask(8) == 255

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            mask(-1)


class TestGshareIndex:
    def test_full_history_xor(self):
        # 8-bit index, full history: plain xor of the low bytes
        assert gshare_index(0b10101010, 0b01010101, 8, 8) == 0xFF

    def test_pc_truncated_to_index_bits(self):
        assert gshare_index(0x1F3, 0, 8, 8) == 0xF3

    def test_history_truncated_to_history_bits(self):
        # only 2 history bits participate: top 6 index bits come from pc
        assert gshare_index(0b11110000, 0b111111, 8, 2) == 0b11110011

    def test_zero_history_bits_is_pure_address_index(self):
        assert gshare_index(0xAB, 0xFF, 8, 0) == 0xAB

    def test_index_fits_table(self):
        for pc in (0, 123, 0xFFFF):
            for hist in (0, 0b1011, 0xFFFF):
                assert 0 <= gshare_index(pc, hist, 6, 4) < 64

    def test_rejects_history_longer_than_index(self):
        with pytest.raises(ValueError):
            gshare_index(0, 0, 4, 5)

    def test_multiple_pht_structure(self):
        """With m < n, indices with the same pc share the top n-m bits —
        the multi-PHT organization of the paper's footnote 1."""
        pc = 0b1101_0110
        tops = {
            gshare_index(pc, hist, 8, 3) >> 3 for hist in range(64)
        }
        assert tops == {pc >> 3 & 0b11111}


class TestNumPhts:
    def test_single_pht(self):
        assert num_phts(10, 10) == 1

    def test_multi_pht(self):
        assert num_phts(10, 7) == 8

    def test_address_only(self):
        assert num_phts(8, 0) == 256

    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            num_phts(4, 5)


class TestConcatIndex:
    def test_layout(self):
        # pc bits above history bits
        assert concat_index(0b101, 3, 0b11, 2) == 0b11_101

    def test_gselect_alias(self):
        assert gselect_index(0b1010, 4, 0xF, 2) == concat_index(0b1010, 4, 0xF, 2)

    def test_zero_pc_bits(self):
        assert concat_index(0b1011, 4, 0xFF, 0) == 0b1011

    def test_zero_history_bits(self):
        assert concat_index(0xFF, 0, 0b101, 3) == 0b101


class TestStreamForms:
    def test_gshare_stream_matches_scalar(self):
        rng = np.random.default_rng(1)
        pcs = rng.integers(0, 1 << 16, 200)
        hists = rng.integers(0, 1 << 16, 200)
        stream = gshare_index_stream(pcs, hists, 10, 6)
        for i in range(200):
            assert stream[i] == gshare_index(int(pcs[i]), int(hists[i]), 10, 6)

    def test_concat_stream_matches_scalar(self):
        rng = np.random.default_rng(2)
        pcs = rng.integers(0, 1 << 16, 200)
        hists = rng.integers(0, 1 << 16, 200)
        stream = concat_index_stream(hists, 5, pcs, 4)
        for i in range(200):
            assert stream[i] == concat_index(int(hists[i]), 5, int(pcs[i]), 4)

    def test_gshare_stream_rejects_bad_widths(self):
        with pytest.raises(ValueError):
            gshare_index_stream(np.array([1]), np.array([1]), 4, 5)
