"""Unit tests for process-parallel sweep execution."""

import os

import pytest

from repro.sim.parallel import (
    TraceRecipe,
    effective_jobs,
    evaluate_matrix_parallel,
    parallel_jobs,
    recipe_of,
)
from repro.sim.runner import ResultCache, evaluate_matrix, evaluate_specs, trace_key
from repro.workloads.generator import generate_trace
from repro.workloads.profiles import get_profile
from tests.conftest import make_toy_trace

SPECS = [
    "gshare:index=8,hist=8",
    "gshare:index=8,hist=2",
    "bimode:dir=6,hist=6,choice=6",
]


@pytest.fixture(scope="module")
def workload_pair():
    return {
        name: generate_trace(get_profile(name), length=8_000, seed=5)
        for name in ("xlisp", "compress")
    }


class TestTraceRecipe:
    def test_generated_trace_has_recipe(self, workload_pair):
        trace = workload_pair["xlisp"]
        assert recipe_of(trace) == TraceRecipe(name="xlisp", length=8_000, seed=5)

    def test_toy_trace_has_none(self):
        assert recipe_of(make_toy_trace(length=100)) is None

    def test_unknown_profile_name_has_none(self, workload_pair):
        trace = workload_pair["xlisp"]
        renamed = type(trace)(
            pcs=trace.pcs, outcomes=trace.outcomes, name="not-a-profile"
        )
        renamed.metadata.update(trace.metadata)
        assert recipe_of(renamed) is None

    def test_anonymous_trace_has_none(self, workload_pair):
        trace = workload_pair["xlisp"]
        anon = type(trace)(pcs=trace.pcs, outcomes=trace.outcomes, name="")
        anon.metadata.update(trace.metadata)
        assert recipe_of(anon) is None


class TestJobsKnob:
    def test_unset_uses_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert parallel_jobs() == 1
        assert parallel_jobs(default=3) == 3

    def test_explicit_count(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "4")
        assert parallel_jobs() == 4

    @pytest.mark.parametrize("env", ["0", "-1", "auto", "AUTO"])
    def test_zero_and_auto_mean_per_cpu(self, monkeypatch, env):
        monkeypatch.setenv("REPRO_JOBS", env)
        assert parallel_jobs() == (os.cpu_count() or 1)

    def test_junk_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(ValueError, match="REPRO_JOBS"):
            parallel_jobs()

    def test_effective_jobs_defers_to_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert effective_jobs(None) == 5
        assert effective_jobs(2) == 2
        assert effective_jobs(0) == (os.cpu_count() or 1)


class TestParallelMatrix:
    def test_matches_serial(self, workload_pair, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        serial = evaluate_matrix(
            SPECS, workload_pair, cache=ResultCache(tmp_path / "a"), jobs=1
        )
        parallel = evaluate_matrix_parallel(
            SPECS, workload_pair, cache=ResultCache(tmp_path / "b"), jobs=2
        )
        assert parallel == serial

    def test_evaluate_matrix_dispatches_on_jobs(self, workload_pair, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        via_entry = evaluate_matrix(
            SPECS, workload_pair, cache=ResultCache(tmp_path / "c"), jobs=2
        )
        serial = evaluate_matrix(SPECS, workload_pair, jobs=1)
        assert via_entry == serial

    def test_recipeless_traces_run_locally(self, tmp_path):
        toys = {"t1": make_toy_trace(length=500, seed=1), "t2": make_toy_trace(length=500, seed=2)}
        toys["t1"].name, toys["t2"].name = "t1", "t2"
        parallel = evaluate_matrix_parallel(SPECS, toys, jobs=4)
        serial = {
            spec: {b: evaluate_specs([spec], t)[spec] for b, t in toys.items()}
            for spec in SPECS
        }
        assert parallel == serial

    def test_merges_into_cache(self, workload_pair, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        cache = ResultCache(tmp_path / "d")
        matrix = evaluate_matrix_parallel(SPECS, workload_pair, cache=cache, jobs=2)
        for bench, trace in workload_pair.items():
            for spec in SPECS:
                assert cache.get(spec, trace_key(trace)) == matrix[spec][bench]
        # and a fresh instance reads the same cells back from disk
        reread = ResultCache(tmp_path / "d")
        tkey = trace_key(workload_pair["xlisp"])
        assert reread.get(SPECS[0], tkey) == matrix[SPECS[0]]["xlisp"]

    def test_cached_cells_short_circuit(self, workload_pair, tmp_path):
        cache = ResultCache(tmp_path)
        poisoned = 0.123456
        for trace in workload_pair.values():
            cache.put_many(trace_key(trace), {spec: poisoned for spec in SPECS})
        matrix = evaluate_matrix_parallel(SPECS, workload_pair, cache=cache, jobs=2)
        assert all(
            rate == poisoned for rates in matrix.values() for rate in rates.values()
        )

    def test_progress_covers_every_cell(self, workload_pair, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        calls = []
        evaluate_matrix_parallel(
            SPECS,
            workload_pair,
            jobs=2,
            progress=lambda spec, bench, rate: calls.append((spec, bench)),
        )
        assert sorted(calls) == sorted(
            (spec, bench) for spec in SPECS for bench in workload_pair
        )
