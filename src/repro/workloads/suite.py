"""Benchmark-suite builders with on-disk trace caching.

Generating a 500 K-branch trace takes a couple of seconds; the figure
benchmarks run every benchmark many times, so generated traces are
cached as ``.npz`` under a cache directory (default
``~/.cache/repro-bimode`` or ``$REPRO_CACHE_DIR``), keyed by
``(benchmark, length, seed)``.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, Iterable, List

from repro.traces.io import load_npz, save_npz
from repro.traces.record import BranchTrace
from repro.workloads.generator import generate_trace
from repro.workloads.profiles import (
    ALL_PROFILES,
    CINT95_PROFILES,
    IBS_PROFILES,
    get_profile,
)

__all__ = [
    "default_cache_dir",
    "load_benchmark",
    "load_suite",
    "cint95_suite",
    "ibs_suite",
    "suite_names",
]


def default_cache_dir() -> Path:
    """Trace/result cache root (override with ``$REPRO_CACHE_DIR``)."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-bimode"


def load_benchmark(
    name: str,
    length: int | None = None,
    seed: int = 0,
    cache_dir: Path | None = None,
    use_cache: bool = True,
) -> BranchTrace:
    """Generate (or load the cached) trace for one benchmark."""
    profile = get_profile(name)
    if length is None:
        length = profile.default_length
    if not use_cache:
        return generate_trace(profile, length=length, seed=seed)
    cache_dir = Path(cache_dir) if cache_dir is not None else default_cache_dir()
    cache_path = cache_dir / "traces" / f"{name}-n{length}-s{seed}.npz"
    if cache_path.exists():
        return load_npz(cache_path)
    trace = generate_trace(profile, length=length, seed=seed)
    save_npz(trace, cache_path)
    return trace


def load_suite(
    names: Iterable[str],
    length: int | None = None,
    seed: int = 0,
    cache_dir: Path | None = None,
    use_cache: bool = True,
) -> Dict[str, BranchTrace]:
    """Traces for several benchmarks, keyed by name."""
    return {
        name: load_benchmark(
            name, length=length, seed=seed, cache_dir=cache_dir, use_cache=use_cache
        )
        for name in names
    }


def cint95_suite(**kwargs) -> Dict[str, BranchTrace]:
    """The six SPEC CINT95 benchmark traces (paper Figure 3)."""
    return load_suite(CINT95_PROFILES, **kwargs)


def ibs_suite(**kwargs) -> Dict[str, BranchTrace]:
    """The eight IBS-Ultrix benchmark traces (paper Figure 4)."""
    return load_suite(IBS_PROFILES, **kwargs)


def suite_names(suite: str) -> List[str]:
    """Benchmark names in a suite (``"cint95"``, ``"ibs"`` or ``"all"``)."""
    if suite == "cint95":
        return list(CINT95_PROFILES)
    if suite == "ibs":
        return list(IBS_PROFILES)
    if suite == "all":
        return list(ALL_PROFILES)
    raise ValueError(f"unknown suite {suite!r}")
