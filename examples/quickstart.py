#!/usr/bin/env python
"""Quickstart — simulate a bi-mode predictor against gshare on one benchmark.

This is the five-minute tour of the library:

1. generate a synthetic benchmark trace (the paper used IBS/SPEC traces;
   the workload substrate reproduces their predictability structure);
2. build predictors from spec strings or classes;
3. run trace-driven simulations and compare misprediction rates.

Run with::

    python examples/quickstart.py [benchmark] [length]
"""

from __future__ import annotations

import sys

from repro import (
    BiModePredictor,
    GSharePredictor,
    load_benchmark,
    make_predictor,
    run,
)
from repro.traces import compute_stats


def main() -> int:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "gcc"
    length = int(sys.argv[2]) if len(sys.argv) > 2 else 200_000

    # 1. the workload -------------------------------------------------------
    trace = load_benchmark(benchmark, length=length)
    stats = compute_stats(trace)
    print(f"benchmark     : {trace.name}")
    print(f"dynamic       : {stats.dynamic_branches} conditional branches")
    print(f"static        : {stats.static_branches} branches")
    print(f"taken rate    : {100 * stats.taken_rate:.1f}%")
    print(f"strongly biased dynamic share: {100 * stats.strongly_biased_fraction:.1f}%")
    print()

    # 2. the predictors ------------------------------------------------------
    # The paper's pairing: a bi-mode predictor costs 1.5x "the next
    # smaller gshare" — direction banks of 2^11 plus a 2^11 choice table
    # against a 2^12-counter gshare.
    bimode = BiModePredictor(direction_index_bits=11)
    gshare = GSharePredictor(index_bits=12)
    bimodal = make_predictor("bimodal:index=12")  # spec-string form

    # 3. simulate ------------------------------------------------------------
    print(f"{'predictor':<44} {'size':>8}  misprediction")
    for predictor in (bimodal, gshare, bimode):
        result = run(predictor, trace)
        print(
            f"{predictor.name:<44} {predictor.size_bytes() / 1024:>6.2f}KB"
            f"  {100 * result.misprediction_rate:6.2f}%"
        )

    return 0


if __name__ == "__main__":
    sys.exit(main())
