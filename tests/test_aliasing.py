"""Unit tests for the aliasing statistics."""

import pytest

from repro.analysis.aliasing import aliasing_stats, sharing_decomposition
from repro.analysis.bias import analyze_substreams
from repro.core.registry import make_predictor
from repro.sim.engine import run_detailed
from tests.test_analysis_bias import detailed_from


class TestAliasingStats:
    def test_single_stream_no_aliasing(self):
        detailed = detailed_from([1] * 10, [0] * 10, [True] * 10)
        stats = aliasing_stats(analyze_substreams(detailed))
        assert stats.counters_used == 1
        assert stats.aliased_counters == 0
        assert stats.aliased_access_fraction == 0.0
        assert stats.destructive_access_fraction == 0.0

    def test_harmless_aliasing_same_direction(self):
        # two always-taken branches share counter 0: aliased, harmless
        pcs = [1] * 10 + [2] * 10
        detailed = detailed_from(pcs, [0] * 20, [True] * 20)
        stats = aliasing_stats(analyze_substreams(detailed))
        assert stats.aliased_counters == 1
        assert stats.aliased_access_fraction == 1.0
        assert stats.destructive_access_fraction == 0.0
        assert stats.harmless_access_fraction == 1.0

    def test_destructive_aliasing_opposite_directions(self):
        pcs = [1] * 10 + [2] * 10
        outcomes = [True] * 10 + [False] * 10
        detailed = detailed_from(pcs, [0] * 20, outcomes)
        stats = aliasing_stats(analyze_substreams(detailed))
        assert stats.destructive_counters == 1
        assert stats.destructive_access_fraction == 1.0

    def test_wb_sharing_is_not_destructive(self):
        # an ST stream sharing with a WB stream: aliased but not
        # destructive by the ST/SNT-collision definition
        pcs = [1] * 10 + [2] * 10
        outcomes = [True] * 10 + [True, False] * 5
        detailed = detailed_from(pcs, [0] * 20, outcomes)
        stats = aliasing_stats(analyze_substreams(detailed))
        assert stats.aliased_counters == 1
        assert stats.destructive_counters == 0

    def test_empty(self):
        detailed = detailed_from([], [], [], num_counters=4)
        stats = aliasing_stats(analyze_substreams(detailed))
        assert stats.counters_used == 0
        assert stats.aliased_access_fraction == 0.0

    def test_mean_streams_per_counter(self):
        pcs = [1, 2, 3, 4]
        counters = [0, 0, 0, 1]
        detailed = detailed_from(pcs, counters, [True] * 4)
        stats = aliasing_stats(analyze_substreams(detailed))
        assert stats.mean_streams_per_counter == pytest.approx(2.0)

    def test_bimode_less_destructive_than_gshare(self, aliasing_workload):
        """The 'separate the destructive aliases' claim as a direct
        measurement, at matched direction-index geometry: routing by
        bias must reduce opposite-class collisions per counter.  (The
        cost-matched version of the claim is the non-dominant-area test
        in test_analysis_bias.py.)"""
        gshare = run_detailed(
            make_predictor("gshare:index=8,hist=8"), aliasing_workload
        )
        bimode = run_detailed(
            make_predictor("bimode:dir=8,hist=8,choice=8"), aliasing_workload
        )
        g = aliasing_stats(analyze_substreams(gshare))
        b = aliasing_stats(analyze_substreams(bimode))
        assert b.destructive_access_fraction < g.destructive_access_fraction

    def test_min_minority_threshold_validated(self):
        detailed = detailed_from([1], [0], [True])
        with pytest.raises(ValueError):
            aliasing_stats(analyze_substreams(detailed), min_minority=0.6)


class TestSharingDecomposition:
    def test_no_capacity_pressure(self):
        # 2 streams, 4 counters: capacity share 0
        detailed = detailed_from([1, 2], [0, 1], [True, True], num_counters=4)
        decomposition = sharing_decomposition(analyze_substreams(detailed))
        assert decomposition.capacity_share == 0.0
        assert decomposition.measured_share == 0.0
        assert decomposition.conflict_share == 0.0

    def test_pure_conflict(self):
        # 2 streams, 4 counters, but both on counter 0: all conflict
        detailed = detailed_from([1, 2], [0, 0], [True, True], num_counters=4)
        decomposition = sharing_decomposition(analyze_substreams(detailed))
        assert decomposition.capacity_share == 0.0
        assert decomposition.measured_share == 1.0
        assert decomposition.conflict_share == 1.0

    def test_full_capacity(self):
        # 8 streams, 2 counters: sharing is inevitable
        pcs = list(range(8))
        counters = [0, 1] * 4
        detailed = detailed_from(pcs, counters, [True] * 8, num_counters=2)
        decomposition = sharing_decomposition(analyze_substreams(detailed))
        assert decomposition.capacity_share == 1.0
        assert decomposition.conflict_share == 0.0

    def test_partial_capacity(self):
        # 3 streams, 2 counters: balanced placement shares 2 of 3 streams
        detailed = detailed_from([1, 2, 3], [0, 0, 1], [True] * 3, num_counters=2)
        decomposition = sharing_decomposition(analyze_substreams(detailed))
        assert decomposition.capacity_share == pytest.approx(2 / 3)

    def test_empty(self):
        detailed = detailed_from([], [], [], num_counters=4)
        decomposition = sharing_decomposition(analyze_substreams(detailed))
        assert decomposition.measured_share == 0.0
