"""Figure 5 — per-counter bias breakdown for gshare on gcc.

The paper compares two 256-counter gshare-style predictors on gcc:

* *history-indexed*: 8 address bits xor 8 history bits;
* *address-indexed*: 8 address bits xor 2 history bits;

plotting, per counter (sorted by WB share), the normalized dynamic
counts of the dominant, non-dominant, and weakly-biased substream
groups.  The address-indexed scheme has a larger WB area; the
history-indexed scheme has a larger non-dominant (destructive-aliasing)
area.

We reproduce the same 256-counter geometry on the gcc trace, print the
area summary, and write the full sorted per-counter table as CSV (the
data behind the stacked-area plot).
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.common import emit_table, load_bench_trace, results_dir
from repro.analysis.bias import analyze_substreams, counter_bias_table
from repro.analysis.report import write_csv
from repro.core.registry import make_predictor
from repro.sim.engine import run_detailed

SCHEMES = [
    ("history-indexed", "gshare:index=8,hist=8"),
    ("address-indexed", "gshare:index=8,hist=2"),
]


def _areas(table: np.ndarray) -> dict:
    return {
        "dominant": float(table[:, 0].mean()),
        "non_dominant": float(table[:, 1].mean()),
        "wb": float(table[:, 2].mean()),
    }


@pytest.mark.benchmark(group="fig5")
def test_fig5_gshare_bias_breakdown(benchmark):
    trace = load_bench_trace("gcc")

    def compute():
        out = {}
        for label, spec in SCHEMES:
            detailed = run_detailed(make_predictor(spec), trace)
            out[label] = counter_bias_table(analyze_substreams(detailed))
        return out

    tables = benchmark.pedantic(compute, rounds=1, iterations=1)

    rows = []
    for label, table in tables.items():
        areas = _areas(table)
        rows.append(
            [
                label,
                len(table),
                f"{100 * areas['dominant']:.1f}%",
                f"{100 * areas['non_dominant']:.1f}%",
                f"{100 * areas['wb']:.1f}%",
            ]
        )
        write_csv(
            results_dir() / f"fig5_{label.replace('-', '_')}_counters.csv",
            ["dominant", "non_dominant", "wb"],
            [list(map(float, row)) for row in table],
        )
    emit_table(
        "fig5_bias_areas",
        "Figure 5 — mean bias areas over 256 counters, gcc",
        ["scheme", "counters used", "dominant", "non-dominant", "WB"],
        rows,
    )

    history = _areas(tables["history-indexed"])
    address = _areas(tables["address-indexed"])
    # the paper's two observations
    assert history["wb"] < address["wb"], "more history must shrink the WB area"
    assert history["non_dominant"] > address["non_dominant"], (
        "more history must pay in destructive aliasing"
    )
