"""Optional compiled step drivers for the per-branch automata.

The bi-mode choice/bank feedback defeats counter-major decomposition
(see :mod:`repro.sim.batch_bimode`), leaving a genuinely sequential
per-branch automaton; the gshare detailed path likewise walks one
saturating counter per branch when per-access attribution is wanted.
Each automaton is ~10 integer operations per branch, so a tiny C loop
runs it one to two orders of magnitude faster than any Python-level
stepping.  This module compiles those loops on first use with the
*system* C compiler — no build system, no installed extension, no new
dependency — and loads them through :mod:`ctypes`.

The driver is strictly optional:

* the shared object is built once into the repro cache directory
  (keyed by a hash of the C source, so edits rebuild automatically);
* any failure — no compiler on PATH, sandboxed ``cc``, unloadable
  object — is remembered and reported via :func:`available`, and the
  callers fall back to the pure-numpy / pure-Python paths with
  bit-identical results;
* ``REPRO_NO_CC=1`` disables the driver outright (used by tests to pin
  a specific execution strategy, and as an escape hatch on platforms
  where invoking the compiler is unwanted).
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path
from typing import Optional

import numpy as np

__all__ = [
    "available",
    "unavailable_reason",
    "bimode_pair",
    "gshare_detailed",
    "gshare_fused",
    "bimode_fused",
    "counter_lane",
    "gskew_lane",
    "trimode_lane",
    "yags_lane",
    "perceptron_lane",
    "biasfilter_lane",
    "substream_group",
    "class_changes",
]

_C_SOURCE = r"""
#include <stdint.h>

/* One (configuration, trace) bi-mode pair.  Index streams are
 * precomputed by the caller (they depend only on resolved outcomes);
 * this loop advances only the sequential counter state, mirroring
 * BiModePredictor.update exactly: partial update of the selected bank
 * (both banks under full_update), and the choice counter trains unless
 * it chose wrongly while the selected counter was nevertheless right.
 * When non-NULL, `banks` receives the per-access selected bank bit
 * (1 = taken bank), the attribution the Section-4 analysis needs. */
void bimode_pair(const int32_t *ci, const int32_t *di, const uint8_t *o,
                 int64_t n, int8_t *nt_bank, int8_t *tk_bank, int8_t *choice,
                 int full_update, uint8_t *preds, uint8_t *banks)
{
    for (int64_t t = 0; t < n; t++) {
        int32_t c = ci[t], d = di[t];
        uint8_t taken = o[t];
        int8_t cs = choice[c];
        int ct = cs >= 2;
        int8_t *bank = ct ? tk_bank : nt_bank;
        int8_t ds = bank[d];
        uint8_t fin = ds >= 2;
        preds[t] = fin;
        if (banks)
            banks[t] = (uint8_t)ct;
        bank[d] = taken ? (ds < 3 ? ds + 1 : 3) : (ds > 0 ? ds - 1 : 0);
        if (full_update) {
            int8_t *other = ct ? nt_bank : tk_bank;
            int8_t os = other[d];
            other[d] = taken ? (os < 3 ? os + 1 : 3) : (os > 0 ? os - 1 : 0);
        }
        if (!((ct != (int)taken) && (fin == taken)))
            choice[c] = taken ? (cs < 3 ? cs + 1 : 3) : (cs > 0 ? cs - 1 : 0);
    }
}

/* One gshare (configuration, trace) pair with per-access attribution.
 * The index stream is precomputed by the caller (it depends only on
 * resolved outcomes); the loop advances the saturating PHT exactly like
 * GSharePredictor._run and records each access's prediction.  The
 * accessed counter id IS the index stream, so nothing else needs
 * materializing for the Section-4 analysis. */
void gshare_detailed(const int32_t *keys, const uint8_t *o, int64_t n,
                     int8_t *table, uint8_t *preds)
{
    for (int64_t t = 0; t < n; t++) {
        int32_t j = keys[t];
        int8_t s = table[j];
        preds[t] = s >= 2;
        table[j] = o[t] ? (s < 3 ? s + 1 : 3) : (s > 0 ? s - 1 : 0);
    }
}

/* Fused gshare family: every lane of a spec family advances in ONE
 * pass over the raw trace.  All gshare lanes observe the same global
 * history contents (only the masked width differs), so a single 64-bit
 * register serves every lane — each lane masks off its own history and
 * PC bits (paper maximum is 17 bits, far below 64, so the unmasked
 * shift-in never loses a bit a lane could see).  Tables for all lanes
 * live concatenated in one int8 arena at per-lane base offsets; the
 * reduction to per-lane misprediction counts happens in-loop, so no
 * per-branch prediction stream is ever materialized. */
void gshare_fused(const int64_t *pcs, const uint8_t *o, int64_t n,
                  int64_t num_lanes, const int64_t *imask,
                  const int64_t *hmask, const int64_t *base,
                  int8_t *tables, int64_t *miss)
{
    uint64_t h = 0;
    for (int64_t t = 0; t < n; t++) {
        int64_t pc = pcs[t];
        uint8_t taken = o[t];
        for (int64_t k = 0; k < num_lanes; k++) {
            int64_t idx = (pc & imask[k]) ^ (int64_t)(h & (uint64_t)hmask[k]);
            int8_t *cell = tables + base[k] + idx;
            int8_t s = *cell;
            miss[k] += (int64_t)((s >= 2) != taken);
            *cell = taken ? (s < 3 ? s + 1 : 3) : (s > 0 ? s - 1 : 0);
        }
        h = (h << 1) | taken;
    }
}

/* Fused bi-mode family: the sequential choice/bank feedback loop of
 * bimode_pair, with every lane of the family advanced per branch.  The
 * direction index is gshare-style (PC xor masked history); the choice
 * index is PC-only when chmask is 0 and gshare-style otherwise, which
 * covers both choice_uses_history variants with one formula.  The
 * three tables of every lane share one int8 arena at per-lane base
 * offsets.  Update rules mirror BiModePredictor.update exactly:
 * partial update of the selected bank (both banks under full_update),
 * and the choice counter trains unless it chose wrongly while the
 * selected counter was nevertheless right. */
void bimode_fused(const int64_t *pcs, const uint8_t *o, int64_t n,
                  int64_t num_lanes, const int64_t *dmask,
                  const int64_t *dhmask, const int64_t *cmask,
                  const int64_t *chmask, const uint8_t *full_update,
                  const int64_t *nt_base, const int64_t *tk_base,
                  const int64_t *choice_base, int8_t *tables, int64_t *miss)
{
    uint64_t h = 0;
    for (int64_t t = 0; t < n; t++) {
        int64_t pc = pcs[t];
        uint8_t taken = o[t];
        for (int64_t k = 0; k < num_lanes; k++) {
            int64_t d = (pc & dmask[k]) ^ (int64_t)(h & (uint64_t)dhmask[k]);
            int64_t c = (pc & cmask[k]) ^ (int64_t)(h & (uint64_t)chmask[k]);
            int8_t *choice = tables + choice_base[k];
            int8_t cs = choice[c];
            int ct = cs >= 2;
            int8_t *bank = tables + (ct ? tk_base[k] : nt_base[k]);
            int8_t ds = bank[d];
            uint8_t fin = ds >= 2;
            miss[k] += (int64_t)(fin != taken);
            bank[d] = taken ? (ds < 3 ? ds + 1 : 3) : (ds > 0 ? ds - 1 : 0);
            if (full_update[k]) {
                int8_t *other = tables + (ct ? nt_base[k] : tk_base[k]);
                int8_t os = other[d];
                other[d] = taken ? (os < 3 ? os + 1 : 3) : (os > 0 ? os - 1 : 0);
            }
            if (!((ct != (int)taken) && (fin == taken)))
                choice[c] = taken ? (cs < 3 ? cs + 1 : 3) : (cs > 0 ? cs - 1 : 0);
        }
        h = (h << 1) | taken;
    }
}

/* One pass of a single saturating-counter table with precomputed keys:
 * the shared automaton of every feedback-free scheme in the kernel
 * registry (bimodal at any width, the two-level GAx/PAx family, agree
 * on its agreed-stream, gskew-total's banks, tournament components and
 * meta).  Each access records the state it OBSERVES (before its own
 * delta); prediction semantics stay with the numpy caller, which is
 * what lets one loop serve schemes with different read interpretations.
 * Deltas are in {-1, 0, +1}; 0 reads without training (e.g. the meta
 * table of a tournament when its components agree). */
void counter_lane(const int64_t *keys, const int8_t *delta, int64_t n,
                  int8_t *table, int8_t max_state, int8_t *states)
{
    for (int64_t t = 0; t < n; t++) {
        int64_t j = keys[t];
        int8_t s = table[j];
        states[t] = s;
        int8_t ns = (int8_t)(s + delta[t]);
        table[j] = ns < 0 ? 0 : (ns > max_state ? max_state : ns);
    }
}

/* One gskew (configuration, trace) pair: three banks indexed by the
 * rotation-XOR skewing functions of GSkewPredictor._indices, majority
 * vote, and either the total or the enhanced (e-gskew) update policy.
 * The enhanced policy's partial update feeds bank state back into which
 * banks train, so the whole automaton runs here; indices are computed
 * in-loop from the running 64-bit history register (masked per access
 * exactly like GlobalHistoryRegister.value). */
static int64_t rot_left(int64_t v, int64_t amount, int64_t bits, int64_t m)
{
    if (bits == 0)
        return 0;
    amount %= bits;
    v &= m;
    return ((v << amount) | (v >> (bits - amount))) & m;
}

void gskew_lane(const int64_t *pcs, const uint8_t *o, int64_t n,
                int64_t bank_bits, int64_t hmask, int enhanced,
                int8_t *b0, int8_t *b1, int8_t *b2, uint8_t *preds,
                int64_t *cids)
{
    int64_t m = bank_bits ? (((int64_t)1 << bank_bits) - 1) : 0;
    int64_t bank_size = (int64_t)1 << bank_bits;
    int64_t r1 = bank_bits / 2, r2 = (2 * bank_bits) / 3;
    uint64_t h = 0;
    for (int64_t t = 0; t < n; t++) {
        int64_t pc = pcs[t];
        uint8_t taken = o[t];
        int64_t pc_lo = pc & m;
        int64_t pc_hi = (pc >> bank_bits) & m;
        int64_t hist = bank_bits ? ((int64_t)(h & (uint64_t)hmask) & m) : 0;
        int64_t i0 = pc_lo ^ hist;
        int64_t i1 = rot_left(pc_lo, 1, bank_bits, m)
                     ^ rot_left(hist, r1, bank_bits, m) ^ pc_hi;
        int64_t i2 = rot_left(pc_lo, 2, bank_bits, m)
                     ^ rot_left(hist, r2, bank_bits, m)
                     ^ rot_left(pc_hi, 1, bank_bits, m);
        int8_t s0 = b0[i0], s1 = b1[i1], s2 = b2[i2];
        int v0 = s0 >= 2, v1 = s1 >= 2, v2 = s2 >= 2;
        int maj = (v0 + v1 + v2) >= 2;
        preds[t] = (uint8_t)maj;
        /* attribution: the first (lowest-numbered) bank voting with
         * the majority, bank k offset by k * bank_size */
        if (cids)
            cids[t] = (v0 == maj) ? i0
                      : ((v1 == maj) ? bank_size + i1 : 2 * bank_size + i2);
        int all = !enhanced || maj != (int)taken;
        if (all || v0 == maj)
            b0[i0] = taken ? (s0 < 3 ? s0 + 1 : 3) : (s0 > 0 ? s0 - 1 : 0);
        if (all || v1 == maj)
            b1[i1] = taken ? (s1 < 3 ? s1 + 1 : 3) : (s1 > 0 ? s1 - 1 : 0);
        if (all || v2 == maj)
            b2[i2] = taken ? (s2 < 3 ? s2 + 1 : 3) : (s2 > 0 ? s2 - 1 : 0);
        h = (h << 1) | taken;
    }
}

/* One tri-mode (configuration, trace) pair: bi-mode's bank feedback
 * with a third (weak) bank.  Choice/direction index streams are
 * precomputed by the caller (outcome-only, like bimode_pair); this loop
 * mirrors TriModePredictor._run exactly, including the generalized
 * partial-update exception on the choice table. */
void trimode_lane(const int64_t *ci, const int64_t *di, const uint8_t *o,
                  int64_t n, int64_t bank_size, int8_t *nt_bank,
                  int8_t *tk_bank, int8_t *wk_bank, int8_t *choice,
                  uint8_t *preds, int64_t *cids)
{
    for (int64_t t = 0; t < n; t++) {
        int64_t c = ci[t], d = di[t];
        uint8_t taken = o[t];
        int8_t cs = choice[c];
        int8_t *bank = (cs == 3) ? tk_bank : ((cs == 0) ? nt_bank : wk_bank);
        int8_t ds = bank[d];
        uint8_t fin = ds >= 2;
        preds[t] = fin;
        /* attribution: bank b (not-taken, taken, weak) occupies ids
         * [b * bank_size, (b + 1) * bank_size) */
        if (cids) {
            int64_t bank_id = (cs == 3) ? 1 : ((cs == 0) ? 0 : 2);
            cids[t] = bank_id * bank_size + d;
        }
        bank[d] = taken ? (ds < 3 ? ds + 1 : 3) : (ds > 0 ? ds - 1 : 0);
        int cls = cs >= 2;
        if (!((cls != (int)taken) && (fin == taken)))
            choice[c] = taken ? (cs < 3 ? cs + 1 : 3) : (cs > 0 ? cs - 1 : 0);
    }
}

/* One YAGS (configuration, trace) pair: bimodal choice bias plus two
 * tagged exception caches.  Choice index, cache index and partial-tag
 * streams are precomputed (outcome-only); the loop mirrors
 * YagsPredictor.update exactly — probe the cache OPPOSITE the bias,
 * train/allocate it when the outcome deviates from the bias or the
 * entry already hit, and skip the choice update when the bias was
 * wrong yet the override got it right. */
void yags_lane(const int64_t *ci, const int64_t *ki, const int32_t *tg,
               const uint8_t *o, int64_t n, int64_t choice_size,
               int64_t cache_size, int8_t *choice,
               int32_t *tk_tags, int8_t *tk_ctr,
               int32_t *nt_tags, int8_t *nt_ctr, uint8_t *preds,
               int64_t *cids)
{
    for (int64_t t = 0; t < n; t++) {
        int64_t c = ci[t], k = ki[t];
        int32_t tag = tg[t];
        uint8_t taken = o[t];
        int8_t cs = choice[c];
        int bias = cs >= 2;
        int32_t *tags = bias ? nt_tags : tk_tags;
        int8_t *ctr = bias ? nt_ctr : tk_ctr;
        int hit = tags[k] == tag;
        int8_t hs = ctr[k];
        int fin = hit ? (hs >= 2) : bias;
        preds[t] = (uint8_t)fin;
        /* attribution layout: choice table, taken cache, not-taken
         * cache; a hit charges the hitting cache entry, a miss the
         * choice counter that supplied the bias */
        if (cids)
            cids[t] = hit
                ? choice_size + (bias ? cache_size : 0) + k
                : c;
        if ((int)taken != bias || hit) {
            if (!hit) {
                tags[k] = tag;
                ctr[k] = taken ? 2 : 1;
            } else {
                ctr[k] = taken ? (hs < 3 ? hs + 1 : 3)
                               : (hs > 0 ? hs - 1 : 0);
            }
        }
        if (!((bias != (int)taken) && (fin == (int)taken)))
            choice[c] = taken ? (cs < 3 ? cs + 1 : 3) : (cs > 0 ? cs - 1 : 0);
    }
}

/* One perceptron (configuration, trace) pair: one signed int32 weight
 * row per PC hash, dot product against the running history register,
 * threshold-gated training — PerceptronPredictor.simulate exactly.
 * The dot product accumulates in int64 (worst case |y| <= 63 * 2^29,
 * beyond int32); weights saturate to [w_min, w_max] per update.  Like
 * gskew_lane the history register lives in-loop: only the low
 * `hist_bits` bits are ever read, so the unmasked shift-in matches the
 * scalar GlobalHistoryRegister bit-for-bit. */
void perceptron_lane(const int64_t *pcs, const uint8_t *o, int64_t n,
                     int64_t pc_mask, int64_t hist_bits, int64_t theta,
                     int64_t w_min, int64_t w_max,
                     int32_t *weights, uint8_t *preds)
{
    int64_t stride = hist_bits + 1;
    uint64_t h = 0;
    for (int64_t t = 0; t < n; t++) {
        uint8_t taken = o[t];
        int32_t *row = weights + (pcs[t] & pc_mask) * stride;
        int64_t y = row[0];
        for (int64_t j = 1; j <= hist_bits; j++) {
            if ((h >> (j - 1)) & 1)
                y += row[j];
            else
                y -= row[j];
        }
        uint8_t pred = y >= 0;
        preds[t] = pred;
        int64_t mag = y >= 0 ? y : -y;
        if (pred != taken || mag <= theta) {
            int64_t d = taken ? 1 : -1;
            int64_t v = row[0] + d;
            row[0] = (int32_t)(v > w_max ? w_max : (v < w_min ? w_min : v));
            for (int64_t j = 1; j <= hist_bits; j++) {
                v = row[j] + (((h >> (j - 1)) & 1) ? d : -d);
                row[j] = (int32_t)(v > w_max ? w_max : (v < w_min ? w_min : v));
            }
        }
        h = (h << 1) | taken;
    }
}

/* One bias-filter (configuration, trace) pair: the per-address
 * run-counter filter automaton of BiasFilterPredictor in front of an
 * inlined 2-bit-counter sub-predictor (gshare when sub_hmask != 0,
 * bimodal when it is 0 — the same index formula covers both).  A
 * filtered access is answered by the filter's direction bit and hidden
 * from the sub-predictor ENTIRELY: its table does not train and its
 * history register is not pushed, matching the scalar design note. */
void biasfilter_lane(const int64_t *pcs, const uint8_t *o, int64_t n,
                     int64_t fmask, int64_t max_run,
                     int64_t sub_imask, int64_t sub_hmask,
                     uint8_t *dirs, int8_t *runs, int8_t *sub_table,
                     uint8_t *preds)
{
    uint64_t h = 0;
    for (int64_t t = 0; t < n; t++) {
        int64_t pc = pcs[t];
        uint8_t taken = o[t];
        int64_t slot = pc & fmask;
        int8_t run = runs[slot];
        if (run >= max_run) {
            preds[t] = dirs[slot];
        } else {
            int64_t idx = (pc & sub_imask) ^ (int64_t)(h & (uint64_t)sub_hmask);
            int8_t s = sub_table[idx];
            preds[t] = s >= 2;
            sub_table[idx] = taken ? (s < 3 ? s + 1 : 3) : (s > 0 ? s - 1 : 0);
            h = (h << 1) | taken;
        }
        if (run == 0 || dirs[slot] != taken) {
            dirs[slot] = taken;
            runs[slot] = 1;
        } else if (run < max_run) {
            runs[slot] = (int8_t)(run + 1);
        }
    }
}

/* Substream grouping + reduction for the Section-4 analysis: a stable
 * two-pass counting sort of accesses by (counter, pc) followed by one
 * walk that numbers the substreams in ascending (counter, pc) order —
 * the ordering np.unique over composite keys yields — and accumulates
 * each substream's total/taken/mispredicted counts.  `bucket` must
 * hold max(C, P) + 1 slots; `tmp` and `order` hold n; the stream_*
 * outputs are written in [0, n) worst case, actual length returned.
 * Returns the number of substreams. */
int64_t substream_group(const int32_t *cid, const int32_t *pc,
                        const uint8_t *taken, const uint8_t *miss,
                        int64_t n, int32_t C, int32_t P,
                        int32_t *bucket, int32_t *tmp, int32_t *order,
                        int64_t *access_stream,
                        int32_t *stream_counter, int32_t *stream_pc,
                        int64_t *stream_total, int64_t *stream_taken,
                        int64_t *stream_miss)
{
    int64_t t, i;
    /* pass 1: stable counting sort by pc (minor key) */
    for (i = 0; i <= P; i++) bucket[i] = 0;
    for (t = 0; t < n; t++) bucket[pc[t] + 1]++;
    for (i = 0; i < P; i++) bucket[i + 1] += bucket[i];
    for (t = 0; t < n; t++) tmp[bucket[pc[t]]++] = (int32_t)t;
    /* pass 2: stable counting sort by counter (major key) */
    for (i = 0; i <= C; i++) bucket[i] = 0;
    for (t = 0; t < n; t++) bucket[cid[t] + 1]++;
    for (i = 0; i < C; i++) bucket[i + 1] += bucket[i];
    for (i = 0; i < n; i++) {
        int32_t a = tmp[i];
        order[bucket[cid[a]]++] = a;
    }
    /* pass 3: number substreams and reduce */
    int64_t s = -1;
    int32_t prev_c = -1, prev_p = -1;
    for (i = 0; i < n; i++) {
        int32_t a = order[i];
        int32_t c = cid[a], p = pc[a];
        if (s < 0 || c != prev_c || p != prev_p) {
            s++;
            stream_counter[s] = c;
            stream_pc[s] = p;
            stream_total[s] = 0;
            stream_taken[s] = 0;
            stream_miss[s] = 0;
            prev_c = c;
            prev_p = p;
        }
        stream_total[s]++;
        stream_taken[s] += taken[a];
        stream_miss[s] += miss[a];
        access_stream[a] = s;
    }
    return s + 1;
}

/* Table-4 interference counting in one pass: `last_role[c]` remembers
 * the dominance role of counter c's previous access (-1 = none yet);
 * a differing role counts one change against the *earlier* access's
 * role, matching the lexsort-based reference formulation exactly. */
void class_changes(const int32_t *cid, const int64_t *access_stream,
                   const int8_t *stream_role, int64_t n,
                   int8_t *last_role, int64_t *counts)
{
    for (int64_t t = 0; t < n; t++) {
        int32_t c = cid[t];
        int8_t r = stream_role[access_stream[t]];
        int8_t lr = last_role[c];
        if (lr >= 0 && lr != r)
            counts[lr]++;
        last_role[c] = r;
    }
}
"""

_lib: Optional[ctypes.CDLL] = None
_load_attempted = False
_failure: Optional[str] = None


def _source_digest() -> str:
    return hashlib.sha1(_C_SOURCE.encode()).hexdigest()[:16]


def _build_dir() -> Path:
    from repro.workloads.suite import default_cache_dir

    return default_cache_dir() / "ckernel"


def _compile(so_path: Path) -> bool:
    """Build the shared object atomically; False on any failure."""
    compiler = next(
        (c for c in ("cc", "gcc", "clang") if shutil.which(c)), None
    )
    if compiler is None:
        return False
    so_path.parent.mkdir(parents=True, exist_ok=True)
    src = so_path.with_suffix(".c")
    src.write_text(_C_SOURCE)
    with tempfile.NamedTemporaryFile(
        dir=so_path.parent, suffix=".so.tmp", delete=False
    ) as tmp:
        tmp_path = Path(tmp.name)
    try:
        proc = subprocess.run(
            [compiler, "-O2", "-shared", "-fPIC", "-o", str(tmp_path), str(src)],
            capture_output=True,
            timeout=120,
        )
        if proc.returncode != 0:
            return False
        os.replace(tmp_path, so_path)
        return True
    except (OSError, subprocess.SubprocessError):
        return False
    finally:
        tmp_path.unlink(missing_ok=True)


def _load() -> Optional[ctypes.CDLL]:
    global _lib, _load_attempted, _failure
    if os.environ.get("REPRO_NO_CC", "").strip() not in ("", "0"):
        return None
    if _load_attempted:
        return _lib
    _load_attempted = True
    try:
        so_path = _build_dir() / f"step-{_source_digest()}.so"
        if not so_path.exists() and not _compile(so_path):
            _failure = (
                "no C compiler on PATH"
                if not any(shutil.which(c) for c in ("cc", "gcc", "clang"))
                else "compiler invocation failed"
            )
            return None
        lib = ctypes.CDLL(str(so_path))
        lib.bimode_pair.argtypes = [
            ctypes.c_void_p,  # ci
            ctypes.c_void_p,  # di
            ctypes.c_void_p,  # outcomes
            ctypes.c_int64,  # n
            ctypes.c_void_p,  # not-taken bank
            ctypes.c_void_p,  # taken bank
            ctypes.c_void_p,  # choice table
            ctypes.c_int,  # full_update
            ctypes.c_void_p,  # predictions out
            ctypes.c_void_p,  # selected-bank bits out (nullable)
        ]
        lib.bimode_pair.restype = None
        lib.gshare_detailed.argtypes = [
            ctypes.c_void_p,  # keys (index stream)
            ctypes.c_void_p,  # outcomes
            ctypes.c_int64,  # n
            ctypes.c_void_p,  # PHT
            ctypes.c_void_p,  # predictions out
        ]
        lib.gshare_detailed.restype = None
        lib.gshare_fused.argtypes = [
            ctypes.c_void_p,  # pcs
            ctypes.c_void_p,  # outcomes
            ctypes.c_int64,  # n
            ctypes.c_int64,  # num_lanes
            ctypes.c_void_p,  # imask
            ctypes.c_void_p,  # hmask
            ctypes.c_void_p,  # base
            ctypes.c_void_p,  # tables arena
            ctypes.c_void_p,  # miss out
        ]
        lib.gshare_fused.restype = None
        lib.bimode_fused.argtypes = [
            ctypes.c_void_p,  # pcs
            ctypes.c_void_p,  # outcomes
            ctypes.c_int64,  # n
            ctypes.c_int64,  # num_lanes
            ctypes.c_void_p,  # dmask
            ctypes.c_void_p,  # dhmask
            ctypes.c_void_p,  # cmask
            ctypes.c_void_p,  # chmask
            ctypes.c_void_p,  # full_update
            ctypes.c_void_p,  # nt_base
            ctypes.c_void_p,  # tk_base
            ctypes.c_void_p,  # choice_base
            ctypes.c_void_p,  # tables arena
            ctypes.c_void_p,  # miss out
        ]
        lib.bimode_fused.restype = None
        lib.counter_lane.argtypes = [
            ctypes.c_void_p,  # keys
            ctypes.c_void_p,  # deltas
            ctypes.c_int64,  # n
            ctypes.c_void_p,  # table
            ctypes.c_int8,  # max_state
            ctypes.c_void_p,  # observed states out
        ]
        lib.counter_lane.restype = None
        lib.gskew_lane.argtypes = [
            ctypes.c_void_p,  # pcs
            ctypes.c_void_p,  # outcomes
            ctypes.c_int64,  # n
            ctypes.c_int64,  # bank_bits
            ctypes.c_int64,  # hmask
            ctypes.c_int,  # enhanced
            ctypes.c_void_p,  # bank 0
            ctypes.c_void_p,  # bank 1
            ctypes.c_void_p,  # bank 2
            ctypes.c_void_p,  # predictions out
            ctypes.c_void_p,  # counter ids out (nullable)
        ]
        lib.gskew_lane.restype = None
        lib.trimode_lane.argtypes = [
            ctypes.c_void_p,  # ci
            ctypes.c_void_p,  # di
            ctypes.c_void_p,  # outcomes
            ctypes.c_int64,  # n
            ctypes.c_int64,  # bank_size
            ctypes.c_void_p,  # not-taken bank
            ctypes.c_void_p,  # taken bank
            ctypes.c_void_p,  # weak bank
            ctypes.c_void_p,  # choice table
            ctypes.c_void_p,  # predictions out
            ctypes.c_void_p,  # counter ids out (nullable)
        ]
        lib.trimode_lane.restype = None
        lib.yags_lane.argtypes = [
            ctypes.c_void_p,  # ci (choice index)
            ctypes.c_void_p,  # ki (cache index)
            ctypes.c_void_p,  # tg (partial tags)
            ctypes.c_void_p,  # outcomes
            ctypes.c_int64,  # n
            ctypes.c_int64,  # choice_size
            ctypes.c_int64,  # cache_size
            ctypes.c_void_p,  # choice table
            ctypes.c_void_p,  # taken-cache tags
            ctypes.c_void_p,  # taken-cache counters
            ctypes.c_void_p,  # not-taken-cache tags
            ctypes.c_void_p,  # not-taken-cache counters
            ctypes.c_void_p,  # predictions out
            ctypes.c_void_p,  # counter ids out (nullable)
        ]
        lib.yags_lane.restype = None
        lib.perceptron_lane.argtypes = [
            ctypes.c_void_p,  # pcs
            ctypes.c_void_p,  # outcomes
            ctypes.c_int64,  # n
            ctypes.c_int64,  # pc_mask
            ctypes.c_int64,  # hist_bits
            ctypes.c_int64,  # theta
            ctypes.c_int64,  # w_min
            ctypes.c_int64,  # w_max
            ctypes.c_void_p,  # weight arena
            ctypes.c_void_p,  # predictions out
        ]
        lib.perceptron_lane.restype = None
        lib.biasfilter_lane.argtypes = [
            ctypes.c_void_p,  # pcs
            ctypes.c_void_p,  # outcomes
            ctypes.c_int64,  # n
            ctypes.c_int64,  # fmask
            ctypes.c_int64,  # max_run
            ctypes.c_int64,  # sub_imask
            ctypes.c_int64,  # sub_hmask
            ctypes.c_void_p,  # filter direction bits
            ctypes.c_void_p,  # filter run counters
            ctypes.c_void_p,  # sub-predictor counter table
            ctypes.c_void_p,  # predictions out
        ]
        lib.biasfilter_lane.restype = None
        lib.substream_group.argtypes = [ctypes.c_void_p] * 4 + [
            ctypes.c_int64,
            ctypes.c_int32,
            ctypes.c_int32,
        ] + [ctypes.c_void_p] * 9
        lib.substream_group.restype = ctypes.c_int64
        lib.class_changes.argtypes = [ctypes.c_void_p] * 3 + [
            ctypes.c_int64
        ] + [ctypes.c_void_p] * 2
        lib.class_changes.restype = None
        _lib = lib
    except OSError as exc:
        _failure = f"shared object failed to load: {exc}"
        _lib = None
    return _lib


def available() -> bool:
    """Whether the compiled driver can be used in this environment."""
    return _load() is not None


def unavailable_reason() -> Optional[str]:
    """Why the compiled driver cannot run, or ``None`` if it can.

    Feeds the degradation events of the kernel dispatch chain
    (:mod:`repro.health`): a sweep report can then state *why* cells
    fell back from the compiled loop to numpy/Python stepping.
    """
    if os.environ.get("REPRO_NO_CC", "").strip() not in ("", "0"):
        return "REPRO_NO_CC is set"
    if _load() is not None:
        return None
    return _failure or "compiled driver unavailable"


def _ptr(array: np.ndarray) -> ctypes.c_void_p:
    return ctypes.c_void_p(array.ctypes.data)


def bimode_pair(
    ci: np.ndarray,
    di: np.ndarray,
    outcomes: np.ndarray,
    nt_bank: np.ndarray,
    tk_bank: np.ndarray,
    choice: np.ndarray,
    full_update: bool,
    banks: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Run one bi-mode pair through the compiled loop.

    ``ci``/``di`` are int32 index streams, ``outcomes`` uint8; the three
    table arrays are int8 and are updated in place.  Returns the uint8
    per-branch final predictions.  Pass a uint8 ``banks`` array of the
    same length to also record each access's selected bank bit (1 =
    taken bank).  Call only when :func:`available`.
    """
    lib = _load()
    if lib is None:  # pragma: no cover - callers gate on available()
        raise RuntimeError("compiled bi-mode driver is not available")
    n = len(outcomes)
    preds = np.empty(n, dtype=np.uint8)
    arrays = [
        (ci, np.int32),
        (di, np.int32),
        (outcomes, np.uint8),
        (nt_bank, np.int8),
        (tk_bank, np.int8),
        (choice, np.int8),
    ]
    if banks is not None:
        assert len(banks) == n
        arrays.append((banks, np.uint8))
    for arr, dtype in arrays:
        assert arr.dtype == dtype and arr.flags["C_CONTIGUOUS"]
    lib.bimode_pair(
        _ptr(ci),
        _ptr(di),
        _ptr(outcomes),
        ctypes.c_int64(n),
        _ptr(nt_bank),
        _ptr(tk_bank),
        _ptr(choice),
        ctypes.c_int(1 if full_update else 0),
        _ptr(preds),
        _ptr(banks) if banks is not None else None,
    )
    return preds


def gshare_detailed(
    keys: np.ndarray, outcomes: np.ndarray, table: np.ndarray
) -> np.ndarray:
    """Run one gshare pair through the compiled loop.

    ``keys`` is the int32 index stream, ``outcomes`` uint8; ``table`` is
    the int8 PHT, updated in place.  Returns the uint8 per-branch
    predictions (each access's counter id is ``keys`` itself).  Call
    only when :func:`available`.
    """
    lib = _load()
    if lib is None:  # pragma: no cover - callers gate on available()
        raise RuntimeError("compiled gshare driver is not available")
    n = len(outcomes)
    preds = np.empty(n, dtype=np.uint8)
    for arr, dtype in ((keys, np.int32), (outcomes, np.uint8), (table, np.int8)):
        assert arr.dtype == dtype and arr.flags["C_CONTIGUOUS"]
    lib.gshare_detailed(
        _ptr(keys), _ptr(outcomes), ctypes.c_int64(n), _ptr(table), _ptr(preds)
    )
    return preds


def gshare_fused(
    pcs: np.ndarray,
    outcomes: np.ndarray,
    imask: np.ndarray,
    hmask: np.ndarray,
    base: np.ndarray,
    tables: np.ndarray,
) -> np.ndarray:
    """Advance a whole gshare lane family in one pass over the trace.

    ``pcs`` is int64, ``outcomes`` uint8; ``imask``/``hmask``/``base``
    are int64 per-lane parameter vectors and ``tables`` the shared int8
    counter arena (updated in place).  Returns the int64 per-lane
    misprediction counts.  Call only when :func:`available`.
    """
    lib = _load()
    if lib is None:  # pragma: no cover - callers gate on available()
        raise RuntimeError("compiled fused gshare driver is not available")
    num_lanes = len(imask)
    miss = np.zeros(num_lanes, dtype=np.int64)
    for arr, dtype in (
        (pcs, np.int64),
        (outcomes, np.uint8),
        (imask, np.int64),
        (hmask, np.int64),
        (base, np.int64),
        (tables, np.int8),
    ):
        assert arr.dtype == dtype and arr.flags["C_CONTIGUOUS"]
    lib.gshare_fused(
        _ptr(pcs),
        _ptr(outcomes),
        ctypes.c_int64(len(outcomes)),
        ctypes.c_int64(num_lanes),
        _ptr(imask),
        _ptr(hmask),
        _ptr(base),
        _ptr(tables),
        _ptr(miss),
    )
    return miss


def bimode_fused(
    pcs: np.ndarray,
    outcomes: np.ndarray,
    dmask: np.ndarray,
    dhmask: np.ndarray,
    cmask: np.ndarray,
    chmask: np.ndarray,
    full_update: np.ndarray,
    nt_base: np.ndarray,
    tk_base: np.ndarray,
    choice_base: np.ndarray,
    tables: np.ndarray,
) -> np.ndarray:
    """Advance a whole bi-mode lane family in one pass over the trace.

    ``pcs`` is int64, ``outcomes`` and ``full_update`` uint8; the mask
    and base arguments are int64 per-lane parameter vectors and
    ``tables`` the shared int8 arena holding every lane's three tables
    (updated in place).  Returns the int64 per-lane misprediction
    counts.  Call only when :func:`available`.
    """
    lib = _load()
    if lib is None:  # pragma: no cover - callers gate on available()
        raise RuntimeError("compiled fused bi-mode driver is not available")
    num_lanes = len(dmask)
    miss = np.zeros(num_lanes, dtype=np.int64)
    for arr, dtype in (
        (pcs, np.int64),
        (outcomes, np.uint8),
        (dmask, np.int64),
        (dhmask, np.int64),
        (cmask, np.int64),
        (chmask, np.int64),
        (full_update, np.uint8),
        (nt_base, np.int64),
        (tk_base, np.int64),
        (choice_base, np.int64),
        (tables, np.int8),
    ):
        assert arr.dtype == dtype and arr.flags["C_CONTIGUOUS"]
    lib.bimode_fused(
        _ptr(pcs),
        _ptr(outcomes),
        ctypes.c_int64(len(outcomes)),
        ctypes.c_int64(num_lanes),
        _ptr(dmask),
        _ptr(dhmask),
        _ptr(cmask),
        _ptr(chmask),
        _ptr(full_update),
        _ptr(nt_base),
        _ptr(tk_base),
        _ptr(choice_base),
        _ptr(tables),
        _ptr(miss),
    )
    return miss


def counter_lane(
    keys: np.ndarray, deltas: np.ndarray, table: np.ndarray, max_state: int = 3
) -> np.ndarray:
    """Advance one saturating-counter table through the compiled loop.

    ``keys`` is the int64 counter-id stream, ``deltas`` the int8
    per-access movement in ``{-1, 0, +1}``; ``table`` is the int8
    counter table, updated in place.  Returns the int8 state each access
    *observed* (before its own delta) — prediction semantics belong to
    the caller.  Call only when :func:`available`.
    """
    lib = _load()
    if lib is None:  # pragma: no cover - callers gate on available()
        raise RuntimeError("compiled counter driver is not available")
    n = len(keys)
    states = np.empty(n, dtype=np.int8)
    for arr, dtype in ((keys, np.int64), (deltas, np.int8), (table, np.int8)):
        assert arr.dtype == dtype and arr.flags["C_CONTIGUOUS"]
    lib.counter_lane(
        _ptr(keys),
        _ptr(deltas),
        ctypes.c_int64(n),
        _ptr(table),
        ctypes.c_int8(max_state),
        _ptr(states),
    )
    return states


def gskew_lane(
    pcs: np.ndarray,
    outcomes: np.ndarray,
    bank_bits: int,
    hist_bits: int,
    enhanced: bool,
    banks: np.ndarray,
    cids: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Run one gskew pair through the compiled loop.

    ``pcs`` is int64, ``outcomes`` uint8; ``banks`` is the int8
    ``(3, 1 << bank_bits)`` bank-state array, updated in place.  Returns
    the uint8 per-branch majority predictions.  Pass an int64 ``cids``
    array of the same length to also record each access's attributed
    counter id (first majority-voting bank, offset by its bank number).
    Call only when :func:`available`.
    """
    lib = _load()
    if lib is None:  # pragma: no cover - callers gate on available()
        raise RuntimeError("compiled gskew driver is not available")
    n = len(outcomes)
    preds = np.empty(n, dtype=np.uint8)
    assert banks.shape[0] == 3 and banks.dtype == np.int8
    b0, b1, b2 = banks[0], banks[1], banks[2]
    arrays = [
        (pcs, np.int64),
        (outcomes, np.uint8),
        (b0, np.int8),
        (b1, np.int8),
        (b2, np.int8),
    ]
    if cids is not None:
        assert len(cids) == n
        arrays.append((cids, np.int64))
    for arr, dtype in arrays:
        assert arr.dtype == dtype and arr.flags["C_CONTIGUOUS"]
    lib.gskew_lane(
        _ptr(pcs),
        _ptr(outcomes),
        ctypes.c_int64(n),
        ctypes.c_int64(bank_bits),
        ctypes.c_int64((1 << hist_bits) - 1),
        ctypes.c_int(1 if enhanced else 0),
        _ptr(b0),
        _ptr(b1),
        _ptr(b2),
        _ptr(preds),
        _ptr(cids) if cids is not None else None,
    )
    return preds


def trimode_lane(
    ci: np.ndarray,
    di: np.ndarray,
    outcomes: np.ndarray,
    nt_bank: np.ndarray,
    tk_bank: np.ndarray,
    wk_bank: np.ndarray,
    choice: np.ndarray,
    cids: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Run one tri-mode pair through the compiled loop.

    ``ci``/``di`` are int64 index streams, ``outcomes`` uint8; the four
    table arrays are int8 and are updated in place.  Returns the uint8
    per-branch final predictions.  Pass an int64 ``cids`` array of the
    same length to also record each access's selected direction counter
    (bank b offset by ``b * bank_size``).  Call only when
    :func:`available`.
    """
    lib = _load()
    if lib is None:  # pragma: no cover - callers gate on available()
        raise RuntimeError("compiled tri-mode driver is not available")
    n = len(outcomes)
    preds = np.empty(n, dtype=np.uint8)
    arrays = [
        (ci, np.int64),
        (di, np.int64),
        (outcomes, np.uint8),
        (nt_bank, np.int8),
        (tk_bank, np.int8),
        (wk_bank, np.int8),
        (choice, np.int8),
    ]
    if cids is not None:
        assert len(cids) == n
        arrays.append((cids, np.int64))
    for arr, dtype in arrays:
        assert arr.dtype == dtype and arr.flags["C_CONTIGUOUS"]
    lib.trimode_lane(
        _ptr(ci),
        _ptr(di),
        _ptr(outcomes),
        ctypes.c_int64(n),
        ctypes.c_int64(len(nt_bank)),
        _ptr(nt_bank),
        _ptr(tk_bank),
        _ptr(wk_bank),
        _ptr(choice),
        _ptr(preds),
        _ptr(cids) if cids is not None else None,
    )
    return preds


def yags_lane(
    ci: np.ndarray,
    ki: np.ndarray,
    tags: np.ndarray,
    outcomes: np.ndarray,
    choice: np.ndarray,
    tk_tags: np.ndarray,
    tk_ctr: np.ndarray,
    nt_tags: np.ndarray,
    nt_ctr: np.ndarray,
    cids: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Run one YAGS pair through the compiled loop.

    ``ci``/``ki`` are int64 index streams, ``tags`` the int32 partial-tag
    stream, ``outcomes`` uint8; the choice table and both (tags,
    counters) cache pairs are updated in place (tag arrays int32,
    counters int8).  Returns the uint8 per-branch final predictions.
    Pass an int64 ``cids`` array of the same length to also record each
    access's attributed counter (choice table, then taken cache, then
    not-taken cache).  Call only when :func:`available`.
    """
    lib = _load()
    if lib is None:  # pragma: no cover - callers gate on available()
        raise RuntimeError("compiled YAGS driver is not available")
    n = len(outcomes)
    preds = np.empty(n, dtype=np.uint8)
    arrays = [
        (ci, np.int64),
        (ki, np.int64),
        (tags, np.int32),
        (outcomes, np.uint8),
        (choice, np.int8),
        (tk_tags, np.int32),
        (tk_ctr, np.int8),
        (nt_tags, np.int32),
        (nt_ctr, np.int8),
    ]
    if cids is not None:
        assert len(cids) == n
        arrays.append((cids, np.int64))
    for arr, dtype in arrays:
        assert arr.dtype == dtype and arr.flags["C_CONTIGUOUS"]
    lib.yags_lane(
        _ptr(ci),
        _ptr(ki),
        _ptr(tags),
        _ptr(outcomes),
        ctypes.c_int64(n),
        ctypes.c_int64(len(choice)),
        ctypes.c_int64(len(tk_ctr)),
        _ptr(choice),
        _ptr(tk_tags),
        _ptr(tk_ctr),
        _ptr(nt_tags),
        _ptr(nt_ctr),
        _ptr(preds),
        _ptr(cids) if cids is not None else None,
    )
    return preds


def perceptron_lane(
    pcs: np.ndarray,
    outcomes: np.ndarray,
    index_bits: int,
    hist_bits: int,
    theta: int,
    w_min: int,
    w_max: int,
    weights: np.ndarray,
) -> np.ndarray:
    """Run one perceptron pair through the compiled loop.

    ``pcs`` is int64, ``outcomes`` uint8; ``weights`` is the int32
    arena of ``(1 << index_bits) * (hist_bits + 1)`` weights laid out
    row-major ``[bias, w_1 .. w_hist]`` per perceptron, updated in
    place.  Returns the uint8 per-branch predictions.  Call only when
    :func:`available`.
    """
    lib = _load()
    if lib is None:  # pragma: no cover - callers gate on available()
        raise RuntimeError("compiled perceptron driver is not available")
    n = len(outcomes)
    preds = np.empty(n, dtype=np.uint8)
    assert len(weights) == (1 << index_bits) * (hist_bits + 1)
    for arr, dtype in ((pcs, np.int64), (outcomes, np.uint8), (weights, np.int32)):
        assert arr.dtype == dtype and arr.flags["C_CONTIGUOUS"]
    lib.perceptron_lane(
        _ptr(pcs),
        _ptr(outcomes),
        ctypes.c_int64(n),
        ctypes.c_int64((1 << index_bits) - 1),
        ctypes.c_int64(hist_bits),
        ctypes.c_int64(theta),
        ctypes.c_int64(w_min),
        ctypes.c_int64(w_max),
        _ptr(weights),
        _ptr(preds),
    )
    return preds


def biasfilter_lane(
    pcs: np.ndarray,
    outcomes: np.ndarray,
    filter_bits: int,
    max_run: int,
    sub_index_bits: int,
    sub_hist_bits: int,
    dirs: np.ndarray,
    runs: np.ndarray,
    sub_table: np.ndarray,
) -> np.ndarray:
    """Run one bias-filter pair through the compiled loop.

    ``pcs`` is int64, ``outcomes`` uint8; ``dirs`` (uint8) and ``runs``
    (int8) are the filter state, ``sub_table`` the int8 2-bit-counter
    table of the sub-predictor (gshare when ``sub_hist_bits > 0``, else
    bimodal), all updated in place.  Returns the uint8 per-branch
    predictions.  Call only when :func:`available`.
    """
    lib = _load()
    if lib is None:  # pragma: no cover - callers gate on available()
        raise RuntimeError("compiled bias-filter driver is not available")
    n = len(outcomes)
    preds = np.empty(n, dtype=np.uint8)
    for arr, dtype in (
        (pcs, np.int64),
        (outcomes, np.uint8),
        (dirs, np.uint8),
        (runs, np.int8),
        (sub_table, np.int8),
    ):
        assert arr.dtype == dtype and arr.flags["C_CONTIGUOUS"]
    lib.biasfilter_lane(
        _ptr(pcs),
        _ptr(outcomes),
        ctypes.c_int64(n),
        ctypes.c_int64((1 << filter_bits) - 1),
        ctypes.c_int64(max_run),
        ctypes.c_int64((1 << sub_index_bits) - 1),
        ctypes.c_int64((1 << sub_hist_bits) - 1),
        _ptr(dirs),
        _ptr(runs),
        _ptr(sub_table),
        _ptr(preds),
    )
    return preds


def substream_group(
    counter_ids: np.ndarray,
    pc_dense: np.ndarray,
    taken: np.ndarray,
    mispredicted: np.ndarray,
    num_counters: int,
    num_pcs: int,
):
    """Group accesses into (counter, pc) substreams through the C loop.

    ``counter_ids``/``pc_dense`` are int32, ``taken``/``mispredicted``
    uint8, all C-contiguous.  Returns ``(access_stream, stream_counter,
    stream_pc_idx, stream_total, stream_taken, stream_mispredicted)``
    with the substreams numbered in ascending (counter, pc) order; the
    stream arrays are trimmed to the substream count.  Call only when
    :func:`available`.
    """
    lib = _load()
    if lib is None:  # pragma: no cover - callers gate on available()
        raise RuntimeError("compiled substream driver is not available")
    n = len(counter_ids)
    for arr, dtype in (
        (counter_ids, np.int32),
        (pc_dense, np.int32),
        (taken, np.uint8),
        (mispredicted, np.uint8),
    ):
        assert arr.dtype == dtype and arr.flags["C_CONTIGUOUS"]
    bucket = np.empty(max(num_counters, num_pcs) + 1, dtype=np.int32)
    tmp = np.empty(n, dtype=np.int32)
    order = np.empty(n, dtype=np.int32)
    access_stream = np.empty(n, dtype=np.int64)
    stream_counter = np.empty(n, dtype=np.int32)
    stream_pc = np.empty(n, dtype=np.int32)
    stream_total = np.empty(n, dtype=np.int64)
    stream_taken = np.empty(n, dtype=np.int64)
    stream_miss = np.empty(n, dtype=np.int64)
    num_streams = lib.substream_group(
        _ptr(counter_ids),
        _ptr(pc_dense),
        _ptr(taken),
        _ptr(mispredicted),
        ctypes.c_int64(n),
        ctypes.c_int32(num_counters),
        ctypes.c_int32(num_pcs),
        _ptr(bucket),
        _ptr(tmp),
        _ptr(order),
        _ptr(access_stream),
        _ptr(stream_counter),
        _ptr(stream_pc),
        _ptr(stream_total),
        _ptr(stream_taken),
        _ptr(stream_miss),
    )
    s = int(num_streams)
    return (
        access_stream,
        stream_counter[:s].copy(),
        stream_pc[:s].copy(),
        stream_total[:s].copy(),
        stream_taken[:s].copy(),
        stream_miss[:s].copy(),
    )


def class_changes(
    counter_ids: np.ndarray,
    access_stream: np.ndarray,
    stream_role: np.ndarray,
    num_counters: int,
) -> np.ndarray:
    """Count Table-4 role changes through the compiled single pass.

    ``counter_ids`` int32, ``access_stream`` int64, ``stream_role``
    int8, all C-contiguous.  Returns the int64 ``[dominant,
    non_dominant, wb]`` change counts.  Call only when
    :func:`available`.
    """
    lib = _load()
    if lib is None:  # pragma: no cover - callers gate on available()
        raise RuntimeError("compiled class-change driver is not available")
    n = len(counter_ids)
    for arr, dtype in (
        (counter_ids, np.int32),
        (access_stream, np.int64),
        (stream_role, np.int8),
    ):
        assert arr.dtype == dtype and arr.flags["C_CONTIGUOUS"]
    last_role = np.full(num_counters, -1, dtype=np.int8)
    counts = np.zeros(3, dtype=np.int64)
    lib.class_changes(
        _ptr(counter_ids),
        _ptr(access_stream),
        _ptr(stream_role),
        ctypes.c_int64(n),
        _ptr(last_role),
        _ptr(counts),
    )
    return counts
