"""Engine throughput microbenchmarks (pytest-benchmark timing proper).

Not a paper artifact: measures the simulator's branches/second for the
main predictors, the batched multi-lane gshare kernel, and the sweep
matrix driver, which together bound how long the figure benches take.
These use multiple rounds (real statistics) since each round is cheap.
"""

from __future__ import annotations

import pytest

from benchmarks.common import load_bench_trace
from repro.core.registry import make_predictor
from repro.sim.batch import GShareLane, gshare_lane_rates
from repro.sim.engine import run
from repro.sim.runner import evaluate_matrix

TRACE_NAME = "xlisp"
SPECS = [
    "bimodal:index=12",
    "gshare:index=12,hist=12",
    "bimode:dir=11,hist=11,choice=11",
    "pas:hist=6,select=4,bht=10",
]

#: The gshare.best candidate family at one paper size (index_bits=12):
#: the workload the batch kernel exists to accelerate.
BATCH_LANES = [GShareLane(index_bits=12, history_bits=h) for h in range(13)]


@pytest.fixture(scope="module")
def trace():
    full = load_bench_trace(TRACE_NAME)
    return full[:100_000]


@pytest.mark.parametrize("spec", SPECS)
@pytest.mark.benchmark(group="throughput")
def test_simulation_throughput(benchmark, spec, trace):
    predictor = make_predictor(spec)
    result = benchmark.pedantic(
        run, args=(predictor, trace), rounds=3, iterations=1
    )
    assert 0.0 <= result.misprediction_rate <= 1.0
    branches_per_second = len(trace) / benchmark.stats["mean"]
    print(f"\n{spec}: {branches_per_second / 1e6:.2f} M branches/s")
    # sanity floor: the harness is unusable below ~100 K branches/s
    assert branches_per_second > 100_000


@pytest.mark.benchmark(group="throughput-batched")
def test_batched_kernel_throughput(benchmark, trace):
    """Lane-branches/second of the multi-lane kernel (13 lanes = one
    full history-length search at 12 index bits)."""
    rates = benchmark.pedantic(
        gshare_lane_rates, args=(BATCH_LANES, trace), rounds=3, iterations=1
    )
    assert all(0.0 <= r <= 1.0 for r in rates)
    lane_branches_per_second = len(BATCH_LANES) * len(trace) / benchmark.stats["mean"]
    print(f"\nbatched x{len(BATCH_LANES)}: {lane_branches_per_second / 1e6:.2f} M lane-branches/s")
    # the whole point of the kernel: clearly faster than the ~6 M
    # branches/s scalar gshare loop on the same work
    assert lane_branches_per_second > 1_000_000


@pytest.mark.benchmark(group="throughput-batched")
def test_batched_kernel_speedup_vs_scalar(benchmark, trace):
    """Wall-clock of the scalar engine over the same 13-configuration
    family, for a direct speedup readout against the batched group."""
    specs = [lane.spec for lane in BATCH_LANES]

    def scalar_family():
        return [run(make_predictor(s), trace).misprediction_rate for s in specs]

    scalar_rates = benchmark.pedantic(scalar_family, rounds=1, iterations=1)
    assert scalar_rates == gshare_lane_rates(BATCH_LANES, trace)


@pytest.mark.benchmark(group="throughput-sweep")
def test_sweep_matrix_throughput(benchmark, trace):
    """Cells/second of the (uncached) sweep matrix driver on a
    mixed gshare + bi-mode spec set — the figure benches' inner loop."""
    specs = [lane.spec for lane in BATCH_LANES] + ["bimode:dir=11,hist=11,choice=11"]
    traces = {TRACE_NAME: trace}
    matrix = benchmark.pedantic(
        evaluate_matrix, args=(specs, traces), rounds=1, iterations=1
    )
    cells = len(specs) * len(traces)
    cells_per_second = cells / benchmark.stats["mean"]
    print(f"\nsweep matrix: {cells_per_second:.1f} cells/s ({cells} cells)")
    assert all(0.0 <= matrix[s][TRACE_NAME] <= 1.0 for s in specs)
