#!/usr/bin/env python
"""Bias analysis — look inside a predictor with the Section-4 framework.

Reproduces the paper's analytical workflow on one benchmark:

1. run a *detailed* simulation (which direction counter served every
   prediction);
2. decompose the dynamic stream into (branch, counter) substreams and
   classify them ST / SNT / WB;
3. report the per-counter dominant / non-dominant / WB areas
   (Figures 5–6), the misprediction breakdown by class (Figures 7–8)
   and the interference changes (Table 4) for gshare vs bi-mode.

Run with::

    python examples/bias_analysis.py [benchmark] [--index-bits 10]
"""

from __future__ import annotations

import argparse

from repro.analysis.bias import analyze_substreams, counter_bias_table
from repro.analysis.breakdown import misprediction_breakdown
from repro.analysis.interference import count_class_changes
from repro.analysis.report import ascii_table
from repro.core.registry import make_predictor
from repro.sim.engine import run_detailed
from repro.workloads.suite import load_benchmark


def analyze(spec: str, trace):
    predictor = make_predictor(spec)
    detailed = run_detailed(predictor, trace)
    analysis = analyze_substreams(detailed)
    table = counter_bias_table(analysis)
    return {
        "label": predictor.name,
        "rate": detailed.result.misprediction_rate,
        "areas": (
            table[:, 0].mean(),  # dominant
            table[:, 1].mean(),  # non-dominant
            table[:, 2].mean(),  # WB
        ),
        "breakdown": misprediction_breakdown(analysis),
        "changes": count_class_changes(detailed, analysis),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("benchmark", nargs="?", default="gcc")
    parser.add_argument("--index-bits", type=int, default=10)
    parser.add_argument("--length", type=int, default=200_000)
    args = parser.parse_args()

    trace = load_benchmark(args.benchmark, length=args.length)
    n = args.index_bits
    reports = [
        analyze(f"gshare:index={n},hist={n}", trace),
        analyze(f"gshare:index={n},hist=2", trace),
        analyze(f"bimode:dir={n - 1},hist={n - 1},choice={n - 1}", trace),
    ]

    print(f"benchmark: {trace.name} ({len(trace)} branches)\n")

    print(
        ascii_table(
            ["scheme", "mispredict", "dominant", "non-dominant", "WB"],
            [
                [
                    r["label"],
                    f"{100 * r['rate']:.2f}%",
                    f"{100 * r['areas'][0]:.1f}%",
                    f"{100 * r['areas'][1]:.1f}%",
                    f"{100 * r['areas'][2]:.1f}%",
                ]
                for r in reports
            ],
            title="Per-counter bias areas (Figures 5-6 style)",
        )
    )
    print()
    print(
        ascii_table(
            ["scheme", "SNT err", "ST err", "WB err", "overall"],
            [
                [
                    r["label"],
                    f"{100 * r['breakdown'].snt:.2f}%",
                    f"{100 * r['breakdown'].st:.2f}%",
                    f"{100 * r['breakdown'].wb:.2f}%",
                    f"{100 * r['breakdown'].overall:.2f}%",
                ]
                for r in reports
            ],
            title="Misprediction by bias class (Figures 7-8 style)",
        )
    )
    print()
    print(
        ascii_table(
            ["scheme", "dominant", "non-dominant", "WB", "total"],
            [
                [
                    r["label"],
                    r["changes"].dominant,
                    r["changes"].non_dominant,
                    r["changes"].wb,
                    r["changes"].total,
                ]
                for r in reports
            ],
            title="Bias-class interference changes (Table 4 style)",
        )
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
