"""Optional compiled step driver for feedback-coupled kernels.

The bi-mode choice/bank feedback defeats counter-major decomposition
(see :mod:`repro.sim.batch_bimode`), leaving a genuinely sequential
per-branch automaton.  That automaton is ~10 integer operations per
branch, so a tiny C loop runs it one to two orders of magnitude faster
than any Python-level stepping.  This module compiles that loop on
first use with the *system* C compiler — no build system, no installed
extension, no new dependency — and loads it through :mod:`ctypes`.

The driver is strictly optional:

* the shared object is built once into the repro cache directory
  (keyed by a hash of the C source, so edits rebuild automatically);
* any failure — no compiler on PATH, sandboxed ``cc``, unloadable
  object — is remembered and reported via :func:`available`, and the
  callers fall back to the pure-numpy / pure-Python paths with
  bit-identical results;
* ``REPRO_NO_CC=1`` disables the driver outright (used by tests to pin
  a specific execution strategy, and as an escape hatch on platforms
  where invoking the compiler is unwanted).
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path
from typing import Optional

import numpy as np

__all__ = ["available", "unavailable_reason", "bimode_pair"]

_C_SOURCE = r"""
#include <stdint.h>

/* One (configuration, trace) bi-mode pair.  Index streams are
 * precomputed by the caller (they depend only on resolved outcomes);
 * this loop advances only the sequential counter state, mirroring
 * BiModePredictor.update exactly: partial update of the selected bank
 * (both banks under full_update), and the choice counter trains unless
 * it chose wrongly while the selected counter was nevertheless right. */
void bimode_pair(const int32_t *ci, const int32_t *di, const uint8_t *o,
                 int64_t n, int8_t *nt_bank, int8_t *tk_bank, int8_t *choice,
                 int full_update, uint8_t *preds)
{
    for (int64_t t = 0; t < n; t++) {
        int32_t c = ci[t], d = di[t];
        uint8_t taken = o[t];
        int8_t cs = choice[c];
        int ct = cs >= 2;
        int8_t *bank = ct ? tk_bank : nt_bank;
        int8_t ds = bank[d];
        uint8_t fin = ds >= 2;
        preds[t] = fin;
        bank[d] = taken ? (ds < 3 ? ds + 1 : 3) : (ds > 0 ? ds - 1 : 0);
        if (full_update) {
            int8_t *other = ct ? nt_bank : tk_bank;
            int8_t os = other[d];
            other[d] = taken ? (os < 3 ? os + 1 : 3) : (os > 0 ? os - 1 : 0);
        }
        if (!((ct != (int)taken) && (fin == taken)))
            choice[c] = taken ? (cs < 3 ? cs + 1 : 3) : (cs > 0 ? cs - 1 : 0);
    }
}
"""

_lib: Optional[ctypes.CDLL] = None
_load_attempted = False
_failure: Optional[str] = None


def _source_digest() -> str:
    return hashlib.sha1(_C_SOURCE.encode()).hexdigest()[:16]


def _build_dir() -> Path:
    from repro.workloads.suite import default_cache_dir

    return default_cache_dir() / "ckernel"


def _compile(so_path: Path) -> bool:
    """Build the shared object atomically; False on any failure."""
    compiler = next(
        (c for c in ("cc", "gcc", "clang") if shutil.which(c)), None
    )
    if compiler is None:
        return False
    so_path.parent.mkdir(parents=True, exist_ok=True)
    src = so_path.with_suffix(".c")
    src.write_text(_C_SOURCE)
    with tempfile.NamedTemporaryFile(
        dir=so_path.parent, suffix=".so.tmp", delete=False
    ) as tmp:
        tmp_path = Path(tmp.name)
    try:
        proc = subprocess.run(
            [compiler, "-O2", "-shared", "-fPIC", "-o", str(tmp_path), str(src)],
            capture_output=True,
            timeout=120,
        )
        if proc.returncode != 0:
            return False
        os.replace(tmp_path, so_path)
        return True
    except (OSError, subprocess.SubprocessError):
        return False
    finally:
        tmp_path.unlink(missing_ok=True)


def _load() -> Optional[ctypes.CDLL]:
    global _lib, _load_attempted, _failure
    if os.environ.get("REPRO_NO_CC", "").strip() not in ("", "0"):
        return None
    if _load_attempted:
        return _lib
    _load_attempted = True
    try:
        so_path = _build_dir() / f"bimode_step-{_source_digest()}.so"
        if not so_path.exists() and not _compile(so_path):
            _failure = (
                "no C compiler on PATH"
                if not any(shutil.which(c) for c in ("cc", "gcc", "clang"))
                else "compiler invocation failed"
            )
            return None
        lib = ctypes.CDLL(str(so_path))
        lib.bimode_pair.argtypes = [
            ctypes.c_void_p,  # ci
            ctypes.c_void_p,  # di
            ctypes.c_void_p,  # outcomes
            ctypes.c_int64,  # n
            ctypes.c_void_p,  # not-taken bank
            ctypes.c_void_p,  # taken bank
            ctypes.c_void_p,  # choice table
            ctypes.c_int,  # full_update
            ctypes.c_void_p,  # predictions out
        ]
        lib.bimode_pair.restype = None
        _lib = lib
    except OSError as exc:
        _failure = f"shared object failed to load: {exc}"
        _lib = None
    return _lib


def available() -> bool:
    """Whether the compiled driver can be used in this environment."""
    return _load() is not None


def unavailable_reason() -> Optional[str]:
    """Why the compiled driver cannot run, or ``None`` if it can.

    Feeds the degradation events of the kernel dispatch chain
    (:mod:`repro.health`): a sweep report can then state *why* cells
    fell back from the compiled loop to numpy/Python stepping.
    """
    if os.environ.get("REPRO_NO_CC", "").strip() not in ("", "0"):
        return "REPRO_NO_CC is set"
    if _load() is not None:
        return None
    return _failure or "compiled driver unavailable"


def _ptr(array: np.ndarray) -> ctypes.c_void_p:
    return ctypes.c_void_p(array.ctypes.data)


def bimode_pair(
    ci: np.ndarray,
    di: np.ndarray,
    outcomes: np.ndarray,
    nt_bank: np.ndarray,
    tk_bank: np.ndarray,
    choice: np.ndarray,
    full_update: bool,
) -> np.ndarray:
    """Run one bi-mode pair through the compiled loop.

    ``ci``/``di`` are int32 index streams, ``outcomes`` uint8; the three
    table arrays are int8 and are updated in place.  Returns the uint8
    per-branch final predictions.  Call only when :func:`available`.
    """
    lib = _load()
    if lib is None:  # pragma: no cover - callers gate on available()
        raise RuntimeError("compiled bi-mode driver is not available")
    n = len(outcomes)
    preds = np.empty(n, dtype=np.uint8)
    for arr, dtype in (
        (ci, np.int32),
        (di, np.int32),
        (outcomes, np.uint8),
        (nt_bank, np.int8),
        (tk_bank, np.int8),
        (choice, np.int8),
    ):
        assert arr.dtype == dtype and arr.flags["C_CONTIGUOUS"]
    lib.bimode_pair(
        _ptr(ci),
        _ptr(di),
        _ptr(outcomes),
        ctypes.c_int64(n),
        _ptr(nt_bank),
        _ptr(tk_bank),
        _ptr(choice),
        ctypes.c_int(1 if full_update else 0),
        _ptr(preds),
    )
    return preds
