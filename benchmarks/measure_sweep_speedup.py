"""Measure the sweep speedup of the batched kernel paths.

Cold-cache measurements, all asserted bit-identical to the scalar
engine, printed and recorded in ``results/sweep_speedup.csv``:

* **Figure-3 sweep** — the full CINT95 paper sweep (every gshare.best
  candidate, the 1PHT points and bi-mode at all eight paper sizes),
  scalar per-cell baseline vs the production ``paper_sweep`` path
  (``REPRO_FUSED=auto``: fused family passes when the compiled driver
  exists, the per-trace batched kernels of :mod:`repro.sim.batch` /
  :mod:`repro.sim.batch_bimode` otherwise).
* **Figure-2 bi-mode portion** — just the bi-mode specs of the sweep,
  across the *combined* CINT95 + IBS suite of both Figure-2 panels,
  scalar per-cell baseline vs one production ``evaluate_matrix`` call
  (``REPRO_FUSED=auto``: one fused bi-mode family pass per trace, or
  the cross-trace batched kernel without a compiler).  This isolates
  what the bi-mode fast paths buy; the acceptance bar is >= 2x.
* **Fused sweep** — the whole Figure-2/3/4 spec grid over the combined
  CINT95 + IBS suite, per-cell batched path (``REPRO_FUSED=off``) vs
  the fused family passes (``REPRO_FUSED=on``, :mod:`repro.sim.fused`),
  every cell asserted bit-identical and additionally checked against
  the scalar engine and the differential oracle on a power-on trace
  prefix; acceptance bar >= 5x, machine-readable record in
  ``results/BENCH_fused_sweep.json``.
* **Figure-7 detailed workload** — the full Section-4 breakdown bench
  (detailed attribution simulation + substream analysis for every
  Figure-7 cell, warm trace store), scalar ``simulate_detailed``
  baseline vs the batch attribution kernels
  (``REPRO_DETAILED_KERNEL=batch``); summaries asserted identical,
  acceptance bar >= 5x, machine-readable record in
  ``results/BENCH_detailed_kernel.json``.

Not a pytest file on purpose — timing cold sweeps back-to-back is an
explicit measurement run::

    PYTHONPATH=src:. REPRO_BENCH_SCALE=0.1 python benchmarks/measure_sweep_speedup.py
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import time
from contextlib import contextmanager
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.common import bench_scale, emit_table, load_bench_suite, results_dir
from repro.analysis.sweep import (
    _candidate_specs,
    bimode_spec,
    gshare_1pht_spec,
    paper_sweep,
)
from repro.core.hardware import PAPER_SIZE_POINTS_KB
from repro.core.registry import make_predictor
from repro.sim.engine import run
from repro.sim.runner import ResultCache, evaluate_matrix


def sweep_spec_set():
    """Every unique spec the paper sweep evaluates, in sweep order."""
    specs = []
    for kbytes in PAPER_SIZE_POINTS_KB:
        specs.append(gshare_1pht_spec(kbytes))
        specs.extend(_candidate_specs(kbytes, None))
        specs.append(bimode_spec(kbytes))
    return list(dict.fromkeys(specs))


def series_cells(series):
    """Flatten a paper_sweep result into {(spec, bench): rate}."""
    cells = {}
    for sweep in series.values():
        for point in sweep.points:
            for bench, rate in point.per_benchmark.items():
                cells[(point.spec, bench)] = rate
    return cells


def measure_bimode_portion():
    """Scalar vs batched wall-clock for the Figure-2 bi-mode cells.

    Returns ``(baseline_s, batched_s, num_cells, mismatches)``.
    """
    specs = list(dict.fromkeys(bimode_spec(kb) for kb in PAPER_SIZE_POINTS_KB))
    traces = load_bench_suite("all")  # both Figure-2 panels: CINT95 + IBS

    with tempfile.TemporaryDirectory() as tmp:
        t0 = time.perf_counter()
        batched = evaluate_matrix(specs, traces, cache=ResultCache(Path(tmp)))
        batched_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    scalar = {
        (spec, bench): run(make_predictor(spec), trace).misprediction_rate
        for spec in specs
        for bench, trace in traces.items()
    }
    baseline_s = time.perf_counter() - t0

    mismatches = 0
    for spec in specs:
        for bench in traces:
            if batched[spec][bench] != scalar[(spec, bench)]:
                mismatches += 1
                print(f"MISMATCH {spec} on {bench}: "
                      f"batched={batched[spec][bench]} scalar={scalar[(spec, bench)]}")
    return baseline_s, batched_s, len(specs) * len(traces), mismatches


def measure_fused_sweep():
    """Fused family dispatch vs the per-cell batched path, full suite.

    The PR-6 gate: the whole Figure-2/3/4 spec grid (every gshare.best
    candidate, the 1PHT points and bi-mode at all eight paper sizes)
    against the *combined* CINT95 + IBS suite, cold cache both ways:

    * **per-cell** — ``REPRO_FUSED=off``: the pre-existing production
      path, one batched kernel pass per (spec, trace) cell (bi-mode
      cells through the cross-trace matrix prepass);
    * **fused** — ``REPRO_FUSED=on``: the sweep planner groups the grid
      into families and each family advances in a single pass over each
      trace with per-spec in-loop reduction.

    Rates are asserted bit-identical cell by cell, and every cell is
    additionally checked against the differential oracle *and* the
    scalar engine on a power-on prefix of its trace
    (``$REPRO_FUSED_ORACLE_N`` branches, default 20 000 — the pure-
    python oracle at full scale would dwarf the sweeps being measured).
    Acceptance bar >= 5x; machine-readable record in
    ``results/BENCH_fused_sweep.json``.
    """
    from repro.sim.fused import plan_families
    from repro.sim.runner import evaluate_specs
    from repro.verify.oracle import oracle_rate

    specs = sweep_spec_set()
    traces = load_bench_suite("all")
    families = plan_families(specs)

    # Warm a tiny fused pass so the one-time C driver build and imports
    # are not charged to the timed sweep.
    warm = next(iter(traces.values()))[:2_000]
    with _env(REPRO_FUSED="on"):
        evaluate_specs([specs[0], specs[-1]], warm)

    with tempfile.TemporaryDirectory() as tmp, _env(REPRO_FUSED="off"):
        t0 = time.perf_counter()
        percell = evaluate_matrix(specs, traces, cache=ResultCache(Path(tmp)))
        percell_s = time.perf_counter() - t0

    with tempfile.TemporaryDirectory() as tmp, _env(REPRO_FUSED="on"):
        t0 = time.perf_counter()
        fused = evaluate_matrix(specs, traces, cache=ResultCache(Path(tmp)))
        fused_s = time.perf_counter() - t0

    mismatches = 0
    for spec in specs:
        for bench in traces:
            if fused[spec][bench] != percell[spec][bench]:
                mismatches += 1
                print(f"MISMATCH fused {spec} on {bench}: "
                      f"fused={fused[spec][bench]} percell={percell[spec][bench]}")

    # Differential oracle + scalar engine, every cell, power-on prefix.
    oracle_n = int(os.environ.get("REPRO_FUSED_ORACLE_N", "20000"))
    oracle_cells = oracle_mismatches = 0
    for bench, trace in traces.items():
        prefix = trace[:oracle_n]
        with _env(REPRO_FUSED="on"):
            fused_prefix = evaluate_specs(specs, prefix)
        for spec in specs:
            scalar_rate = run(make_predictor(spec), prefix).misprediction_rate
            oracle = oracle_rate(spec, prefix)
            oracle_cells += 1
            if not (fused_prefix[spec] == scalar_rate == oracle):
                oracle_mismatches += 1
                print(f"MISMATCH oracle {spec} on {bench} (n={len(prefix)}): "
                      f"fused={fused_prefix[spec]} scalar={scalar_rate} "
                      f"oracle={oracle}")

    speedup = percell_s / fused_s if fused_s else float("inf")
    verdict = "identical" if mismatches + oracle_mismatches == 0 else "DIVERGED"
    summary = {
        "what": "full Figure-2/3/4 spec grid x CINT95+IBS suite, cold "
                "cache: per-cell batched kernels vs fused family passes",
        "suite": "all",
        "scale": bench_scale(),
        "specs": len(specs),
        "benches": len(traces),
        "cells": len(specs) * len(traces),
        "families": [
            {"kind": family.kind, "specs": len(family)} for family in families
        ],
        "percell_s": round(percell_s, 3),
        "fused_s": round(fused_s, 3),
        "speedup": round(speedup, 2),
        "gate": ">= 5x, rates bit-identical per cell",
        "rates_identical": mismatches == 0,
        "oracle": {
            "prefix_branches": oracle_n,
            "cells_checked": oracle_cells,
            "fused_scalar_oracle_identical": oracle_mismatches == 0,
        },
    }
    rows = [
        [f"fig2/3/4 full-suite per-cell batched (REPRO_FUSED=off)",
         f"{percell_s:.2f}", "1.00x", verdict],
        [f"fig2/3/4 full-suite fused families (REPRO_FUSED=on)",
         f"{fused_s:.2f}", f"{speedup:.2f}x", verdict],
    ]
    return rows, summary, mismatches + oracle_mismatches


@contextmanager
def _env(**overrides):
    """Temporarily set (or unset, via ``None``) environment variables."""
    saved = {key: os.environ.get(key) for key in overrides}
    try:
        for key, value in overrides.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
        yield
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


def _scaled_length(name: str, scale: float) -> int:
    from repro.workloads.profiles import get_profile

    return max(20_000, int(get_profile(name).default_length * scale))


def _fresh_programs() -> None:
    """Drop the program cache so each timed path pays its own build."""
    from repro.workloads import generator

    generator._PROGRAM_CACHE.clear()


def measure_trace_pipeline():
    """Time the trace pipeline: generation, persistence, and load.

    Covers the PR-4 acceptance rows:

    * per-benchmark scalar vs fastgen generation wall-clock, traces
      asserted bit-identical;
    * the cold Figure-3 *trace-pipeline* portion — everything before the
      first simulated branch (generate + persist + load all CINT95
      traces) — old path (scalar gen + compressed ``.npz``) at scale
      0.1 vs new path (fastgen + mmap store) at scale 0.25;
    * warm trace load: ``.npz`` decompress-and-copy vs store mmap open.

    Returns ``(rows, summary, mismatches)`` where ``rows`` extend the
    ``sweep_speedup`` table and ``summary`` is the machine-readable
    payload for ``results/BENCH_trace_pipeline.json``.
    """
    import numpy as np

    from repro.traces.io import load_npz, save_npz
    from repro.traces.store import TraceStore
    from repro.workloads.generator import generate_trace
    from repro.workloads.profiles import get_profile
    from repro.workloads.suite import suite_names

    names = suite_names("cint95")
    new_scale, old_scale = 0.25, 0.1
    mismatches = 0

    # Warm the code paths once (C driver compile, numpy imports) so the
    # timings below measure the pipeline, not one-time process setup.
    with _env(REPRO_TRACEGEN="fast"):
        generate_trace(get_profile(names[0]), length=20_000, seed=987)

    # -- generation: scalar vs fastgen, bit-identity asserted ---------------
    # Program construction and the fastgen plan are one-time per-process
    # costs (cached), so warm them outside the timers; the cold-pipeline
    # section below charges them where a one-shot run really pays them.
    generation = []
    for name in names:
        length = _scaled_length(name, new_scale)
        profile = get_profile(name)
        with _env(REPRO_TRACEGEN="fast"):
            generate_trace(profile, length=20_000, seed=0)
        with _env(REPRO_TRACEGEN="scalar"):
            t0 = time.perf_counter()
            slow = generate_trace(profile, length=length, seed=0)
            scalar_s = time.perf_counter() - t0
        with _env(REPRO_TRACEGEN="fast"):
            t0 = time.perf_counter()
            fast = generate_trace(profile, length=length, seed=0)
            fast_s = time.perf_counter() - t0
        identical = bool(
            np.array_equal(slow.pcs, fast.pcs)
            and np.array_equal(slow.outcomes, fast.outcomes)
        )
        if not identical:
            mismatches += 1
            print(f"MISMATCH fastgen vs scalar on {name} (n={length})")
        generation.append(
            {
                "bench": name,
                "length": length,
                "scalar_s": round(scalar_s, 4),
                "fastgen_s": round(fast_s, 4),
                "speedup": round(scalar_s / fast_s, 2) if fast_s else None,
                "identical": identical,
            }
        )

    gen_scalar_s = sum(row["scalar_s"] for row in generation)
    gen_fast_s = sum(row["fastgen_s"] for row in generation)
    gen_identical = all(row["identical"] for row in generation)

    # -- cold pipeline: old npz path @ 0.1 vs new store path @ 0.25 ---------
    with tempfile.TemporaryDirectory() as tmp:
        npz_dir = Path(tmp)
        _fresh_programs()
        with _env(REPRO_TRACEGEN="scalar"):
            t0 = time.perf_counter()
            for name in names:
                length = _scaled_length(name, old_scale)
                trace = generate_trace(get_profile(name), length=length, seed=0)
                save_npz(trace, npz_dir / f"{name}.npz")
                load_npz(npz_dir / f"{name}.npz")
            old_cold_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        for name in names:
            load_npz(npz_dir / f"{name}.npz")
        warm_npz_s = time.perf_counter() - t0
        npz_bytes = sum(
            (npz_dir / f"{name}.npz").stat().st_size for name in names
        )

        # Old-path traces double as the identity reference: the new
        # pipeline at the *same* lengths must publish identical bytes.
        cross_store = TraceStore(npz_dir / "cross-check-store")
        _fresh_programs()
        with _env(REPRO_TRACEGEN="fast"):
            for name in names:
                length = _scaled_length(name, old_scale)
                mapped = cross_store.materialize(name, length, 0)
                reference = load_npz(npz_dir / f"{name}.npz")
                if not (
                    np.array_equal(mapped.pcs, reference.pcs)
                    and np.array_equal(mapped.outcomes, reference.outcomes)
                ):
                    mismatches += 1
                    print(f"MISMATCH store pipeline vs npz pipeline on {name}")

    with tempfile.TemporaryDirectory() as tmp:
        store = TraceStore(tmp)
        _fresh_programs()
        with _env(REPRO_TRACEGEN="fast"):
            t0 = time.perf_counter()
            for name in names:
                store.materialize(name, _scaled_length(name, new_scale), 0)
            new_cold_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        for name in names:
            store.open(name, _scaled_length(name, new_scale), 0)
        warm_mmap_s = time.perf_counter() - t0

        store_bytes = sum(
            f.stat().st_size for f in Path(tmp).rglob("*") if f.is_file()
        )
        store_branches = sum(_scaled_length(name, new_scale) for name in names)

    summary = {
        "suite": "cint95",
        "generation": {
            "scale": new_scale,
            "per_bench": generation,
            "scalar_total_s": round(gen_scalar_s, 3),
            "fastgen_total_s": round(gen_fast_s, 3),
            "speedup": round(gen_scalar_s / gen_fast_s, 2),
            "identical": gen_identical,
        },
        "cold_pipeline": {
            "what": "generate + persist + load all CINT95 traces "
                    "(the pre-simulation portion of a cold Figure-3 sweep)",
            "old_path": {
                "scale": old_scale, "engine": "scalar", "format": "npz",
                "seconds": round(old_cold_s, 3),
            },
            "new_path": {
                "scale": new_scale, "engine": "fastgen", "format": "store",
                "seconds": round(new_cold_s, 3),
            },
            "new_faster": bool(new_cold_s < old_cold_s),
            "rates_identical_at_matched_lengths": mismatches == 0,
        },
        "warm_load": {
            "npz_decompress_s": round(warm_npz_s, 4),
            "store_mmap_open_s": round(warm_mmap_s, 4),
            "speedup": round(warm_npz_s / warm_mmap_s, 2) if warm_mmap_s else None,
        },
        "footprint": {
            "store_bytes_per_branch": round(store_bytes / store_branches, 2),
            "npz_bytes_per_branch": round(
                npz_bytes / sum(_scaled_length(n, old_scale) for n in names), 2
            ),
        },
    }

    verdict = "identical" if mismatches == 0 else "DIVERGED"
    rows = [
        ["tracegen scalar (CINT95 @ scale 0.25)",
         f"{gen_scalar_s:.2f}", "1.00x", verdict],
        ["tracegen fastgen (CINT95 @ scale 0.25)",
         f"{gen_fast_s:.2f}", f"{gen_scalar_s / gen_fast_s:.2f}x", verdict],
        ["cold trace pipeline: scalar gen + npz (scale 0.1)",
         f"{old_cold_s:.2f}", "1.00x", verdict],
        ["cold trace pipeline: fastgen + store (scale 0.25)",
         f"{new_cold_s:.2f}", f"{old_cold_s / new_cold_s:.2f}x", verdict],
        ["warm trace load: npz decompress (CINT95)",
         f"{warm_npz_s:.3f}", "1.00x", verdict],
        ["warm trace load: store mmap open (CINT95)",
         f"{warm_mmap_s:.3f}", f"{warm_npz_s / warm_mmap_s:.2f}x", verdict],
    ]
    return rows, summary, mismatches


def measure_detailed_kernel():
    """Old vs new pipeline wall-clock for the Figure-7 detailed workload.

    Runs every Figure-7 cell (detailed attribution simulation plus the
    full Section-4 summary reduction) on the warm-store gcc trace twice:

    * **baseline** — what the bench executed before the batched
      pipeline: the scalar per-branch ``simulate_detailed`` loop
      (``REPRO_DETAILED_KERNEL=scalar``) feeding the reference
      sort-based analysis (:mod:`repro.analysis.reference`);
    * **pipeline** — the batch attribution kernels feeding the
      counting-sort analysis with the per-trace PC dictionary shared
      across cells, i.e. exactly the per-worker path of
      :func:`repro.sim.parallel.detailed_matrix`.

    Asserts the two summary sets are identical — predictions, counter
    ids, and every derived aggregate.  Returns ``(rows, summary,
    mismatches)`` like :func:`measure_trace_pipeline`.
    """
    from benchmarks.bench_fig7_gcc_breakdown import BENCHMARK, SIZES, _schemes
    from benchmarks.common import detailed_scale, load_detailed_trace
    from repro.analysis.reference import summarize_detailed_reference
    from repro.sim.engine import run_detailed
    from repro.sim.parallel import _detailed_cells

    trace = load_detailed_trace(BENCHMARK)  # warm store from here on
    cells = [
        (1 << bits, label, spec)
        for bits, few in SIZES
        for label, spec in _schemes(bits, few)
    ]
    specs = [spec for _, _, spec in cells]
    opts = {"threshold": 0.9, "include_bias_table": False}

    with _env(REPRO_DETAILED_KERNEL="batch"):
        _detailed_cells(specs, trace, opts)  # warm (C build, imports)
        t0 = time.perf_counter()
        pipeline = _detailed_cells(specs, trace, opts)
        pipeline_s = time.perf_counter() - t0
    with _env(REPRO_DETAILED_KERNEL="scalar"):
        t0 = time.perf_counter()
        baseline = {
            spec: summarize_detailed_reference(
                run_detailed(make_predictor(spec), trace)
            )
            for spec in specs
        }
        baseline_s = time.perf_counter() - t0

    mismatches = 0
    for spec in specs:
        if pipeline[spec] != baseline[spec]:
            mismatches += 1
            print(f"MISMATCH detailed {spec} on {BENCHMARK}")

    speedup = baseline_s / pipeline_s if pipeline_s else float("inf")
    verdict = "identical" if mismatches == 0 else "DIVERGED"
    summary = {
        "what": "Figure-7 breakdown workload: detailed attribution "
                "simulation + Section-4 summary per cell, warm store",
        "benchmark": BENCHMARK,
        "trace_length": len(trace),
        "detailed_scale": detailed_scale(),
        "cells": len(cells),
        "baseline": "scalar simulate_detailed + reference sort-based analysis",
        "pipeline": "batch attribution kernels + counting-sort analysis, "
                    "shared per-trace PC codes",
        "baseline_s": round(baseline_s, 3),
        "pipeline_s": round(pipeline_s, 3),
        "speedup": round(speedup, 2),
        "summaries_identical": mismatches == 0,
        "per_cell": [
            {
                "spec": spec,
                "counters": counters,
                "scheme": label,
                "breakdown": pipeline[spec]["breakdown"],
            }
            for counters, label, spec in cells
        ],
    }
    rows = [
        [f"fig7 detailed scalar + reference analysis ({len(cells)} cells)",
         f"{baseline_s:.2f}", "1.00x", verdict],
        [f"fig7 detailed batch kernels + counting-sort analysis",
         f"{pipeline_s:.2f}", f"{speedup:.2f}x", verdict],
    ]
    return rows, summary, mismatches


def main() -> int:
    suite = "cint95"
    traces = load_bench_suite(suite)
    specs = sweep_spec_set()
    print(f"suite={suite}  scale={bench_scale():g}  specs={len(specs)}  "
          f"lengths={{{', '.join(f'{k}:{len(v)}' for k, v in traces.items())}}}")

    with tempfile.TemporaryDirectory() as tmp:
        t0 = time.perf_counter()
        series = paper_sweep(
            traces, kb_points=PAPER_SIZE_POINTS_KB, cache=ResultCache(Path(tmp))
        )
        batched_s = time.perf_counter() - t0
    cells = len(specs) * len(traces)
    print(f"batched path: {batched_s:.2f}s ({cells} cells)")

    t0 = time.perf_counter()
    scalar = {
        (spec, bench): run(make_predictor(spec), trace).misprediction_rate
        for spec in specs
        for bench, trace in traces.items()
    }
    baseline_s = time.perf_counter() - t0
    print(f"scalar baseline: {baseline_s:.2f}s (same {cells} cells)")

    mismatches = 0
    for (spec, bench), rate in series_cells(series).items():
        if scalar[(spec, bench)] != rate:
            mismatches += 1
            print(f"MISMATCH {spec} on {bench}: "
                  f"batched={rate} scalar={scalar[(spec, bench)]}")

    speedup = baseline_s / batched_s if batched_s else float("inf")
    verdict = "identical" if mismatches == 0 else "DIVERGED"

    print("\nFigure-2 bi-mode portion (CINT95 + IBS, cold cache):")
    bm_base_s, bm_batch_s, bm_cells, bm_mismatches = measure_bimode_portion()
    bm_speedup = bm_base_s / bm_batch_s if bm_batch_s else float("inf")
    bm_verdict = "identical" if bm_mismatches == 0 else "DIVERGED"
    print(f"scalar {bm_base_s:.2f}s vs batched {bm_batch_s:.2f}s over {bm_cells} "
          f"cells -> {bm_speedup:.2f}x")

    print("\nFused sweep (full Figure-2/3/4 grid over CINT95+IBS, cold cache):")
    fs_rows, fs_summary, fs_mismatches = measure_fused_sweep()
    fs_speedup = fs_summary["speedup"]
    print(f"per-cell {fs_summary['percell_s']:.2f}s vs fused "
          f"{fs_summary['fused_s']:.2f}s over {fs_summary['cells']} cells "
          f"-> {fs_speedup:.2f}x "
          f"(oracle checked {fs_summary['oracle']['cells_checked']} cells "
          f"@ {fs_summary['oracle']['prefix_branches']} branches)")

    print("\nTrace pipeline (generation / persistence / load):")
    tp_rows, tp_summary, tp_mismatches = measure_trace_pipeline()

    print("\nFigure-7 detailed workload (attribution + analysis, warm store):")
    dk_rows, dk_summary, dk_mismatches = measure_detailed_kernel()
    dk_speedup = dk_summary["speedup"]
    print(f"scalar+reference {dk_summary['baseline_s']:.2f}s vs batched pipeline "
          f"{dk_summary['pipeline_s']:.2f}s over {dk_summary['cells']} cells "
          f"-> {dk_speedup:.2f}x")

    emit_table(
        "sweep_speedup",
        f"Sweep wall-clock, cold cache, scale={bench_scale():g}; "
        f"fig3 = {len(specs)} specs x {len(traces)} CINT95 benchmarks, "
        f"fig2-bimode = {bm_cells} bi-mode cells over CINT95+IBS",
        ["path", "seconds", "speedup", "rates"],
        [
            ["fig3 scalar engine (per-cell)", f"{baseline_s:.2f}", "1.00x", verdict],
            ["fig3 production path (paper_sweep, REPRO_FUSED=auto)", f"{batched_s:.2f}", f"{speedup:.2f}x", verdict],
            ["fig2 bi-mode scalar engine (per-cell)", f"{bm_base_s:.2f}", "1.00x", bm_verdict],
            ["fig2 bi-mode production path (evaluate_matrix, REPRO_FUSED=auto)", f"{bm_batch_s:.2f}", f"{bm_speedup:.2f}x", bm_verdict],
        ] + fs_rows + tp_rows + dk_rows,
    )

    fs_path = results_dir() / "BENCH_fused_sweep.json"
    fs_path.write_text(json.dumps(fs_summary, indent=2) + "\n")
    print(f"[written {fs_path}]")

    dk_path = results_dir() / "BENCH_detailed_kernel.json"
    dk_path.write_text(json.dumps(dk_summary, indent=2) + "\n")
    print(f"[written {dk_path}]")

    tp_summary["sweeps"] = {
        "scale": bench_scale(),
        "fig3_scalar_s": round(baseline_s, 2),
        "fig3_batched_s": round(batched_s, 2),
        "fig3_speedup": round(speedup, 2),
        "fig2_bimode_scalar_s": round(bm_base_s, 2),
        "fig2_bimode_batched_s": round(bm_batch_s, 2),
        "fig2_bimode_speedup": round(bm_speedup, 2),
        "rates_identical": mismatches + bm_mismatches == 0,
    }
    json_path = results_dir() / "BENCH_trace_pipeline.json"
    json_path.write_text(json.dumps(tp_summary, indent=2) + "\n")
    print(f"[written {json_path}]")

    gen_speedup = tp_summary["generation"]["speedup"]
    print(f"\nfig3 speedup: {speedup:.2f}x (target >= 3x)  "
          f"fig2 bi-mode speedup: {bm_speedup:.2f}x (target >= 2x)  "
          f"fused sweep speedup: {fs_speedup:.2f}x (target >= 5x)  "
          f"tracegen speedup: {gen_speedup:.2f}x (target >= 5x)  "
          f"fig7 detailed speedup: {dk_speedup:.2f}x (target >= 5x)  "
          f"mismatches="
          f"{mismatches + bm_mismatches + fs_mismatches + tp_mismatches + dk_mismatches}")
    if mismatches or bm_mismatches or fs_mismatches or tp_mismatches or dk_mismatches:
        return 1
    if (speedup < 3.0 or bm_speedup < 2.0 or fs_speedup < 5.0
            or gen_speedup < 5.0 or dk_speedup < 5.0):
        print("WARNING: below target on this machine")
        return 2
    if not tp_summary["cold_pipeline"]["new_faster"]:
        print("WARNING: cold store pipeline @0.25 not faster than npz @0.1")
        return 2
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
