"""Unit tests for the static predictors."""

import numpy as np

from repro.predictors.static_ import (
    AlwaysNotTakenPredictor,
    AlwaysTakenPredictor,
    BTFNTPredictor,
)
from repro.sim.engine import run, run_steps
from tests.conftest import make_toy_trace


class TestFixedPredictors:
    def test_always_taken(self):
        p = AlwaysTakenPredictor()
        assert p.predict(0) is True
        assert p.predict(12345) is True

    def test_always_not_taken(self):
        p = AlwaysNotTakenPredictor()
        assert p.predict(0) is False

    def test_updates_are_ignored(self):
        p = AlwaysTakenPredictor()
        for _ in range(10):
            p.update(0, False)
        assert p.predict(0) is True

    def test_zero_cost(self):
        assert AlwaysTakenPredictor().size_bits() == 0
        assert BTFNTPredictor().size_bits() == 0

    def test_batch_equals_step(self):
        trace = make_toy_trace(length=500)
        for factory in (AlwaysTakenPredictor, AlwaysNotTakenPredictor, BTFNTPredictor):
            batch = run(factory(), trace)
            steps = run_steps(factory(), trace)
            assert np.array_equal(batch.predictions, steps.predictions)

    def test_complementary_rates(self):
        trace = make_toy_trace(length=2000)
        taken = run(AlwaysTakenPredictor(), trace).misprediction_rate
        not_taken = run(AlwaysNotTakenPredictor(), trace).misprediction_rate
        assert abs((taken + not_taken) - 1.0) < 1e-12


class TestBTFNT:
    def test_default_classifier_uses_odd_addresses(self):
        p = BTFNTPredictor()
        assert p.predict(7) is True  # odd word address = backward
        assert p.predict(8) is False

    def test_custom_classifier(self):
        p = BTFNTPredictor(backward=lambda pc: pc >= 100)
        assert p.predict(150) is True
        assert p.predict(50) is False

    def test_on_generated_workload_beats_coin_flip(self, small_workload):
        """The generator marks loop back-edges odd; loops are mostly
        taken, so BTFNT should beat always-not-taken."""
        btfnt = run(BTFNTPredictor(), small_workload).misprediction_rate
        coin = 0.5
        assert btfnt < coin
