"""Tri-mode predictor — the paper's future-work direction, realized.

The bi-mode paper's conclusion names two open directions: reduce the
weakly-biased substreams, or "further separate the weakly-biased
substreams from the strongly-biased substreams for the counters".  This
module implements the second as a natural extension of the bi-mode
structure: a **third direction bank for weakly-biased branches**.

The choice predictor is reused as a three-way classifier at zero extra
cost: its 2-bit counter state already distinguishes *strong* bias
(saturated states 0 and 3) from *weak* bias (middle states 1 and 2).

* choice state 3 (strongly taken)      -> taken bank
* choice state 0 (strongly not-taken)  -> not-taken bank
* choice states 1-2 (weak)             -> weak bank

The taken/not-taken banks then hold only streams whose per-address bias
is stable, so they stay even more unidirectional than bi-mode's, while
the weakly-biased branches — whose history patterns carry the real
information — get a private bank where they cannot disturb the biased
majority.

Update policy mirrors bi-mode: only the selected bank trains; the
choice counter trains with the outcome except when its *classification*
was contradicted by the outcome while the selected direction counter
was nevertheless correct.

This is a research extension, not part of the original paper; the
``bench_compare_dealiasing`` benchmark reports how it fares.
"""

from __future__ import annotations

import numpy as np

from repro.core.counters import (
    STRONGLY_NOT_TAKEN,
    STRONGLY_TAKEN,
    WEAKLY_NOT_TAKEN,
    WEAKLY_TAKEN,
    CounterTable,
)
from repro.core.history import GlobalHistoryRegister, global_history_stream
from repro.core.indexing import gshare_index, gshare_index_stream, mask
from repro.core.interfaces import (
    BranchPredictor,
    DetailedSimulation,
    SimulationResult,
)
from repro.traces.record import BranchTrace

__all__ = ["TriModePredictor"]

_NOT_TAKEN_BANK = 0
_TAKEN_BANK = 1
_WEAK_BANK = 2


class TriModePredictor(BranchPredictor):
    """Bi-mode with a third bank dedicated to weakly-biased branches.

    Parameters
    ----------
    direction_index_bits:
        log2 of each of the three direction banks.
    history_bits:
        Global history hashed into the direction index (defaults to the
        full index width).
    choice_index_bits:
        log2 of the choice predictor size (defaults to
        ``direction_index_bits``).
    """

    scheme = "trimode"

    def __init__(
        self,
        direction_index_bits: int,
        history_bits: int | None = None,
        choice_index_bits: int | None = None,
    ):
        if direction_index_bits < 0:
            raise ValueError(
                f"direction_index_bits must be >= 0, got {direction_index_bits}"
            )
        if history_bits is None:
            history_bits = direction_index_bits
        if not 0 <= history_bits <= direction_index_bits:
            raise ValueError(
                f"history_bits ({history_bits}) must be in [0, {direction_index_bits}]"
            )
        if choice_index_bits is None:
            choice_index_bits = direction_index_bits
        if choice_index_bits < 0:
            raise ValueError(f"choice_index_bits must be >= 0, got {choice_index_bits}")

        self.direction_index_bits = direction_index_bits
        self.history_bits = history_bits
        self.choice_index_bits = choice_index_bits

        self.banks = [
            CounterTable(direction_index_bits, init=WEAKLY_NOT_TAKEN),  # NT bank
            CounterTable(direction_index_bits, init=WEAKLY_TAKEN),  # T bank
            CounterTable(direction_index_bits, init=WEAKLY_TAKEN),  # weak bank
        ]
        self.choice = CounterTable(choice_index_bits, init=WEAKLY_TAKEN)
        self.ghr = GlobalHistoryRegister(history_bits)

    @property
    def name(self) -> str:
        return (
            f"trimode:dir=3x2^{self.direction_index_bits},"
            f"hist={self.history_bits},choice=2^{self.choice_index_bits}"
        )

    @property
    def bank_size(self) -> int:
        return self.banks[0].size

    def size_bits(self) -> int:
        return sum(b.size_bits() for b in self.banks) + self.choice.size_bits()

    def reset(self) -> None:
        for bank in self.banks:
            bank.reset()
        self.choice.reset()
        self.ghr.reset()

    # -- mode classification ---------------------------------------------------

    @staticmethod
    def _bank_of(choice_state: int) -> int:
        if choice_state == STRONGLY_TAKEN:
            return _TAKEN_BANK
        if choice_state == STRONGLY_NOT_TAKEN:
            return _NOT_TAKEN_BANK
        return _WEAK_BANK

    def _choice_index(self, pc: int) -> int:
        return pc & mask(self.choice_index_bits)

    def _direction_index(self, pc: int) -> int:
        return gshare_index(
            pc, self.ghr.value, self.direction_index_bits, self.history_bits
        )

    # -- step interface -----------------------------------------------------------

    def predict(self, pc: int) -> bool:
        state = self.choice.states[self._choice_index(pc)]
        bank = self.banks[self._bank_of(state)]
        return bank.predict(self._direction_index(pc))

    def update(self, pc: int, taken: bool) -> None:
        choice_index = self._choice_index(pc)
        direction_index = self._direction_index(pc)
        choice_state = self.choice.states[choice_index]
        bank_id = self._bank_of(choice_state)
        selected = self.banks[bank_id]
        final = selected.predict(direction_index)

        selected.update(direction_index, taken)

        # choice trains unless its (strong) classification was wrong in
        # direction but the selected counter got the branch right —
        # bi-mode's partial-update exception generalized to three modes
        classified_direction = choice_state >= 2
        if not (classified_direction != taken and final == taken):
            self.choice.update(choice_index, taken)

        self.ghr.push(taken)

    # -- batch interface -------------------------------------------------------------

    def simulate(self, trace: BranchTrace) -> SimulationResult:
        predictions, _ = self._run(trace, want_counters=False)
        return SimulationResult(
            predictor_name=self.name,
            trace_name=trace.name,
            predictions=predictions,
            outcomes=trace.outcomes,
        )

    def simulate_detailed(self, trace: BranchTrace) -> DetailedSimulation:
        predictions, counter_ids = self._run(trace, want_counters=True)
        result = SimulationResult(
            predictor_name=self.name,
            trace_name=trace.name,
            predictions=predictions,
            outcomes=trace.outcomes,
        )
        return DetailedSimulation(
            result=result,
            counter_ids=counter_ids,
            num_counters=3 * self.bank_size,
            pcs=trace.pcs,
        )

    def _run(self, trace: BranchTrace, want_counters: bool):
        n = len(trace)
        predictions = np.empty(n, dtype=bool)
        counter_ids = np.empty(n, dtype=np.int64) if want_counters else None

        histories = global_history_stream(
            trace.outcomes, self.history_bits, initial=self.ghr.value
        )
        direction_idx = gshare_index_stream(
            trace.pcs, histories, self.direction_index_bits, self.history_bits
        ).tolist()
        choice_idx = (trace.pcs & mask(self.choice_index_bits)).tolist()
        outcomes = trace.outcomes.tolist()

        choice_states = self.choice.states
        bank_states = [bank.states for bank in self.banks]
        bank_size = self.bank_size

        for i in range(n):
            ci = choice_idx[i]
            di = direction_idx[i]
            taken = outcomes[i]
            choice_state = choice_states[ci]
            if choice_state == 3:
                bank_id = _TAKEN_BANK
            elif choice_state == 0:
                bank_id = _NOT_TAKEN_BANK
            else:
                bank_id = _WEAK_BANK
            states = bank_states[bank_id]
            dir_state = states[di]
            final = dir_state >= 2
            predictions[i] = final
            if want_counters:
                counter_ids[i] = bank_id * bank_size + di

            if taken:
                if dir_state < 3:
                    states[di] = dir_state + 1
            elif dir_state > 0:
                states[di] = dir_state - 1

            classified_direction = choice_state >= 2
            if not (classified_direction != taken and final == taken):
                if taken:
                    if choice_state < 3:
                        choice_states[ci] = choice_state + 1
                elif choice_state > 0:
                    choice_states[ci] = choice_state - 1

        if n and self.history_bits:
            for taken in outcomes[-self.history_bits:]:
                self.ghr.push(taken)
        return predictions, counter_ids
