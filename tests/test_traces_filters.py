"""Unit tests for trace filters."""

import numpy as np
import pytest

from repro.traces.filters import (
    filter_branches,
    interleave,
    skip_warmup,
    split_address_space,
    take_prefix,
)
from repro.traces.record import BranchTrace


def build(pcs, outcomes=None, name="t"):
    pcs = np.array(pcs)
    if outcomes is None:
        outcomes = np.ones(len(pcs), dtype=bool)
    return BranchTrace(pcs=pcs, outcomes=np.array(outcomes), name=name)


class TestSkipTake:
    def test_skip_warmup(self):
        t = skip_warmup(build([1, 2, 3, 4]), 2)
        assert t.pcs.tolist() == [3, 4]

    def test_take_prefix(self):
        t = take_prefix(build([1, 2, 3, 4]), 3)
        assert t.pcs.tolist() == [1, 2, 3]

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            skip_warmup(build([1]), -1)
        with pytest.raises(ValueError):
            take_prefix(build([1]), -1)


class TestFilterBranches:
    def test_keeps_matching(self):
        t = filter_branches(build([2, 5, 8, 5]), lambda pc: pc == 5)
        assert t.pcs.tolist() == [5, 5]

    def test_order_preserved(self):
        t = filter_branches(build([9, 2, 9, 1]), lambda pc: pc != 2)
        assert t.pcs.tolist() == [9, 9, 1]

    def test_rename(self):
        t = filter_branches(build([1]), lambda pc: True, name="new")
        assert t.name == "new"


class TestSplitAddressSpace:
    def test_split(self):
        t = build([10, 200, 20, 300], name="x")
        below, above = split_address_space(t, boundary=100)
        assert below.pcs.tolist() == [10, 20]
        assert above.pcs.tolist() == [200, 300]
        assert below.name == "x.user"
        assert above.name == "x.kernel"

    def test_on_generated_ibs_workload(self):
        from repro.workloads.generator import KERNEL_BASE, generate_trace
        from repro.workloads.profiles import get_profile

        trace = generate_trace(get_profile("sdet"), length=20_000, seed=1)
        user, kernel = split_address_space(trace, trace.metadata["kernel_base"])
        assert len(user) + len(kernel) == len(trace)
        assert len(kernel) > 0  # sdet is kernel-heavy
        assert kernel.pcs.min() >= KERNEL_BASE


class TestInterleave:
    def test_alternates_chunks(self):
        a = build([1, 2, 3, 4])
        b = build([10, 20, 30, 40])
        t = interleave(a, b, period=2)
        assert t.pcs.tolist() == [1, 2, 10, 20, 3, 4, 30, 40]

    def test_uneven_lengths(self):
        a = build([1, 2, 3])
        b = build([10])
        t = interleave(a, b, period=2)
        assert sorted(t.pcs.tolist()) == [1, 2, 3, 10]
        assert len(t) == 4

    def test_empty_inputs(self):
        t = interleave(BranchTrace.empty(), BranchTrace.empty(), period=3)
        assert len(t) == 0

    def test_rejects_bad_period(self):
        with pytest.raises(ValueError):
            interleave(build([1]), build([2]), period=0)
