"""Command-line interface.

``repro-bimode`` (or ``python -m repro``) regenerates the paper's
experiments from the terminal::

    repro-bimode list                      # available predictors & benchmarks
    repro-bimode kernels                   # kernel tiers & engine dispatch
    repro-bimode stats                     # Table 2
    repro-bimode run gshare:index=12 gcc   # one (predictor, benchmark) cell
    repro-bimode figure2 --suite cint95    # Figures 2-4 sweeps
    repro-bimode bias bimode:dir=7 gcc     # Figures 5-6 bias breakdowns
    repro-bimode breakdown gcc             # Figures 7-8 class breakdowns
    repro-bimode table4 gcc                # Table 4 interference counts
    repro-bimode compare gcc gshare:index=12 bimode:dir=11
    repro-bimode aliasing gshare:index=10,hist=10 gcc
    repro-bimode serve                     # always-on sweep daemon
    repro-bimode submit gshare:index=12 --suite cint95
    repro-bimode status                    # the daemon's job table
    repro-bimode journal compact           # rewrite journals in place

Each command prints ASCII tables/charts and optionally writes CSV via
``--csv``.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.report import ascii_chart, ascii_table, format_rate, write_csv
from repro.analysis.sweep import paper_sweep
from repro.core.hardware import PAPER_SIZE_POINTS_KB
from repro.core.registry import available_schemes, make_predictor
from repro.sim.engine import run
from repro.sim.runner import ResultCache
from repro.traces.stats import compute_stats
from repro.workloads.suite import load_benchmark, load_suite, suite_names

__all__ = ["main", "build_parser"]


def _detailed(args, specs, trace, include_bias_table=False):
    """Section-4 summaries of ``specs`` on one trace for the detailed
    commands (``bias``/``breakdown``/``table4``/``aliasing``).

    Routes through :func:`repro.sim.parallel.detailed_matrix`, so
    ``--jobs`` (or ``$REPRO_JOBS``) fans multi-cell commands out across
    the supervised worker pool; a quarantined cell aborts the command.
    """
    from repro.sim.parallel import detailed_matrix

    result = detailed_matrix(
        specs,
        {trace.name: trace},
        jobs=args.jobs,
        include_bias_table=include_bias_table,
    )
    if result.failures:
        raise SystemExit(
            "detailed analysis failed: "
            + "; ".join(str(cell) for cell in result.failures)
        )
    return {spec: result[spec][trace.name] for spec in specs}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bimode",
        description="Reproduction of 'The Bi-Mode Branch Predictor' (MICRO-30, 1997)",
    )
    parser.add_argument(
        "--length", type=int, default=None, help="override trace length (branches)"
    )
    parser.add_argument("--seed", type=int, default=0, help="workload seed")
    parser.add_argument("--csv", default=None, help="also write results to this CSV")
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for sweeps (default: $REPRO_JOBS, serial if unset; "
        "0 means one per CPU)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list predictor schemes and benchmarks")

    sub.add_parser(
        "kernels",
        help="kernel registry: per-scheme tier and which engine "
        "REPRO_KERNEL picks in this environment",
    )

    stats = sub.add_parser("stats", help="Table 2: branch counts per benchmark")
    stats.add_argument("--suite", choices=("cint95", "ibs", "all"), default="all")

    runp = sub.add_parser("run", help="simulate one predictor on one benchmark")
    runp.add_argument("spec", help="predictor spec, e.g. bimode:dir=10,hist=10")
    runp.add_argument("benchmark", help="benchmark name, e.g. gcc")

    fig2 = sub.add_parser("figure2", help="misprediction vs size sweep (Figs 2-4)")
    fig2.add_argument("--suite", choices=("cint95", "ibs"), default="cint95")
    fig2.add_argument("--benchmark", default=None, help="single-benchmark curves")
    fig2.add_argument(
        "--sizes",
        type=float,
        nargs="*",
        default=list(PAPER_SIZE_POINTS_KB),
        help="size points in KB",
    )
    fig2.add_argument(
        "--resume",
        action="store_true",
        help="resume an interrupted sweep from its journal instead of "
        "starting fresh (cells already completed are not re-simulated)",
    )

    bias = sub.add_parser("bias", help="per-counter bias breakdown (Figs 5-6)")
    bias.add_argument("spec", help="predictor spec (must support detailed simulation)")
    bias.add_argument("benchmark")

    brk = sub.add_parser("breakdown", help="misprediction by bias class (Figs 7-8)")
    brk.add_argument("benchmark")
    brk.add_argument(
        "--sizes", type=int, nargs="*", default=[8, 10, 15],
        help="log2 second-level counter counts",
    )

    t4 = sub.add_parser("table4", help="bias-class interference counts (Table 4)")
    t4.add_argument("benchmark")
    t4.add_argument("--index-bits", type=int, default=12)

    cmp_ = sub.add_parser("compare", help="compare several predictor specs on one benchmark")
    cmp_.add_argument("benchmark")
    cmp_.add_argument("specs", nargs="+", help="predictor specs to compare")

    al = sub.add_parser("aliasing", help="harmless vs destructive aliasing statistics")
    al.add_argument("spec", help="predictor spec (must support detailed simulation)")
    al.add_argument("benchmark")

    serve_p = sub.add_parser(
        "serve", help="run the always-on sweep daemon (crash-safe, multi-tenant)"
    )
    serve_p.add_argument(
        "--socket",
        default=None,
        help="listen address: a unix-socket path (default: <cache>/service/"
        "serve.sock) or tcp:host:port",
    )
    serve_p.add_argument(
        "--queue-max",
        type=int,
        default=None,
        help="admission-control ceiling in pending cells "
        "(default: $REPRO_SERVICE_QUEUE_MAX)",
    )
    serve_p.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="default per-job timeout in seconds "
        "(default: $REPRO_SERVICE_TIMEOUT, none if unset)",
    )

    submit_p = sub.add_parser("submit", help="submit a sweep job to the daemon")
    submit_p.add_argument("specs", nargs="+", help="predictor specs of the grid")
    submit_p.add_argument(
        "--benchmarks",
        default=None,
        help="comma-separated benchmark names (default: the --suite)",
    )
    submit_p.add_argument("--suite", choices=("cint95", "ibs"), default="cint95")
    submit_p.add_argument(
        "--kind", choices=("rates", "detailed"), default="rates",
        help="Section-2 rates or Section-4 detailed summaries",
    )
    submit_p.add_argument("--priority", type=int, default=0)
    submit_p.add_argument(
        "--timeout", type=float, default=None, help="per-job timeout in seconds"
    )
    submit_p.add_argument(
        "--no-wait", action="store_true",
        help="print the job id and return instead of streaming progress",
    )
    submit_p.add_argument("--socket", default=None, help="daemon address")
    submit_p.add_argument(
        "--client", default=None, help="client identity for fair queuing"
    )

    status_p = sub.add_parser("status", help="list the daemon's jobs")
    status_p.add_argument("job_id", nargs="?", default=None)
    status_p.add_argument("--socket", default=None, help="daemon address")

    journal_p = sub.add_parser("journal", help="sweep-journal maintenance")
    journal_sub = journal_p.add_subparsers(dest="journal_command", required=True)
    compact_p = journal_sub.add_parser(
        "compact",
        help="atomically rewrite journals to one line per completed cell",
    )
    compact_p.add_argument(
        "names", nargs="*",
        help="journal names (files under <cache>/journal); default: all",
    )
    compact_p.add_argument(
        "--root", default=None, help="journal directory (default: <cache>/journal)"
    )
    return parser


def _cmd_list(args) -> int:
    print("predictor schemes:")
    for scheme in available_schemes():
        print(f"  {scheme}")
    print("\nbenchmarks:")
    for suite in ("cint95", "ibs"):
        print(f"  {suite}: {', '.join(suite_names(suite))}")
    return 0


def _cmd_kernels(args) -> int:
    """The kernel registry, resolved against this environment: every
    scheme's tier, whether it has a numpy form, and the engine the
    current ``REPRO_KERNEL`` pin actually lands on."""
    from repro.sim import _cstep, kernels

    compiled = _cstep.available()
    mode = kernels.kernel_mode()
    # representative specs for the cloop schemes whose numpy capability
    # depends on lane knobs (gskew: total update is feedback-free)
    probes = {
        "gskew": ("gskew:bank=6", "gskew:bank=6,update=total"),
        "trimode": ("trimode:dir=6",),
        "yags": ("yags:choice=6,cache=5",),
        "perceptron": ("perceptron:index=6",),
    }

    def numpy_form(scheme: str, tier: str) -> str:
        if tier in ("fused", "lane"):
            return "yes"
        entry = kernels.PORTED[scheme]
        forms = {
            "yes" if entry.numpy_ok(entry.lane_for_spec(probe)) else "no"
            for probe in probes[scheme]
        }
        return forms.pop() if len(forms) == 1 else "per-config"

    def picks(tier: str, form: str) -> str:
        if mode == "scalar":
            return "scalar"
        if mode == "c":
            return "c" if compiled else "error (no compiler)"
        if mode == "auto" and compiled:
            return "c"
        # numpy pin, or auto without a compiler
        if form == "yes":
            return "numpy"
        if form == "no":
            return "scalar"
        return "numpy or scalar (per config)"

    def detailed_form(scheme: str, form: str) -> str:
        # Section-4 attribution engines: the detailed kernels share the
        # prediction kernels' engine matrix, so the numpy form gates both.
        tier = kernels.registered_detailed_tiers()[scheme]
        if tier == "scalar":  # pragma: no cover - meta-test keeps this dead
            return "scalar"
        if tier == "fused":
            return "fused"
        if form == "yes":
            return "c+numpy"
        if form == "no":
            return "c" if compiled else "scalar (no compiler)"
        return "c or c+numpy (per config)"

    rows = [
        [
            scheme,
            tier,
            numpy_form(scheme, tier),
            detailed_form(scheme, numpy_form(scheme, tier)),
            picks(tier, numpy_form(scheme, tier)),
        ]
        for scheme, tier in sorted(kernels.registered_schemes().items())
    ]
    print(
        ascii_table(
            ["scheme", "tier", "numpy form", "detailed", f"REPRO_KERNEL={mode} picks"],
            rows,
            title="kernel registry",
        )
    )
    if compiled:
        print("\nC compiler: found (compiled lane driver available)")
    else:
        print(f"\nC compiler: not found ({_cstep.unavailable_reason()})")
    print(
        "bias-filter sub-predictors with kernel lanes: "
        + ", ".join(kernels.BIASFILTER_SUBS)
        + " (any other sub= runs scalar, health-reported)"
    )
    return 0


def _cmd_stats(args) -> int:
    rows = []
    for name in suite_names(args.suite):
        trace = load_benchmark(name, length=args.length, seed=args.seed)
        stats = compute_stats(trace)
        rows.append(
            [
                name,
                stats.static_branches,
                stats.dynamic_branches,
                f"{100 * stats.taken_rate:.1f}%",
                f"{100 * stats.strongly_biased_fraction:.1f}%",
            ]
        )
    headers = ["benchmark", "static", "dynamic", "taken", "strongly-biased dyn."]
    print(ascii_table(headers, rows, title="Table 2 (measured, scaled traces)"))
    if args.csv:
        write_csv(args.csv, headers, rows)
    return 0


def _cmd_run(args) -> int:
    trace = load_benchmark(args.benchmark, length=args.length, seed=args.seed)
    predictor = make_predictor(args.spec)
    result = run(predictor, trace)
    print(f"predictor : {predictor.name}")
    print(f"size      : {predictor.size_bytes():.0f} bytes of counters")
    print(f"benchmark : {trace.name} ({len(trace)} branches)")
    print(f"mispredict: {format_rate(result.misprediction_rate)}")
    return 0


def _cmd_figure2(args) -> int:
    import hashlib
    import json as _json

    from repro import health
    from repro.sim.journal import SweepJournal

    if args.benchmark:
        traces = {
            args.benchmark: load_benchmark(
                args.benchmark, length=args.length, seed=args.seed
            )
        }
        title = args.benchmark
    else:
        traces = load_suite(suite_names(args.suite), length=args.length, seed=args.seed)
        title = f"{args.suite.upper()}-AVERAGE"
    cache = ResultCache()

    # One journal per distinct sweep shape: same suite/sizes/length/seed
    # resumes the same file, anything else gets its own.
    shape = _json.dumps(
        [sorted(traces), sorted(args.sizes), args.length, args.seed], sort_keys=True
    )
    journal = SweepJournal.for_name(
        f"figure2-{title}-{hashlib.sha1(shape.encode()).hexdigest()[:10]}"
    )
    if not args.resume:
        journal.discard()
    elif len(journal):
        print(f"[resuming: {len(journal)} completed cells from {journal.path}]")

    series = paper_sweep(
        traces, kb_points=args.sizes, cache=cache, jobs=args.jobs, journal=journal
    )

    headers = ["scheme"] + [f"{kb:g}KB" for kb in args.sizes]
    rows = []
    chart = {}
    for label, sweep in series.items():
        rows.append([label] + [format_rate(p.average) for p in sweep.points])
        chart[label] = [(p.size_kb, p.average) for p in sweep.points]
    print(ascii_table(headers, rows, title=f"Misprediction rates — {title}"))
    print()
    print(ascii_chart(chart, title=f"Figure 2 style chart — {title}"))
    report = health.summary(degraded_only=True)
    if report:
        print()
        print("execution health (degradations only):")
        print(report)
    if args.csv:
        csv_rows = [
            [label, p.size_kb, p.spec, p.average]
            for label, sweep in series.items()
            for p in sweep.points
        ]
        write_csv(args.csv, ["scheme", "size_kb", "spec", "avg_rate"], csv_rows)
    return 0


def _cmd_bias(args) -> int:
    trace = load_benchmark(args.benchmark, length=args.length, seed=args.seed)
    summary = _detailed(args, [args.spec], trace, include_bias_table=True)[args.spec]
    areas = summary["bias_areas"]
    print(f"predictor: {make_predictor(args.spec).name}  benchmark: {trace.name}")
    print(
        f"counters accessed: {len(summary['bias_table'])} / {summary['num_counters']}"
    )
    print(
        ascii_table(
            ["area", "mean share"],
            [
                ["dominant", f"{100 * areas['dominant']:.1f}%"],
                ["non-dominant", f"{100 * areas['non_dominant']:.1f}%"],
                ["WB", f"{100 * areas['wb']:.1f}%"],
            ],
            title="Figure 5/6 style bias areas (mean over counters)",
        )
    )
    if args.csv:
        write_csv(
            args.csv,
            ["dominant", "non_dominant", "wb"],
            summary["bias_table"],
        )
    return 0


def _cmd_breakdown(args) -> int:
    trace = load_benchmark(args.benchmark, length=args.length, seed=args.seed)
    cells = [
        (bits, label, spec)
        for bits in args.sizes
        for label, spec in (
            (f"gshare({max(2, bits - 6)})", f"gshare:index={bits},hist={max(2, bits - 6)}"),
            (f"gshare({bits})", f"gshare:index={bits},hist={bits}"),
            ("bi-mode", f"bimode:dir={bits - 1},hist={bits - 1},choice={bits - 2 if bits >= 2 else 0}"),
        )
    ]
    summaries = _detailed(args, [spec for _, _, spec in cells], trace)
    rows = []
    for bits, label, spec in cells:
        breakdown = summaries[spec]["breakdown"]
        rows.append(
            [
                f"2^{bits}",
                label,
                f"{100 * breakdown['snt']:.2f}%",
                f"{100 * breakdown['st']:.2f}%",
                f"{100 * breakdown['wb']:.2f}%",
                f"{100 * breakdown['overall']:.2f}%",
            ]
        )
    headers = ["counters", "scheme", "SNT", "ST", "WB", "overall"]
    print(
        ascii_table(
            headers, rows, title=f"Figure 7/8 style breakdown — {trace.name}"
        )
    )
    if args.csv:
        write_csv(args.csv, headers, rows)
    return 0


def _cmd_table4(args) -> int:
    trace = load_benchmark(args.benchmark, length=args.length, seed=args.seed)
    bits = args.index_bits
    schemes = [
        ("history-indexed", f"gshare:index={bits},hist={bits}"),
        ("bi-mode", f"bimode:dir={bits - 1},hist={bits - 1},choice={bits - 1}"),
    ]
    summaries = _detailed(args, [spec for _, spec in schemes], trace)
    rows = []
    for label, spec in schemes:
        changes = summaries[spec]["class_changes"]
        rows.append(
            [label, changes["dominant"], changes["non_dominant"], changes["wb"]]
        )
    headers = ["scheme", "dominant", "non-dominant", "WB"]
    print(ascii_table(headers, rows, title=f"Table 4 style counts — {trace.name}"))
    if args.csv:
        write_csv(args.csv, headers, rows)
    return 0


def _cmd_compare(args) -> int:
    trace = load_benchmark(args.benchmark, length=args.length, seed=args.seed)
    rows = []
    for spec in args.specs:
        predictor = make_predictor(spec)
        result = run(predictor, trace)
        rows.append(
            [
                predictor.name,
                f"{predictor.size_bytes() / 1024:.3g}KB",
                format_rate(result.misprediction_rate),
            ]
        )
    headers = ["predictor", "size", "misprediction"]
    print(ascii_table(headers, rows, title=f"{trace.name} ({len(trace)} branches)"))
    if args.csv:
        write_csv(args.csv, headers, rows)
    return 0


def _cmd_aliasing(args) -> int:
    trace = load_benchmark(args.benchmark, length=args.length, seed=args.seed)
    summary = _detailed(args, [args.spec], trace)[args.spec]
    stats = summary["aliasing"]
    decomposition = summary["sharing"]
    print(f"predictor: {make_predictor(args.spec).name}  benchmark: {trace.name}")
    rows = [
        ["counters used", stats["counters_used"]],
        ["aliased counters", stats["aliased_counters"]],
        ["destructive counters", stats["destructive_counters"]],
        ["aliased accesses", f"{100 * stats['aliased_access_fraction']:.1f}%"],
        ["destructive accesses", f"{100 * stats['destructive_access_fraction']:.1f}%"],
        ["harmless accesses", f"{100 * stats['harmless_access_fraction']:.1f}%"],
        ["capacity share", f"{100 * decomposition['capacity_share']:.1f}%"],
        ["conflict share", f"{100 * decomposition['conflict_share']:.1f}%"],
    ]
    print(ascii_table(["metric", "value"], rows))
    return 0


def _cmd_serve(args) -> int:
    from repro.service import serve

    return serve(
        address=args.socket,
        jobs=args.jobs,
        queue_max=args.queue_max,
        default_timeout=args.timeout,
    )


def _cmd_submit(args) -> int:
    from repro.service import ServiceClient

    if args.benchmarks:
        benchmarks = [b.strip() for b in args.benchmarks.split(",") if b.strip()]
    else:
        benchmarks = list(suite_names(args.suite))
    if args.length is not None:
        benchmarks = [
            {"name": name, "length": args.length, "seed": args.seed}
            for name in benchmarks
        ]
    client = ServiceClient(address=args.socket, client_id=args.client)
    job_id = client.submit(
        args.specs,
        benchmarks,
        kind=args.kind,
        priority=args.priority,
        seed=args.seed,
        timeout=args.timeout,
    )
    print(f"job {job_id} submitted")
    if args.no_wait:
        return 0

    def _on_event(event: dict) -> None:
        if event.get("event") == "progress":
            print(
                f"  [{event['completed']}/{event['total']}] {event.get('tkey', '')}",
                flush=True,
            )
        elif event.get("event") == "health":
            print(
                f"  [health/{event['severity']}] {event['component']}: "
                f"{event['expected']} -> {event['actual']} ({event['reason']})",
                flush=True,
            )

    job = client.wait(job_id, on_event=_on_event)
    print(f"job {job_id}: {job['state']}"
          + (f" ({job['error']})" if job.get("error") else ""))
    if job.get("results") and args.kind == "rates":
        benches = sorted({b for rates in job["results"].values() for b in rates})
        rows = [
            [spec] + [format_rate(job["results"][spec].get(b, float("nan")))
                      for b in benches]
            for spec in job["results"]
        ]
        print(ascii_table(["spec"] + benches, rows, title=f"job {job_id}"))
        if args.csv:
            csv_rows = [
                [spec, bench, rate]
                for spec, rates in job["results"].items()
                for bench, rate in rates.items()
            ]
            write_csv(args.csv, ["spec", "benchmark", "rate"], csv_rows)
    return 0 if job["state"] == "done" else 1


def _cmd_status(args) -> int:
    from repro.service import ServiceClient

    jobs = ServiceClient(address=args.socket).status(args.job_id)
    if not jobs:
        print("no jobs" if args.job_id is None else f"unknown job {args.job_id}")
        return 0 if args.job_id is None else 1
    rows = [
        [
            job["job_id"],
            job["client"],
            job["kind"],
            job["state"],
            f"{job['completed_cells']}/{job['total_cells']}",
            job.get("error", ""),
        ]
        for job in jobs
    ]
    print(ascii_table(
        ["job", "client", "kind", "state", "cells", "error"], rows,
        title="sweep service jobs",
    ))
    return 0


def _cmd_journal(args) -> int:
    from pathlib import Path

    from repro.sim.journal import SweepJournal
    from repro.workloads.suite import default_cache_dir

    root = Path(args.root) if args.root else default_cache_dir() / "journal"
    if args.names:
        paths = [root / f"{name}.jsonl" if not name.endswith(".jsonl") else Path(name)
                 for name in args.names]
    else:
        paths = sorted(root.glob("*.jsonl")) if root.is_dir() else []
    if not paths:
        print(f"no journals under {root}")
        return 0
    for path in paths:
        if not path.exists():
            print(f"{path.name}: missing")
            continue
        journal = SweepJournal(path)
        before = path.stat().st_size
        removed = journal.compact()
        after = path.stat().st_size
        print(
            f"{path.name}: {len(journal)} cells, dropped {removed} line(s), "
            f"{before} -> {after} bytes"
        )
    return 0


_COMMANDS = {
    "list": _cmd_list,
    "kernels": _cmd_kernels,
    "stats": _cmd_stats,
    "run": _cmd_run,
    "figure2": _cmd_figure2,
    "bias": _cmd_bias,
    "breakdown": _cmd_breakdown,
    "table4": _cmd_table4,
    "compare": _cmd_compare,
    "aliasing": _cmd_aliasing,
    "serve": _cmd_serve,
    "submit": _cmd_submit,
    "status": _cmd_status,
    "journal": _cmd_journal,
}


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
