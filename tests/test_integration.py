"""Integration tests: paper-shape assertions on generated workloads.

These check, at reduced scale, the qualitative results the benchmark
harness reproduces at full scale — who wins, and why.
"""

import numpy as np
import pytest

from repro.core.registry import make_predictor
from repro.sim.engine import run
from repro.sim.runner import ResultCache, evaluate
from repro.traces.filters import interleave
from repro.workloads.generator import generate_trace
from repro.workloads.profiles import get_profile


@pytest.fixture(scope="module")
def suite():
    """Mid-length traces for three representative benchmarks."""
    return {
        name: generate_trace(get_profile(name), length=80_000, seed=1)
        for name in ("xlisp", "gcc", "vortex")
    }


def rate(spec, trace):
    return run(make_predictor(spec), trace).misprediction_rate


class TestHeadlineResult:
    def test_bimode_beats_same_cost_gshare_on_average(self, suite):
        """The paper's headline: at equal cost, bi-mode has a lower
        average misprediction rate than gshare (bi-mode with 2^10 banks
        + 2^10 choice = 6144 counters > gshare 2^12 = 4096, so compare
        against the *larger* gshare 2^13 to be conservative... we use
        the paper's own pairing: bi-mode at 1.5x the next smaller
        gshare)."""
        bimode = np.mean([rate("bimode:dir=11,hist=11,choice=11", t) for t in suite.values()])
        gshare_next = np.mean([rate("gshare:index=12,hist=12", t) for t in suite.values()])
        assert bimode < gshare_next

    def test_bimode_beats_equal_or_larger_gshare(self, suite):
        """Stronger check on the aliasing-heavy benchmark: bi-mode at
        3x2^10 counters beats gshare at 2^12 counters (which is larger)."""
        trace = suite["gcc"]
        assert rate("bimode:dir=10,hist=10,choice=10", trace) < rate(
            "gshare:index=12,hist=12", trace
        )

    def test_predictors_improve_with_size(self, suite):
        for spec_template in ("gshare:index={n},hist={n}",):
            small = np.mean(
                [rate(spec_template.format(n=9), t) for t in suite.values()]
            )
            large = np.mean(
                [rate(spec_template.format(n=14), t) for t in suite.values()]
            )
            assert large < small

    def test_history_beats_no_history_at_scale(self, suite):
        """Given enough table, global history must pay off (the reason
        two-level predictors exist)."""
        trace = suite["xlisp"]
        with_history = rate("gshare:index=14,hist=14", trace)
        without = rate("gshare:index=14,hist=0", trace)
        assert with_history < without


class TestOrderingsAcrossSchemes:
    def test_static_predictors_are_the_floor(self, suite):
        trace = suite["xlisp"]
        static_rate = min(rate("always-taken", trace), rate("always-not-taken", trace))
        assert rate("bimodal:index=12", trace) < static_rate
        assert rate("bimode:dir=11,hist=11,choice=11", trace) < static_rate

    def test_dealiasing_schemes_beat_plain_gshare_on_aliasing_workload(self, suite):
        trace = suite["gcc"]
        plain = rate("gshare:index=11,hist=11", trace)
        assert rate("agree:index=11,hist=11", trace) < plain
        assert rate("bimode:dir=10,hist=10,choice=10", trace) < plain

    def test_tournament_tracks_best_component(self, suite):
        trace = suite["xlisp"]
        tournament = rate("tournament:index=11,meta=11", trace)
        bimodal = rate("bimodal:index=11", trace)
        gshare = rate("gshare:index=11,hist=11", trace)
        assert tournament <= min(bimodal, gshare) * 1.15


class TestWorkloadSensitivity:
    def test_aliasing_hurts_more_on_large_footprints(self, suite):
        """gcc (large static footprint) must degrade more at small
        tables than xlisp (small footprint)."""
        def degradation(trace):
            return rate("gshare:index=9,hist=9", trace) - rate(
                "gshare:index=14,hist=14", trace
            )

        assert degradation(suite["gcc"]) > degradation(suite["xlisp"])

    def test_context_switch_interference(self):
        """Interleaving two workloads (context switches) must not
        improve prediction; flushing effects should cost something."""
        a = generate_trace(get_profile("xlisp"), length=30_000, seed=5)
        b = generate_trace(get_profile("compress"), length=30_000, seed=6)
        merged = interleave(a, b, period=500, name="merged")
        solo = (rate("gshare:index=11,hist=11", a) * len(a) +
                rate("gshare:index=11,hist=11", b) * len(b)) / (len(a) + len(b))
        mixed = rate("gshare:index=11,hist=11", merged)
        assert mixed >= solo * 0.98  # allow tiny noise, expect >= solo


class TestEvaluateIntegration:
    def test_cached_evaluation_is_stable(self, suite, tmp_path):
        cache = ResultCache(tmp_path)
        first = evaluate("bimode:dir=9,hist=9,choice=9", suite["xlisp"], cache=cache)
        second = evaluate("bimode:dir=9,hist=9,choice=9", suite["xlisp"], cache=cache)
        assert first == second
