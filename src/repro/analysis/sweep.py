"""Predictor size sweeps and the gshare.best search (paper Section 3).

Figures 2–4 plot misprediction against predictor cost for three curves:

* ``gshare.1PHT`` — gshare with history length = index length;
* ``gshare.best`` — for each size, the (history length, address length)
  pair minimizing the misprediction rate *averaged over the whole
  benchmark suite* (Section 3.1: "the configuration that yields the
  best accuracy for the average of all the benchmarks studied");
* ``bi-mode`` — direction banks at half the gshare size plus an
  equal-size choice predictor (total cost 1.5x the next smaller
  gshare, Section 3.3).

:func:`paper_sweep` computes all three series for a suite of traces,
memoizing every (spec, trace) cell through the
:class:`~repro.sim.runner.ResultCache`.

The heavy lifting is fused: the sweep planner (:mod:`repro.sim.fused`,
``REPRO_FUSED``) groups the whole spec grid into families — every
gshare cell of a sweep (the 1PHT points and the whole ``gshare.best``
candidate family) is one family, every bi-mode cell another — and each
family advances in a single pass over each trace with per-spec in-loop
reduction.  When fused dispatch is off or unavailable the cells route
through the per-trace batched kernels instead (:mod:`repro.sim.batch`
one counting-sorted pass per configuration, :mod:`repro.sim.
batch_bimode` the whole bi-mode portion of the matrix in one
cross-trace call), and the (spec, benchmark) matrix can be split
across worker processes with ``jobs`` / ``$REPRO_JOBS``
(:mod:`repro.sim.parallel`).  All paths return bit-identical rates to
the scalar reference engine (asserted by the equivalence suites and
:mod:`repro.verify`), so cached cells mix freely with freshly computed
ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.core.hardware import PAPER_SIZE_POINTS_KB, HardwareBudget
from repro.core.registry import make_predictor
from repro.sim.runner import ResultCache, evaluate_matrix
from repro.traces.record import BranchTrace

__all__ = [
    "SweepPoint",
    "SweepSeries",
    "gshare_1pht_spec",
    "gshare_spec",
    "bimode_spec",
    "best_gshare_at_size",
    "sweep_series",
    "paper_sweep",
]


@dataclass(frozen=True)
class SweepPoint:
    """One point on a misprediction-vs-size curve."""

    spec: str
    size_bytes: float
    per_benchmark: Dict[str, float]

    @property
    def size_kb(self) -> float:
        return self.size_bytes / 1024.0

    @property
    def average(self) -> float:
        """Arithmetic mean misprediction over the suite (the paper's
        `*-AVERAGE` curves)."""
        if not self.per_benchmark:
            return 0.0
        return sum(self.per_benchmark.values()) / len(self.per_benchmark)


@dataclass
class SweepSeries:
    """A labelled curve: points in ascending size order."""

    label: str
    points: List[SweepPoint] = field(default_factory=list)

    def sizes_kb(self) -> List[float]:
        return [p.size_kb for p in self.points]

    def averages(self) -> List[float]:
        return [p.average for p in self.points]

    def benchmark_rates(self, benchmark: str) -> List[float]:
        return [p.per_benchmark[benchmark] for p in self.points]


def gshare_spec(index_bits: int, history_bits: int) -> str:
    return f"gshare:index={index_bits},hist={history_bits}"


def gshare_1pht_spec(kbytes: float) -> str:
    """Single-PHT gshare consuming ``kbytes`` KB of counters."""
    index_bits = HardwareBudget(kbytes).index_bits
    return gshare_spec(index_bits, index_bits)


def bimode_spec(kbytes: float) -> str:
    """Bi-mode whose direction banks consume ``kbytes`` KB (choice adds 50 %)."""
    index_bits = HardwareBudget(kbytes).index_bits
    if index_bits < 1:
        raise ValueError(f"{kbytes} KB cannot be split into two direction banks")
    bank_bits = index_bits - 1
    return f"bimode:dir={bank_bits},hist={bank_bits},choice={bank_bits}"


def _rates_by_spec(
    specs: Sequence[str],
    traces: Mapping[str, BranchTrace],
    cache: Optional[ResultCache],
    jobs: Optional[int] = None,
    journal=None,
) -> Dict[str, Dict[str, float]]:
    """``result[spec][bench]`` for the whole spec set, batched per trace."""
    return evaluate_matrix(specs, traces, cache=cache, jobs=jobs, journal=journal)


def _argmin_spec(
    specs: Sequence[str], matrix: Mapping[str, Dict[str, float]]
) -> Tuple[str, Dict[str, float]]:
    """First spec minimizing the suite average (ties keep earlier specs,
    matching the historical search order)."""
    best_spec = None
    best_avg = float("inf")
    for spec in specs:
        rates = matrix[spec]
        avg = sum(rates.values()) / len(rates)
        if avg < best_avg:
            best_spec, best_avg = spec, avg
    assert best_spec is not None
    return best_spec, matrix[best_spec]


def _candidate_specs(
    kbytes: float, history_candidates: Optional[Sequence[int]]
) -> List[str]:
    """In-range gshare candidate specs for one size, in search order."""
    index_bits = HardwareBudget(kbytes).index_bits
    if history_candidates is None:
        history_candidates = range(index_bits + 1)
    return [
        gshare_spec(index_bits, h)
        for h in history_candidates
        if 0 <= h <= index_bits
    ]


def best_gshare_at_size(
    kbytes: float,
    traces: Dict[str, BranchTrace],
    cache: Optional[ResultCache] = None,
    history_candidates: Optional[Sequence[int]] = None,
    jobs: Optional[int] = None,
) -> Tuple[str, Dict[str, float]]:
    """Exhaustive history-length search for gshare at one size.

    Tries every history length in ``history_candidates`` (default: all
    of ``0..index_bits``) and returns the spec minimizing the suite
    average, with its per-benchmark rates.  All candidates are simulated
    in one batched kernel pass per trace (see :mod:`repro.sim.batch`)
    rather than one full trace pass per history length.
    """
    if not traces:
        raise ValueError("need at least one trace")
    specs = _candidate_specs(kbytes, history_candidates)
    if not specs:
        raise ValueError(f"no in-range history candidates for {kbytes} KB")
    matrix = _rates_by_spec(specs, traces, cache, jobs=jobs)
    return _argmin_spec(specs, matrix)


def sweep_series(
    label: str,
    specs_by_size: Iterable[Tuple[str, Dict[str, float]]],
) -> SweepSeries:
    """Assemble a series from (spec, per-benchmark rates) pairs."""
    series = SweepSeries(label=label)
    for spec, rates in specs_by_size:
        size_bytes = make_predictor(spec).size_bytes()
        series.points.append(
            SweepPoint(spec=spec, size_bytes=size_bytes, per_benchmark=rates)
        )
    series.points.sort(key=lambda p: p.size_bytes)
    return series


def paper_sweep(
    traces: Dict[str, BranchTrace],
    kb_points: Sequence[float] = PAPER_SIZE_POINTS_KB,
    cache: Optional[ResultCache] = None,
    jobs: Optional[int] = None,
    journal=None,
) -> Dict[str, SweepSeries]:
    """The three curves of Figures 2–4 for one benchmark suite.

    Returns ``{"gshare.1PHT": ..., "gshare.best": ..., "bi-mode": ...}``.
    The bi-mode series uses direction banks sized to each KB point, so
    its actual cost (reported per point) is 1.5x the label size.

    All cells of all sizes are evaluated as one (spec, benchmark)
    matrix: gshare cells batch through the multi-lane kernel, and
    ``jobs`` (default: ``$REPRO_JOBS``) splits benchmarks across worker
    processes.  Rates are bit-identical to evaluating each cell with the
    scalar engine.  ``journal`` (a
    :class:`repro.sim.journal.SweepJournal`) makes the sweep resumable
    after a crash or interrupt: completed cells are appended as they
    finish and never re-simulated on the next run.
    """
    candidates = {kbytes: _candidate_specs(kbytes, None) for kbytes in kb_points}
    all_specs: List[str] = []
    for kbytes in kb_points:
        all_specs.append(gshare_1pht_spec(kbytes))
        all_specs.extend(candidates[kbytes])
        all_specs.append(bimode_spec(kbytes))
    matrix = _rates_by_spec(
        list(dict.fromkeys(all_specs)), traces, cache, jobs=jobs, journal=journal
    )

    one_pht = []
    best = []
    bimode = []
    for kbytes in kb_points:
        spec = gshare_1pht_spec(kbytes)
        one_pht.append((spec, matrix[spec]))
        best.append(_argmin_spec(candidates[kbytes], matrix))
        bspec = bimode_spec(kbytes)
        bimode.append((bspec, matrix[bspec]))
    return {
        "gshare.1PHT": sweep_series("gshare.1PHT", one_pht),
        "gshare.best": sweep_series("gshare.best", best),
        "bi-mode": sweep_series("bi-mode", bimode),
    }
