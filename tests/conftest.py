"""Shared fixtures: small deterministic traces and predictor specs.

Also registers hypothesis profiles: ``dev`` (the default, fast) and
``ci`` (derandomized with a fixed seed and a larger example budget, for
the dedicated CI fuzzing job).  Select with ``HYPOTHESIS_PROFILE=ci``.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

from repro.traces.record import BranchTrace
from repro.workloads.generator import generate_trace
from repro.workloads.profiles import get_profile

settings.register_profile(
    "ci",
    max_examples=200,
    derandomize=True,  # fixed seed: CI failures reproduce locally
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile("dev", settings.default)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


#: Every registered predictor spec exercised by the equivalence and
#: smoke tests.  Kept small so the whole matrix stays fast.
ALL_SPECS = [
    "always-taken",
    "always-not-taken",
    "btfnt",
    "bimodal:index=8",
    "bimodal:index=6,bits=3",
    "gshare:index=8,hist=8",
    "gshare:index=8,hist=3",
    "gshare:index=8,hist=0",
    "gag:hist=8",
    "gas:hist=5,select=3",
    "gselect:hist=4,addr=4",
    "pag:hist=6,bht=6",
    "pas:hist=4,select=3,bht=5",
    "bimode:dir=7,hist=7,choice=7",
    "bimode:dir=7,hist=4,choice=6",
    "bimode:dir=7,hist=7,choice=7,full_update=1",
    "bimode:dir=7,hist=7,choice=7,choice_hist=1",
    "agree:index=8,hist=8",
    "gskew:bank=7,hist=7",
    "gskew:bank=7,hist=7,update=total",
    "yags:choice=8,cache=6,hist=6,tag=6",
    "tournament:index=8,meta=8",
    "trimode:dir=7,hist=7,choice=7",
    "trimode:dir=7,hist=3,choice=5",
    "biasfilter:table=8,run=2,sub_index=8,sub_hist=8",
    "gap:hist=4,addr=4",
    "pap:hist=3,addr=3,bht=4",
    "perceptron:index=6,hist=8",
]


#: Figure-grid-style specs for the kernel-registry ported schemes, at
#: 2-3 sizes each: the verification matrix of the per-scheme
#: equivalence suite, the golden fixtures and the registry benchmark.
PORTED_GRID = [
    "bimodal:index=6",
    "bimodal:index=9",
    "bimodal:index=6,bits=3",
    "gag:hist=6",
    "gag:hist=10",
    "gas:hist=5,select=3",
    "gas:hist=7,select=2",
    "gap:hist=5",
    "gap:hist=4,addr=6",
    "gselect:hist=4,addr=4",
    "gselect:hist=6,addr=3",
    "pag:hist=6,bht=6",
    "pag:hist=8,bht=4",
    "pas:hist=4,select=3,bht=5",
    "pas:hist=5,select=2,bht=6",
    "pap:hist=3,addr=3,bht=4",
    "pap:hist=4,addr=4,bht=5",
    "agree:index=8,hist=8",
    "agree:index=6,hist=4",
    "agree:index=8,hist=8,bias=6",
    "gskew:bank=7,hist=7",
    "gskew:bank=5,hist=5",
    "gskew:bank=7,hist=7,update=total",
    "gskew:bank=5,hist=3,update=total",
    "tournament:index=8,meta=8",
    "tournament:index=6,meta=5",
    "trimode:dir=7,hist=7,choice=7",
    "trimode:dir=5,hist=3,choice=5",
    "yags:choice=8,cache=6,hist=6,tag=6",
    "yags:choice=6,cache=5,hist=3,tag=4",
    # second wave: the former SCALAR_ONLY tier
    "perceptron:index=6,hist=8",
    "perceptron:index=5,hist=12,w=8",
    "perceptron:index=4,hist=6,w=4",
    "biasfilter:table=8,run=2,sub_index=8,sub_hist=8",
    "biasfilter:table=6,run=3,sub_index=7,sub_hist=4",
    "biasfilter:table=7,run=2,sub=bimodal,sub_index=7",
    "always-taken",
    "always-not-taken",
    "btfnt",
]

#: Per-scheme fuzz budget tiers for the differential suites.
#: ``diff_spec`` replays a spec through every engine it qualifies for,
#: and the kernel registry multiplied that space: each ported scheme
#: adds its lane engines (compiled and/or numpy) on top of
#: oracle/step/batch.  Schemes with real automata get a smaller
#: example budget so the CI profile's wall-clock stays level; the
#: stateless static schemes keep the wide budget.  Deadlines stay
#: ``None`` everywhere — the first heavy example may compile the C
#: driver, and per-example deadlines would flake on that — so
#: ``max_examples`` *is* the budget knob.
FUZZ_BUDGET = {
    "light": {"max_examples": 15},  # stateless statics: trivial replay
    "heavy": {"max_examples": 8},  # stateful schemes: up to 6 engines
}

#: Two small paper size points -> the full Figure-2/3/4 grid shape.
KB_POINTS = (1 / 64, 1 / 32)


def figure_grid():
    """The 1PHT points, every gshare.best history candidate, and
    bi-mode, at each :data:`KB_POINTS` size — the production sweep's
    spec-grid shape, shrunk to test scale."""
    from repro.analysis.sweep import _candidate_specs, bimode_spec, gshare_1pht_spec

    specs = []
    for kb in KB_POINTS:
        specs.append(gshare_1pht_spec(kb))
        specs.extend(_candidate_specs(kb, None))
        specs.append(bimode_spec(kb))
    return list(dict.fromkeys(specs))


def make_trace(pcs, outcomes, name: str = "t") -> BranchTrace:
    """A literal trace from parallel pc/outcome lists."""
    return BranchTrace(
        pcs=np.asarray(pcs, dtype=np.int64),
        outcomes=np.asarray(outcomes, dtype=bool),
        name=name,
    )


def scalar_predictions(spec: str, trace: BranchTrace) -> np.ndarray:
    """The per-branch step-interface reference: ``predict``/``update``
    one branch at a time through the scalar predictor."""
    from repro.core.registry import make_predictor

    predictor = make_predictor(spec)
    preds = np.empty(len(trace), dtype=bool)
    for i, (pc, taken) in enumerate(zip(trace.pcs, trace.outcomes)):
        preds[i] = predictor.predict(int(pc))
        predictor.update(int(pc), bool(taken))
    return preds


def make_toy_trace(length: int = 2000, seed: int = 7, num_branches: int = 24) -> BranchTrace:
    """A quick random trace (not workload-realistic; for mechanics tests)."""
    rng = np.random.default_rng(seed)
    pcs = rng.integers(0, num_branches, size=length) * 4 + 64
    # mix of biased and alternating branches so every predictor has work
    outcomes = np.empty(length, dtype=bool)
    for b in range(num_branches):
        mask = pcs == b * 4 + 64
        n = int(mask.sum())
        if b % 3 == 0:
            outcomes[mask] = rng.random(n) < 0.95
        elif b % 3 == 1:
            outcomes[mask] = rng.random(n) < 0.05
        else:
            outcomes[mask] = (np.arange(n) % 2).astype(bool)
    return BranchTrace(pcs=pcs, outcomes=outcomes, name="toy")


@pytest.fixture(scope="session")
def toy_trace() -> BranchTrace:
    return make_toy_trace()


@pytest.fixture(scope="session")
def small_workload() -> BranchTrace:
    """A short real workload trace (xlisp profile, 20 K branches)."""
    return generate_trace(get_profile("xlisp"), length=20_000, seed=3)


@pytest.fixture(scope="session")
def aliasing_workload() -> BranchTrace:
    """A trace with a large static footprint (gcc profile, 30 K branches)."""
    return generate_trace(get_profile("gcc"), length=30_000, seed=3)


@pytest.fixture(scope="session")
def aliasing_toy_trace() -> BranchTrace:
    """A toy trace whose 96 static branches alias small tables."""
    return make_toy_trace(length=1500, seed=13, num_branches=96)


@pytest.fixture(scope="session")
def figure_grid_specs() -> list:
    """The shrunk Figure-2/3/4 spec grid (see :func:`figure_grid`)."""
    return figure_grid()
