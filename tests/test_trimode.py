"""Unit tests for the tri-mode extension predictor."""

import numpy as np
import pytest

from repro.core.counters import (
    STRONGLY_NOT_TAKEN,
    STRONGLY_TAKEN,
    WEAKLY_NOT_TAKEN,
    WEAKLY_TAKEN,
)
from repro.predictors.trimode import TriModePredictor
from repro.sim.engine import run, run_detailed, run_steps
from tests.conftest import make_toy_trace


def fresh(dir_bits=4, **kw):
    return TriModePredictor(direction_index_bits=dir_bits, **kw)


class TestStructure:
    def test_three_banks_plus_choice(self):
        p = fresh(dir_bits=6)
        assert len(p.banks) == 3
        assert p.size_bits() == (3 * 64 + 64) * 2

    def test_bank_initialization(self):
        p = fresh()
        assert all(s == WEAKLY_NOT_TAKEN for s in p.banks[0].states)
        assert all(s == WEAKLY_TAKEN for s in p.banks[1].states)
        assert all(s == WEAKLY_TAKEN for s in p.banks[2].states)

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            TriModePredictor(direction_index_bits=-1)
        with pytest.raises(ValueError):
            fresh(dir_bits=4, history_bits=5)

    def test_name(self):
        assert "3x2^5" in fresh(dir_bits=5).name


class TestModeClassification:
    def test_weak_choice_selects_weak_bank(self):
        # choice starts weakly-taken (state 2) -> weak bank
        assert TriModePredictor._bank_of(WEAKLY_TAKEN) == 2
        assert TriModePredictor._bank_of(WEAKLY_NOT_TAKEN) == 2

    def test_saturated_choice_selects_direction_banks(self):
        assert TriModePredictor._bank_of(STRONGLY_TAKEN) == 1
        assert TriModePredictor._bank_of(STRONGLY_NOT_TAKEN) == 0

    def test_biased_branch_migrates_to_strong_bank(self):
        p = fresh(dir_bits=4, history_bits=0)
        for _ in range(3):
            p.update(5, True)
        # choice saturated taken: now the taken bank serves pc 5
        assert p.choice.states[5] == STRONGLY_TAKEN
        index = p._direction_index(5)
        assert p.banks[1].predict(index) is True

    def test_weak_branch_stays_in_weak_bank(self):
        p = fresh(dir_bits=4, history_bits=0)
        for i in range(40):
            p.update(5, bool(i % 2))
        # alternation keeps the choice counter around the middle
        assert p.choice.states[5] in (1, 2)


class TestBehaviour:
    def test_learns_biased_branches(self):
        p = fresh(dir_bits=6)
        misses = sum(not p.predict_and_update(9, True) for _ in range(100))
        assert misses <= 2

    def test_separates_weak_from_strong(self):
        """A weakly-biased branch aliasing with a strongly-biased one in
        the direction index must not disturb it once classified."""
        p = fresh(dir_bits=4, history_bits=0, choice_index_bits=8)
        strong_pc = 0x13
        weak_pc = 0x23  # same direction index
        misses_strong = 0
        for i in range(300):
            misses_strong += p.predict_and_update(strong_pc, True) is not True
            p.predict_and_update(weak_pc, bool(i % 2))
        assert misses_strong <= 4

    def test_batch_equals_step(self):
        trace = make_toy_trace(length=1500, seed=3)
        for kwargs in ({}, {"history_bits": 3}, {"choice_index_bits": 5}):
            batch = run(fresh(dir_bits=6, **kwargs), trace)
            steps = run_steps(fresh(dir_bits=6, **kwargs), trace)
            assert np.array_equal(batch.predictions, steps.predictions), kwargs

    def test_detailed_covers_three_banks(self):
        trace = make_toy_trace(length=2000)
        detailed = run_detailed(fresh(dir_bits=5), trace)
        assert detailed.num_counters == 3 * 32
        banks_hit = set((detailed.counter_ids // 32).tolist())
        assert 2 in banks_hit  # weak bank serves the cold start

    def test_reset(self):
        trace = make_toy_trace(length=400)
        p = fresh()
        a = run(p, trace).predictions
        b = run(p, trace).predictions
        assert np.array_equal(a, b)

    def test_registry_spec(self):
        from repro.core.registry import make_predictor

        p = make_predictor("trimode:dir=6,hist=4,choice=5")
        assert isinstance(p, TriModePredictor)
        assert p.history_bits == 4
